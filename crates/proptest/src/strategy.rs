//! Value-generation strategies: ranges, `Just`, `any`, maps, one-of choice,
//! tuples, and `[class]{lo,hi}` string patterns.

use rand::rngs::StdRng;
use rand::{RngExt, SampleRange, Standard};

/// A generator of random values, mirroring `proptest::strategy::Strategy`.
/// Object-safe so heterogeneous strategies can be unified behind
/// `Box<dyn Strategy<Value = T>>` (see [`OneOf`]).
pub trait Strategy {
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Box a strategy for storage in a homogeneous collection (`prop_oneof!`).
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        (**self).sample(rng)
    }
}

/// Always yields a clone of the given value.
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// A full-width uniform value of `T` (`any::<i64>()`).
pub fn any<T: Standard>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Standard> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        rng.random()
    }
}

impl<T> Strategy for std::ops::Range<T>
where
    T: Clone,
    std::ops::Range<T>: SampleRange<T>,
{
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        rng.random_range(self.clone())
    }
}

impl<T> Strategy for std::ops::RangeInclusive<T>
where
    T: Clone,
    std::ops::RangeInclusive<T>: SampleRange<T>,
{
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        rng.random_range(self.clone())
    }
}

/// `strategy.prop_map(f)`.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice among boxed strategies (`prop_oneof!`).
pub struct OneOf<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> OneOf<T> {
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        let i = rng.random_range(0..self.arms.len());
        self.arms[i].sample(rng)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

/// String literals act as regex strategies. Exactly the `[class]{lo,hi}`
/// shape is supported (with `a-z` style ranges inside the class) — the only
/// shape the workspace's tests use.
impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut StdRng) -> String {
        let (alphabet, lo, hi) = parse_class_repeat(self)
            .unwrap_or_else(|| panic!("unsupported pattern {self:?}; expected [class]{{lo,hi}}"));
        let len = rng.random_range(lo..=hi);
        (0..len)
            .map(|_| alphabet[rng.random_range(0..alphabet.len())])
            .collect()
    }
}

/// Parse `[class]{lo,hi}` / `[class]{n}` / `[class]` into (alphabet, lo, hi).
fn parse_class_repeat(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let close = rest.find(']')?;
    let (class, tail) = rest.split_at(close);
    let tail = &tail[1..];

    let mut alphabet = Vec::new();
    let chars: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            let (a, b) = (chars[i], chars[i + 2]);
            if a > b {
                return None;
            }
            alphabet.extend(a..=b);
            i += 3;
        } else {
            alphabet.push(chars[i]);
            i += 1;
        }
    }
    if alphabet.is_empty() {
        return None;
    }

    if tail.is_empty() {
        return Some((alphabet, 1, 1));
    }
    let spec = tail.strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = match spec.split_once(',') {
        Some((l, h)) => (l.trim().parse().ok()?, h.trim().parse().ok()?),
        None => {
            let n = spec.trim().parse().ok()?;
            (n, n)
        }
    };
    if lo > hi {
        return None;
    }
    Some((alphabet, lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn class_repeat_parses() {
        let (a, lo, hi) = parse_class_repeat("[a-z]{0,8}").unwrap();
        assert_eq!(a.len(), 26);
        assert_eq!((lo, hi), (0, 8));

        let (a, lo, hi) = parse_class_repeat("[a-zA-Z0-9<>=,.*()' ]{0,60}").unwrap();
        assert_eq!(a.len(), 26 + 26 + 10 + 10);
        assert_eq!((lo, hi), (0, 60));

        assert!(parse_class_repeat("foo*").is_none());
    }

    #[test]
    fn string_strategy_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let s = "[a-z]{0,8}".sample(&mut rng);
            assert!(s.len() <= 8);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let s = crate::prop_oneof![Just(0u8), Just(1u8), Just(2u8)];
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[s.sample(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn map_and_tuple_compose() {
        let s = (0i64..10, 10i64..20).prop_map(|(a, b)| a + b);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((10..30).contains(&v));
        }
    }
}
