//! A minimal property-testing harness exposing the subset of the `proptest`
//! crate's API this workspace uses. The build environment has no registry
//! access, so the workspace vendors this stand-in instead of depending on
//! crates.io.
//!
//! Differences from real proptest, by design:
//! - sampling is driven by a deterministic per-test seed (FNV-1a of the
//!   test name), so every run explores the same inputs — failures are
//!   always reproducible without a persistence file;
//! - there is no shrinking: a failing case reports the assertion as-is;
//! - string strategies support exactly the `[class]{lo,hi}` regex shape.

pub mod collection;
pub mod strategy;

// Re-exported for macro expansions: `proptest!` call sites need not depend
// on the PRNG crate themselves.
#[doc(hidden)]
pub use rand;

pub use strategy::{any, Just, Strategy};

/// Runtime knobs for a `proptest!` block, mirroring `proptest::ProptestConfig`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
    /// Accepted for API compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 32,
            max_shrink_iters: 0,
        }
    }
}

/// Deterministic seed for a property, derived from its name (FNV-1a).
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// `prop_assert!` — plain `assert!` (no shrinking to report).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `prop_assert_eq!` — plain `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `prop_assert_ne!` — plain `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![$($crate::strategy::boxed($s)),+])
    };
}

/// The `proptest! { ... }` block: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that replays `config.cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($argp:pat_param in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng =
                <$crate::rand::rngs::StdRng as $crate::rand::SeedableRng>::seed_from_u64(
                    $crate::seed_for(stringify!($name)),
                );
            for case in 0..config.cases {
                $(let $argp = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                let run = || $body;
                // One closure call per case keeps `return`-free bodies intact
                // while scoping any `mut` bindings to the case.
                if std::panic::catch_unwind(std::panic::AssertUnwindSafe(run)).is_err() {
                    panic!(
                        "property {} failed at case {}/{} (seed {})",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        $crate::seed_for(stringify!($name)),
                    );
                }
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

pub mod prelude {
    //! `use proptest::prelude::*;` — everything the test files reference.
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}
