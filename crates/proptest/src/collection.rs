//! `proptest::collection::vec` — vectors of strategy-generated elements.

use rand::rngs::StdRng;
use rand::RngExt;

use crate::strategy::Strategy;

/// Length specification for [`vec`]: an exact size or a `lo..hi` range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Exclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n + 1 }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        Self {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// A `Vec<S::Value>` with length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        let len = rng.random_range(self.size.lo..self.size.hi);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn vec_length_in_range() {
        let s = vec(0i64..5, 2..6);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|x| (0..5).contains(x)));
        }
    }

    #[test]
    fn vec_exact_length() {
        let s = vec((0i64..3, 0i64..3), 10);
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(s.sample(&mut rng).len(), 10);
    }
}
