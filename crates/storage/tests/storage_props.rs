//! Stateful property tests for the simulated file system and pool
//! accounting: arbitrary operation sequences preserve the invariants the
//! rest of the stack relies on.

use deepsea_storage::{BlockConfig, CostWeights, PoolAccountant, SimFs};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Create(u64), // sim bytes
    Read(usize), // index into live files (mod len)
    Delete(usize),
    Stat(usize),
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..100_000).prop_map(Op::Create),
        (0usize..64).prop_map(Op::Read),
        (0usize..64).prop_map(Op::Delete),
        (0usize..64).prop_map(Op::Stat),
    ]
}

proptest! {
    /// After any operation sequence: total_bytes == Σ live file sizes,
    /// file_count == live files, reads of live files always succeed, reads
    /// of deleted files always fail, and the ledger only grows.
    #[test]
    fn fs_invariants_under_random_ops(ops in proptest::collection::vec(op(), 1..80)) {
        let fs: SimFs<Vec<u8>> = SimFs::new(BlockConfig::new(4096), CostWeights::default());
        let mut live: Vec<(deepsea_storage::FileId, u64)> = Vec::new();
        let mut deleted = Vec::new();
        let mut last_ledger = fs.ledger();
        for op in ops {
            match op {
                Op::Create(bytes) => {
                    let (id, cost) = fs.create("f", bytes, vec![1, 2, 3]);
                    prop_assert!(cost >= 0.0);
                    live.push((id, bytes));
                }
                Op::Read(i) if !live.is_empty() => {
                    let (id, bytes) = live[i % live.len()];
                    let (payload, b, _) = fs.read(id).expect("live file readable");
                    prop_assert_eq!(b, bytes);
                    prop_assert_eq!(payload.as_slice(), &[1, 2, 3]);
                }
                Op::Delete(i) if !live.is_empty() => {
                    let (id, bytes) = live.remove(i % live.len());
                    prop_assert_eq!(fs.delete(id), Some(bytes));
                    deleted.push(id);
                }
                Op::Stat(i) if !live.is_empty() => {
                    let (id, bytes) = live[i % live.len()];
                    prop_assert_eq!(fs.stat(id).map(|(_, b)| b), Some(bytes));
                }
                _ => {}
            }
            // Invariants after every step.
            prop_assert_eq!(fs.file_count(), live.len());
            prop_assert_eq!(fs.total_bytes(), live.iter().map(|(_, b)| b).sum::<u64>());
            let ledger = fs.ledger();
            prop_assert!(ledger.read_bytes >= last_ledger.read_bytes);
            prop_assert!(ledger.write_bytes >= last_ledger.write_bytes);
            last_ledger = ledger;
        }
        for id in deleted {
            prop_assert!(fs.read(id).is_none());
            prop_assert!(fs.stat(id).is_none());
        }
    }

    /// Pool accounting: any interleaving of reserve/release keeps
    /// used ≤ smax and used == Σ successful reservations − releases.
    #[test]
    fn pool_accounting_balances(
        smax in 1u64..1_000_000,
        requests in proptest::collection::vec(1u64..100_000, 1..50),
    ) {
        let mut pool = PoolAccountant::bounded(smax);
        let mut held: Vec<u64> = Vec::new();
        for (i, r) in requests.iter().enumerate() {
            if i % 3 == 2 && !held.is_empty() {
                let b = held.pop().unwrap();
                prop_assert!(pool.release(b).is_ok(), "releasing held bytes cannot fail");
            } else {
                let before = pool.used();
                match pool.reserve(*r) {
                    Ok(()) => {
                        held.push(*r);
                        prop_assert_eq!(pool.used(), before + r);
                    }
                    Err(e) => {
                        prop_assert_eq!(pool.used(), before, "failed reserve mutated state");
                        prop_assert_eq!(e.requested, *r);
                    }
                }
            }
            prop_assert!(pool.used() <= smax);
            prop_assert_eq!(pool.used(), held.iter().sum::<u64>());
            prop_assert_eq!(pool.available(), smax - pool.used());
        }
    }

    /// Blocks-for is monotone and inverse-consistent with block size.
    #[test]
    fn blocks_monotone(bytes in 0u64..1_000_000_000, block in 1u64..100_000_000) {
        let cfg = BlockConfig::new(block);
        let b = cfg.blocks_for(bytes);
        prop_assert!(b >= 1);
        prop_assert!(b.saturating_sub(1) * block < bytes.max(1));
        prop_assert!(bytes <= b * block);
        prop_assert!(cfg.blocks_for(bytes + block) >= b);
    }
}
