//! Implementation-specific cost constants (§7.2 of the paper).

/// Cost weights used throughout the system for converting simulated bytes and
/// rows into abstract cost units (interpreted as seconds by the cluster
/// simulator).
///
/// The paper defines `wread` and `wwrite` as "implementation specific
/// constants for reading (respectively, writing) data" and notes that in
/// DeepSea's HDFS-backed implementation `wwrite` is "typically much larger
/// than `wread`" (replication + pipeline acks). The remaining weights model
/// the compute-side of a MapReduce stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostWeights {
    /// Cost per simulated byte read from the distributed FS.
    pub wread: f64,
    /// Cost per simulated byte written to the distributed FS.
    pub wwrite: f64,
    /// CPU cost per row processed by an operator.
    pub cpu_per_row: f64,
    /// Cost per simulated byte shuffled between map and reduce phases.
    pub shuffle_per_byte: f64,
    /// Fixed overhead of launching one map/reduce task (JVM start, scheduling).
    pub task_overhead: f64,
    /// Fixed cost of deleting one file (namenode metadata round-trip).
    ///
    /// Defaults to `0.0`: HDFS deletes are metadata-only and the golden
    /// replay sequences are captured under free deletion. Set it non-zero to
    /// model eviction and quarantine cleanup as paid work.
    pub wdelete: f64,
}

impl Default for CostWeights {
    fn default() -> Self {
        // Calibrated so that a full scan of a "100 GB" instance on the default
        // 31-slave cluster lands in the hundreds-of-seconds range like the
        // paper's Hive runs, and so that wwrite/wread ≈ 10 — HDFS writes go
        // through a 3-way replication pipeline with acks and are typically an
        // order of magnitude more expensive than reads ("wwrite is typically
        // much larger than wread", §7.2).
        Self {
            wread: 1.0e-8,
            wwrite: 1.0e-7,
            cpu_per_row: 2.0e-7,
            shuffle_per_byte: 1.5e-8,
            task_overhead: 1.5,
            wdelete: 0.0,
        }
    }
}

impl CostWeights {
    /// Cost of reading `bytes` simulated bytes.
    pub fn read_cost(&self, bytes: u64) -> f64 {
        self.wread * bytes as f64
    }

    /// Cost of writing `bytes` simulated bytes.
    pub fn write_cost(&self, bytes: u64) -> f64 {
        self.wwrite * bytes as f64
    }

    /// CPU cost of processing `rows` rows.
    pub fn cpu_cost(&self, rows: u64) -> f64 {
        self.cpu_per_row * rows as f64
    }

    /// Cost of shuffling `bytes` between stages.
    pub fn shuffle_cost(&self, bytes: u64) -> f64 {
        self.shuffle_per_byte * bytes as f64
    }

    /// Cost of deleting one file. Flat per operation: deletion is a metadata
    /// round-trip, independent of file size.
    pub fn delete_cost(&self) -> f64 {
        self.wdelete
    }

    /// Builder-style override of the delete cost.
    pub fn with_wdelete(mut self, wdelete: f64) -> Self {
        self.wdelete = wdelete;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_cost_more_than_reads() {
        let w = CostWeights::default();
        assert!(
            w.wwrite > w.wread,
            "paper: wwrite is much larger than wread"
        );
        assert!(w.write_cost(1_000_000) > w.read_cost(1_000_000));
    }

    #[test]
    fn deletes_are_free_by_default() {
        let w = CostWeights::default();
        assert_eq!(w.delete_cost(), 0.0, "golden capture pins free deletion");
        assert_eq!(w.with_wdelete(0.5).delete_cost(), 0.5);
    }

    #[test]
    fn costs_scale_linearly() {
        let w = CostWeights::default();
        assert!((w.read_cost(200) - 2.0 * w.read_cost(100)).abs() < 1e-12);
        assert!((w.cpu_cost(10) - 10.0 * w.cpu_per_row).abs() < 1e-12);
        assert_eq!(w.read_cost(0), 0.0);
        assert_eq!(w.shuffle_cost(0), 0.0);
    }
}
