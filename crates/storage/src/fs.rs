//! The simulated distributed file system.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard};

use crate::block::BlockConfig;
use crate::file::{FileId, StoredFile};
use crate::ledger::CostLedger;
use crate::weights::CostWeights;

/// A simulated HDFS-like file system.
///
/// Thread-safe: the experiment harness runs independent system variants in
/// parallel, each with its own `SimFs`, but a single variant may also be
/// driven from multiple threads.
///
/// Every read/write is charged to an internal [`CostLedger`]; the cost in
/// abstract units (seconds) is returned to the caller so the execution engine
/// can fold it into a query's elapsed time.
pub struct SimFs<P> {
    inner: Mutex<Inner<P>>,
    block: BlockConfig,
    weights: CostWeights,
}

struct Inner<P> {
    files: BTreeMap<FileId, StoredFile<P>>,
    next_id: u64,
    ledger: CostLedger,
}

impl<P> SimFs<P> {
    /// Lock the interior state. Poisoning is ignored (parking_lot semantics):
    /// the ledger and file map stay consistent under panic because every
    /// mutation is a single insert/remove/record call.
    fn locked(&self) -> MutexGuard<'_, Inner<P>> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Create an empty file system.
    pub fn new(block: BlockConfig, weights: CostWeights) -> Self {
        Self {
            inner: Mutex::new(Inner {
                files: BTreeMap::new(),
                next_id: 0,
                ledger: CostLedger::new(),
            }),
            block,
            weights,
        }
    }

    /// The block configuration in force.
    pub fn block_config(&self) -> BlockConfig {
        self.block
    }

    /// The cost weights in force.
    pub fn weights(&self) -> CostWeights {
        self.weights
    }

    /// Write a new file; returns its id and the simulated cost of the write.
    pub fn create(&self, name: impl Into<String>, sim_bytes: u64, payload: P) -> (FileId, f64) {
        let mut inner = self.locked();
        let id = FileId(inner.next_id);
        inner.next_id += 1;
        inner
            .files
            .insert(id, StoredFile::new(name, sim_bytes, payload));
        inner.ledger.record_write(sim_bytes);
        (id, self.weights.write_cost(sim_bytes))
    }

    /// Read a file; returns the payload, its simulated size, and the cost of
    /// the read. Returns `None` for an unknown id.
    pub fn read(&self, id: FileId) -> Option<(Arc<P>, u64, f64)> {
        let mut inner = self.locked();
        let file = inner.files.get(&id)?;
        let bytes = file.sim_bytes;
        let payload = Arc::clone(&file.payload);
        inner.ledger.record_read(bytes);
        Some((payload, bytes, self.weights.read_cost(bytes)))
    }

    /// Look at a file's metadata without charging a read.
    pub fn stat(&self, id: FileId) -> Option<(String, u64)> {
        let inner = self.locked();
        inner.files.get(&id).map(|f| (f.name.clone(), f.sim_bytes))
    }

    /// Delete a file (eviction). Deletion is metadata-only and free, matching
    /// HDFS semantics. Returns the freed simulated bytes, or `None` if absent.
    pub fn delete(&self, id: FileId) -> Option<u64> {
        let mut inner = self.locked();
        let file = inner.files.remove(&id)?;
        inner.ledger.record_delete();
        Some(file.sim_bytes)
    }

    /// Number of map tasks a scan of the given files launches.
    pub fn scan_tasks<I: IntoIterator<Item = FileId>>(&self, ids: I) -> u64 {
        let inner = self.locked();
        let sizes: Vec<u64> = ids
            .into_iter()
            .filter_map(|id| inner.files.get(&id).map(|f| f.sim_bytes))
            .collect();
        self.block.tasks_for_files(sizes)
    }

    /// Snapshot of the accumulated ledger.
    pub fn ledger(&self) -> CostLedger {
        self.locked().ledger
    }

    /// Number of live files.
    pub fn file_count(&self) -> usize {
        self.locked().files.len()
    }

    /// Total simulated bytes across live files.
    pub fn total_bytes(&self) -> u64 {
        self.locked().files.values().map(|f| f.sim_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fs() -> SimFs<Vec<u32>> {
        SimFs::new(BlockConfig::new(100), CostWeights::default())
    }

    #[test]
    fn create_read_roundtrip() {
        let fs = fs();
        let (id, wcost) = fs.create("frag", 250, vec![1, 2, 3]);
        assert!(wcost > 0.0);
        let (payload, bytes, rcost) = fs.read(id).expect("file exists");
        assert_eq!(*payload, vec![1, 2, 3]);
        assert_eq!(bytes, 250);
        assert!(rcost > 0.0);
        assert!(wcost > rcost, "writes are more expensive than reads");
    }

    #[test]
    fn ids_are_unique_and_monotonic() {
        let fs = fs();
        let (a, _) = fs.create("a", 1, vec![]);
        let (b, _) = fs.create("b", 1, vec![]);
        assert!(b > a);
    }

    #[test]
    fn delete_frees_and_read_fails_after() {
        let fs = fs();
        let (id, _) = fs.create("x", 500, vec![9]);
        assert_eq!(fs.total_bytes(), 500);
        assert_eq!(fs.delete(id), Some(500));
        assert_eq!(fs.total_bytes(), 0);
        assert!(fs.read(id).is_none());
        assert!(fs.delete(id).is_none());
    }

    #[test]
    fn ledger_tracks_io() {
        let fs = fs();
        let (id, _) = fs.create("x", 500, vec![9]);
        fs.read(id);
        fs.read(id);
        let l = fs.ledger();
        assert_eq!(l.write_bytes, 500);
        assert_eq!(l.read_bytes, 1000);
        assert_eq!(l.files_read, 2);
    }

    #[test]
    fn scan_tasks_counts_blocks_per_file() {
        let fs = fs();
        let (a, _) = fs.create("a", 250, vec![]); // 3 blocks of 100
        let (b, _) = fs.create("b", 90, vec![]); // 1 block
        assert_eq!(fs.scan_tasks([a, b]), 4);
        assert_eq!(fs.scan_tasks([a]), 3);
        // unknown ids are skipped
        assert_eq!(fs.scan_tasks([FileId(999)]), 0);
    }

    #[test]
    fn stat_does_not_charge_read() {
        let fs = fs();
        let (id, _) = fs.create("x", 500, vec![]);
        let before = fs.ledger();
        assert_eq!(fs.stat(id), Some(("x".to_string(), 500)));
        assert_eq!(fs.ledger().read_bytes, before.read_bytes);
    }
}
