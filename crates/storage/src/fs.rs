//! The simulated distributed file system.

use std::collections::BTreeMap;
// deepsea-lint: allow(lock_discipline) -- the SimFs inner state is the one sanctioned shared-state hub below sync.rs
use std::sync::{Arc, Mutex, MutexGuard};

use crate::block::BlockConfig;
use crate::fault::{
    FaultInjector, FaultStats, IoError, IoOutcome, NodeFault, ReadFault, WriteFault,
};
use crate::file::{FileId, StoredFile};
use crate::ledger::CostLedger;
use crate::node::{NodeId, NodeSet, NodeState, Route};
use crate::weights::CostWeights;

/// A simulated HDFS-like file system.
///
/// Thread-safe: the experiment harness runs independent system variants in
/// parallel, each with its own `SimFs`, but a single variant may also be
/// driven from multiple threads.
///
/// Every read/write is charged to an internal [`CostLedger`]; the cost in
/// abstract units (seconds) is returned to the caller so the execution engine
/// can fold it into a query's elapsed time.
///
/// A `SimFs` may optionally be *sharded* over a simulated cluster (see
/// [`SimFs::with_cluster`] and the [`ShardedFs`] alias): files are placed on
/// [`NodeSet`] datanodes, reads fail over to the first live replica, a down
/// node makes its un-replicated files fail as transient, and a dead node
/// converts them to permanent loss. Without a cluster every behaviour is
/// bit-identical to before the cluster layer existed.
///
/// **Gray failure and hedging.** A cluster node can also be *slow* (alive
/// but degraded, [`NodeSet::set_node_slow`]): reads it serves cost its
/// latency multiplier times their base simulated seconds, folded into
/// `spike_secs`. When a [`HedgeConfig`] is set, a read whose serving replica
/// would exceed the hedge threshold issues a *hedged read* to the next live
/// replica and takes the faster result — deterministically, with no extra
/// random draws (the replica's cost is the same base cost scaled by *its*
/// multiplier). Both ops' work is accounted honestly: the winner's latency
/// lands in the returned `IoOutcome`, the loser's cancelled work accumulates
/// in [`SimFs::hedge_extra_secs`].
pub struct SimFs<P> {
    inner: Mutex<Inner<P>>,
    block: BlockConfig,
    weights: CostWeights,
    faults: FaultInjector,
    cluster: Option<NodeSet>,
    hedge: Mutex<Option<HedgeConfig>>,
    hedge_stats: Mutex<HedgeCounters>,
    io_trace: Mutex<IoTraceState>,
}

/// Drainable per-race hedge details, recorded only when the I/O trace is
/// enabled (see [`SimFs::set_io_trace`]). The storage layer cannot see the
/// observer, so the tracing layer above drains these and converts them to
/// spans — the same pattern as the retry-debt drain in the engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HedgeTrace {
    /// The file whose read hedged.
    pub file: FileId,
    /// The replica that was serving the read (the slow arm's node).
    pub primary: NodeId,
    /// The replica the hedge raced against it.
    pub replica: NodeId,
    /// The primary arm's uncancelled finish line, seconds from read start.
    pub primary_secs: f64,
    /// The hedge arm's finish line (launched at the threshold), seconds
    /// from read start.
    pub replica_secs: f64,
    /// The hedge launch offset, seconds from read start.
    pub threshold_secs: f64,
    /// True when the hedge (replica) arm won the race.
    pub winner_replica: bool,
}

/// Gate plus buffer for the drainable I/O trace. Disabled (the default) it
/// is a single `bool` check per hedge — no allocation, no recording — so
/// untraced runs stay bit-and-cost identical.
#[derive(Debug, Default)]
struct IoTraceState {
    enabled: bool,
    hedges: Vec<HedgeTrace>,
}

/// Hedged-read policy: when a read's serving replica would exceed
/// `threshold_secs` of simulated latency, hedge to the next live replica and
/// take the faster result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HedgeConfig {
    /// Simulated seconds after which a read is hedged to the next replica.
    pub threshold_secs: f64,
}

impl HedgeConfig {
    /// Hedge reads slower than `threshold_secs` simulated seconds.
    pub fn after_secs(threshold_secs: f64) -> Self {
        Self { threshold_secs }
    }
}

/// Hedged-read accounting, kept outside [`FaultStats`] because the wasted
/// work is an `f64` (FaultStats stays `Eq`); the integer counters are merged
/// into [`SimFs::fault_stats`].
#[derive(Debug, Clone, Copy, Default)]
struct HedgeCounters {
    issued: u64,
    won: u64,
    cancelled: u64,
    extra_secs: f64,
}

/// A cluster-attached [`SimFs`]: same type, sharded semantics. Build one
/// with [`SimFs::with_cluster`].
pub type ShardedFs<P> = SimFs<P>;

struct Inner<P> {
    files: BTreeMap<FileId, StoredFile<P>>,
    next_id: u64,
    ledger: CostLedger,
}

impl<P> SimFs<P> {
    /// Lock the interior state. Poisoning is ignored (parking_lot semantics):
    /// the ledger and file map stay consistent under panic because every
    /// mutation is a single insert/remove/record call.
    fn locked(&self) -> MutexGuard<'_, Inner<P>> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Create an empty file system with no fault injection.
    pub fn new(block: BlockConfig, weights: CostWeights) -> Self {
        Self::with_faults(block, weights, FaultInjector::disabled())
    }

    /// Create an empty file system whose fallible I/O (`try_read` /
    /// `try_create`) consults the given fault injector. The infallible APIs
    /// (`read` / `create`) never consult it and remain the zero-fault fast
    /// path.
    pub fn with_faults(block: BlockConfig, weights: CostWeights, faults: FaultInjector) -> Self {
        Self {
            inner: Mutex::new(Inner {
                files: BTreeMap::new(),
                next_id: 0,
                ledger: CostLedger::new(),
            }),
            block,
            weights,
            faults,
            cluster: None,
            hedge: Mutex::new(None),
            hedge_stats: Mutex::new(HedgeCounters::default()),
            io_trace: Mutex::new(IoTraceState::default()),
        }
    }

    /// Shard the file system over a simulated cluster. Files placed via
    /// [`SimFs::place`] (or [`SimFs::try_create_placed`]) are then routed
    /// through the cluster's liveness state: reads fail over to the first
    /// live replica, an outage (every replica down) fails as transient, and
    /// total replica death converts the file to permanent loss.
    pub fn with_cluster(
        block: BlockConfig,
        weights: CostWeights,
        faults: FaultInjector,
        cluster: NodeSet,
    ) -> Self {
        Self {
            cluster: Some(cluster),
            ..Self::with_faults(block, weights, faults)
        }
    }

    /// The attached cluster, when the file system is sharded.
    pub fn cluster(&self) -> Option<&NodeSet> {
        self.cluster.as_ref()
    }

    /// The block configuration in force.
    pub fn block_config(&self) -> BlockConfig {
        self.block
    }

    /// The cost weights in force.
    pub fn weights(&self) -> CostWeights {
        self.weights
    }

    /// Write a new file; returns its id and the simulated cost of the write.
    pub fn create(&self, name: impl Into<String>, sim_bytes: u64, payload: P) -> (FileId, f64) {
        let mut inner = self.locked();
        let id = FileId(inner.next_id);
        inner.next_id += 1;
        inner
            .files
            .insert(id, StoredFile::new(name, sim_bytes, payload));
        inner.ledger.record_write(sim_bytes);
        (id, self.weights.write_cost(sim_bytes))
    }

    /// Read a file; returns the payload, its simulated size, and the cost of
    /// the read. Returns `None` for an unknown id — or for a corrupt file:
    /// checksums are verified on every read and corrupt data is never served.
    /// (Files only become corrupt through fault injection or
    /// [`SimFs::corrupt_file`], so the zero-fault path is unaffected.)
    pub fn read(&self, id: FileId) -> Option<(Arc<P>, u64, f64)> {
        let mut inner = self.locked();
        let file = inner.files.get(&id)?;
        if !file.verify() {
            return None;
        }
        let bytes = file.sim_bytes;
        let payload = Arc::clone(&file.payload);
        inner.ledger.record_read(bytes);
        Some((payload, bytes, self.weights.read_cost(bytes)))
    }

    /// Read a file through the fault injector.
    ///
    /// This is the fallible twin of [`SimFs::read`]: with fault injection
    /// disabled it behaves identically (same ledger charges, same cost) and
    /// consumes no random draws. With faults enabled an operation may fail
    /// transiently (file intact, nothing charged to the ledger), discover the
    /// file permanently lost (file removed; deletion is metadata-only, so no
    /// ledger charge either), or straggle (success plus `spike_secs`).
    pub fn try_read(&self, id: FileId) -> Result<IoOutcome<Arc<P>>, IoError> {
        self.drive_node_faults();
        let mut inner = self.locked();
        match inner.files.get(&id) {
            None => return Err(IoError::PermanentLoss(id)),
            // Corruption is sticky: a file that failed verification once
            // keeps failing, without consuming further fault draws.
            Some(f) if !f.verify() => return Err(IoError::Corrupt(id)),
            Some(_) => {}
        }
        // Cluster routing: failover to the first live replica is free
        // (metadata-only), an outage fails transient without consuming a
        // per-file draw, and total replica death removes the file.
        let serving = if let Some(cluster) = &self.cluster {
            match cluster.route(id) {
                Route::Live(n) => Some(n),
                Route::Outage => return Err(IoError::TransientRead(id)),
                Route::Lost => {
                    inner.files.remove(&id);
                    cluster.forget(id);
                    return Err(IoError::PermanentLoss(id));
                }
            }
        } else {
            None
        };
        let spike_secs = match self.faults.decide_read() {
            ReadFault::None => 0.0,
            ReadFault::Transient => return Err(IoError::TransientRead(id)),
            ReadFault::Permanent => {
                inner.files.remove(&id);
                return Err(IoError::PermanentLoss(id));
            }
            ReadFault::Corrupt => {
                if let Some(f) = inner.files.get_mut(&id) {
                    f.corrupt();
                }
                return Err(IoError::Corrupt(id));
            }
            ReadFault::Spike(secs) => secs,
        };
        let file = inner.files.get(&id).expect("checked above");
        let bytes = file.sim_bytes;
        let payload = Arc::clone(&file.payload);
        inner.ledger.record_read(bytes);
        let cost_secs = self.weights.read_cost(bytes);
        let spike_secs = self.shaped_spike_secs(id, serving, cost_secs, spike_secs);
        Ok(IoOutcome {
            value: payload,
            sim_bytes: bytes,
            cost_secs,
            spike_secs,
        })
    }

    /// Apply gray-failure shaping to a successful read: scale by the serving
    /// replica's latency multiplier, then hedge to the next live replica when
    /// the total exceeds the hedge threshold. Returns the final `spike_secs`
    /// (total latency minus base cost). Bit-identical passthrough when the
    /// serving node is healthy and no hedge fires — the multiplier `1.0`
    /// path performs no float arithmetic on `spike`.
    fn shaped_spike_secs(
        &self,
        id: FileId,
        serving: Option<NodeId>,
        base_secs: f64,
        spike: f64,
    ) -> f64 {
        let (Some(cluster), Some(node)) = (&self.cluster, serving) else {
            return spike;
        };
        let mut spike = spike;
        let mult = cluster.latency_multiplier(node);
        if mult > 1.0 {
            spike += base_secs * (mult - 1.0);
        }
        let hedge = *self.hedge.lock().unwrap_or_else(|e| e.into_inner());
        let Some(hedge) = hedge else { return spike };
        let primary_total = base_secs + spike;
        if primary_total <= hedge.threshold_secs {
            return spike;
        }
        // Next live replica in failover order (the serving node is the
        // first); no replica, no hedge.
        let Some(replica) = cluster.placement(id).and_then(|nodes| {
            nodes
                .into_iter()
                .find(|&n| n != node && cluster.node_state(n) == Some(NodeState::Up))
        }) else {
            return spike;
        };
        // The hedge launches at the threshold and costs the same base read
        // scaled by the *replica's* multiplier — no extra random draws, so
        // "faster" is a pure function of cluster state.
        let replica_total = hedge.threshold_secs + base_secs * cluster.latency_multiplier(replica);
        {
            let mut tr = self.io_trace.lock().unwrap_or_else(|e| e.into_inner());
            if tr.enabled {
                tr.hedges.push(HedgeTrace {
                    file: id,
                    primary: node,
                    replica,
                    primary_secs: primary_total,
                    replica_secs: replica_total,
                    threshold_secs: hedge.threshold_secs,
                    winner_replica: replica_total < primary_total,
                });
            }
        }
        let mut hs = self.hedge_stats.lock().unwrap_or_else(|e| e.into_inner());
        hs.issued += 1;
        if replica_total < primary_total {
            // Hedge won: the primary is cancelled at the winner's finish
            // line; everything it burned until then is wasted work.
            hs.won += 1;
            hs.extra_secs += replica_total;
            replica_total - base_secs
        } else {
            // Primary won: the hedge is cancelled after running from the
            // threshold to the primary's finish. Latency is untouched —
            // the primary's path stays bit-identical to hedging off.
            hs.cancelled += 1;
            hs.extra_secs += primary_total - hedge.threshold_secs;
            spike
        }
    }

    /// Write a new file through the fault injector.
    ///
    /// The fallible twin of [`SimFs::create`]: identical when fault injection
    /// is disabled. A transient write failure persists nothing and charges
    /// nothing; the caller may retry.
    pub fn try_create(
        &self,
        name: impl Into<String>,
        sim_bytes: u64,
        payload: P,
    ) -> Result<IoOutcome<FileId>, IoError> {
        self.drive_node_faults();
        self.faulted_create(name, sim_bytes, payload)
    }

    /// Write a new file onto specific cluster nodes. Behaves like
    /// [`SimFs::try_create`], but fails transiently when *every* target node
    /// is unavailable (writes to a partially-down placement succeed: the
    /// live nodes take the data and re-replication is implied, metadata-only,
    /// when the others return). On success the file's placement is recorded.
    pub fn try_create_placed(
        &self,
        name: impl Into<String>,
        sim_bytes: u64,
        payload: P,
        nodes: &[NodeId],
    ) -> Result<IoOutcome<FileId>, IoError> {
        self.drive_node_faults();
        if let Some(cluster) = &self.cluster {
            if !nodes.is_empty()
                && nodes
                    .iter()
                    .all(|&n| cluster.node_state(n) != Some(NodeState::Up))
            {
                return Err(IoError::TransientWrite);
            }
        }
        let out = self.faulted_create(name, sim_bytes, payload)?;
        if let Some(cluster) = &self.cluster {
            cluster.place(out.value, nodes);
        }
        Ok(out)
    }

    /// The shared tail of the fallible creates: one write draw, then the
    /// infallible create.
    fn faulted_create(
        &self,
        name: impl Into<String>,
        sim_bytes: u64,
        payload: P,
    ) -> Result<IoOutcome<FileId>, IoError> {
        let spike_secs = match self.faults.decide_write() {
            WriteFault::None => 0.0,
            WriteFault::Transient => return Err(IoError::TransientWrite),
            WriteFault::Spike(secs) => secs,
        };
        let (id, cost_secs) = self.create(name, sim_bytes, payload);
        Ok(IoOutcome {
            value: id,
            sim_bytes,
            cost_secs,
            spike_secs,
        })
    }

    /// Advance the node-fault machinery by one consulted operation: tick
    /// pending repair countdowns, then let the injector fire a node event.
    /// Zero draws and zero work unless a cluster is attached *and* a node
    /// rate is configured.
    fn drive_node_faults(&self) {
        let Some(cluster) = &self.cluster else { return };
        let cfg = self.faults.config();
        if !cfg.node_enabled() {
            return;
        }
        cluster.tick_repairs();
        match self.faults.decide_node(cluster.num_nodes()) {
            NodeFault::None => {}
            NodeFault::Down(i) => {
                cluster.set_node_down_for(NodeId(i), cfg.node_repair_ops.max(1));
            }
            NodeFault::Kill(i) => {
                cluster.kill_node(NodeId(i));
            }
            NodeFault::Slow(i) => {
                cluster.set_node_slow_for(
                    NodeId(i),
                    cfg.node_slow_factor,
                    cfg.node_slow_ops.max(1),
                );
            }
        }
    }

    /// Record where a file lives (idempotent; no-op without a cluster).
    /// Recovery uses this to restore the cluster map from journal records.
    pub fn place(&self, id: FileId, nodes: &[NodeId]) {
        if let Some(cluster) = &self.cluster {
            cluster.place(id, nodes);
        }
    }

    /// Whether every replica of the file is currently unavailable. A
    /// metadata probe — no draws, no ledger charge — so planners and retry
    /// layers can route around outages deterministically. Always `false`
    /// without a cluster.
    pub fn outage_blocked(&self, id: FileId) -> bool {
        self.cluster.as_ref().is_some_and(|c| c.outage_blocked(id))
    }

    /// Take a node down (temporary outage). Returns whether the state
    /// changed. No-op without a cluster.
    pub fn set_node_down(&self, node: NodeId) -> bool {
        self.cluster.as_ref().is_some_and(|c| c.set_node_down(node))
    }

    /// Restore a down node. Returns whether the state changed.
    pub fn set_node_up(&self, node: NodeId) -> bool {
        self.cluster.as_ref().is_some_and(|c| c.set_node_up(node))
    }

    /// Permanently kill a node. Returns whether the state changed.
    pub fn kill_node(&self, node: NodeId) -> bool {
        self.cluster.as_ref().is_some_and(|c| c.kill_node(node))
    }

    /// Open (or widen) a gray-failure window on a node: reads it serves cost
    /// `multiplier ×` their base seconds until cleared. `multiplier <= 1.0`
    /// clears the window. Returns whether a new window opened. No-op
    /// without a cluster.
    pub fn set_node_slow(&self, node: NodeId, multiplier: f64) -> bool {
        self.cluster
            .as_ref()
            .is_some_and(|c| c.set_node_slow(node, multiplier))
    }

    /// Clear a node's gray-failure window. Returns whether one was open.
    pub fn clear_node_slow(&self, node: NodeId) -> bool {
        self.cluster
            .as_ref()
            .is_some_and(|c| c.clear_node_slow(node))
    }

    /// Install (or remove, with `None`) the hedged-read policy. Hedging only
    /// has an effect on a cluster-attached file system with replicated
    /// placements.
    pub fn set_hedge(&self, hedge: Option<HedgeConfig>) {
        *self.hedge.lock().unwrap_or_else(|e| e.into_inner()) = hedge;
    }

    /// The hedged-read policy in force, if any.
    pub fn hedge_config(&self) -> Option<HedgeConfig> {
        *self.hedge.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Enable or disable the drainable I/O trace (per-race hedge details).
    /// Off by default; enabling it records metadata only and never changes
    /// an outcome, a cost, or a random draw.
    pub fn set_io_trace(&self, enabled: bool) {
        let mut tr = self.io_trace.lock().unwrap_or_else(|e| e.into_inner());
        tr.enabled = enabled;
        if !enabled {
            tr.hedges.clear();
        }
    }

    /// True when the drainable I/O trace is recording.
    pub fn io_trace_enabled(&self) -> bool {
        self.io_trace
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .enabled
    }

    /// Drain the hedge races recorded since the last drain (empty unless
    /// [`SimFs::set_io_trace`] enabled tracing).
    pub fn drain_hedge_traces(&self) -> Vec<HedgeTrace> {
        std::mem::take(
            &mut self
                .io_trace
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .hedges,
        )
    }

    /// Simulated seconds of cancelled (wasted) work across all hedged reads:
    /// the loser's burn, charged honestly but off the latency path.
    pub fn hedge_extra_secs(&self) -> f64 {
        self.hedge_stats
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .extra_secs
    }

    /// Snapshot of the faults injected so far; with a cluster attached the
    /// node-transition counters (manual and injected alike) are merged in,
    /// as are the hedged-read counters.
    pub fn fault_stats(&self) -> FaultStats {
        let mut stats = self.faults.stats();
        if let Some(cluster) = &self.cluster {
            let n = cluster.stats();
            stats.node_downs = n.node_downs;
            stats.node_ups = n.node_ups;
            stats.node_kills = n.node_kills;
            stats.node_slows = n.node_slows;
        }
        let hs = *self.hedge_stats.lock().unwrap_or_else(|e| e.into_inner());
        stats.hedges_issued = hs.issued;
        stats.hedges_won = hs.won;
        stats.hedges_cancelled = hs.cancelled;
        stats
    }

    /// Look at a file's metadata without charging a read.
    pub fn stat(&self, id: FileId) -> Option<(String, u64)> {
        let inner = self.locked();
        inner.files.get(&id).map(|f| (f.name.clone(), f.sim_bytes))
    }

    /// Verify a file's checksum without charging a read (an fsck probe).
    /// Returns `None` for an unknown id.
    pub fn verify(&self, id: FileId) -> Option<bool> {
        let inner = self.locked();
        inner.files.get(&id).map(StoredFile::verify)
    }

    /// Corrupt a file in place: payload intact, checksum mismatch. Every
    /// subsequent read fails until the file is deleted. Returns whether the
    /// file existed. Deterministic corruption hook for crash/fsck tests; the
    /// seeded path is [`FaultConfig::with_corruption`].
    ///
    /// [`FaultConfig::with_corruption`]: crate::fault::FaultConfig::with_corruption
    pub fn corrupt_file(&self, id: FileId) -> bool {
        let mut inner = self.locked();
        match inner.files.get_mut(&id) {
            Some(f) => {
                f.corrupt();
                true
            }
            None => false,
        }
    }

    /// Delete a file (eviction). Returns the freed simulated bytes and the
    /// simulated cost of the delete (`CostWeights::wdelete`, zero by default
    /// to match HDFS metadata-only semantics), or `None` if absent.
    pub fn delete_costed(&self, id: FileId) -> Option<(u64, f64)> {
        let mut inner = self.locked();
        let file = inner.files.remove(&id)?;
        inner.ledger.record_delete();
        if let Some(cluster) = &self.cluster {
            cluster.forget(id);
        }
        Some((file.sim_bytes, self.weights.delete_cost()))
    }

    /// Delete a file, discarding the delete cost. See [`SimFs::delete_costed`].
    pub fn delete(&self, id: FileId) -> Option<u64> {
        self.delete_costed(id).map(|(bytes, _)| bytes)
    }

    /// Number of map tasks a scan of the given files launches.
    pub fn scan_tasks<I: IntoIterator<Item = FileId>>(&self, ids: I) -> u64 {
        let inner = self.locked();
        let sizes: Vec<u64> = ids
            .into_iter()
            .filter_map(|id| inner.files.get(&id).map(|f| f.sim_bytes))
            .collect();
        self.block.tasks_for_files(sizes)
    }

    /// Snapshot of the accumulated ledger.
    pub fn ledger(&self) -> CostLedger {
        self.locked().ledger
    }

    /// Number of live files.
    pub fn file_count(&self) -> usize {
        self.locked().files.len()
    }

    /// Ids of all live files, in id order (an fsck directory listing).
    pub fn file_ids(&self) -> Vec<FileId> {
        self.locked().files.keys().copied().collect()
    }

    /// Total simulated bytes across live files.
    pub fn total_bytes(&self) -> u64 {
        self.locked().files.values().map(|f| f.sim_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fs() -> SimFs<Vec<u32>> {
        SimFs::new(BlockConfig::new(100), CostWeights::default())
    }

    #[test]
    fn create_read_roundtrip() {
        let fs = fs();
        let (id, wcost) = fs.create("frag", 250, vec![1, 2, 3]);
        assert!(wcost > 0.0);
        let (payload, bytes, rcost) = fs.read(id).expect("file exists");
        assert_eq!(*payload, vec![1, 2, 3]);
        assert_eq!(bytes, 250);
        assert!(rcost > 0.0);
        assert!(wcost > rcost, "writes are more expensive than reads");
    }

    #[test]
    fn ids_are_unique_and_monotonic() {
        let fs = fs();
        let (a, _) = fs.create("a", 1, vec![]);
        let (b, _) = fs.create("b", 1, vec![]);
        assert!(b > a);
    }

    #[test]
    fn delete_frees_and_read_fails_after() {
        let fs = fs();
        let (id, _) = fs.create("x", 500, vec![9]);
        assert_eq!(fs.total_bytes(), 500);
        assert_eq!(fs.delete(id), Some(500));
        assert_eq!(fs.total_bytes(), 0);
        assert!(fs.read(id).is_none());
        assert!(fs.delete(id).is_none());
    }

    #[test]
    fn ledger_tracks_io() {
        let fs = fs();
        let (id, _) = fs.create("x", 500, vec![9]);
        fs.read(id);
        fs.read(id);
        let l = fs.ledger();
        assert_eq!(l.write_bytes, 500);
        assert_eq!(l.read_bytes, 1000);
        assert_eq!(l.files_read, 2);
    }

    #[test]
    fn scan_tasks_counts_blocks_per_file() {
        let fs = fs();
        let (a, _) = fs.create("a", 250, vec![]); // 3 blocks of 100
        let (b, _) = fs.create("b", 90, vec![]); // 1 block
        assert_eq!(fs.scan_tasks([a, b]), 4);
        assert_eq!(fs.scan_tasks([a]), 3);
        // unknown ids are skipped
        assert_eq!(fs.scan_tasks([FileId(999)]), 0);
    }

    #[test]
    fn stat_does_not_charge_read() {
        let fs = fs();
        let (id, _) = fs.create("x", 500, vec![]);
        let before = fs.ledger();
        assert_eq!(fs.stat(id), Some(("x".to_string(), 500)));
        assert_eq!(fs.ledger().read_bytes, before.read_bytes);
    }

    use crate::fault::{FaultConfig, FaultInjector, IoError};

    fn faulty_fs(cfg: FaultConfig) -> SimFs<Vec<u32>> {
        SimFs::with_faults(
            BlockConfig::new(100),
            CostWeights::default(),
            FaultInjector::new(cfg),
        )
    }

    #[test]
    fn try_read_without_faults_matches_read() {
        let fs = fs();
        let (id, _) = fs.create("frag", 250, vec![1, 2, 3]);
        let out = fs.try_read(id).expect("no faults configured");
        assert_eq!(*out.value, vec![1, 2, 3]);
        assert_eq!(out.sim_bytes, 250);
        assert_eq!(out.spike_secs, 0.0);
        let (_, bytes, cost) = fs.read(id).expect("file exists");
        assert_eq!(out.sim_bytes, bytes);
        assert_eq!(out.cost_secs.to_bits(), cost.to_bits());
        assert_eq!(fs.ledger().files_read, 2, "both paths charge the ledger");
    }

    #[test]
    fn try_read_unknown_id_is_permanent() {
        let fs = fs();
        assert_eq!(
            fs.try_read(FileId(99)).unwrap_err(),
            IoError::PermanentLoss(FileId(99))
        );
    }

    #[test]
    fn failed_read_records_nothing_in_ledger() {
        // Regression: a transient failure must not charge read bytes.
        let fs = faulty_fs(FaultConfig::seeded(1).with_transient_reads(1.0));
        let (id, _) = fs.create("frag", 250, vec![7]);
        let before = fs.ledger();
        assert_eq!(fs.try_read(id).unwrap_err(), IoError::TransientRead(id));
        assert_eq!(fs.ledger(), before, "failed read must not touch the ledger");
        // The file is intact: an infallible read (fast path) still works.
        assert!(fs.read(id).is_some());
    }

    #[test]
    fn permanent_loss_removes_file_without_ledger_delete() {
        let fs = faulty_fs(FaultConfig::seeded(1).with_permanent_loss(1.0));
        let (id, _) = fs.create("frag", 250, vec![7]);
        let before = fs.ledger();
        assert_eq!(fs.try_read(id).unwrap_err(), IoError::PermanentLoss(id));
        assert_eq!(fs.total_bytes(), 0, "lost file no longer counts");
        let after = fs.ledger();
        assert_eq!(after.read_bytes, before.read_bytes);
        assert_eq!(
            after.files_deleted, before.files_deleted,
            "loss is not an eviction"
        );
        assert_eq!(fs.fault_stats().permanent_losses, 1);
    }

    #[test]
    fn latency_spike_charges_extra_secs_on_success() {
        let fs = faulty_fs(FaultConfig::seeded(1).with_latency_spikes(1.0, 2.5));
        let (id, _) = fs.create("frag", 250, vec![7]);
        let out = fs.try_read(id).expect("spikes still succeed");
        assert_eq!(out.spike_secs, 2.5);
        assert_eq!(fs.ledger().files_read, 1, "spiked read still charges");
    }

    #[test]
    fn transient_create_persists_nothing() {
        let fs = faulty_fs(FaultConfig::seeded(1).with_transient_writes(1.0));
        let before = fs.ledger();
        assert_eq!(
            fs.try_create("frag", 250, vec![7]).unwrap_err(),
            IoError::TransientWrite
        );
        assert_eq!(fs.file_count(), 0);
        assert_eq!(
            fs.ledger(),
            before,
            "failed write must not touch the ledger"
        );
        // The infallible path bypasses the injector entirely.
        let (id, _) = fs.create("frag", 250, vec![7]);
        assert!(fs.stat(id).is_some());
    }

    #[test]
    fn corrupt_file_is_never_served() {
        let fs = fs();
        let (id, _) = fs.create("frag", 250, vec![7]);
        assert_eq!(fs.verify(id), Some(true));
        assert!(fs.corrupt_file(id));
        assert_eq!(fs.verify(id), Some(false));
        let before = fs.ledger();
        assert!(
            fs.read(id).is_none(),
            "infallible read refuses corrupt data"
        );
        assert_eq!(fs.try_read(id).unwrap_err(), IoError::Corrupt(id));
        assert_eq!(fs.ledger(), before, "corrupt reads charge nothing");
        // The file still exists and still counts against storage: detection
        // is the caller's cue to quarantine, not an implicit delete.
        assert_eq!(fs.total_bytes(), 250);
        assert_eq!(fs.delete(id), Some(250));
    }

    #[test]
    fn injected_corruption_is_sticky() {
        let fs = faulty_fs(FaultConfig::seeded(5).with_corruption(1.0));
        let (id, _) = fs.create("frag", 250, vec![7]);
        assert_eq!(fs.try_read(id).unwrap_err(), IoError::Corrupt(id));
        assert_eq!(fs.fault_stats().corruptions, 1);
        // Subsequent reads keep failing without consuming more draws.
        assert_eq!(fs.try_read(id).unwrap_err(), IoError::Corrupt(id));
        assert_eq!(fs.fault_stats().corruptions, 1);
        assert_eq!(fs.verify(id), Some(false));
    }

    #[test]
    fn delete_costed_charges_wdelete() {
        let weights = CostWeights {
            wdelete: 0.25,
            ..CostWeights::default()
        };
        let costed: SimFs<Vec<u32>> = SimFs::new(BlockConfig::new(100), weights);
        let (id, _) = costed.create("x", 500, vec![]);
        assert_eq!(costed.delete_costed(id), Some((500, 0.25)));
        assert_eq!(costed.delete_costed(id), None);
        // Default weights keep deletion free (metadata-only HDFS semantics).
        let free = fs();
        let (id, _) = free.create("x", 500, vec![]);
        assert_eq!(free.delete_costed(id), Some((500, 0.0)));
    }

    #[test]
    fn file_ids_lists_live_files_in_order() {
        let fs = fs();
        let (a, _) = fs.create("a", 1, vec![]);
        let (b, _) = fs.create("b", 1, vec![]);
        let (c, _) = fs.create("c", 1, vec![]);
        fs.delete(b);
        assert_eq!(fs.file_ids(), vec![a, c]);
    }

    use crate::node::{NodeConfig, NodeId, NodeSet};

    fn sharded(nodes: u32, replication: u32) -> SimFs<Vec<u32>> {
        SimFs::with_cluster(
            BlockConfig::new(100),
            CostWeights::default(),
            FaultInjector::disabled(),
            NodeSet::new(NodeConfig::new(nodes, replication)),
        )
    }

    #[test]
    fn sharded_read_fails_over_to_replica_at_identical_cost() {
        let fs = sharded(3, 2);
        let nodes = [NodeId(0), NodeId(1)];
        let out = fs
            .try_create_placed("frag", 250, vec![7], &nodes)
            .expect("no faults");
        let id = out.value;
        let healthy = fs.try_read(id).expect("all nodes up");
        assert!(fs.set_node_down(NodeId(0)));
        let failover = fs.try_read(id).expect("replica on node1 serves");
        assert_eq!(
            healthy.cost_secs.to_bits(),
            failover.cost_secs.to_bits(),
            "failover is metadata-only: same cost either replica"
        );
        assert_eq!(*failover.value, vec![7]);
    }

    #[test]
    fn outage_blocks_unreplicated_file_as_transient_then_readmits() {
        let fs = sharded(3, 1);
        let out = fs
            .try_create_placed("frag", 250, vec![7], &[NodeId(2)])
            .expect("no faults");
        let id = out.value;
        assert!(fs.set_node_down(NodeId(2)));
        assert!(fs.outage_blocked(id));
        let before = fs.ledger();
        assert_eq!(fs.try_read(id).unwrap_err(), IoError::TransientRead(id));
        assert_eq!(fs.ledger(), before, "blocked read charges nothing");
        assert_eq!(fs.total_bytes(), 250, "file survives the outage");
        assert!(fs.set_node_up(NodeId(2)));
        assert!(!fs.outage_blocked(id));
        assert!(fs.try_read(id).is_ok());
        let s = fs.fault_stats();
        assert_eq!((s.node_downs, s.node_ups), (1, 1));
    }

    #[test]
    fn dead_node_converts_unreplicated_file_to_permanent_loss() {
        let fs = sharded(2, 1);
        let out = fs
            .try_create_placed("frag", 250, vec![7], &[NodeId(1)])
            .expect("no faults");
        let id = out.value;
        assert!(fs.kill_node(NodeId(1)));
        assert_eq!(fs.try_read(id).unwrap_err(), IoError::PermanentLoss(id));
        assert_eq!(fs.total_bytes(), 0, "lost file no longer counts");
        assert_eq!(fs.fault_stats().node_kills, 1);
    }

    #[test]
    fn write_to_fully_down_placement_is_transient() {
        let fs = sharded(3, 2);
        fs.set_node_down(NodeId(0));
        fs.set_node_down(NodeId(1));
        let nodes = [NodeId(0), NodeId(1)];
        assert_eq!(
            fs.try_create_placed("frag", 100, vec![], &nodes)
                .unwrap_err(),
            IoError::TransientWrite
        );
        assert_eq!(fs.file_count(), 0);
        // One live target suffices; the down replica is re-replicated later
        // (metadata-only), so placement still records both nodes.
        fs.set_node_up(NodeId(1));
        let out = fs
            .try_create_placed("frag", 100, vec![], &nodes)
            .expect("node1 is live");
        assert_eq!(
            fs.cluster().and_then(|c| c.placement(out.value)),
            Some(nodes.to_vec())
        );
    }

    #[test]
    fn injected_node_outage_heals_after_repair_ops() {
        let cfg = FaultConfig::seeded(11).with_node_downs(0.3, 2);
        let fs: SimFs<Vec<u32>> = SimFs::with_cluster(
            BlockConfig::new(100),
            CostWeights::default(),
            FaultInjector::new(cfg),
            NodeSet::new(NodeConfig::new(1, 1)),
        );
        let (id, _) = fs.create("frag", 100, vec![1]);
        fs.place(id, &[NodeId(0)]);
        // Drive consulted ops: the seeded stream must eventually down the
        // only node (blocking the read as transient) and, two consulted ops
        // after each down, the repair countdown must restore it (letting a
        // read succeed again). Both transitions are asserted via the merged
        // fault counters, which only move through the injector here.
        let mut blocked = 0;
        let mut served = 0;
        for _ in 0..64 {
            match fs.try_read(id) {
                Ok(_) => served += 1,
                Err(IoError::TransientRead(_)) => blocked += 1,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        let s = fs.fault_stats();
        assert!(s.node_downs >= 1, "seeded stream must down the node");
        assert!(s.node_ups >= 1, "repair countdown must restore the node");
        assert!(blocked >= 1 && served >= 1, "reads both block and heal");
    }

    #[test]
    fn slow_replica_scales_read_latency_not_base_cost() {
        let fs = sharded(3, 1);
        let out = fs
            .try_create_placed("frag", 250, vec![7], &[NodeId(1)])
            .expect("no faults");
        let id = out.value;
        let healthy = fs.try_read(id).expect("up");
        assert_eq!(healthy.spike_secs, 0.0);
        assert!(fs.set_node_slow(NodeId(1), 4.0));
        let slow = fs.try_read(id).expect("slow is not down");
        assert_eq!(
            slow.cost_secs.to_bits(),
            healthy.cost_secs.to_bits(),
            "base cost untouched; slowness is a latency effect"
        );
        assert_eq!(slow.spike_secs, healthy.cost_secs * 3.0, "4x total");
        assert_eq!(fs.fault_stats().node_slows, 1);
        assert!(fs.clear_node_slow(NodeId(1)));
        let again = fs.try_read(id).expect("healthy again");
        assert_eq!(again.spike_secs, 0.0);
        // Other nodes' windows don't touch this file.
        fs.set_node_slow(NodeId(0), 9.0);
        assert_eq!(fs.try_read(id).expect("up").spike_secs, 0.0);
    }

    #[test]
    fn hedged_read_takes_faster_replica_and_counts_waste() {
        let fs = sharded(3, 2);
        let nodes = [NodeId(0), NodeId(1)];
        let out = fs
            .try_create_placed("frag", 250, vec![7], &nodes)
            .expect("no faults");
        let id = out.value;
        let base = fs.try_read(id).expect("healthy").cost_secs;

        // Slow primary, healthy replica, threshold below the slow total:
        // the hedge wins and caps latency at threshold + replica cost.
        fs.set_node_slow(NodeId(0), 8.0);
        let threshold = base * 2.0;
        fs.set_hedge(Some(HedgeConfig::after_secs(threshold)));
        let hedged = fs.try_read(id).expect("hedge serves");
        // Mirror the implementation's arithmetic exactly for bit equality.
        let replica_total = threshold + base * 1.0;
        let expect_spike = replica_total - base;
        assert_eq!(hedged.cost_secs.to_bits(), base.to_bits());
        assert_eq!(hedged.spike_secs.to_bits(), expect_spike.to_bits());
        assert!(
            hedged.spike_secs < base * 7.0,
            "hedging beats the slow primary"
        );
        let s = fs.fault_stats();
        assert_eq!(
            (s.hedges_issued, s.hedges_won, s.hedges_cancelled),
            (1, 1, 0)
        );
        assert_eq!(
            fs.hedge_extra_secs().to_bits(),
            replica_total.to_bits(),
            "cancelled primary burned until the winner finished"
        );

        // Slow replica too (worse than the primary): the hedge is issued
        // but cancelled, and latency stays the primary's, bit-identical to
        // hedging off.
        fs.set_node_slow(NodeId(1), 16.0);
        let cancelled = fs.try_read(id).expect("primary serves");
        assert_eq!(cancelled.spike_secs.to_bits(), (base * 7.0).to_bits());
        let s = fs.fault_stats();
        assert_eq!(
            (s.hedges_issued, s.hedges_won, s.hedges_cancelled),
            (2, 1, 1)
        );

        // Below the threshold: no hedge at all.
        fs.clear_node_slow(NodeId(0));
        fs.clear_node_slow(NodeId(1));
        let quiet = fs.try_read(id).expect("healthy");
        assert_eq!(quiet.spike_secs, 0.0);
        assert_eq!(fs.fault_stats().hedges_issued, 2);

        // Hedging off again: bit-identical to the plain path.
        fs.set_hedge(None);
        assert!(fs.hedge_config().is_none());
    }

    #[test]
    fn io_trace_records_hedge_races_only_when_enabled() {
        let fs = sharded(3, 2);
        let nodes = [NodeId(0), NodeId(1)];
        let out = fs
            .try_create_placed("frag", 250, vec![7], &nodes)
            .expect("no faults");
        let id = out.value;
        let base = fs.try_read(id).expect("healthy").cost_secs;
        fs.set_node_slow(NodeId(0), 8.0);
        let threshold = base * 2.0;
        fs.set_hedge(Some(HedgeConfig::after_secs(threshold)));

        // Trace off (the default): the hedge fires but records nothing.
        let untraced = fs.try_read(id).expect("hedge serves");
        assert!(fs.drain_hedge_traces().is_empty());

        // Trace on: the identical read records one race, bit-identical.
        fs.set_io_trace(true);
        assert!(fs.io_trace_enabled());
        let traced = fs.try_read(id).expect("hedge serves");
        assert_eq!(traced.spike_secs.to_bits(), untraced.spike_secs.to_bits());
        let races = fs.drain_hedge_traces();
        assert_eq!(races.len(), 1);
        let r = races[0];
        assert_eq!((r.file, r.primary, r.replica), (id, NodeId(0), NodeId(1)));
        assert!(r.winner_replica, "healthy replica beats the 8x primary");
        assert_eq!(r.threshold_secs.to_bits(), threshold.to_bits());
        assert_eq!(r.primary_secs.to_bits(), (base * 8.0).to_bits());
        assert_eq!(r.replica_secs.to_bits(), (threshold + base).to_bits());
        // Draining empties the buffer; disabling clears any residue.
        assert!(fs.drain_hedge_traces().is_empty());
        fs.try_read(id).expect("hedge serves");
        fs.set_io_trace(false);
        assert!(fs.drain_hedge_traces().is_empty());
    }

    #[test]
    fn hedge_without_live_replica_does_nothing() {
        let fs = sharded(2, 2);
        let nodes = [NodeId(0), NodeId(1)];
        let out = fs
            .try_create_placed("frag", 250, vec![7], &nodes)
            .expect("no faults");
        let id = out.value;
        let base = fs.try_read(id).expect("healthy").cost_secs;
        fs.set_hedge(Some(HedgeConfig::after_secs(base * 2.0)));
        fs.set_node_slow(NodeId(0), 8.0);
        fs.set_node_down(NodeId(1));
        let out = fs.try_read(id).expect("slow primary still serves");
        assert_eq!(
            out.spike_secs.to_bits(),
            (base * 7.0).to_bits(),
            "no live second replica: the slow primary runs to completion"
        );
        assert_eq!(fs.fault_stats().hedges_issued, 0);
        assert_eq!(fs.hedge_extra_secs(), 0.0);
    }

    #[test]
    fn unsharded_fs_ignores_cluster_apis() {
        let fs = fs();
        let (id, _) = fs.create("x", 10, vec![]);
        assert!(!fs.outage_blocked(id));
        assert!(!fs.set_node_down(NodeId(0)));
        assert!(!fs.set_node_up(NodeId(0)));
        assert!(!fs.kill_node(NodeId(0)));
        fs.place(id, &[NodeId(0)]);
        assert!(fs.cluster().is_none());
        assert!(fs.try_read(id).is_ok());
    }
}
