//! Block-size configuration and file→task math.

/// Default simulated block size. The paper's clusters use HDFS with 64–128 MB
/// blocks; we default to 128 MB of *simulated* bytes.
pub const DEFAULT_BLOCK_BYTES: u64 = 128 * 1024 * 1024;

/// Block-size configuration for the simulated file system.
///
/// Every stored file occupies an integral number of blocks and a scan of the
/// file launches one map task per block (the dominant Hadoop behaviour the
/// paper's cluster-utilization analysis relies on).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockConfig {
    /// Size of one block in simulated bytes. Must be nonzero.
    pub block_bytes: u64,
}

impl Default for BlockConfig {
    fn default() -> Self {
        Self {
            block_bytes: DEFAULT_BLOCK_BYTES,
        }
    }
}

impl BlockConfig {
    /// Create a configuration with the given block size.
    ///
    /// # Panics
    /// Panics if `block_bytes == 0`.
    pub fn new(block_bytes: u64) -> Self {
        assert!(block_bytes > 0, "block size must be nonzero");
        Self { block_bytes }
    }

    /// Number of blocks a file of `bytes` simulated bytes occupies.
    /// Empty files still occupy one block (they still cost a task to open,
    /// which is what makes many tiny fragments expensive).
    pub fn blocks_for(&self, bytes: u64) -> u64 {
        if bytes == 0 {
            1
        } else {
            bytes.div_ceil(self.block_bytes)
        }
    }

    /// Number of map tasks a scan over the given file sizes launches:
    /// one per block of each file.
    pub fn tasks_for_files<I: IntoIterator<Item = u64>>(&self, sizes: I) -> u64 {
        sizes.into_iter().map(|s| self.blocks_for(s)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_round_up() {
        let cfg = BlockConfig::new(100);
        assert_eq!(cfg.blocks_for(0), 1);
        assert_eq!(cfg.blocks_for(1), 1);
        assert_eq!(cfg.blocks_for(100), 1);
        assert_eq!(cfg.blocks_for(101), 2);
        assert_eq!(cfg.blocks_for(1000), 10);
    }

    #[test]
    fn tasks_sum_over_files() {
        let cfg = BlockConfig::new(100);
        assert_eq!(cfg.tasks_for_files([50, 150, 0]), 1 + 2 + 1);
        assert_eq!(cfg.tasks_for_files(std::iter::empty()), 0);
    }

    #[test]
    fn default_is_128mb() {
        assert_eq!(BlockConfig::default().block_bytes, 128 * 1024 * 1024);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_block_size_rejected() {
        let _ = BlockConfig::new(0);
    }

    #[test]
    fn many_small_files_cost_more_tasks_than_one_big_file() {
        // The small-file penalty behind the paper's E-60 result.
        let cfg = BlockConfig::new(128);
        let one_big = cfg.tasks_for_files([1280]);
        let many_small: u64 = cfg.tasks_for_files(std::iter::repeat_n(16u64, 80));
        assert_eq!(one_big, 10);
        assert_eq!(many_small, 80);
        assert!(many_small > one_big);
    }
}
