//! The sanctioned concurrency surface for the epoch handoff between
//! DeepSea's single writer and its snapshot readers.
//!
//! This module is deliberately tiny: one cell holding the latest published
//! `(epoch, Arc<T>)` pair. The writer replaces the pair after each committed
//! query; readers grab a cheap `Arc` clone and keep answering queries
//! against that frozen state for as long as they like — publication never
//! blocks on in-flight reads, and a reader never observes a half-updated
//! catalog.
//!
//! Layering note: `deepsea-lint` L1 forbids `std::thread` (and friends)
//! outside the storage crate precisely so that *this* is the only
//! synchronization primitive the upper layers build on; the simulated
//! scheduler in `deepsea-core::server` stays single-threaded and
//! deterministic, and the `real-threads` feature gate routes all cross-thread
//! state through an [`EpochCell`].

use std::sync::{Arc, RwLock};

/// A single-writer, multi-reader publication cell: the latest epoch of a
/// shared immutable value.
///
/// Readers pay one `RwLock` read acquisition and one `Arc` clone per load;
/// the returned value is then lock-free to use and stays valid after any
/// number of later publications (old epochs are freed when their last
/// reader drops them).
#[derive(Debug)]
pub struct EpochCell<T> {
    slot: RwLock<(u64, Arc<T>)>,
}

impl<T> EpochCell<T> {
    /// Create a cell publishing `value` as epoch 0.
    pub fn new(value: T) -> Self {
        Self {
            slot: RwLock::new((0, Arc::new(value))),
        }
    }

    /// Publish a new epoch. Returns the epoch number assigned (strictly
    /// monotonic, one per publication).
    pub fn publish(&self, value: T) -> u64 {
        let mut slot = self.slot.write().unwrap_or_else(|p| p.into_inner());
        slot.0 += 1;
        slot.1 = Arc::new(value);
        slot.0
    }

    /// Publish a new epoch with an explicit epoch number (e.g. the writer's
    /// committed-query count). Must be monotonically non-decreasing; this is
    /// asserted in debug builds.
    pub fn publish_at(&self, epoch: u64, value: T) {
        let mut slot = self.slot.write().unwrap_or_else(|p| p.into_inner());
        debug_assert!(epoch >= slot.0, "epochs must not go backwards");
        slot.0 = epoch;
        slot.1 = Arc::new(value);
    }

    /// Load the latest published `(epoch, value)`.
    pub fn load(&self) -> (u64, Arc<T>) {
        let slot = self.slot.read().unwrap_or_else(|p| p.into_inner());
        (slot.0, Arc::clone(&slot.1))
    }

    /// The current epoch number without touching the value.
    pub fn epoch(&self) -> u64 {
        self.slot.read().unwrap_or_else(|p| p.into_inner()).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_bumps_epoch_and_swaps_value() {
        let cell = EpochCell::new(10u64);
        assert_eq!(cell.load().0, 0);
        assert_eq!(*cell.load().1, 10);
        assert_eq!(cell.publish(11), 1);
        assert_eq!(cell.publish(12), 2);
        let (epoch, v) = cell.load();
        assert_eq!((epoch, *v), (2, 12));
    }

    #[test]
    fn old_epoch_stays_valid_after_publication() {
        let cell = EpochCell::new(vec![1, 2, 3]);
        let (e0, old) = cell.load();
        cell.publish(vec![4, 5]);
        // The reader's frozen state is untouched by the new epoch.
        assert_eq!(e0, 0);
        assert_eq!(*old, vec![1, 2, 3]);
        assert_eq!(*cell.load().1, vec![4, 5]);
    }

    #[test]
    fn publish_at_uses_caller_epoch() {
        let cell = EpochCell::new(0u8);
        cell.publish_at(7, 1);
        assert_eq!(cell.epoch(), 7);
        cell.publish_at(7, 2); // equal is allowed (idempotent republish)
        assert_eq!(*cell.load().1, 2);
    }

    #[test]
    fn cell_is_shareable_across_threads() {
        let cell = std::sync::Arc::new(EpochCell::new(0usize));
        std::thread::scope(|s| {
            let c = std::sync::Arc::clone(&cell);
            s.spawn(move || {
                for i in 1..=100 {
                    c.publish(i);
                }
            });
            let mut last = 0;
            for _ in 0..100 {
                let (epoch, v) = cell.load();
                // Epoch and value move together atomically.
                assert_eq!(epoch as usize, *v);
                assert!(epoch >= last, "epochs are monotonic");
                last = epoch;
            }
        });
        assert_eq!(cell.epoch(), 100);
    }
}
