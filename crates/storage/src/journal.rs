//! Append-only journal with monotonic LSNs, snapshots, and a crash latch.
//!
//! The journal is the durability substrate for DeepSea's catalog: every
//! catalog mutation is appended as a record at its commit point, and a
//! cold start rebuilds the catalog by loading the latest snapshot and
//! replaying the record suffix ([`Journal::replay`]).
//!
//! The journal is generic over the record type `R` and the snapshot type `S`
//! so the storage crate stays ignorant of catalog schemas. Like the file
//! system it is fault-injectable: appends may consult a [`FaultInjector`]
//! (write-side modes only — a transient append failure persists nothing and
//! may be retried), and a **crash latch** can be armed at any LSN so a
//! simulated crash lands exactly *between* two records: the armed append
//! unwinds with a [`SimulatedCrash`] payload before anything is written,
//! modeling a process killed mid-commit with a torn journal tail.
//!
//! A journal with fault injection disabled and the latch unarmed consumes no
//! random draws and never fails, so journaling is bit-transparent to the
//! simulated workload.

use std::fmt;
// deepsea-lint: allow(lock_discipline) -- journal writer cell; append serialization is the point
use std::sync::{Mutex, MutexGuard};

use crate::fault::{FaultInjector, IoError, WriteFault};

/// Log sequence number: the position of a record in the journal. Strictly
/// monotonic; never reused, even after snapshot truncation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Lsn(pub u64);

impl fmt::Display for Lsn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lsn#{}", self.0)
    }
}

/// Panic payload thrown by an armed crash latch. The harness catches this
/// with `std::panic::catch_unwind`, downcasts, and drives recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimulatedCrash {
    /// The LSN the crashed append *would* have written. Everything below it
    /// is durable; the record at this LSN and everything after is lost.
    pub lsn: Lsn,
}

/// Counters describing journal activity, for harness assertions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JournalStats {
    /// Records successfully appended.
    pub appends: u64,
    /// Appends that failed transiently (nothing persisted).
    pub transient_failures: u64,
    /// Snapshots installed.
    pub snapshots: u64,
    /// Records truncated by snapshot installation.
    pub truncated_records: u64,
    /// Simulated crashes fired by the latch.
    pub crashes: u64,
}

/// What [`Journal::replay`] returns: the latest snapshot (with the LSN it
/// covers up to, exclusive) and the retained record suffix in LSN order.
pub type ReplayedLog<R, S> = (Option<(Lsn, S)>, Vec<(Lsn, R)>);

struct JournalState<R, S> {
    /// Record suffix since the last snapshot, in LSN order.
    records: Vec<(Lsn, R)>,
    /// LSN the next append will receive.
    next_lsn: u64,
    /// Latest snapshot and the LSN it covers up to (exclusive): replay
    /// starts from the snapshot state and applies records with
    /// `lsn >= covered`.
    snapshot: Option<(Lsn, S)>,
    /// Armed crash latch: the append that would write this LSN panics
    /// instead. One-shot — disarmed when it fires, so recovery can journal.
    crash_at: Option<u64>,
    stats: JournalStats,
}

/// An append-only, snapshot-truncated log of `R` records with `S` snapshots.
///
/// Thread-safe with interior mutability, mirroring [`SimFs`]: the driver
/// holds it behind an `Arc` and appends through a shared reference.
///
/// [`SimFs`]: crate::fs::SimFs
pub struct Journal<R, S> {
    state: Mutex<JournalState<R, S>>,
    faults: FaultInjector,
}

impl<R, S> Default for Journal<R, S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<R, S> Journal<R, S> {
    /// An empty journal with no fault injection and no armed crash.
    pub fn new() -> Self {
        Self::with_faults(FaultInjector::disabled())
    }

    /// An empty journal whose appends consult the given fault injector
    /// (write-side modes only). Keep this injector separate from the file
    /// system's so journal traffic does not perturb FS fault schedules.
    pub fn with_faults(faults: FaultInjector) -> Self {
        Self {
            state: Mutex::new(JournalState {
                records: Vec::new(),
                next_lsn: 0,
                snapshot: None,
                crash_at: None,
                stats: JournalStats::default(),
            }),
            faults,
        }
    }

    /// Lock the interior state. Poisoning is ignored (parking_lot semantics):
    /// a simulated crash unwinds through this mutex by design, and every
    /// mutation is a single push/assign, so the state stays consistent.
    fn locked(&self) -> MutexGuard<'_, JournalState<R, S>> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Fire the crash latch if it is armed for the LSN about to be written.
    fn check_crash(st: &mut JournalState<R, S>) {
        if let Some(at) = st.crash_at {
            if st.next_lsn >= at {
                st.stats.crashes += 1;
                st.crash_at = None;
                let lsn = Lsn(st.next_lsn);
                std::panic::panic_any(SimulatedCrash { lsn });
            }
        }
    }

    /// Append a record through the fault injector.
    ///
    /// The returned LSN is the record's durable position. A transient
    /// failure persists nothing (the LSN is not consumed) and may be
    /// retried. If the crash latch is armed for this LSN the call panics
    /// with [`SimulatedCrash`] *before* writing anything.
    pub fn append(&self, record: R) -> Result<Lsn, IoError> {
        let mut st = self.locked();
        Self::check_crash(&mut st);
        match self.faults.decide_write() {
            WriteFault::Transient => {
                st.stats.transient_failures += 1;
                return Err(IoError::TransientWrite);
            }
            WriteFault::None | WriteFault::Spike(_) => {}
        }
        let lsn = Lsn(st.next_lsn);
        st.next_lsn += 1;
        st.records.push((lsn, record));
        st.stats.appends += 1;
        Ok(lsn)
    }

    /// Append a record bypassing the fault injector (the forced write a
    /// caller falls back to once its retry budget is exhausted). The crash
    /// latch still applies: a crash cannot be outrun by retrying.
    pub fn append_infallible(&self, record: R) -> Lsn {
        let mut st = self.locked();
        Self::check_crash(&mut st);
        let lsn = Lsn(st.next_lsn);
        st.next_lsn += 1;
        st.records.push((lsn, record));
        st.stats.appends += 1;
        lsn
    }

    /// Arm the crash latch: the append that would write `lsn` panics with
    /// [`SimulatedCrash`] instead. If `lsn` has already been written, the
    /// very next append fires. One-shot; re-arm for repeated crashes.
    pub fn arm_crash(&self, lsn: Lsn) {
        self.locked().crash_at = Some(lsn.0);
    }

    /// Whether the crash latch is currently armed.
    pub fn crash_armed(&self) -> bool {
        self.locked().crash_at.is_some()
    }

    /// The LSN the next successful append will receive.
    pub fn next_lsn(&self) -> Lsn {
        Lsn(self.locked().next_lsn)
    }

    /// Number of records currently retained (since the last snapshot).
    pub fn record_count(&self) -> usize {
        self.locked().records.len()
    }

    /// Counters describing journal activity so far.
    pub fn stats(&self) -> JournalStats {
        self.locked().stats
    }

    /// Install a snapshot covering every record written so far and truncate
    /// them. Returns the LSN the snapshot covers up to (exclusive) — i.e.
    /// replay applies only records at or above it. Snapshot installation is
    /// atomic and free (no fault draw): it models an out-of-band checkpoint
    /// writer, not the append path.
    pub fn install_snapshot(&self, snapshot: S) -> Lsn {
        let mut st = self.locked();
        let covered = Lsn(st.next_lsn);
        st.stats.truncated_records += st.records.len() as u64;
        st.stats.snapshots += 1;
        st.records.clear();
        st.snapshot = Some((covered, snapshot));
        covered
    }
}

impl<R: Clone, S: Clone> Journal<R, S> {
    /// Everything needed to rebuild state: the latest snapshot (with the LSN
    /// it covers up to) and the retained record suffix in LSN order.
    /// Read-only — replaying twice observes identical contents, which is
    /// what makes recovery idempotent.
    pub fn replay(&self) -> ReplayedLog<R, S> {
        let st = self.locked();
        (st.snapshot.clone(), st.records.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultConfig;

    fn catch_crash<F: FnOnce() + std::panic::UnwindSafe>(f: F) -> SimulatedCrash {
        let err = std::panic::catch_unwind(f).expect_err("latch should fire");
        *err.downcast::<SimulatedCrash>()
            .expect("payload is SimulatedCrash")
    }

    #[test]
    fn lsns_are_monotonic_and_replayable() {
        let j: Journal<&'static str, ()> = Journal::new();
        assert_eq!(j.append("a").unwrap(), Lsn(0));
        assert_eq!(j.append("b").unwrap(), Lsn(1));
        assert_eq!(j.next_lsn(), Lsn(2));
        let (snap, records) = j.replay();
        assert!(snap.is_none());
        assert_eq!(records, vec![(Lsn(0), "a"), (Lsn(1), "b")]);
        // Replay is read-only: a second replay sees the same contents.
        assert_eq!(j.replay().1, records);
    }

    #[test]
    fn snapshot_truncates_but_lsns_continue() {
        let j: Journal<u32, &'static str> = Journal::new();
        j.append(1).unwrap();
        j.append(2).unwrap();
        assert_eq!(j.install_snapshot("state@2"), Lsn(2));
        assert_eq!(j.record_count(), 0);
        assert_eq!(j.append(3).unwrap(), Lsn(2), "LSNs never rewind");
        let (snap, records) = j.replay();
        assert_eq!(snap, Some((Lsn(2), "state@2")));
        assert_eq!(records, vec![(Lsn(2), 3)]);
        let s = j.stats();
        assert_eq!(s.snapshots, 1);
        assert_eq!(s.truncated_records, 2);
        assert_eq!(s.appends, 3);
    }

    #[test]
    fn crash_latch_fires_between_records() {
        let j: Journal<u32, ()> = Journal::new();
        j.append(1).unwrap();
        j.arm_crash(Lsn(2));
        j.append(2).unwrap();
        let crash = catch_crash(|| {
            j.append(3).unwrap();
        });
        assert_eq!(crash.lsn, Lsn(2));
        // The crashed record was never written; the journal is intact below.
        assert_eq!(j.replay().1, vec![(Lsn(0), 1), (Lsn(1), 2)]);
        assert_eq!(j.stats().crashes, 1);
        // One-shot: after the crash, appends (recovery traffic) succeed.
        assert!(!j.crash_armed());
        assert_eq!(j.append(3).unwrap(), Lsn(2));
    }

    #[test]
    fn crash_latch_cannot_be_outrun_by_infallible_appends() {
        let j: Journal<u32, ()> = Journal::new();
        j.arm_crash(Lsn(0));
        let crash = catch_crash(|| {
            j.append_infallible(1);
        });
        assert_eq!(crash.lsn, Lsn(0));
        assert_eq!(j.record_count(), 0);
    }

    #[test]
    fn stale_arm_fires_on_next_append() {
        let j: Journal<u32, ()> = Journal::new();
        j.append(1).unwrap();
        j.append(2).unwrap();
        j.arm_crash(Lsn(0)); // already written
        let crash = catch_crash(|| {
            j.append(3).unwrap();
        });
        assert_eq!(crash.lsn, Lsn(2), "fires at the next boundary");
    }

    #[test]
    fn transient_append_failures_consume_no_lsn() {
        let j: Journal<u32, ()> = Journal::with_faults(FaultInjector::new(
            FaultConfig::seeded(1).with_transient_writes(1.0),
        ));
        assert_eq!(j.append(1).unwrap_err(), IoError::TransientWrite);
        assert_eq!(j.next_lsn(), Lsn(0), "failed append consumes no LSN");
        assert_eq!(j.stats().transient_failures, 1);
        // The forced path lands the record.
        assert_eq!(j.append_infallible(1), Lsn(0));
        assert_eq!(j.replay().1, vec![(Lsn(0), 1)]);
    }

    #[test]
    fn disabled_faults_never_fail() {
        let j: Journal<u32, ()> = Journal::new();
        for i in 0..100 {
            assert_eq!(j.append(i).unwrap(), Lsn(u64::from(i)));
        }
        assert_eq!(j.stats().transient_failures, 0);
    }
}
