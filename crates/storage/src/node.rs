//! Simulated cluster topology: nodes, deterministic placement, replication,
//! and whole-node outages.
//!
//! DeepSea's fragments live on an HDFS-like cluster of datanodes. This module
//! models the minimum the serving stack needs to survive node loss:
//!
//! * **Deterministic partition-aware placement** — every file is assigned to
//!   a primary node by hashing its placement key (the fragment's
//!   `(attr, interval)` or the view's name) modulo the node count, with
//!   replicas on the consecutive ring successors. Placement is a pure
//!   function of `(key, replicas, node count)` — it never depends on which
//!   nodes happen to be up, so a faulted run and a zero-fault run place every
//!   file identically (the bit-identity invariant of `tests/node_chaos.rs`
//!   depends on this).
//! * **Replica failover** — a read routes to the first *live* node in the
//!   file's placement list: the primary first, then the replicas in
//!   ascending node id. Failover is metadata-only (the namenode redirects the
//!   client), so a read costs the same whichever replica serves it.
//! * **Whole-node outages** — a node can be [`NodeState::Down`] (temporary:
//!   its files fail as transient until it returns) or [`NodeState::Dead`]
//!   (permanent: files with every replica dead are converted to permanent
//!   loss on next access).
//!
//! The cluster keeps its own transition counters so the harness can assert
//! on injected-vs-manual outages uniformly; [`crate::fs::SimFs`] merges them
//! into [`crate::fault::FaultStats`].

use std::collections::BTreeMap;
use std::fmt;
// deepsea-lint: allow(lock_discipline) -- cluster-map cell mutated by fault schedules; single lock
use std::sync::{Mutex, MutexGuard};

use crate::file::FileId;

/// Identifier of a simulated cluster node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Static cluster parameters: topology size and replication policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeConfig {
    /// Number of datanodes in the cluster (≥ 1).
    pub nodes: u32,
    /// Base replication factor for every placed file (≥ 1).
    pub replication: u32,
    /// Replication factor for *hot* fragments (≥ `replication`): views whose
    /// access statistics cross the driver's heat threshold get this many
    /// replicas instead.
    pub hot_replication: u32,
    /// Number of recorded benefit events after which a view's fragments
    /// count as hot and are placed at `hot_replication`.
    pub hot_threshold: u64,
}

impl NodeConfig {
    /// A cluster of `nodes` datanodes with uniform replication `replication`
    /// (hot fragments identical; raise via [`NodeConfig::with_hot`]).
    pub fn new(nodes: u32, replication: u32) -> Self {
        let nodes = nodes.max(1);
        Self {
            nodes,
            replication: replication.clamp(1, nodes),
            hot_replication: replication.clamp(1, nodes),
            hot_threshold: u64::MAX,
        }
    }

    /// Enable hot-fragment replication: views with at least `threshold`
    /// recorded benefit events are placed at `hot_replication` replicas.
    pub fn with_hot(mut self, hot_replication: u32, threshold: u64) -> Self {
        self.hot_replication = hot_replication.clamp(self.replication, self.nodes);
        self.hot_threshold = threshold;
        self
    }
}

/// Liveness of a single node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeState {
    /// Serving reads and writes.
    Up,
    /// Temporarily unreachable; its files fail as transient until it
    /// returns.
    Down,
    /// Permanently failed; files with every replica dead are lost.
    Dead,
}

/// Routing verdict for one file under the current node states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// A live replica can serve the file (failover order: primary first,
    /// then replicas ascending by node id).
    Live(NodeId),
    /// Every replica is on a down (but repairable) node: fail transient.
    Outage,
    /// Every replica is on a dead node: the file is permanently lost.
    Lost,
}

/// Cluster transition counters (injected and manual alike).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Nodes taken down (temporarily).
    pub node_downs: u64,
    /// Nodes restored.
    pub node_ups: u64,
    /// Nodes permanently killed.
    pub node_kills: u64,
    /// Slow-node windows opened (gray failure: degraded but alive).
    pub node_slows: u64,
}

#[derive(Debug)]
struct ClusterState {
    states: Vec<NodeState>,
    /// Remaining consulted-op countdowns for injector-downed nodes; the node
    /// comes back up when its countdown reaches zero.
    repair_in: Vec<u64>,
    /// Per-node latency multiplier (gray failure). `1.0` = healthy; reads
    /// served by a node with multiplier `m > 1` cost `m×` their base
    /// simulated seconds. Orthogonal to liveness: a slow node is still Up.
    slow: Vec<f64>,
    /// Remaining consulted-op countdowns for injector-slowed nodes; the
    /// multiplier resets to `1.0` when the countdown reaches zero.
    slow_in: Vec<u64>,
    placement: BTreeMap<FileId, Vec<NodeId>>,
    stats: NodeStats,
}

/// A set of simulated datanodes with placement and liveness tracking.
///
/// Thread-safe for the same reason [`crate::fs::SimFs`] is: the serving
/// layer may consult it from snapshot readers while the writer mutates it.
#[derive(Debug)]
pub struct NodeSet {
    cfg: NodeConfig,
    state: Mutex<ClusterState>,
}

impl NodeSet {
    /// Build a cluster with every node up and nothing placed.
    pub fn new(cfg: NodeConfig) -> Self {
        Self {
            state: Mutex::new(ClusterState {
                states: vec![NodeState::Up; cfg.nodes as usize],
                repair_in: vec![0; cfg.nodes as usize],
                slow: vec![1.0; cfg.nodes as usize],
                slow_in: vec![0; cfg.nodes as usize],
                placement: BTreeMap::new(),
                stats: NodeStats::default(),
            }),
            cfg,
        }
    }

    fn locked(&self) -> MutexGuard<'_, ClusterState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The static cluster parameters.
    pub fn config(&self) -> NodeConfig {
        self.cfg
    }

    /// Number of nodes in the topology.
    pub fn num_nodes(&self) -> u32 {
        self.cfg.nodes
    }

    /// Deterministic placement for a key: primary at `key mod nodes`, then
    /// `replicas - 1` ring successors, the tail sorted ascending by node id
    /// (the failover order). Pure in `(key, replicas, nodes)` — node
    /// liveness never influences placement.
    pub fn placement_for(&self, key: u64, replicas: u32) -> Vec<NodeId> {
        let n = self.cfg.nodes as u64;
        let r = replicas.clamp(1, self.cfg.nodes) as u64;
        let primary = key % n;
        let mut tail: Vec<NodeId> = (1..r).map(|i| NodeId(((primary + i) % n) as u32)).collect();
        tail.sort();
        let mut nodes = Vec::with_capacity(r as usize);
        nodes.push(NodeId(primary as u32));
        nodes.extend(tail);
        nodes
    }

    /// Record where a file lives. Idempotent: re-placing with the same list
    /// (journal replay during recovery) is a no-op; re-placing with a
    /// different list overwrites (re-replication).
    pub fn place(&self, file: FileId, nodes: &[NodeId]) {
        if nodes.is_empty() {
            return;
        }
        self.locked().placement.insert(file, nodes.to_vec());
    }

    /// The recorded placement of a file, if any.
    pub fn placement(&self, file: FileId) -> Option<Vec<NodeId>> {
        self.locked().placement.get(&file).cloned()
    }

    /// Forget a deleted file's placement.
    pub fn forget(&self, file: FileId) {
        self.locked().placement.remove(&file);
    }

    /// Route a read/write for `file`. Files without a recorded placement are
    /// node-agnostic (namenode-resident metadata) and always route live.
    pub fn route(&self, file: FileId) -> Route {
        let st = self.locked();
        let Some(nodes) = st.placement.get(&file) else {
            return Route::Live(NodeId(0));
        };
        let mut any_down = false;
        for &n in nodes {
            match st.states[n.0 as usize] {
                NodeState::Up => return Route::Live(n),
                NodeState::Down => any_down = true,
                NodeState::Dead => {}
            }
        }
        if any_down {
            Route::Outage
        } else {
            Route::Lost
        }
    }

    /// Whether every replica of the file is currently unavailable (down or
    /// dead). Metadata probe: no draws, no cost.
    pub fn outage_blocked(&self, file: FileId) -> bool {
        !matches!(self.route(file), Route::Live(_))
    }

    /// The state of one node (`None` for an out-of-range id).
    pub fn node_state(&self, node: NodeId) -> Option<NodeState> {
        self.locked().states.get(node.0 as usize).copied()
    }

    /// Take a node down (temporary outage). Returns whether the state
    /// changed (dead nodes stay dead).
    pub fn set_node_down(&self, node: NodeId) -> bool {
        let mut st = self.locked();
        match st.states.get(node.0 as usize).copied() {
            Some(NodeState::Up) => {
                st.states[node.0 as usize] = NodeState::Down;
                st.stats.node_downs += 1;
                true
            }
            _ => false,
        }
    }

    /// Like [`NodeSet::set_node_down`] with an automatic repair countdown:
    /// the node returns after `repair_ops` further consulted operations
    /// (see [`NodeSet::tick_repairs`]).
    pub fn set_node_down_for(&self, node: NodeId, repair_ops: u64) -> bool {
        let changed = self.set_node_down(node);
        if changed {
            self.locked().repair_in[node.0 as usize] = repair_ops;
        }
        changed
    }

    /// Restore a down node. Returns whether the state changed.
    pub fn set_node_up(&self, node: NodeId) -> bool {
        let mut st = self.locked();
        match st.states.get(node.0 as usize).copied() {
            Some(NodeState::Down) => {
                st.states[node.0 as usize] = NodeState::Up;
                st.repair_in[node.0 as usize] = 0;
                st.stats.node_ups += 1;
                true
            }
            _ => false,
        }
    }

    /// Permanently fail a node. Returns whether the state changed.
    pub fn kill_node(&self, node: NodeId) -> bool {
        let mut st = self.locked();
        match st.states.get(node.0 as usize).copied() {
            Some(NodeState::Up) | Some(NodeState::Down) => {
                st.states[node.0 as usize] = NodeState::Dead;
                st.repair_in[node.0 as usize] = 0;
                st.stats.node_kills += 1;
                true
            }
            _ => false,
        }
    }

    /// Mark a node as slow: reads it serves cost `multiplier ×` their base
    /// simulated seconds until cleared. Returns whether a new slow window
    /// opened (`multiplier > 1` on a live node that was healthy).
    pub fn set_node_slow(&self, node: NodeId, multiplier: f64) -> bool {
        if multiplier <= 1.0 {
            self.clear_node_slow(node);
            return false;
        }
        let mut st = self.locked();
        match st.states.get(node.0 as usize).copied() {
            Some(NodeState::Up) | Some(NodeState::Down) => {
                let opened = st.slow[node.0 as usize] <= 1.0;
                st.slow[node.0 as usize] = multiplier;
                if opened {
                    st.stats.node_slows += 1;
                }
                opened
            }
            _ => false,
        }
    }

    /// Like [`NodeSet::set_node_slow`] with an automatic recovery countdown:
    /// the multiplier resets to `1.0` after `slow_ops` further consulted
    /// operations (see [`NodeSet::tick_repairs`]).
    pub fn set_node_slow_for(&self, node: NodeId, multiplier: f64, slow_ops: u64) -> bool {
        let opened = self.set_node_slow(node, multiplier);
        if opened {
            self.locked().slow_in[node.0 as usize] = slow_ops;
        }
        opened
    }

    /// Clear a node's slow window (multiplier back to `1.0`). Returns
    /// whether a window was actually open.
    pub fn clear_node_slow(&self, node: NodeId) -> bool {
        let mut st = self.locked();
        match st.slow.get(node.0 as usize).copied() {
            Some(m) if m > 1.0 => {
                st.slow[node.0 as usize] = 1.0;
                st.slow_in[node.0 as usize] = 0;
                true
            }
            _ => false,
        }
    }

    /// The current latency multiplier of a node (`1.0` for healthy or
    /// out-of-range ids). Metadata probe: no draws, no cost.
    pub fn latency_multiplier(&self, node: NodeId) -> f64 {
        self.locked()
            .slow
            .get(node.0 as usize)
            .copied()
            .unwrap_or(1.0)
    }

    /// Nodes currently slow (multiplier above `1.0`), ascending.
    pub fn slow_nodes(&self) -> Vec<(NodeId, f64)> {
        let st = self.locked();
        st.slow
            .iter()
            .enumerate()
            .filter(|(_, m)| **m > 1.0)
            .map(|(i, m)| (NodeId(i as u32), *m))
            .collect()
    }

    /// Advance every pending repair countdown by one consulted operation,
    /// restoring nodes whose countdown expires. Returns the restored nodes
    /// in ascending id order. Slow-window countdowns tick on the same
    /// consulted-op clock; expired windows silently reset to `1.0`.
    pub fn tick_repairs(&self) -> Vec<NodeId> {
        let mut st = self.locked();
        let mut restored = Vec::new();
        for i in 0..st.states.len() {
            if st.states[i] == NodeState::Down && st.repair_in[i] > 0 {
                st.repair_in[i] -= 1;
                if st.repair_in[i] == 0 {
                    st.states[i] = NodeState::Up;
                    st.stats.node_ups += 1;
                    restored.push(NodeId(i as u32));
                }
            }
            if st.slow[i] > 1.0 && st.slow_in[i] > 0 {
                st.slow_in[i] -= 1;
                if st.slow_in[i] == 0 {
                    st.slow[i] = 1.0;
                }
            }
        }
        restored
    }

    /// Snapshot of the cluster transition counters.
    pub fn stats(&self) -> NodeStats {
        self.locked().stats
    }

    /// Nodes currently down (temporarily), ascending.
    pub fn down_nodes(&self) -> Vec<NodeId> {
        let st = self.locked();
        st.states
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == NodeState::Down)
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }
}

/// FNV-1a over a byte stream: the placement hash. Stable across platforms
/// and runs — placement keys must never depend on ambient state.
pub fn placement_key(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(nodes: u32, replication: u32) -> NodeSet {
        NodeSet::new(NodeConfig::new(nodes, replication))
    }

    #[test]
    fn placement_is_deterministic_and_ring_shaped() {
        let c = cluster(5, 3);
        let p = c.placement_for(7, 3);
        assert_eq!(p[0], NodeId(2), "primary = key mod nodes");
        assert_eq!(p.len(), 3);
        assert_eq!(p, c.placement_for(7, 3), "pure function of the key");
        // Replicas are ring successors, tail sorted ascending.
        assert_eq!(p[1..], [NodeId(3), NodeId(4)]);
        // Wrap-around keeps the tail sorted by id, not ring order.
        let q = c.placement_for(4, 3);
        assert_eq!(q[0], NodeId(4));
        assert_eq!(q[1..], [NodeId(0), NodeId(1)]);
    }

    #[test]
    fn placement_ignores_liveness() {
        let c = cluster(4, 2);
        let before = c.placement_for(10, 2);
        c.set_node_down(NodeId(2));
        c.kill_node(NodeId(3));
        assert_eq!(c.placement_for(10, 2), before);
    }

    #[test]
    fn route_fails_over_to_first_live_replica() {
        let c = cluster(4, 2);
        let f = FileId(1);
        c.place(f, &[NodeId(1), NodeId(2)]);
        assert_eq!(c.route(f), Route::Live(NodeId(1)));
        c.set_node_down(NodeId(1));
        assert_eq!(c.route(f), Route::Live(NodeId(2)), "failover to replica");
        c.set_node_down(NodeId(2));
        assert_eq!(c.route(f), Route::Outage);
        assert!(c.outage_blocked(f));
        c.set_node_up(NodeId(2));
        assert_eq!(c.route(f), Route::Live(NodeId(2)));
        assert!(!c.outage_blocked(f));
    }

    #[test]
    fn dead_replicas_convert_to_lost_only_when_all_dead() {
        let c = cluster(3, 2);
        let f = FileId(0);
        c.place(f, &[NodeId(0), NodeId(1)]);
        c.kill_node(NodeId(0));
        assert_eq!(c.route(f), Route::Live(NodeId(1)));
        c.set_node_down(NodeId(1));
        assert_eq!(c.route(f), Route::Outage, "down beats dead: repairable");
        c.kill_node(NodeId(1));
        assert_eq!(c.route(f), Route::Lost);
    }

    #[test]
    fn unplaced_files_always_route_live() {
        let c = cluster(2, 1);
        c.set_node_down(NodeId(0));
        c.set_node_down(NodeId(1));
        assert_eq!(c.route(FileId(9)), Route::Live(NodeId(0)));
        assert!(!c.outage_blocked(FileId(9)));
    }

    #[test]
    fn repair_countdown_restores_node() {
        let c = cluster(2, 1);
        assert!(c.set_node_down_for(NodeId(1), 2));
        assert_eq!(c.node_state(NodeId(1)), Some(NodeState::Down));
        assert!(c.tick_repairs().is_empty());
        assert_eq!(c.tick_repairs(), vec![NodeId(1)]);
        assert_eq!(c.node_state(NodeId(1)), Some(NodeState::Up));
        let s = c.stats();
        assert_eq!((s.node_downs, s.node_ups), (1, 1));
    }

    #[test]
    fn transition_counters_and_idempotence() {
        let c = cluster(3, 1);
        assert!(c.set_node_down(NodeId(0)));
        assert!(!c.set_node_down(NodeId(0)), "already down");
        assert!(c.set_node_up(NodeId(0)));
        assert!(!c.set_node_up(NodeId(0)), "already up");
        assert!(c.kill_node(NodeId(0)));
        assert!(!c.set_node_down(NodeId(0)), "dead nodes stay dead");
        assert!(!c.set_node_up(NodeId(0)), "dead nodes never return");
        assert!(!c.kill_node(NodeId(0)), "already dead");
        let s = c.stats();
        assert_eq!((s.node_downs, s.node_ups, s.node_kills), (1, 1, 1));
        assert_eq!(c.down_nodes(), vec![]);
    }

    #[test]
    fn place_is_idempotent_and_forgettable() {
        let c = cluster(4, 2);
        let f = FileId(3);
        c.place(f, &[NodeId(0), NodeId(1)]);
        c.place(f, &[NodeId(0), NodeId(1)]);
        assert_eq!(c.placement(f), Some(vec![NodeId(0), NodeId(1)]));
        c.place(f, &[NodeId(2)]);
        assert_eq!(c.placement(f), Some(vec![NodeId(2)]), "re-replication");
        c.forget(f);
        assert_eq!(c.placement(f), None);
    }

    #[test]
    fn slow_windows_track_multiplier_and_expire() {
        let c = cluster(3, 1);
        assert_eq!(c.latency_multiplier(NodeId(0)), 1.0);
        assert!(c.set_node_slow(NodeId(0), 4.0));
        assert!(!c.set_node_slow(NodeId(0), 8.0), "re-slow widens in place");
        assert_eq!(c.latency_multiplier(NodeId(0)), 8.0);
        assert_eq!(c.slow_nodes(), vec![(NodeId(0), 8.0)]);
        assert!(c.clear_node_slow(NodeId(0)));
        assert!(!c.clear_node_slow(NodeId(0)), "already healthy");
        assert_eq!(c.latency_multiplier(NodeId(0)), 1.0);
        assert_eq!(c.stats().node_slows, 1);

        // Countdown variant: expires on the consulted-op clock.
        assert!(c.set_node_slow_for(NodeId(1), 3.0, 2));
        c.tick_repairs();
        assert_eq!(c.latency_multiplier(NodeId(1)), 3.0);
        c.tick_repairs();
        assert_eq!(c.latency_multiplier(NodeId(1)), 1.0, "window expired");
        assert!(c.slow_nodes().is_empty());

        // multiplier <= 1.0 is a clear, not a window.
        assert!(c.set_node_slow(NodeId(2), 2.0));
        assert!(!c.set_node_slow(NodeId(2), 1.0));
        assert_eq!(c.latency_multiplier(NodeId(2)), 1.0);

        // Dead nodes cannot be slowed; out-of-range is a no-op.
        c.kill_node(NodeId(0));
        assert!(!c.set_node_slow(NodeId(0), 5.0));
        assert!(!c.set_node_slow(NodeId(9), 5.0));
        assert_eq!(c.latency_multiplier(NodeId(9)), 1.0);
    }

    #[test]
    fn slow_windows_do_not_affect_routing() {
        let c = cluster(2, 2);
        let f = FileId(1);
        c.place(f, &[NodeId(0), NodeId(1)]);
        c.set_node_slow(NodeId(0), 16.0);
        assert_eq!(
            c.route(f),
            Route::Live(NodeId(0)),
            "slow is not down: the primary still serves"
        );
        assert!(!c.outage_blocked(f));
    }

    #[test]
    fn placement_key_is_stable() {
        assert_eq!(placement_key(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(placement_key(b"ra[0,10)"), placement_key(b"ra[0,10)"));
        assert_ne!(placement_key(b"ra[0,10)"), placement_key(b"ra[10,20)"));
    }

    #[test]
    fn config_clamps_replication_to_topology() {
        let cfg = NodeConfig::new(3, 9);
        assert_eq!(cfg.replication, 3);
        let hot = NodeConfig::new(4, 2).with_hot(9, 5);
        assert_eq!(hot.hot_replication, 4);
        assert_eq!(hot.hot_threshold, 5);
        let cold = NodeConfig::new(4, 3).with_hot(1, 2);
        assert_eq!(
            cold.hot_replication, 3,
            "hot replication never below base replication"
        );
    }
}
