//! Materialized-view pool storage accounting.

/// Error returned when an accounting operation is inconsistent: a reservation
/// that would exceed the pool limit, or a release of more bytes than are
/// reserved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolError {
    /// Bytes that were requested.
    pub requested: u64,
    /// Bytes available for the operation (headroom for a reserve, reserved
    /// bytes for a release).
    pub available: u64,
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "pool limit exceeded: requested {} bytes, {} available",
            self.requested, self.available
        )
    }
}

impl std::error::Error for PoolError {}

/// Tracks the storage used by the materialized-view pool against the limit
/// `Smax` (Definition 4, constraint 3: `S(Ci) <= Smax` for all i).
///
/// `smax == None` models the paper's "∞" pool-size setting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolAccountant {
    smax: Option<u64>,
    used: u64,
    violations: u64,
}

impl PoolAccountant {
    /// A pool bounded by `smax` simulated bytes.
    pub fn bounded(smax: u64) -> Self {
        Self {
            smax: Some(smax),
            used: 0,
            violations: 0,
        }
    }

    /// An unbounded pool (the paper's `∞` configuration).
    pub fn unbounded() -> Self {
        Self {
            smax: None,
            used: 0,
            violations: 0,
        }
    }

    /// The configured limit, if any.
    pub fn smax(&self) -> Option<u64> {
        self.smax
    }

    /// Bytes currently reserved.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Bytes still available under the limit (`u64::MAX` when unbounded).
    pub fn available(&self) -> u64 {
        match self.smax {
            Some(s) => s.saturating_sub(self.used),
            None => u64::MAX,
        }
    }

    /// Whether a reservation of `bytes` would fit.
    pub fn fits(&self, bytes: u64) -> bool {
        bytes <= self.available()
    }

    /// Reserve `bytes`; fails without side effects if it would exceed `Smax`.
    pub fn reserve(&mut self, bytes: u64) -> Result<(), PoolError> {
        if !self.fits(bytes) {
            return Err(PoolError {
                requested: bytes,
                available: self.available(),
            });
        }
        self.used += bytes;
        Ok(())
    }

    /// Release previously reserved bytes.
    ///
    /// Releasing more than is reserved is an accounting bug in the caller.
    /// It used to panic in debug builds and saturate silently in release
    /// builds; now it is ledger-visible in every build: usage is clamped to
    /// zero, the [`PoolAccountant::violations`] counter is bumped, and the
    /// error reports how many bytes were actually reserved.
    pub fn release(&mut self, bytes: u64) -> Result<(), PoolError> {
        if bytes > self.used {
            let available = self.used;
            self.used = 0;
            self.violations += 1;
            return Err(PoolError {
                requested: bytes,
                available,
            });
        }
        self.used -= bytes;
        Ok(())
    }

    /// Number of over-release accounting violations observed so far. Any
    /// non-zero value indicates a bookkeeping bug in the caller.
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// Overwrite the usage counter with an externally reconciled value (the
    /// fsck sweep re-derives usage from the live catalog after recovery).
    pub fn set_used(&mut self, bytes: u64) {
        self.used = bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_reserve_release() {
        let mut p = PoolAccountant::bounded(100);
        assert!(p.reserve(60).is_ok());
        assert_eq!(p.used(), 60);
        assert_eq!(p.available(), 40);
        assert!(!p.fits(41));
        assert!(p.fits(40));
        let err = p.reserve(41).unwrap_err();
        assert_eq!(err.requested, 41);
        assert_eq!(err.available, 40);
        assert_eq!(p.used(), 60, "failed reserve must not change state");
        p.release(60).expect("release within reservation");
        assert_eq!(p.used(), 0);
    }

    #[test]
    fn over_release_is_ledger_visible() {
        let mut p = PoolAccountant::bounded(100);
        p.reserve(10).unwrap();
        let err = p.release(25).unwrap_err();
        assert_eq!(err.requested, 25);
        assert_eq!(err.available, 10);
        assert_eq!(p.used(), 0, "usage clamps to zero, never wraps");
        assert_eq!(p.violations(), 1);
        // Well-formed releases afterwards don't add violations.
        p.reserve(5).unwrap();
        p.release(5).unwrap();
        assert_eq!(p.violations(), 1);
    }

    #[test]
    fn set_used_reconciles() {
        let mut p = PoolAccountant::unbounded();
        p.set_used(42);
        assert_eq!(p.used(), 42);
        p.release(42).unwrap();
        assert_eq!(p.used(), 0);
    }

    #[test]
    fn unbounded_always_fits() {
        let mut p = PoolAccountant::unbounded();
        assert!(p.reserve(u64::MAX / 2).is_ok());
        assert!(p.fits(u64::MAX / 4));
        assert_eq!(p.smax(), None);
    }

    #[test]
    fn exact_fill_allowed() {
        let mut p = PoolAccountant::bounded(10);
        assert!(p.reserve(10).is_ok());
        assert_eq!(p.available(), 0);
        assert!(p.fits(0));
        assert!(!p.fits(1));
    }

    #[test]
    fn error_displays() {
        let e = PoolError {
            requested: 5,
            available: 3,
        };
        assert!(e.to_string().contains("requested 5"));
    }
}
