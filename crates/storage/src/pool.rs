//! Materialized-view pool storage accounting.

/// Error returned when a reservation would exceed the pool limit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolError {
    /// Bytes that were requested.
    pub requested: u64,
    /// Bytes available under the limit.
    pub available: u64,
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "pool limit exceeded: requested {} bytes, {} available",
            self.requested, self.available
        )
    }
}

impl std::error::Error for PoolError {}

/// Tracks the storage used by the materialized-view pool against the limit
/// `Smax` (Definition 4, constraint 3: `S(Ci) <= Smax` for all i).
///
/// `smax == None` models the paper's "∞" pool-size setting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolAccountant {
    smax: Option<u64>,
    used: u64,
}

impl PoolAccountant {
    /// A pool bounded by `smax` simulated bytes.
    pub fn bounded(smax: u64) -> Self {
        Self {
            smax: Some(smax),
            used: 0,
        }
    }

    /// An unbounded pool (the paper's `∞` configuration).
    pub fn unbounded() -> Self {
        Self {
            smax: None,
            used: 0,
        }
    }

    /// The configured limit, if any.
    pub fn smax(&self) -> Option<u64> {
        self.smax
    }

    /// Bytes currently reserved.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Bytes still available under the limit (`u64::MAX` when unbounded).
    pub fn available(&self) -> u64 {
        match self.smax {
            Some(s) => s.saturating_sub(self.used),
            None => u64::MAX,
        }
    }

    /// Whether a reservation of `bytes` would fit.
    pub fn fits(&self, bytes: u64) -> bool {
        bytes <= self.available()
    }

    /// Reserve `bytes`; fails without side effects if it would exceed `Smax`.
    pub fn reserve(&mut self, bytes: u64) -> Result<(), PoolError> {
        if !self.fits(bytes) {
            return Err(PoolError {
                requested: bytes,
                available: self.available(),
            });
        }
        self.used += bytes;
        Ok(())
    }

    /// Release previously reserved bytes.
    ///
    /// # Panics
    /// Panics in debug builds if releasing more than is reserved.
    pub fn release(&mut self, bytes: u64) {
        debug_assert!(bytes <= self.used, "releasing more than reserved");
        self.used = self.used.saturating_sub(bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_reserve_release() {
        let mut p = PoolAccountant::bounded(100);
        assert!(p.reserve(60).is_ok());
        assert_eq!(p.used(), 60);
        assert_eq!(p.available(), 40);
        assert!(!p.fits(41));
        assert!(p.fits(40));
        let err = p.reserve(41).unwrap_err();
        assert_eq!(err.requested, 41);
        assert_eq!(err.available, 40);
        assert_eq!(p.used(), 60, "failed reserve must not change state");
        p.release(60);
        assert_eq!(p.used(), 0);
    }

    #[test]
    fn unbounded_always_fits() {
        let mut p = PoolAccountant::unbounded();
        assert!(p.reserve(u64::MAX / 2).is_ok());
        assert!(p.fits(u64::MAX / 4));
        assert_eq!(p.smax(), None);
    }

    #[test]
    fn exact_fill_allowed() {
        let mut p = PoolAccountant::bounded(10);
        assert!(p.reserve(10).is_ok());
        assert_eq!(p.available(), 0);
        assert!(p.fits(0));
        assert!(!p.fits(1));
    }

    #[test]
    fn error_displays() {
        let e = PoolError {
            requested: 5,
            available: 3,
        };
        assert!(e.to_string().contains("requested 5"));
    }
}
