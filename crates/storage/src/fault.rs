//! Deterministic fault injection for the simulated file system.
//!
//! DeepSea treats materialized views as opportunistic accelerators: the base
//! tables can always answer a query, so losing a fragment must never lose an
//! answer. To exercise that property the file system can be configured with a
//! [`FaultInjector`] that perturbs I/O with three independent failure modes:
//!
//! * **Transient read/write failures** — the operation fails but the file is
//!   intact; a retry may succeed (a flaky datanode, a timed-out RPC).
//! * **Permanent fragment loss** — the file is gone for good (all replicas
//!   lost); retries cannot help and the caller must degrade gracefully.
//! * **Latency spikes** — the operation succeeds but costs extra simulated
//!   seconds (a straggling datanode).
//! * **Corruption** — the file's payload is intact but its checksum no longer
//!   matches (bit rot, a torn write surviving a crash); the read detects the
//!   mismatch and fails instead of serving bad data. Corruption is sticky:
//!   once a file is corrupted, every subsequent read fails until the file is
//!   quarantined or deleted.
//!
//! The injector is seed-driven (xoshiro256++) and consumes exactly one random
//! draw per consulted operation, so a fault schedule is a pure function of
//! `(seed, operation sequence)` — replays are bit-reproducible. A disabled
//! injector consumes no draws and adds no branches beyond one rate check, so
//! the zero-fault path stays behaviour-identical to a build without faults.

use std::error::Error;
use std::fmt;
// deepsea-lint: allow(lock_discipline) -- fault-injector RNG cell; single lock, no nested acquisition
use std::sync::Mutex;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::file::FileId;

/// Rates and magnitudes for each injected failure mode.
///
/// All rates are probabilities in `[0, 1]` evaluated independently per
/// operation; their sum must not exceed 1 (they partition a single uniform
/// draw). The default is fully disabled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Seed for the injector's private PRNG stream.
    pub seed: u64,
    /// Probability a read fails transiently (file intact, retry may succeed).
    pub transient_read_rate: f64,
    /// Probability a read discovers the file permanently lost (file removed).
    pub permanent_loss_rate: f64,
    /// Probability a write (create) fails transiently (nothing written).
    pub transient_write_rate: f64,
    /// Probability an otherwise-successful operation straggles.
    pub latency_spike_rate: f64,
    /// Extra simulated seconds charged by a latency spike.
    pub latency_spike_secs: f64,
    /// Probability a read discovers the file corrupt (payload intact,
    /// checksum mismatch). Corruption is sticky: the file stays corrupt.
    pub corruption_rate: f64,
    /// Probability a consulted operation takes a whole node down
    /// (temporarily); the victim is derived from the same draw. Only
    /// consulted when the file system has a cluster attached.
    pub node_down_rate: f64,
    /// Probability a consulted operation kills a whole node permanently.
    pub node_kill_rate: f64,
    /// Consulted operations after which an injector-downed node returns
    /// (the repair countdown; see `NodeSet::tick_repairs`).
    pub node_repair_ops: u64,
    /// Probability a consulted operation opens a *gray-failure* window on a
    /// whole node: the node stays up but every read it serves costs
    /// `node_slow_factor ×` its base simulated seconds. The victim is
    /// derived from the same draw, like `node_down_rate`.
    pub node_slow_rate: f64,
    /// Latency multiplier applied while a slow-node window is open (> 1).
    pub node_slow_factor: f64,
    /// Consulted operations after which an injector-slowed node recovers
    /// (the window length; ticked by `NodeSet::tick_repairs`).
    pub node_slow_ops: u64,
}

impl FaultConfig {
    /// A configuration that injects nothing (all rates zero).
    pub fn disabled() -> Self {
        Self {
            seed: 0,
            transient_read_rate: 0.0,
            permanent_loss_rate: 0.0,
            transient_write_rate: 0.0,
            latency_spike_rate: 0.0,
            latency_spike_secs: 0.0,
            corruption_rate: 0.0,
            node_down_rate: 0.0,
            node_kill_rate: 0.0,
            node_repair_ops: 0,
            node_slow_rate: 0.0,
            node_slow_factor: 1.0,
            node_slow_ops: 0,
        }
    }

    /// A zeroed configuration with the given seed; set rates via the
    /// `with_*` builders.
    pub fn seeded(seed: u64) -> Self {
        Self {
            seed,
            ..Self::disabled()
        }
    }

    /// Set the transient read-failure rate.
    pub fn with_transient_reads(mut self, rate: f64) -> Self {
        self.transient_read_rate = rate;
        self
    }

    /// Set the permanent fragment-loss rate.
    pub fn with_permanent_loss(mut self, rate: f64) -> Self {
        self.permanent_loss_rate = rate;
        self
    }

    /// Set the transient write-failure rate.
    pub fn with_transient_writes(mut self, rate: f64) -> Self {
        self.transient_write_rate = rate;
        self
    }

    /// Set the latency-spike rate and magnitude.
    pub fn with_latency_spikes(mut self, rate: f64, secs: f64) -> Self {
        self.latency_spike_rate = rate;
        self.latency_spike_secs = secs;
        self
    }

    /// Set the checksum-corruption rate.
    pub fn with_corruption(mut self, rate: f64) -> Self {
        self.corruption_rate = rate;
        self
    }

    /// Set the node-outage rate and the repair countdown (consulted
    /// operations until an injector-downed node returns).
    pub fn with_node_downs(mut self, rate: f64, repair_ops: u64) -> Self {
        self.node_down_rate = rate;
        self.node_repair_ops = repair_ops;
        self
    }

    /// Set the permanent node-kill rate.
    pub fn with_node_kills(mut self, rate: f64) -> Self {
        self.node_kill_rate = rate;
        self
    }

    /// Set the gray-failure (slow-node) rate, latency multiplier, and window
    /// length in consulted operations.
    pub fn with_node_slow(mut self, rate: f64, factor: f64, slow_ops: u64) -> Self {
        self.node_slow_rate = rate;
        self.node_slow_factor = factor;
        self.node_slow_ops = slow_ops;
        self
    }

    /// Whether any per-file failure mode has a non-zero rate. Node-scoped
    /// rates are deliberately excluded: they gate their own draw (consulted
    /// only when a cluster is attached), so configs without node rates keep
    /// exactly the per-file fault schedule they had before node faults
    /// existed.
    pub fn enabled(&self) -> bool {
        self.transient_read_rate > 0.0
            || self.permanent_loss_rate > 0.0
            || self.transient_write_rate > 0.0
            || self.latency_spike_rate > 0.0
            || self.corruption_rate > 0.0
    }

    /// Whether node-scoped fault events are active.
    pub fn node_enabled(&self) -> bool {
        self.node_down_rate > 0.0 || self.node_kill_rate > 0.0 || self.node_slow_rate > 0.0
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

/// Counters for faults actually injected, for harness assertions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Reads that failed transiently.
    pub transient_reads: u64,
    /// Reads that discovered a permanently lost file.
    pub permanent_losses: u64,
    /// Writes that failed transiently.
    pub transient_writes: u64,
    /// Operations that straggled.
    pub latency_spikes: u64,
    /// Reads that discovered a corrupt file (checksum mismatch).
    pub corruptions: u64,
    /// Whole nodes taken down (temporarily).
    pub node_downs: u64,
    /// Whole nodes restored after an outage.
    pub node_ups: u64,
    /// Whole nodes permanently killed.
    pub node_kills: u64,
    /// Slow-node (gray failure) windows opened.
    pub node_slows: u64,
    /// Hedged reads issued (primary exceeded the hedge threshold with a
    /// second live replica available).
    pub hedges_issued: u64,
    /// Hedges where the replica finished first (the hedge paid off).
    pub hedges_won: u64,
    /// Hedges cancelled because the primary finished first anyway.
    pub hedges_cancelled: u64,
}

/// Verdict for a single read operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum ReadFault {
    /// Proceed normally.
    None,
    /// Fail transiently; file intact.
    Transient,
    /// The file is lost; remove it.
    Permanent,
    /// The file's checksum no longer matches; mark it corrupt.
    Corrupt,
    /// Succeed, but charge extra seconds.
    Spike(f64),
}

/// Verdict for a single write operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum WriteFault {
    /// Proceed normally.
    None,
    /// Fail transiently; nothing written.
    Transient,
    /// Succeed, but charge extra seconds.
    Spike(f64),
}

/// Node-scoped fault event for one consulted operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum NodeFault {
    /// No node event.
    None,
    /// Take the given node down; it returns after `FaultConfig::node_repair_ops`.
    Down(u32),
    /// Permanently kill the given node.
    Kill(u32),
    /// Open a gray-failure window on the given node: latency multiplier
    /// `FaultConfig::node_slow_factor` for `FaultConfig::node_slow_ops`
    /// consulted operations.
    Slow(u32),
}

/// A deterministic, seed-driven source of injected I/O faults.
///
/// Each consulted operation consumes exactly one uniform draw from a private
/// xoshiro256++ stream and maps it onto the configured failure modes via
/// cumulative thresholds (permanent, then transient, then latency spike), so
/// the schedule depends only on the seed and the sequence of operations.
#[derive(Debug)]
pub struct FaultInjector {
    cfg: FaultConfig,
    state: Mutex<State>,
}

#[derive(Debug)]
struct State {
    rng: StdRng,
    stats: FaultStats,
}

impl FaultInjector {
    /// Build an injector from a configuration.
    pub fn new(cfg: FaultConfig) -> Self {
        Self {
            state: Mutex::new(State {
                rng: StdRng::seed_from_u64(cfg.seed),
                stats: FaultStats::default(),
            }),
            cfg,
        }
    }

    /// An injector that never injects and never draws.
    pub fn disabled() -> Self {
        Self::new(FaultConfig::disabled())
    }

    /// The configuration in force.
    pub fn config(&self) -> FaultConfig {
        self.cfg
    }

    /// Whether any failure mode is active.
    pub fn enabled(&self) -> bool {
        self.cfg.enabled()
    }

    /// Snapshot of the faults injected so far.
    pub fn stats(&self) -> FaultStats {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).stats
    }

    /// Decide the fate of a read. Disabled injectors consume no draws.
    pub(crate) fn decide_read(&self) -> ReadFault {
        if !self.enabled() {
            return ReadFault::None;
        }
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let u: f64 = st.rng.random();
        let c = &self.cfg;
        let mut edge = c.permanent_loss_rate;
        if u < edge {
            st.stats.permanent_losses += 1;
            return ReadFault::Permanent;
        }
        edge += c.transient_read_rate;
        if u < edge {
            st.stats.transient_reads += 1;
            return ReadFault::Transient;
        }
        edge += c.corruption_rate;
        if u < edge {
            st.stats.corruptions += 1;
            return ReadFault::Corrupt;
        }
        edge += c.latency_spike_rate;
        if u < edge {
            st.stats.latency_spikes += 1;
            return ReadFault::Spike(c.latency_spike_secs);
        }
        ReadFault::None
    }

    /// Decide whether a whole-node fault event fires for this consulted
    /// operation, and which of `nodes` it hits. Consumes one draw from the
    /// same seeded stream as the per-file modes — but only when a node rate
    /// is set (otherwise zero draws, preserving existing schedules). The
    /// victim is derived by scaling the draw within the fired band, so one
    /// uniform decides both the event and the node.
    pub(crate) fn decide_node(&self, nodes: u32) -> NodeFault {
        if !self.cfg.node_enabled() || nodes == 0 {
            return NodeFault::None;
        }
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let u: f64 = st.rng.random();
        let c = &self.cfg;
        let pick = |u0: f64, width: f64| -> u32 {
            let frac = (u0 / width).clamp(0.0, 1.0 - f64::EPSILON);
            (frac * nodes as f64) as u32
        };
        if u < c.node_kill_rate {
            return NodeFault::Kill(pick(u, c.node_kill_rate));
        }
        let mut edge = c.node_kill_rate + c.node_down_rate;
        if u < edge {
            return NodeFault::Down(pick(u - c.node_kill_rate, c.node_down_rate));
        }
        let prev = edge;
        edge += c.node_slow_rate;
        if u < edge {
            return NodeFault::Slow(pick(u - prev, c.node_slow_rate));
        }
        NodeFault::None
    }

    /// Decide the fate of a write. Disabled injectors consume no draws.
    pub(crate) fn decide_write(&self) -> WriteFault {
        if !self.enabled() {
            return WriteFault::None;
        }
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let u: f64 = st.rng.random();
        let c = &self.cfg;
        let mut edge = c.transient_write_rate;
        if u < edge {
            st.stats.transient_writes += 1;
            return WriteFault::Transient;
        }
        edge += c.latency_spike_rate;
        if u < edge {
            st.stats.latency_spikes += 1;
            return WriteFault::Spike(c.latency_spike_secs);
        }
        WriteFault::None
    }
}

/// Why a fallible I/O operation failed.
///
/// The transient/permanent split is the contract the retry layer depends on:
/// transient failures are worth retrying, permanent ones never are.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoError {
    /// A read failed but the file is intact; a retry may succeed.
    TransientRead(FileId),
    /// A write failed and nothing was persisted; a retry may succeed.
    TransientWrite,
    /// The file is gone — either never existed, was deleted, or all replicas
    /// were lost. Retries cannot help.
    PermanentLoss(FileId),
    /// The file exists but its checksum no longer matches its contents.
    /// Corruption is sticky, so retries cannot help; the file must never be
    /// served and should be quarantined or deleted.
    Corrupt(FileId),
}

impl IoError {
    /// Whether retrying the operation could succeed.
    pub fn is_transient(&self) -> bool {
        matches!(self, Self::TransientRead(_) | Self::TransientWrite)
    }

    /// The file involved, when the operation names one.
    pub fn file(&self) -> Option<FileId> {
        match self {
            Self::TransientRead(id) | Self::PermanentLoss(id) | Self::Corrupt(id) => Some(*id),
            Self::TransientWrite => None,
        }
    }
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::TransientRead(id) => write!(f, "transient read failure on file {id}"),
            Self::TransientWrite => write!(f, "transient write failure"),
            Self::PermanentLoss(id) => write!(f, "file {id} permanently lost"),
            Self::Corrupt(id) => write!(f, "file {id} corrupt (checksum mismatch)"),
        }
    }
}

impl Error for IoError {}

/// A successful fallible I/O operation, with its cost breakdown.
#[derive(Debug, Clone)]
pub struct IoOutcome<T> {
    /// The operation's result (payload for reads, file id for writes).
    pub value: T,
    /// Simulated bytes moved.
    pub sim_bytes: u64,
    /// Base simulated cost of the operation in seconds.
    pub cost_secs: f64,
    /// Extra seconds from an injected latency spike (zero when none fired).
    pub spike_secs: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_injector_never_faults() {
        let inj = FaultInjector::disabled();
        for _ in 0..100 {
            assert_eq!(inj.decide_read(), ReadFault::None);
            assert_eq!(inj.decide_write(), WriteFault::None);
        }
        assert_eq!(inj.stats(), FaultStats::default());
    }

    #[test]
    fn schedule_is_deterministic_per_seed() {
        let cfg = FaultConfig::seeded(42)
            .with_transient_reads(0.3)
            .with_permanent_loss(0.1)
            .with_latency_spikes(0.2, 1.5);
        let run = |cfg: FaultConfig| {
            let inj = FaultInjector::new(cfg);
            (0..64).map(|_| inj.decide_read()).collect::<Vec<_>>()
        };
        assert_eq!(run(cfg), run(cfg));
        let other = run(FaultConfig { seed: 43, ..cfg });
        assert_ne!(run(cfg), other, "different seeds give different schedules");
    }

    #[test]
    fn rates_are_roughly_honoured() {
        let cfg = FaultConfig::seeded(7)
            .with_transient_reads(0.2)
            .with_permanent_loss(0.05);
        let inj = FaultInjector::new(cfg);
        let n = 20_000;
        for _ in 0..n {
            inj.decide_read();
        }
        let s = inj.stats();
        let frac = |c: u64| c as f64 / n as f64;
        assert!((frac(s.transient_reads) - 0.2).abs() < 0.02);
        assert!((frac(s.permanent_losses) - 0.05).abs() < 0.01);
        assert_eq!(s.latency_spikes, 0);
    }

    #[test]
    fn write_faults_only_draw_from_write_modes() {
        let cfg = FaultConfig::seeded(3).with_permanent_loss(1.0);
        let inj = FaultInjector::new(cfg);
        // Permanent loss is a read-side mode; writes must be unaffected.
        for _ in 0..32 {
            assert_eq!(inj.decide_write(), WriteFault::None);
        }
    }

    #[test]
    fn io_error_classification() {
        let f = FileId(3);
        assert!(IoError::TransientRead(f).is_transient());
        assert!(IoError::TransientWrite.is_transient());
        assert!(!IoError::PermanentLoss(f).is_transient());
        assert!(!IoError::Corrupt(f).is_transient(), "corruption is sticky");
        assert_eq!(IoError::TransientRead(f).file(), Some(f));
        assert_eq!(IoError::PermanentLoss(f).file(), Some(f));
        assert_eq!(IoError::Corrupt(f).file(), Some(f));
        assert_eq!(IoError::TransientWrite.file(), None);
        assert!(IoError::PermanentLoss(f).to_string().contains("lost"));
        assert!(IoError::Corrupt(f).to_string().contains("checksum"));
    }

    #[test]
    fn node_faults_draw_nothing_unless_configured() {
        // Per-file modes active, node rates zero: decide_node must not
        // consume a draw, so the read schedule is identical with and
        // without interleaved decide_node calls.
        let cfg = FaultConfig::seeded(42).with_transient_reads(0.3);
        let plain = FaultInjector::new(cfg);
        let mixed = FaultInjector::new(cfg);
        let mut a = Vec::new();
        let mut b = Vec::new();
        for _ in 0..32 {
            a.push(plain.decide_read());
            assert_eq!(mixed.decide_node(4), NodeFault::None);
            b.push(mixed.decide_read());
        }
        assert_eq!(a, b);
    }

    #[test]
    fn node_faults_fire_deterministically_and_pick_in_range() {
        let cfg = FaultConfig::seeded(9)
            .with_node_downs(0.3, 5)
            .with_node_kills(0.05);
        assert!(cfg.node_enabled());
        assert!(!cfg.enabled(), "node rates alone leave per-file modes off");
        let run = || {
            let inj = FaultInjector::new(cfg);
            (0..256).map(|_| inj.decide_node(4)).collect::<Vec<_>>()
        };
        let events = run();
        assert_eq!(events, run(), "same seed, same node schedule");
        let downs = events
            .iter()
            .filter(|e| matches!(e, NodeFault::Down(_)))
            .count();
        let kills = events
            .iter()
            .filter(|e| matches!(e, NodeFault::Kill(_)))
            .count();
        assert!(downs > 0 && kills > 0);
        for e in &events {
            if let NodeFault::Down(n) | NodeFault::Kill(n) = e {
                assert!(*n < 4, "victim index scaled into the topology");
            }
        }
    }

    #[test]
    fn slow_band_stacks_after_down_and_kill() {
        // Adding a slow rate must not move the kill/down bands: every event
        // fired without the slow rate fires identically with it; only
        // previous `None`s may become `Slow`.
        let base = FaultConfig::seeded(9)
            .with_node_downs(0.3, 5)
            .with_node_kills(0.05);
        let slow = base.with_node_slow(0.25, 8.0, 6);
        assert!(slow.node_enabled());
        assert!(!slow.enabled(), "slow is node-scoped, not per-file");
        let run = |cfg: FaultConfig| {
            let inj = FaultInjector::new(cfg);
            (0..256).map(|_| inj.decide_node(4)).collect::<Vec<_>>()
        };
        let without = run(base);
        let with = run(slow);
        assert_eq!(with, run(slow), "same seed, same schedule");
        let mut slows = 0usize;
        for (a, b) in without.iter().zip(&with) {
            match a {
                NodeFault::None => {
                    if let NodeFault::Slow(n) = b {
                        slows += 1;
                        assert!(*n < 4, "victim index scaled into the topology");
                    } else {
                        assert_eq!(a, b);
                    }
                }
                _ => assert_eq!(a, b, "kill/down band unchanged by slow rate"),
            }
        }
        assert!(slows > 0, "slow band fires");
    }

    #[test]
    fn corruption_rate_fires_and_counts() {
        let inj = FaultInjector::new(FaultConfig::seeded(5).with_corruption(1.0));
        assert_eq!(inj.decide_read(), ReadFault::Corrupt);
        assert_eq!(inj.stats().corruptions, 1);
        // Corruption is a read-side mode; writes are unaffected.
        assert_eq!(inj.decide_write(), WriteFault::None);
    }
}
