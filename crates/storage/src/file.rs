//! Stored file representation.

use std::fmt;
use std::sync::Arc;

/// Opaque handle to a file in the simulated FS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileId(pub u64);

impl fmt::Display for FileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "file#{}", self.0)
    }
}

/// A file stored in the simulated distributed FS.
///
/// `P` is the in-memory payload type (in DeepSea: the rows of a view
/// fragment). The payload is shared via [`Arc`] so a read never copies data.
/// `sim_bytes` is the *simulated* on-disk size — the quantity all cost and
/// pool accounting uses — which is deliberately decoupled from the in-memory
/// size so scaled-down instances can model cluster-scale data.
#[derive(Debug, Clone)]
pub struct StoredFile<P> {
    /// Human-readable name (for reports and debugging).
    pub name: String,
    /// Simulated on-disk size in bytes.
    pub sim_bytes: u64,
    /// In-memory payload.
    pub payload: Arc<P>,
}

impl<P> StoredFile<P> {
    /// Create a new stored file.
    pub fn new(name: impl Into<String>, sim_bytes: u64, payload: P) -> Self {
        Self {
            name: name.into(),
            sim_bytes,
            payload: Arc::new(payload),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_id_display() {
        assert_eq!(FileId(7).to_string(), "file#7");
    }

    #[test]
    fn payload_shared_not_copied() {
        let f = StoredFile::new("v1", 1024, vec![1u8, 2, 3]);
        let g = f.clone();
        assert!(Arc::ptr_eq(&f.payload, &g.payload));
        assert_eq!(g.sim_bytes, 1024);
        assert_eq!(g.name, "v1");
    }
}
