//! Stored file representation.

use std::fmt;
use std::sync::Arc;

/// Opaque handle to a file in the simulated FS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileId(pub u64);

impl fmt::Display for FileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "file#{}", self.0)
    }
}

/// Bit pattern XORed into a stored checksum to model corruption: the payload
/// is left intact but verification can never succeed again.
const CORRUPTION_MASK: u64 = 0xDEAD_BEEF_DEAD_BEEF;

/// A file stored in the simulated distributed FS.
///
/// `P` is the in-memory payload type (in DeepSea: the rows of a view
/// fragment). The payload is shared via [`Arc`] so a read never copies data.
/// `sim_bytes` is the *simulated* on-disk size — the quantity all cost and
/// pool accounting uses — which is deliberately decoupled from the in-memory
/// size so scaled-down instances can model cluster-scale data.
///
/// Every file carries a checksum computed at create time and verified on
/// every read. Corruption (bit rot, a torn write surviving a crash) is
/// modeled by perturbing the *stored* checksum — payload intact, checksum
/// mismatch — so a corrupt file is detected rather than silently served.
#[derive(Debug, Clone)]
pub struct StoredFile<P> {
    /// Human-readable name (for reports and debugging).
    pub name: String,
    /// Simulated on-disk size in bytes.
    pub sim_bytes: u64,
    /// In-memory payload.
    pub payload: Arc<P>,
    /// Checksum recorded at create time; [`StoredFile::verify`] recomputes
    /// and compares.
    checksum: u64,
}

impl<P> StoredFile<P> {
    /// Create a new stored file, computing its checksum.
    pub fn new(name: impl Into<String>, sim_bytes: u64, payload: P) -> Self {
        let name = name.into();
        let checksum = Self::compute_checksum(&name, sim_bytes);
        Self {
            name,
            sim_bytes,
            payload: Arc::new(payload),
            checksum,
        }
    }

    /// FNV-1a over the file's durable identity. The payload itself is opaque
    /// (`P` carries no hashing bound), so the simulated checksum covers the
    /// metadata that determines all cost and pool accounting.
    fn compute_checksum(name: &str, sim_bytes: u64) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        for b in name.bytes().chain(sim_bytes.to_le_bytes()) {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        h
    }

    /// The checksum recorded at create time.
    pub fn checksum(&self) -> u64 {
        self.checksum
    }

    /// Recompute the checksum and compare against the recorded one. `false`
    /// means the file is corrupt and must not be served.
    pub fn verify(&self) -> bool {
        self.checksum == Self::compute_checksum(&self.name, self.sim_bytes)
    }

    /// Corrupt the file in place: the payload stays intact but the stored
    /// checksum is perturbed, so every subsequent [`StoredFile::verify`]
    /// fails. Idempotent in effect (a corrupt file stays corrupt).
    pub(crate) fn corrupt(&mut self) {
        self.checksum = Self::compute_checksum(&self.name, self.sim_bytes) ^ CORRUPTION_MASK;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_id_display() {
        assert_eq!(FileId(7).to_string(), "file#7");
    }

    #[test]
    fn payload_shared_not_copied() {
        let f = StoredFile::new("v1", 1024, vec![1u8, 2, 3]);
        let g = f.clone();
        assert!(Arc::ptr_eq(&f.payload, &g.payload));
        assert_eq!(g.sim_bytes, 1024);
        assert_eq!(g.name, "v1");
    }

    #[test]
    fn fresh_file_verifies() {
        let f = StoredFile::new("v1", 1024, vec![1u8]);
        assert!(f.verify());
    }

    #[test]
    fn checksum_depends_on_identity() {
        let a = StoredFile::new("v1", 1024, vec![1u8]);
        let b = StoredFile::new("v2", 1024, vec![1u8]);
        let c = StoredFile::new("v1", 1025, vec![1u8]);
        assert_ne!(a.checksum(), b.checksum());
        assert_ne!(a.checksum(), c.checksum());
    }

    #[test]
    fn corruption_breaks_verification_persistently() {
        let mut f = StoredFile::new("v1", 1024, vec![1u8]);
        f.corrupt();
        assert!(!f.verify(), "corrupt file must fail verification");
        f.corrupt();
        assert!(!f.verify(), "corrupting twice stays corrupt");
        assert_eq!(*f.payload, vec![1u8], "payload itself is intact");
    }
}
