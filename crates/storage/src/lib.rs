//! # deepsea-storage
//!
//! A simulated distributed file system substrate for DeepSea, standing in for
//! HDFS in the original paper. It models the three storage properties the
//! DeepSea algorithms depend on:
//!
//! 1. **Block-oriented files** — a file of `n` bytes occupies
//!    `ceil(n / block_size)` blocks, and reading it spawns one map task per
//!    block (see [`BlockConfig`]). This drives the paper's observation that
//!    equi-depth partitioning issues 40–50% more map tasks than DeepSea, and
//!    its rule that a fragment should never be smaller than one block.
//! 2. **Asymmetric read/write cost** — writing to the (replicated) FS is much
//!    more expensive per byte than reading (`wwrite ≫ wread`, §7.2 of the
//!    paper). See [`CostWeights`].
//! 3. **A bounded materialized-view pool** — total view/fragment storage must
//!    stay below `Smax` ([`PoolAccountant`]).
//!
//! For robustness testing the FS can also inject deterministic, seed-driven
//! faults — transient read/write failures, permanent fragment loss, checksum
//! corruption, and latency spikes — via [`FaultInjector`]; see the [`fault`]
//! module. Every stored file carries a checksum verified on read, so corrupt
//! data is detected rather than served.
//!
//! The FS can further be sharded over a simulated cluster ([`NodeSet`], see
//! the [`node`] module): files are placed on datanodes by a deterministic
//! partition-aware hash, reads fail over to the first live replica, and
//! whole-node outages — manual or drawn from the injector's seeded stream —
//! make un-replicated files fail as transient (node down) or convert them to
//! permanent loss (node dead).
//!
//! For crash-restart durability the crate provides an append-only,
//! snapshot-truncated [`Journal`] with monotonic LSNs and an armable crash
//! latch ([`SimulatedCrash`]); DeepSea journals catalog mutations through it
//! and replays them on cold start.
//!
//! Files carry an arbitrary in-memory payload (the actual rows of a view
//! fragment) *and* a simulated byte size, so the same object supports real
//! query execution and cluster-scale cost accounting.

pub mod block;
pub mod fault;
pub mod file;
pub mod fs;
pub mod journal;
pub mod ledger;
pub mod node;
pub mod pool;
pub mod sync;
pub mod weights;

pub use block::BlockConfig;
pub use fault::{FaultConfig, FaultInjector, FaultStats, IoError, IoOutcome};
pub use file::{FileId, StoredFile};
pub use fs::{HedgeConfig, HedgeTrace, ShardedFs, SimFs};
pub use journal::{Journal, JournalStats, Lsn, ReplayedLog, SimulatedCrash};
pub use ledger::CostLedger;
pub use node::{placement_key, NodeConfig, NodeId, NodeSet, NodeState, NodeStats, Route};
pub use pool::{PoolAccountant, PoolError};
pub use sync::EpochCell;
pub use weights::CostWeights;
