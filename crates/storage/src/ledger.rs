//! Accumulated I/O accounting.

/// A running ledger of simulated I/O performed against the file system.
///
/// The execution engine charges every scan and materialization here; the
/// experiment harness reads it back to report bytes-read / bytes-written /
/// task-count columns.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CostLedger {
    /// Total simulated bytes read.
    pub read_bytes: u64,
    /// Total simulated bytes written.
    pub write_bytes: u64,
    /// Number of file-read operations.
    pub files_read: u64,
    /// Number of file-write (create) operations.
    pub files_written: u64,
    /// Number of file deletions (evictions).
    pub files_deleted: u64,
}

impl CostLedger {
    /// A fresh, empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a read of `bytes`.
    pub fn record_read(&mut self, bytes: u64) {
        self.read_bytes += bytes;
        self.files_read += 1;
    }

    /// Record a write of `bytes`.
    pub fn record_write(&mut self, bytes: u64) {
        self.write_bytes += bytes;
        self.files_written += 1;
    }

    /// Record a deletion.
    pub fn record_delete(&mut self) {
        self.files_deleted += 1;
    }

    /// Merge another ledger into this one.
    pub fn absorb(&mut self, other: &CostLedger) {
        self.read_bytes += other.read_bytes;
        self.write_bytes += other.write_bytes;
        self.files_read += other.files_read;
        self.files_written += other.files_written;
        self.files_deleted += other.files_deleted;
    }

    /// Difference `self - earlier`, useful for per-query deltas.
    ///
    /// # Panics
    /// Panics in debug builds if `earlier` is not a prefix of `self`.
    pub fn since(&self, earlier: &CostLedger) -> CostLedger {
        debug_assert!(self.read_bytes >= earlier.read_bytes);
        debug_assert!(self.write_bytes >= earlier.write_bytes);
        CostLedger {
            read_bytes: self.read_bytes - earlier.read_bytes,
            write_bytes: self.write_bytes - earlier.write_bytes,
            files_read: self.files_read - earlier.files_read,
            files_written: self.files_written - earlier.files_written,
            files_deleted: self.files_deleted - earlier.files_deleted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate() {
        let mut l = CostLedger::new();
        l.record_read(100);
        l.record_read(50);
        l.record_write(30);
        l.record_delete();
        assert_eq!(l.read_bytes, 150);
        assert_eq!(l.files_read, 2);
        assert_eq!(l.write_bytes, 30);
        assert_eq!(l.files_written, 1);
        assert_eq!(l.files_deleted, 1);
    }

    #[test]
    fn absorb_merges() {
        let mut a = CostLedger::new();
        a.record_read(10);
        let mut b = CostLedger::new();
        b.record_write(20);
        a.absorb(&b);
        assert_eq!(a.read_bytes, 10);
        assert_eq!(a.write_bytes, 20);
    }

    #[test]
    fn since_gives_delta() {
        let mut l = CostLedger::new();
        l.record_read(100);
        let snapshot = l;
        l.record_read(40);
        l.record_write(7);
        let d = l.since(&snapshot);
        assert_eq!(d.read_bytes, 40);
        assert_eq!(d.write_bytes, 7);
        assert_eq!(d.files_read, 1);
    }
}
