//! Eviction-pressure serving scenario: the DS-tight variant (reduced
//! `Smax`) served to multiple concurrent clients through [`ViewServer`].
//!
//! Under a tight pool limit the writer keeps materializing and evicting,
//! so snapshot readers routinely race epoch churn — exactly the regime
//! where client-visible latency separates from the writer's serialized
//! pipeline. The scenario runs the standard fig5 workload under the
//! deterministic simulated scheduler and reports client latency
//! percentiles (p50/p95/p99) straight from the observer's histograms,
//! plus the epoch-lag and divergence counters the serving layer emits.
//!
//! `BENCH_pressure.json` is the machine-readable side product, in the
//! same spirit as fig5a's `BENCH.json`.

use std::sync::Arc;

use deepsea_core::{
    baselines, DeepSea, NodeAction, ObsConfig, Observer, ServeReport, ServerConfig, ShedPolicy,
    ViewServer,
};
use deepsea_engine::ClusterSim;
use deepsea_storage::{BlockConfig, FaultInjector, HedgeConfig, NodeConfig, NodeSet, SimFs};
use serde::ObjectBuilder;

use crate::experiments::{sdss_catalog, ExperimentReport, Scale, SEED};
use crate::report::{secs, table};

/// Divisor applied to the catalog's base bytes to get the tight pool
/// limit: small enough that the knapsack is forced to evict throughout
/// the run, matching the DS-tight variant of the concurrency suite.
const TIGHT_SMAX_DIVISOR: u64 = 40;

/// Logical clients hammering the server in the pressure scenario.
const PRESSURE_CLIENTS: usize = 4;

/// Seed for the scheduler's arrival/interleaving LCG.
const PRESSURE_SEED: u64 = 42;

/// Mean open-loop inter-arrival gap in simulated seconds — short enough
/// that reads overlap commits and each other.
const PRESSURE_GAP_SECS: f64 = 5.0;

/// The pressure scenario plus its machine-readable side products.
pub struct PressureRun {
    /// The rendered report.
    pub report: ExperimentReport,
    /// `BENCH_pressure.json`: scheduler parameters, latency percentiles
    /// (overall and per client), divergence and epoch-lag summary.
    pub bench_json: String,
    /// The observer that watched the run (latency histograms, spans,
    /// server counters).
    pub observer: Observer,
}

/// Run the eviction-pressure serving scenario.
pub fn pressure(scale: Scale) -> PressureRun {
    let catalog = sdss_catalog(scale.instance());
    let plans = deepsea_workload::sequences::fig5_workload(scale.fig5_queries(), SEED);
    let smax = catalog.total_base_bytes() / TIGHT_SMAX_DIVISOR;
    let config = baselines::deepsea().with_phi(0.05).with_smax(smax);

    let obs = Observer::new(ObsConfig::on());
    let cluster = ClusterSim::paper_default();
    let fs = Arc::new(SimFs::new(BlockConfig::default(), cluster.weights));
    let ds =
        DeepSea::with_parts(Arc::clone(&catalog), fs, cluster, config).with_observer(obs.clone());
    let mut server = ViewServer::new(
        ds,
        ServerConfig {
            clients: PRESSURE_CLIENTS,
            seed: PRESSURE_SEED,
            mean_gap_secs: PRESSURE_GAP_SECS,
            ..ServerConfig::default()
        },
    );
    let served = server
        .run(&plans)
        .unwrap_or_else(|e| panic!("pressure scenario failed: {e}"));

    let snap = obs.metrics_snapshot();
    let overall = snap
        .histogram("deepsea_client_latency_secs", None)
        .and_then(|h| h.percentiles())
        .unwrap_or((0.0, 0.0, 0.0));

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut clients_json = ObjectBuilder::new();
    for k in 0..PRESSURE_CLIENTS {
        let label = format!("client{k}");
        if let Some((p50, p95, p99)) = snap
            .histogram("deepsea_client_latency_secs", Some(&label))
            .and_then(|h| h.percentiles())
        {
            rows.push(vec![label.clone(), secs(p50), secs(p95), secs(p99)]);
            clients_json = clients_json.field(
                &label,
                ObjectBuilder::new()
                    .field("p50_secs", p50)
                    .field("p95_secs", p95)
                    .field("p99_secs", p99)
                    .build(),
            );
        }
    }
    rows.push(vec![
        "all".to_string(),
        secs(overall.0),
        secs(overall.1),
        secs(overall.2),
    ]);

    let commits = snap.counter("deepsea_server_commits_total", None);
    let divergent = snap.counter("deepsea_server_divergent_reads_total", None);
    let p99_ex = served
        .percentile_exemplar(0.99)
        .expect("invariant: pressure run serves at least one ticket");
    let tail_buckets = served.latency_exemplars().len() as u64;

    let mut body = table(&["client", "p50", "p95", "p99"], &rows);
    body.push_str(&format!(
        "\npool limit Smax = base/{TIGHT_SMAX_DIVISOR}; {PRESSURE_CLIENTS} clients, \
         mean gap {PRESSURE_GAP_SECS}s, seed {PRESSURE_SEED}\n\
         commits: {commits}   divergent reads: {divergent}   \
         max epoch lag: {}   makespan: {}\n\
         p99 exemplar: ticket {} (trace {}, {}); {tail_buckets} occupied latency buckets\n",
        served.max_epoch_lag,
        secs(served.makespan_secs),
        p99_ex.ticket,
        p99_ex.ticket as u64 + 1,
        secs(p99_ex.latency_secs),
    ));

    let bench_json = ObjectBuilder::new()
        .field("experiment", "pressure")
        .field(
            "scale",
            match scale {
                Scale::Quick => "quick",
                Scale::Paper => "paper",
            },
        )
        .field("queries", plans.len() as u64)
        .field("clients", PRESSURE_CLIENTS as u64)
        .field("seed", PRESSURE_SEED)
        .field("mean_gap_secs", PRESSURE_GAP_SECS)
        .field("smax_bytes", smax)
        .field(
            "latency_secs",
            ObjectBuilder::new()
                .field("p50", overall.0)
                .field("p95", overall.1)
                .field("p99", overall.2)
                .field("per_client", clients_json.build())
                .build(),
        )
        .field("commits", commits)
        .field("divergent_reads", divergent)
        .field("max_epoch_lag", served.max_epoch_lag)
        .field("makespan_secs", served.makespan_secs)
        .field("state_digest", served.state_digest)
        .field(
            "p99_exemplar",
            ObjectBuilder::new()
                .field("ticket", p99_ex.ticket as u64)
                .field("trace_id", p99_ex.ticket as u64 + 1)
                .field("latency_secs", p99_ex.latency_secs)
                .build(),
        )
        .field("tail_buckets", tail_buckets)
        .build()
        .to_json();

    let report = ExperimentReport::new(
        "pressure",
        &format!(
            "Eviction pressure under concurrency ({} queries, {} clients, Smax = base/{})",
            plans.len(),
            PRESSURE_CLIENTS,
            TIGHT_SMAX_DIVISOR
        ),
        body,
    );
    PressureRun {
        report,
        bench_json,
        observer: obs,
    }
}

/// Datanodes in the node-failure scenario's simulated cluster.
const NODE_FAILURE_NODES: u32 = 4;

/// Commits each node spends down in the rolling outage (one node is down at
/// any time; the outage hops to the next node every window).
const NODE_OUTAGE_WINDOW: usize = 5;

/// The rolling one-node outage: node `w % NODES` goes down at commit
/// `w * WINDOW` and comes back at commit `(w + 1) * WINDOW`, where the next
/// node's outage begins. Up events precede Down events at each boundary so
/// exactly one node is down at any instant.
fn rolling_outage(n: usize) -> Vec<(usize, u32, NodeAction)> {
    let mut schedule = Vec::new();
    for w in 0..n.div_ceil(NODE_OUTAGE_WINDOW) {
        let node = (w % NODE_FAILURE_NODES as usize) as u32;
        if w > 0 {
            let prev = ((w - 1) % NODE_FAILURE_NODES as usize) as u32;
            schedule.push((w * NODE_OUTAGE_WINDOW, prev, NodeAction::Up));
        }
        schedule.push((w * NODE_OUTAGE_WINDOW, node, NodeAction::Down));
    }
    schedule
}

/// One sub-run of the node-failure scenario at a fixed replication factor.
struct NodeFailureOutcome {
    replication: u32,
    p50: f64,
    p95: f64,
    p99: f64,
    degraded_reads: u64,
    degraded_rate: f64,
    commits: u64,
    makespan_secs: f64,
    state_digest: u64,
    observer: Observer,
}

fn node_failure_at(replication: u32, scale: Scale) -> NodeFailureOutcome {
    let catalog = sdss_catalog(scale.instance());
    let plans = deepsea_workload::sequences::fig5_workload(scale.fig5_queries(), SEED);
    let smax = catalog.total_base_bytes() / TIGHT_SMAX_DIVISOR;
    let config = baselines::deepsea().with_phi(0.05).with_smax(smax);

    let obs = Observer::new(ObsConfig::on());
    let cluster = ClusterSim::paper_default();
    let fs = Arc::new(SimFs::with_cluster(
        BlockConfig::default(),
        cluster.weights,
        FaultInjector::disabled(),
        NodeSet::new(NodeConfig::new(NODE_FAILURE_NODES, replication)),
    ));
    let ds =
        DeepSea::with_parts(Arc::clone(&catalog), fs, cluster, config).with_observer(obs.clone());
    let mut server = ViewServer::new(
        ds,
        ServerConfig {
            clients: PRESSURE_CLIENTS,
            seed: PRESSURE_SEED,
            mean_gap_secs: PRESSURE_GAP_SECS,
            node_schedule: rolling_outage(plans.len()),
            ..ServerConfig::default()
        },
    );
    let served = server
        .run(&plans)
        .unwrap_or_else(|e| panic!("node-failure scenario failed: {e}"));

    let snap = obs.metrics_snapshot();
    let (p50, p95, p99) = snap
        .histogram("deepsea_client_latency_secs", None)
        .and_then(|h| h.percentiles())
        .unwrap_or((0.0, 0.0, 0.0));
    NodeFailureOutcome {
        replication,
        p50,
        p95,
        p99,
        degraded_reads: served.degraded_reads,
        degraded_rate: served.degraded_reads as f64 / plans.len() as f64,
        commits: snap.counter("deepsea_server_commits_total", None),
        makespan_secs: served.makespan_secs,
        state_digest: served.state_digest,
        observer: obs,
    }
}

/// Run the node-failure serving scenario: the pressure workload on a
/// 4-node sharded FS under a rolling one-node outage, once at replication 1
/// (fragment-level base-table patching shows up as degraded reads) and once
/// at replication 2 (failover to the surviving replica is free — the
/// degraded-read rate must be zero). `BENCH_node_failure.json` carries
/// latency percentiles and the degraded-read rate for both.
pub fn node_failure(scale: Scale) -> PressureRun {
    let r1 = node_failure_at(1, scale);
    let r2 = node_failure_at(2, scale);

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut repl_json = ObjectBuilder::new();
    for o in [&r1, &r2] {
        rows.push(vec![
            format!("r={}", o.replication),
            secs(o.p50),
            secs(o.p95),
            secs(o.p99),
            format!("{:.1}%", o.degraded_rate * 100.0),
        ]);
        repl_json = repl_json.field(
            &format!("r{}", o.replication),
            ObjectBuilder::new()
                .field("replication", o.replication as u64)
                .field("p50_secs", o.p50)
                .field("p95_secs", o.p95)
                .field("p99_secs", o.p99)
                .field("degraded_reads", o.degraded_reads)
                .field("degraded_rate", o.degraded_rate)
                .field("commits", o.commits)
                .field("makespan_secs", o.makespan_secs)
                .field("state_digest", o.state_digest)
                .build(),
        );
    }

    let mut body = table(&["replication", "p50", "p95", "p99", "degraded"], &rows);
    body.push_str(&format!(
        "\n{NODE_FAILURE_NODES}-node cluster, rolling one-node outage every \
         {NODE_OUTAGE_WINDOW} commits; Smax = base/{TIGHT_SMAX_DIVISOR}, \
         {PRESSURE_CLIENTS} clients, mean gap {PRESSURE_GAP_SECS}s, seed {PRESSURE_SEED}\n\
         degraded reads r=1: {}   r=2: {}\n",
        r1.degraded_reads, r2.degraded_reads,
    ));

    let bench_json = ObjectBuilder::new()
        .field("experiment", "node_failure")
        .field(
            "scale",
            match scale {
                Scale::Quick => "quick",
                Scale::Paper => "paper",
            },
        )
        .field("queries", r1.commits)
        .field("nodes", NODE_FAILURE_NODES as u64)
        .field("outage_window", NODE_OUTAGE_WINDOW as u64)
        .field("clients", PRESSURE_CLIENTS as u64)
        .field("seed", PRESSURE_SEED)
        .field("mean_gap_secs", PRESSURE_GAP_SECS)
        .field("by_replication", repl_json.build())
        .build()
        .to_json();

    let report = ExperimentReport::new(
        "node-failure",
        &format!(
            "Serving under a rolling one-node outage ({NODE_FAILURE_NODES} nodes, \
             replication 1 vs 2, window {NODE_OUTAGE_WINDOW} commits)"
        ),
        body,
    );
    PressureRun {
        report,
        bench_json,
        observer: r1.observer,
    }
}

/// Commits each gray-slow window lasts in the overload scenario (the
/// slowness hops to the next node every window, like the rolling outage).
const OVERLOAD_SLOW_WINDOW: usize = 5;

/// Latency multiplier a gray-failed node serves reads at.
const OVERLOAD_SLOW_MULT: f64 = 8.0;

/// Mean client think time between queries in the overload scenario. Wider
/// than the eviction-pressure gap so the scenario sits at moderate overload
/// — enough queueing that deadlines bite, not so much that nearly every
/// ticket sheds.
const OVERLOAD_GAP_SECS: f64 = 30.0;

/// Mean per-ticket deadline (simulated seconds after arrival) for the
/// deadline-aware shedder. Calibrated so gray-failure-amplified reads blow
/// their deadlines (the hedging-off arm sheds heavily) while hedged reads
/// comfortably make them — the headline is that hedging turns deadline
/// misses back into served answers.
const OVERLOAD_DEADLINE_SECS: f64 = 400.0;

/// Bounded admission queue depth for the overload scenario.
const OVERLOAD_QUEUE: usize = 6;

/// Hedge threshold: a primary view read projected past this many simulated
/// seconds races the next live replica. Sits above a healthy per-file read
/// but far below one amplified [`OVERLOAD_SLOW_MULT`]×, so hedges fire on
/// gray-failed nodes and stay bit-transparent on healthy ones.
const OVERLOAD_HEDGE_AFTER_SECS: f64 = 1.0;

/// Exact (nearest-rank) p50/p95/p99 over a latency series — used where the
/// observer's power-of-two histogram buckets are too coarse.
fn exact_percentiles(mut xs: Vec<f64>) -> (f64, f64, f64) {
    if xs.is_empty() {
        return (0.0, 0.0, 0.0);
    }
    xs.sort_by(f64::total_cmp);
    let pick = |p: f64| xs[((xs.len() - 1) as f64 * p).round() as usize];
    (pick(0.50), pick(0.95), pick(0.99))
}

/// The rolling gray failure: node `w % NODES` serves reads at
/// [`OVERLOAD_SLOW_MULT`]× from commit `w * WINDOW`, recovering at the next
/// boundary when the slowness hops to the next node. Clears precede opens
/// so exactly one node is slow at any instant; every node stays live and
/// serving throughout.
fn rolling_slowness(n: usize) -> Vec<(usize, u32, f64)> {
    let mut schedule = Vec::new();
    for w in 0..n.div_ceil(OVERLOAD_SLOW_WINDOW) {
        let node = (w % NODE_FAILURE_NODES as usize) as u32;
        if w > 0 {
            let prev = ((w - 1) % NODE_FAILURE_NODES as usize) as u32;
            schedule.push((w * OVERLOAD_SLOW_WINDOW, prev, 1.0));
        }
        schedule.push((w * OVERLOAD_SLOW_WINDOW, node, OVERLOAD_SLOW_MULT));
    }
    schedule
}

/// One arm of the overload scenario: hedging on or off, everything else
/// (workload, schedule, seed, shedding policy) held identical.
struct OverloadOutcome {
    hedging: bool,
    p50: f64,
    p95: f64,
    p99: f64,
    shed_reads: u64,
    shed_rate: f64,
    hedges_issued: u64,
    hedges_won: u64,
    hedges_cancelled: u64,
    hedge_extra_secs: f64,
    incorrect_answers: u64,
    commits: u64,
    makespan_secs: f64,
    state_digest: u64,
    observer: Observer,
    /// The full serve report — per-ticket records for exemplar linkage and
    /// the causal-trace acceptance tests.
    served: ServeReport,
}

fn overload_at(hedging: bool, scale: Scale) -> OverloadOutcome {
    let catalog = sdss_catalog(scale.instance());
    let plans = deepsea_workload::sequences::fig5_workload(scale.fig5_queries(), SEED);
    // Unlimited pool: the more reads are view-backed, the more surface the
    // rolling gray slowness (and therefore hedging) actually touches.
    let config = baselines::deepsea().with_phi(0.05);

    let obs = Observer::new(ObsConfig::on());
    let cluster = ClusterSim::paper_default();
    let fs = Arc::new(SimFs::with_cluster(
        BlockConfig::default(),
        cluster.weights,
        FaultInjector::disabled(),
        NodeSet::new(NodeConfig::new(NODE_FAILURE_NODES, 2)),
    ));
    if hedging {
        fs.set_hedge(Some(HedgeConfig::after_secs(OVERLOAD_HEDGE_AFTER_SECS)));
    }
    let ds = DeepSea::with_parts(Arc::clone(&catalog), Arc::clone(&fs), cluster, config)
        .with_observer(obs.clone());
    let mut server = ViewServer::new(
        ds,
        ServerConfig {
            clients: PRESSURE_CLIENTS,
            seed: PRESSURE_SEED,
            mean_gap_secs: OVERLOAD_GAP_SECS,
            slow_schedule: rolling_slowness(plans.len()),
            deadline_secs: Some(OVERLOAD_DEADLINE_SECS),
            max_queue: Some(OVERLOAD_QUEUE),
            shed_policy: ShedPolicy::ServeStale,
            ..ServerConfig::default()
        },
    );
    let served = server
        .run(&plans)
        .unwrap_or_else(|e| panic!("overload scenario failed: {e}"));

    // Correctness audit: every answer actually handed to a client (served
    // or stale-shed; rejects hand back nothing) must equal the committed
    // one. Rewritings, hedged replica reads and degraded modes are all
    // semantically transparent, so this count must be zero.
    let incorrect_answers = served
        .records
        .iter()
        .filter(|r| !r.read_fingerprint.is_empty() && r.read_fingerprint != r.committed_fingerprint)
        .count() as u64;

    let snap = obs.metrics_snapshot();
    // Exact percentiles over every client-visible latency (shed tickets
    // included — a rejection is an answer too). The observer's histogram is
    // bucket-quantized, too coarse to resolve the hedging-on tail cut.
    let (p50, p95, p99) = exact_percentiles(served.latencies_secs());
    let stats = fs.fault_stats();
    OverloadOutcome {
        hedging,
        p50,
        p95,
        p99,
        shed_reads: served.shed_reads,
        shed_rate: served.shed_reads as f64 / plans.len() as f64,
        hedges_issued: stats.hedges_issued,
        hedges_won: stats.hedges_won,
        hedges_cancelled: stats.hedges_cancelled,
        hedge_extra_secs: fs.hedge_extra_secs(),
        incorrect_answers,
        commits: snap.counter("deepsea_server_commits_total", None),
        makespan_secs: served.makespan_secs,
        state_digest: served.state_digest,
        observer: obs,
        served,
    }
}

/// Run the overload serving scenario: the pressure workload on a 4-node
/// sharded FS (replication 2) under a rolling gray failure — one node at a
/// time serving reads [`OVERLOAD_SLOW_MULT`]× slower — with per-ticket
/// deadlines, a bounded admission queue, and stale-serving load shedding.
/// Runs once with hedged replica reads off and once on; everything else is
/// bit-identical. `BENCH_overload.json` carries latency percentiles, the
/// shed rate, hedge counters and the incorrect-answer audit (always zero)
/// for both arms — the headline being hedging's simulated p99 cut.
pub fn overload(scale: Scale) -> PressureRun {
    let off = overload_at(false, scale);
    let on = overload_at(true, scale);
    let off_ex = off
        .served
        .percentile_exemplar(0.99)
        .expect("invariant: overload run serves at least one ticket")
        .clone();
    let on_ex = on
        .served
        .percentile_exemplar(0.99)
        .expect("invariant: overload run serves at least one ticket")
        .clone();

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut arms_json = ObjectBuilder::new();
    for o in [&off, &on] {
        let p99_ex = o
            .served
            .percentile_exemplar(0.99)
            .expect("invariant: overload run serves at least one ticket");
        rows.push(vec![
            if o.hedging {
                "hedging on"
            } else {
                "hedging off"
            }
            .to_string(),
            secs(o.p50),
            secs(o.p95),
            secs(o.p99),
            format!("{:.1}%", o.shed_rate * 100.0),
            o.hedges_won.to_string(),
        ]);
        arms_json = arms_json.field(
            if o.hedging {
                "hedging_on"
            } else {
                "hedging_off"
            },
            ObjectBuilder::new()
                .field("p50_secs", o.p50)
                .field("p95_secs", o.p95)
                .field("p99_secs", o.p99)
                .field("shed_reads", o.shed_reads)
                .field("shed_rate", o.shed_rate)
                .field("hedges_issued", o.hedges_issued)
                .field("hedges_won", o.hedges_won)
                .field("hedges_cancelled", o.hedges_cancelled)
                .field("hedge_extra_secs", o.hedge_extra_secs)
                .field("incorrect_answers", o.incorrect_answers)
                .field("commits", o.commits)
                .field("makespan_secs", o.makespan_secs)
                .field("state_digest", o.state_digest)
                .field(
                    "p99_exemplar",
                    ObjectBuilder::new()
                        .field("ticket", p99_ex.ticket as u64)
                        .field("trace_id", p99_ex.ticket as u64 + 1)
                        .field("latency_secs", p99_ex.latency_secs)
                        .build(),
                )
                .field("tail_buckets", o.served.latency_exemplars().len() as u64)
                .build(),
        );
    }

    let mut body = table(&["arm", "p50", "p95", "p99", "shed", "hedge wins"], &rows);
    body.push_str(&format!(
        "\nrolling {OVERLOAD_SLOW_MULT}x gray slowness every {OVERLOAD_SLOW_WINDOW} commits \
         ({NODE_FAILURE_NODES} nodes, replication 2); deadline {OVERLOAD_DEADLINE_SECS}s, \
         queue {OVERLOAD_QUEUE}, serve-stale shedding; {PRESSURE_CLIENTS} clients, \
         mean gap {OVERLOAD_GAP_SECS}s, seed {PRESSURE_SEED}\n\
         p99 hedging off: {}  on: {}   incorrect answers: {}\n\
         p99 exemplar off: ticket {} (trace {})  on: ticket {} (trace {})\n",
        secs(off.p99),
        secs(on.p99),
        off.incorrect_answers + on.incorrect_answers,
        off_ex.ticket,
        off_ex.ticket as u64 + 1,
        on_ex.ticket,
        on_ex.ticket as u64 + 1,
    ));

    let bench_json = ObjectBuilder::new()
        .field("experiment", "overload")
        .field(
            "scale",
            match scale {
                Scale::Quick => "quick",
                Scale::Paper => "paper",
            },
        )
        .field("queries", off.commits)
        .field("nodes", NODE_FAILURE_NODES as u64)
        .field("replication", 2u64)
        .field("slow_window", OVERLOAD_SLOW_WINDOW as u64)
        .field("slow_multiplier", OVERLOAD_SLOW_MULT)
        .field("deadline_secs", OVERLOAD_DEADLINE_SECS)
        .field("max_queue", OVERLOAD_QUEUE as u64)
        .field("shed_policy", "serve_stale")
        .field("hedge_after_secs", OVERLOAD_HEDGE_AFTER_SECS)
        .field("clients", PRESSURE_CLIENTS as u64)
        .field("seed", PRESSURE_SEED)
        .field("mean_gap_secs", OVERLOAD_GAP_SECS)
        .field("by_hedging", arms_json.build())
        .build()
        .to_json();

    let report = ExperimentReport::new(
        "overload",
        &format!(
            "Serving under rolling gray slowness ({NODE_FAILURE_NODES} nodes, \
             {OVERLOAD_SLOW_MULT}x, deadline shedding, hedging off vs on)"
        ),
        body,
    );
    PressureRun {
        report,
        bench_json,
        observer: on.observer,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepsea_obs::{chrome_trace_json, parse_prometheus, TraceForest};

    #[test]
    fn pressure_quick_reports_percentiles_and_pressure() {
        let run = pressure(Scale::Quick);
        assert!(run.bench_json.contains("\"experiment\":\"pressure\""));
        assert!(run.bench_json.contains("\"p99\""));
        let snap = run.observer.metrics_snapshot();
        // Every query commits, and the tight pool must actually evict.
        assert_eq!(snap.counter("deepsea_server_commits_total", None), 60);
        let (p50, p95, p99) = snap
            .histogram("deepsea_client_latency_secs", None)
            .and_then(|h| h.percentiles())
            .expect("latency histogram populated");
        assert!(p50 > 0.0 && p50 <= p95 && p95 <= p99);
        assert!(
            snap.counter("deepsea_evictions_total", None) > 0,
            "tight Smax should evict during the run"
        );
    }

    #[test]
    fn pressure_is_deterministic() {
        let a = pressure(Scale::Quick);
        let b = pressure(Scale::Quick);
        assert_eq!(a.bench_json, b.bench_json);
    }

    #[test]
    fn rolling_outage_keeps_one_node_down() {
        let schedule = rolling_outage(60);
        // Replay the schedule: exactly one node down after each boundary.
        let mut down: Vec<u32> = Vec::new();
        let mut boundary = 0usize;
        for &(when, node, action) in &schedule {
            assert!(when >= boundary, "schedule must be in ticket order");
            boundary = when;
            match action {
                NodeAction::Down => down.push(node),
                NodeAction::Up => down.retain(|&n| n != node),
                NodeAction::Kill => unreachable!("rolling outage never kills"),
            }
            if matches!(action, NodeAction::Down) {
                assert_eq!(down.len(), 1, "exactly one node down at a time");
            }
        }
    }

    #[test]
    fn node_failure_quick_degrades_only_unreplicated() {
        let run = node_failure(Scale::Quick);
        assert!(run.bench_json.contains("\"experiment\":\"node_failure\""));
        let r1 = node_failure_at(1, Scale::Quick);
        let r2 = node_failure_at(2, Scale::Quick);
        assert_eq!(r1.commits, 60);
        assert_eq!(r2.commits, 60);
        assert!(
            r1.degraded_reads > 0,
            "replication 1 under a rolling outage must hit degraded reads"
        );
        assert_eq!(
            r2.degraded_reads, 0,
            "replication 2 fails over to the surviving replica — no degradation"
        );
    }

    #[test]
    fn node_failure_is_deterministic() {
        let a = node_failure(Scale::Quick);
        let b = node_failure(Scale::Quick);
        assert_eq!(a.bench_json, b.bench_json);
    }

    #[test]
    fn rolling_slowness_keeps_one_node_slow() {
        let schedule = rolling_slowness(60);
        let mut slow: Vec<u32> = Vec::new();
        let mut boundary = 0usize;
        for &(when, node, mult) in &schedule {
            assert!(when >= boundary, "schedule must be in ticket order");
            boundary = when;
            if mult > 1.0 {
                slow.push(node);
                assert_eq!(slow.len(), 1, "exactly one node slow at a time");
            } else {
                slow.retain(|&n| n != node);
            }
        }
    }

    #[test]
    fn overload_quick_hedging_cuts_p99_without_wrong_answers() {
        let off = overload_at(false, Scale::Quick);
        let on = overload_at(true, Scale::Quick);
        assert_eq!(off.commits, 60);
        assert_eq!(on.commits, 60);
        // Gray slowness never changes an answer, with or without hedging.
        assert_eq!(off.incorrect_answers, 0);
        assert_eq!(on.incorrect_answers, 0);
        // Both arms commit the identical state trajectory: slowness and
        // hedging shape cost, never catalog decisions.
        assert_eq!(off.state_digest, on.state_digest);
        // The shedder fires deterministically where the gray tail bites —
        // and hedging wins back deadline misses, so it never sheds more.
        assert!(off.shed_reads > 0, "overload must shed without hedging");
        assert!(
            on.shed_reads <= off.shed_reads,
            "hedging must not increase sheds: on {} > off {}",
            on.shed_reads,
            off.shed_reads
        );
        // Hedging actually fires and actually wins against the slow node…
        assert!(on.hedges_issued > 0, "slow reads must trigger hedges");
        assert!(on.hedges_won > 0, "some hedge must beat the slow primary");
        assert_eq!(off.hedges_issued, 0, "hedging off must not hedge");
        // …and the tail comes down for it.
        assert!(
            on.p99 < off.p99,
            "hedging must cut the simulated p99: on {} >= off {}",
            on.p99,
            off.p99
        );
    }

    #[test]
    fn overload_is_deterministic() {
        let a = overload(Scale::Quick);
        let b = overload(Scale::Quick);
        assert_eq!(a.bench_json, b.bench_json);
    }

    /// Assert the causal-trace contract over one overload arm: every shed
    /// or hedged ticket's spans hang off its ticket root, and the critical
    /// path's self times telescope to exactly the reported latency.
    /// Returns `(shed_checked, hedged_checked)`.
    fn check_arm_traces(o: &OverloadOutcome) -> (usize, usize) {
        let spans = o.observer.spans_snapshot();
        let forest = TraceForest::from_spans(&spans);
        let (mut shed_checked, mut hedged_checked) = (0, 0);
        for r in &o.served.records {
            let tid = r.ticket as u64 + 1;
            let hedged = spans
                .iter()
                .any(|s| s.trace_id == tid && s.name.starts_with("hedge_"));
            if r.shed.is_none() && !hedged {
                continue;
            }
            shed_checked += usize::from(r.shed.is_some());
            hedged_checked += usize::from(hedged);
            assert!(
                forest.all_reachable_from_root(tid),
                "ticket {}: orphaned spans in its trace",
                r.ticket
            );
            let path = forest.critical_path(tid);
            let root = path
                .first()
                .unwrap_or_else(|| panic!("ticket {}: trace has no root span", r.ticket));
            assert_eq!(root.name, "ticket");
            let total: f64 = path.iter().map(|s| s.self_secs).sum();
            assert!(
                (total - r.latency_secs).abs() < 1e-6,
                "ticket {}: critical-path self times {} != latency {}",
                r.ticket,
                total,
                r.latency_secs
            );
        }
        (shed_checked, hedged_checked)
    }

    #[test]
    fn overload_traces_link_shed_and_hedged_tickets() {
        let off = overload_at(false, Scale::Quick);
        let on = overload_at(true, Scale::Quick);
        let (off_shed, _) = check_arm_traces(&off);
        let (_, on_hedged) = check_arm_traces(&on);
        assert!(off_shed > 0, "hedging-off arm must shed traced tickets");
        assert!(on_hedged > 0, "hedging-on arm must hedge traced tickets");
        // The span stream renders as valid, deterministic Chrome trace
        // events — one complete event per span.
        let spans = on.observer.spans_snapshot();
        let json = chrome_trace_json(&spans);
        let v = serde::from_str(&json).expect("chrome trace renders valid JSON");
        match v.get("traceEvents") {
            Some(serde::Value::Array(events)) => assert_eq!(events.len(), spans.len()),
            other => panic!("traceEvents must be an array, got {other:?}"),
        }
    }

    #[test]
    fn overload_p99_exemplar_links_to_its_trace_and_metrics_are_pinned() {
        let on = overload_at(true, Scale::Quick);
        let ex = on
            .served
            .percentile_exemplar(0.99)
            .expect("overload serves tickets");
        // Same nearest-rank math as the bench percentiles.
        assert_eq!(ex.latency_secs, on.p99);
        assert_eq!(on.served.latency_percentile(0.99), on.p99);
        // The exemplar links to a real, rooted trace whose root span *is*
        // the reported latency.
        let forest = TraceForest::from_spans(&on.observer.spans_snapshot());
        let tid = ex.ticket as u64 + 1;
        assert!(forest.all_reachable_from_root(tid));
        let root = forest.root(tid).expect("exemplar trace has a root");
        assert!((root.duration_secs() - ex.latency_secs).abs() < 1e-9);
        // Bucket exemplars cover every ticket exactly once, ascending.
        let exs = on.served.latency_exemplars();
        let total: u64 = exs.iter().map(|e| e.count).sum();
        assert_eq!(total as usize, on.served.records.len());
        assert!(exs.windows(2).all(|w| w[0].le_secs < w[1].le_secs));
        for e in &exs {
            assert_eq!(e.trace_id, e.ticket as u64 + 1);
            assert!(e.latency_secs <= e.le_secs);
        }
        // Tail-layer counters export under pinned Prometheus names/labels.
        let samples =
            parse_prometheus(&on.observer.render_prometheus()).expect("prometheus output parses");
        let val = |name: &str, label: Option<&str>| {
            samples
                .iter()
                .find(|s| {
                    s.name == name
                        && match label {
                            Some(l) => s.labels.iter().any(|(k, v)| k == "view" && v == l),
                            None => s.labels.is_empty(),
                        }
                })
                .map(|s| s.value)
        };
        // The metric scopes hedges to served reads (commit-side hedges are
        // the writer's business), so it is bounded by the FS-wide counters.
        let issued = val("deepsea_hedges_total", Some("issued")).expect("issued series present");
        assert!(issued > 0.0 && issued <= on.hedges_issued as f64);
        let won = val("deepsea_hedges_total", Some("won")).expect("won series present");
        assert!(won > 0.0 && won <= on.hedges_won as f64);
        let cancelled =
            val("deepsea_hedges_total", Some("cancelled")).expect("cancelled series present");
        assert!(cancelled <= on.hedges_cancelled as f64);
        if on.shed_reads > 0 {
            assert_eq!(
                val("deepsea_shed_reads_total", None),
                Some(on.shed_reads as f64)
            );
        }
    }

    /// A synthetic record with everything but ticket and latency zeroed —
    /// enough for the percentile/exemplar math, which reads nothing else.
    fn rec(ticket: usize, latency: f64) -> deepsea_core::ClientRecord {
        deepsea_core::ClientRecord {
            ticket,
            client: 0,
            arrival_secs: 0.0,
            read_start_secs: 0.0,
            read_done_secs: latency,
            commit_done_secs: latency,
            latency_secs: latency,
            read_epoch: 0,
            epoch_lag: 0,
            read_fingerprint: Vec::new(),
            committed_fingerprint: Vec::new(),
            read_query_secs: latency,
            committed_query_secs: latency,
            committed_creation_secs: 0.0,
            read_used_view: None,
            committed_used_view: None,
            divergent: false,
            degraded: false,
            deadline_secs: None,
            shed: None,
        }
    }

    fn synth_report(latencies: &[f64]) -> ServeReport {
        ServeReport {
            records: latencies
                .iter()
                .enumerate()
                .map(|(i, &l)| rec(i, l))
                .collect(),
            state_digest: 0,
            divergent_reads: 0,
            degraded_reads: 0,
            max_epoch_lag: 0,
            makespan_secs: 0.0,
            shed_reads: 0,
        }
    }

    #[test]
    fn serve_report_percentiles_match_exact_nearest_rank() {
        // 50 distinct latencies, shuffled by a multiplicative permutation.
        let lat: Vec<f64> = (0..50).map(|i| ((i * 17) % 50) as f64 + 1.0).collect();
        let report = synth_report(&lat);
        let (p50, p95, p99) = exact_percentiles(lat.clone());
        assert_eq!(report.latency_percentile(0.50), p50);
        assert_eq!(report.latency_percentile(0.95), p95);
        assert_eq!(report.latency_percentile(0.99), p99);
        // With 50 tickets, nearest-rank p99 rounds to the last order
        // statistic: the exemplar provably *is* the slowest ticket.
        let slowest = lat
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .expect("non-empty");
        let ex = report.percentile_exemplar(0.99).expect("non-empty");
        assert_eq!(ex.ticket, slowest);
        assert_eq!(ex.latency_secs, 50.0);
    }

    #[test]
    fn percentile_exemplar_breaks_ties_deterministically() {
        // Tickets 0 and 1 tie at the median value; the exemplar must be the
        // lower ticket, every run.
        let report = synth_report(&[5.0, 5.0, 1.0]);
        let ex = report.percentile_exemplar(0.50).expect("non-empty");
        assert_eq!(ex.ticket, 0);
        assert_eq!(ex.latency_secs, 5.0);
        assert!(report.percentile_exemplar(0.0).expect("non-empty").ticket == 2);
    }

    #[test]
    fn latency_exemplars_pick_slowest_ticket_per_bucket() {
        use deepsea_obs::metrics::bucket_of;
        let lat = [0.3, 0.4, 3.0, 2.5, 40.0];
        let report = synth_report(&lat);
        let exs = report.latency_exemplars();
        let total: u64 = exs.iter().map(|e| e.count).sum();
        assert_eq!(total as usize, lat.len());
        for e in &exs {
            // The exemplar is the slowest latency among its bucket's members.
            let bucket_max = lat
                .iter()
                .copied()
                .filter(|&l| bucket_of(l) == bucket_of(e.latency_secs))
                .fold(0.0_f64, f64::max);
            assert_eq!(e.latency_secs, bucket_max);
            assert_eq!(e.trace_id, e.ticket as u64 + 1);
        }
        // 0.3 and 0.4 share a bucket: count 2, exemplar ticket 1 (0.4).
        let shared = exs
            .iter()
            .find(|e| e.count == 2)
            .expect("0.3 and 0.4 share a log2 bucket");
        assert_eq!(shared.ticket, 1);
    }
}
