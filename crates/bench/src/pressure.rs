//! Eviction-pressure serving scenario: the DS-tight variant (reduced
//! `Smax`) served to multiple concurrent clients through [`ViewServer`].
//!
//! Under a tight pool limit the writer keeps materializing and evicting,
//! so snapshot readers routinely race epoch churn — exactly the regime
//! where client-visible latency separates from the writer's serialized
//! pipeline. The scenario runs the standard fig5 workload under the
//! deterministic simulated scheduler and reports client latency
//! percentiles (p50/p95/p99) straight from the observer's histograms,
//! plus the epoch-lag and divergence counters the serving layer emits.
//!
//! `BENCH_pressure.json` is the machine-readable side product, in the
//! same spirit as fig5a's `BENCH.json`.

use std::sync::Arc;

use deepsea_core::{baselines, DeepSea, NodeAction, ObsConfig, Observer, ServerConfig, ViewServer};
use deepsea_engine::ClusterSim;
use deepsea_storage::{BlockConfig, FaultInjector, NodeConfig, NodeSet, SimFs};
use serde::ObjectBuilder;

use crate::experiments::{sdss_catalog, ExperimentReport, Scale, SEED};
use crate::report::{secs, table};

/// Divisor applied to the catalog's base bytes to get the tight pool
/// limit: small enough that the knapsack is forced to evict throughout
/// the run, matching the DS-tight variant of the concurrency suite.
const TIGHT_SMAX_DIVISOR: u64 = 40;

/// Logical clients hammering the server in the pressure scenario.
const PRESSURE_CLIENTS: usize = 4;

/// Seed for the scheduler's arrival/interleaving LCG.
const PRESSURE_SEED: u64 = 42;

/// Mean open-loop inter-arrival gap in simulated seconds — short enough
/// that reads overlap commits and each other.
const PRESSURE_GAP_SECS: f64 = 5.0;

/// The pressure scenario plus its machine-readable side products.
pub struct PressureRun {
    /// The rendered report.
    pub report: ExperimentReport,
    /// `BENCH_pressure.json`: scheduler parameters, latency percentiles
    /// (overall and per client), divergence and epoch-lag summary.
    pub bench_json: String,
    /// The observer that watched the run (latency histograms, spans,
    /// server counters).
    pub observer: Observer,
}

/// Run the eviction-pressure serving scenario.
pub fn pressure(scale: Scale) -> PressureRun {
    let catalog = sdss_catalog(scale.instance());
    let plans = deepsea_workload::sequences::fig5_workload(scale.fig5_queries(), SEED);
    let smax = catalog.total_base_bytes() / TIGHT_SMAX_DIVISOR;
    let config = baselines::deepsea().with_phi(0.05).with_smax(smax);

    let obs = Observer::new(ObsConfig::on());
    let cluster = ClusterSim::paper_default();
    let fs = Arc::new(SimFs::new(BlockConfig::default(), cluster.weights));
    let ds =
        DeepSea::with_parts(Arc::clone(&catalog), fs, cluster, config).with_observer(obs.clone());
    let mut server = ViewServer::new(
        ds,
        ServerConfig {
            clients: PRESSURE_CLIENTS,
            seed: PRESSURE_SEED,
            mean_gap_secs: PRESSURE_GAP_SECS,
            node_schedule: Vec::new(),
        },
    );
    let served = server
        .run(&plans)
        .unwrap_or_else(|e| panic!("pressure scenario failed: {e}"));

    let snap = obs.metrics_snapshot();
    let overall = snap
        .histogram("deepsea_client_latency_secs", None)
        .and_then(|h| h.percentiles())
        .unwrap_or((0.0, 0.0, 0.0));

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut clients_json = ObjectBuilder::new();
    for k in 0..PRESSURE_CLIENTS {
        let label = format!("client{k}");
        if let Some((p50, p95, p99)) = snap
            .histogram("deepsea_client_latency_secs", Some(&label))
            .and_then(|h| h.percentiles())
        {
            rows.push(vec![label.clone(), secs(p50), secs(p95), secs(p99)]);
            clients_json = clients_json.field(
                &label,
                ObjectBuilder::new()
                    .field("p50_secs", p50)
                    .field("p95_secs", p95)
                    .field("p99_secs", p99)
                    .build(),
            );
        }
    }
    rows.push(vec![
        "all".to_string(),
        secs(overall.0),
        secs(overall.1),
        secs(overall.2),
    ]);

    let commits = snap.counter("deepsea_server_commits_total", None);
    let divergent = snap.counter("deepsea_server_divergent_reads_total", None);

    let mut body = table(&["client", "p50", "p95", "p99"], &rows);
    body.push_str(&format!(
        "\npool limit Smax = base/{TIGHT_SMAX_DIVISOR}; {PRESSURE_CLIENTS} clients, \
         mean gap {PRESSURE_GAP_SECS}s, seed {PRESSURE_SEED}\n\
         commits: {commits}   divergent reads: {divergent}   \
         max epoch lag: {}   makespan: {}\n",
        served.max_epoch_lag,
        secs(served.makespan_secs),
    ));

    let bench_json = ObjectBuilder::new()
        .field("experiment", "pressure")
        .field(
            "scale",
            match scale {
                Scale::Quick => "quick",
                Scale::Paper => "paper",
            },
        )
        .field("queries", plans.len() as u64)
        .field("clients", PRESSURE_CLIENTS as u64)
        .field("seed", PRESSURE_SEED)
        .field("mean_gap_secs", PRESSURE_GAP_SECS)
        .field("smax_bytes", smax)
        .field(
            "latency_secs",
            ObjectBuilder::new()
                .field("p50", overall.0)
                .field("p95", overall.1)
                .field("p99", overall.2)
                .field("per_client", clients_json.build())
                .build(),
        )
        .field("commits", commits)
        .field("divergent_reads", divergent)
        .field("max_epoch_lag", served.max_epoch_lag)
        .field("makespan_secs", served.makespan_secs)
        .field("state_digest", served.state_digest)
        .build()
        .to_json();

    let report = ExperimentReport::new(
        "pressure",
        &format!(
            "Eviction pressure under concurrency ({} queries, {} clients, Smax = base/{})",
            plans.len(),
            PRESSURE_CLIENTS,
            TIGHT_SMAX_DIVISOR
        ),
        body,
    );
    PressureRun {
        report,
        bench_json,
        observer: obs,
    }
}

/// Datanodes in the node-failure scenario's simulated cluster.
const NODE_FAILURE_NODES: u32 = 4;

/// Commits each node spends down in the rolling outage (one node is down at
/// any time; the outage hops to the next node every window).
const NODE_OUTAGE_WINDOW: usize = 5;

/// The rolling one-node outage: node `w % NODES` goes down at commit
/// `w * WINDOW` and comes back at commit `(w + 1) * WINDOW`, where the next
/// node's outage begins. Up events precede Down events at each boundary so
/// exactly one node is down at any instant.
fn rolling_outage(n: usize) -> Vec<(usize, u32, NodeAction)> {
    let mut schedule = Vec::new();
    for w in 0..n.div_ceil(NODE_OUTAGE_WINDOW) {
        let node = (w % NODE_FAILURE_NODES as usize) as u32;
        if w > 0 {
            let prev = ((w - 1) % NODE_FAILURE_NODES as usize) as u32;
            schedule.push((w * NODE_OUTAGE_WINDOW, prev, NodeAction::Up));
        }
        schedule.push((w * NODE_OUTAGE_WINDOW, node, NodeAction::Down));
    }
    schedule
}

/// One sub-run of the node-failure scenario at a fixed replication factor.
struct NodeFailureOutcome {
    replication: u32,
    p50: f64,
    p95: f64,
    p99: f64,
    degraded_reads: u64,
    degraded_rate: f64,
    commits: u64,
    makespan_secs: f64,
    state_digest: u64,
    observer: Observer,
}

fn node_failure_at(replication: u32, scale: Scale) -> NodeFailureOutcome {
    let catalog = sdss_catalog(scale.instance());
    let plans = deepsea_workload::sequences::fig5_workload(scale.fig5_queries(), SEED);
    let smax = catalog.total_base_bytes() / TIGHT_SMAX_DIVISOR;
    let config = baselines::deepsea().with_phi(0.05).with_smax(smax);

    let obs = Observer::new(ObsConfig::on());
    let cluster = ClusterSim::paper_default();
    let fs = Arc::new(SimFs::with_cluster(
        BlockConfig::default(),
        cluster.weights,
        FaultInjector::disabled(),
        NodeSet::new(NodeConfig::new(NODE_FAILURE_NODES, replication)),
    ));
    let ds =
        DeepSea::with_parts(Arc::clone(&catalog), fs, cluster, config).with_observer(obs.clone());
    let mut server = ViewServer::new(
        ds,
        ServerConfig {
            clients: PRESSURE_CLIENTS,
            seed: PRESSURE_SEED,
            mean_gap_secs: PRESSURE_GAP_SECS,
            node_schedule: rolling_outage(plans.len()),
        },
    );
    let served = server
        .run(&plans)
        .unwrap_or_else(|e| panic!("node-failure scenario failed: {e}"));

    let snap = obs.metrics_snapshot();
    let (p50, p95, p99) = snap
        .histogram("deepsea_client_latency_secs", None)
        .and_then(|h| h.percentiles())
        .unwrap_or((0.0, 0.0, 0.0));
    NodeFailureOutcome {
        replication,
        p50,
        p95,
        p99,
        degraded_reads: served.degraded_reads,
        degraded_rate: served.degraded_reads as f64 / plans.len() as f64,
        commits: snap.counter("deepsea_server_commits_total", None),
        makespan_secs: served.makespan_secs,
        state_digest: served.state_digest,
        observer: obs,
    }
}

/// Run the node-failure serving scenario: the pressure workload on a
/// 4-node sharded FS under a rolling one-node outage, once at replication 1
/// (fragment-level base-table patching shows up as degraded reads) and once
/// at replication 2 (failover to the surviving replica is free — the
/// degraded-read rate must be zero). `BENCH_node_failure.json` carries
/// latency percentiles and the degraded-read rate for both.
pub fn node_failure(scale: Scale) -> PressureRun {
    let r1 = node_failure_at(1, scale);
    let r2 = node_failure_at(2, scale);

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut repl_json = ObjectBuilder::new();
    for o in [&r1, &r2] {
        rows.push(vec![
            format!("r={}", o.replication),
            secs(o.p50),
            secs(o.p95),
            secs(o.p99),
            format!("{:.1}%", o.degraded_rate * 100.0),
        ]);
        repl_json = repl_json.field(
            &format!("r{}", o.replication),
            ObjectBuilder::new()
                .field("replication", o.replication as u64)
                .field("p50_secs", o.p50)
                .field("p95_secs", o.p95)
                .field("p99_secs", o.p99)
                .field("degraded_reads", o.degraded_reads)
                .field("degraded_rate", o.degraded_rate)
                .field("commits", o.commits)
                .field("makespan_secs", o.makespan_secs)
                .field("state_digest", o.state_digest)
                .build(),
        );
    }

    let mut body = table(&["replication", "p50", "p95", "p99", "degraded"], &rows);
    body.push_str(&format!(
        "\n{NODE_FAILURE_NODES}-node cluster, rolling one-node outage every \
         {NODE_OUTAGE_WINDOW} commits; Smax = base/{TIGHT_SMAX_DIVISOR}, \
         {PRESSURE_CLIENTS} clients, mean gap {PRESSURE_GAP_SECS}s, seed {PRESSURE_SEED}\n\
         degraded reads r=1: {}   r=2: {}\n",
        r1.degraded_reads, r2.degraded_reads,
    ));

    let bench_json = ObjectBuilder::new()
        .field("experiment", "node_failure")
        .field(
            "scale",
            match scale {
                Scale::Quick => "quick",
                Scale::Paper => "paper",
            },
        )
        .field("queries", r1.commits)
        .field("nodes", NODE_FAILURE_NODES as u64)
        .field("outage_window", NODE_OUTAGE_WINDOW as u64)
        .field("clients", PRESSURE_CLIENTS as u64)
        .field("seed", PRESSURE_SEED)
        .field("mean_gap_secs", PRESSURE_GAP_SECS)
        .field("by_replication", repl_json.build())
        .build()
        .to_json();

    let report = ExperimentReport::new(
        "node-failure",
        &format!(
            "Serving under a rolling one-node outage ({NODE_FAILURE_NODES} nodes, \
             replication 1 vs 2, window {NODE_OUTAGE_WINDOW} commits)"
        ),
        body,
    );
    PressureRun {
        report,
        bench_json,
        observer: r1.observer,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pressure_quick_reports_percentiles_and_pressure() {
        let run = pressure(Scale::Quick);
        assert!(run.bench_json.contains("\"experiment\":\"pressure\""));
        assert!(run.bench_json.contains("\"p99\""));
        let snap = run.observer.metrics_snapshot();
        // Every query commits, and the tight pool must actually evict.
        assert_eq!(snap.counter("deepsea_server_commits_total", None), 60);
        let (p50, p95, p99) = snap
            .histogram("deepsea_client_latency_secs", None)
            .and_then(|h| h.percentiles())
            .expect("latency histogram populated");
        assert!(p50 > 0.0 && p50 <= p95 && p95 <= p99);
        assert!(
            snap.counter("deepsea_evictions_total", None) > 0,
            "tight Smax should evict during the run"
        );
    }

    #[test]
    fn pressure_is_deterministic() {
        let a = pressure(Scale::Quick);
        let b = pressure(Scale::Quick);
        assert_eq!(a.bench_json, b.bench_json);
    }

    #[test]
    fn rolling_outage_keeps_one_node_down() {
        let schedule = rolling_outage(60);
        // Replay the schedule: exactly one node down after each boundary.
        let mut down: Vec<u32> = Vec::new();
        let mut boundary = 0usize;
        for &(when, node, action) in &schedule {
            assert!(when >= boundary, "schedule must be in ticket order");
            boundary = when;
            match action {
                NodeAction::Down => down.push(node),
                NodeAction::Up => down.retain(|&n| n != node),
                NodeAction::Kill => unreachable!("rolling outage never kills"),
            }
            if matches!(action, NodeAction::Down) {
                assert_eq!(down.len(), 1, "exactly one node down at a time");
            }
        }
    }

    #[test]
    fn node_failure_quick_degrades_only_unreplicated() {
        let run = node_failure(Scale::Quick);
        assert!(run.bench_json.contains("\"experiment\":\"node_failure\""));
        let r1 = node_failure_at(1, Scale::Quick);
        let r2 = node_failure_at(2, Scale::Quick);
        assert_eq!(r1.commits, 60);
        assert_eq!(r2.commits, 60);
        assert!(
            r1.degraded_reads > 0,
            "replication 1 under a rolling outage must hit degraded reads"
        );
        assert_eq!(
            r2.degraded_reads, 0,
            "replication 2 fails over to the surviving replica — no degradation"
        );
    }

    #[test]
    fn node_failure_is_deterministic() {
        let a = node_failure(Scale::Quick);
        let b = node_failure(Scale::Quick);
        assert_eq!(a.bench_json, b.bench_json);
    }
}
