//! Paper-style table and series rendering for experiment reports.

use crate::harness::StageTotals;

/// Render an aligned text table.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, c) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{c:>width$}", width = widths[i]));
        }
        line
    };
    let hcells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&hcells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Render labeled values as an ASCII bar chart (largest bar = 40 chars).
pub fn bar_chart(items: &[(String, f64)], unit: &str) -> String {
    let max = items.iter().map(|(_, v)| *v).fold(0.0_f64, f64::max);
    let lw = items.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, v) in items {
        let bar = if max > 0.0 {
            "█".repeat(
                ((v / max) * 40.0)
                    .round()
                    .max(if *v > 0.0 { 1.0 } else { 0.0 }) as usize,
            )
        } else {
            String::new()
        };
        out.push_str(&format!("{label:<lw$}  {bar} {v:.1} {unit}\n"));
    }
    out
}

/// Render an `(x, y)` series, one point per line.
pub fn series(points: &[(usize, f64)], x_label: &str, y_label: &str) -> String {
    let mut out = format!("{x_label:>10}  {y_label}\n");
    for (x, y) in points {
        out.push_str(&format!("{x:>10}  {y:.1}\n"));
    }
    out
}

/// Format seconds compactly.
pub fn secs(v: f64) -> String {
    format!("{v:.1}")
}

/// Format a byte count compactly (GB above 1e9, MB above 1e6, else bytes).
pub fn bytes(v: u64) -> String {
    if v >= 1_000_000_000 {
        format!("{:.1} GB", v as f64 / 1e9)
    } else if v >= 1_000_000 {
        format!("{:.1} MB", v as f64 / 1e6)
    } else {
        format!("{v} B")
    }
}

/// Render the per-stage pipeline breakdown of one run: what each stage of
/// Algorithm 1 did over the whole workload, and where the simulated seconds
/// went (execution vs creation — the two components of elapsed time).
pub fn stage_breakdown(label: &str, t: &StageTotals) -> String {
    let rows = vec![
        vec![
            "matching".into(),
            format!(
                "{} roots, {} hits ({} on materialized data), {} views updated",
                t.match_roots, t.match_hits, t.materialized_hits, t.views_updated
            ),
            "-".into(),
        ],
        vec![
            "rewriting".into(),
            format!(
                "{} rewritings costed (base {}s, best {}s)",
                t.rewrites_costed,
                secs(t.base_cost_secs),
                secs(t.best_cost_secs)
            ),
            "-".into(),
        ],
        vec![
            "candidates".into(),
            format!(
                "{} view ({} new), {} partition selections ({} new fragments)",
                t.view_candidates, t.new_views, t.partition_selections, t.new_fragments
            ),
            "-".into(),
        ],
        vec![
            "selection".into(),
            format!(
                "{} considered, {} creations, {} evictions planned",
                t.candidates_considered, t.planned_creations, t.planned_evictions
            ),
            "-".into(),
        ],
        vec!["execution".into(), "-".into(), secs(t.execution_secs)],
        vec![
            "materialization".into(),
            format!(
                "{} read, {} written ({} files, {} fragments covered)",
                bytes(t.bytes_read),
                bytes(t.bytes_written),
                t.files_written,
                t.fragments_covered
            ),
            secs(t.creation_secs),
        ],
        vec![
            "eviction".into(),
            format!(
                "{} selected, {} forced by Smax",
                t.evictions_selected, t.evictions_forced
            ),
            secs(t.eviction_delete_secs),
        ],
        vec![
            "recovery".into(),
            format!(
                "{} retries, {} quarantined ({}), {} base-table fallbacks, \
                 {} fragment fallbacks, {} corrupt, {} breaker short-circuits",
                t.retries,
                t.quarantined_views,
                bytes(t.quarantined_bytes),
                t.base_table_fallbacks,
                t.fragment_fallbacks,
                t.corrupt_fragments,
                t.breaker_short_circuits
            ),
            secs(t.retry_penalty_secs),
        ],
        vec![
            "durability".into(),
            format!(
                "{} journal records, {} snapshots, {} retries",
                t.journal_appends, t.journal_snapshots, t.journal_retries
            ),
            secs(t.journal_penalty_secs),
        ],
    ];
    format!(
        "per-stage breakdown, {label}:\n{}",
        table(&["stage", "activity", "sim (s)"], &rows)
    )
}

/// Format a fraction as a percentage.
pub fn pct(v: f64) -> String {
    format!("{:.0}%", v * 100.0)
}

/// Render a top-N ranking (e.g. hottest views by hit count, from
/// [`MetricsRegistry::top_counters`](deepsea_obs::MetricsRegistry::top_counters))
/// as a two-column table with 1-based ranks.
pub fn top_n_table(title: &str, value_header: &str, rows: &[(String, u64)]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .enumerate()
        .map(|(i, (label, v))| vec![format!("{}", i + 1), label.clone(), v.to_string()])
        .collect();
    format!("{title}:\n{}", table(&["#", "name", value_header], &body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = table(
            &["name", "secs"],
            &[
                vec!["H".into(), "1000.0".into()],
                vec!["DS".into(), "64.2".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].ends_with("1000.0"));
        assert!(lines[3].ends_with("64.2"));
    }

    #[test]
    fn bar_chart_scales_to_max() {
        let c = bar_chart(
            &[("H".into(), 100.0), ("DS".into(), 50.0), ("Z".into(), 0.0)],
            "s",
        );
        let lines: Vec<&str> = c.lines().collect();
        let bars: Vec<usize> = lines.iter().map(|l| l.matches('█').count()).collect();
        assert_eq!(bars[0], 40);
        assert_eq!(bars[1], 20);
        assert_eq!(bars[2], 0);
    }

    #[test]
    fn series_prints_points() {
        let s = series(&[(1, 10.0), (2, 20.5)], "query", "cumulative");
        assert!(s.contains("query"));
        assert!(s.contains("20.5"));
        assert_eq!(s.lines().count(), 3);
    }

    #[test]
    fn formatters() {
        assert_eq!(secs(1.26), "1.3");
        assert_eq!(pct(0.642), "64%");
        assert_eq!(bytes(512), "512 B");
        assert_eq!(bytes(2_500_000), "2.5 MB");
        assert_eq!(bytes(3_200_000_000), "3.2 GB");
    }

    #[test]
    fn stage_breakdown_lists_every_stage() {
        let t = StageTotals {
            match_roots: 12,
            match_hits: 5,
            materialized_hits: 3,
            views_updated: 8,
            rewrites_costed: 5,
            base_cost_secs: 900.0,
            best_cost_secs: 450.0,
            view_candidates: 2,
            new_views: 1,
            partition_selections: 7,
            new_fragments: 4,
            candidates_considered: 40,
            planned_creations: 4,
            planned_evictions: 2,
            execution_secs: 100.5,
            creation_secs: 20.25,
            bytes_read: 1_000_000,
            bytes_written: 2_000_000_000,
            files_written: 6,
            fragments_covered: 2,
            evictions_selected: 1,
            evictions_forced: 0,
            eviction_delete_secs: 0.25,
            retries: 9,
            retry_penalty_secs: 4.5,
            quarantined_views: 1,
            quarantined_bytes: 3_000_000,
            base_table_fallbacks: 1,
            fragment_fallbacks: 0,
            corrupt_fragments: 2,
            breaker_short_circuits: 4,
            journal_appends: 120,
            journal_retries: 3,
            journal_penalty_secs: 1.5,
            journal_snapshots: 2,
        };
        let s = stage_breakdown("DS", &t);
        for stage in [
            "matching",
            "rewriting",
            "candidates",
            "selection",
            "execution",
            "materialization",
            "eviction",
            "recovery",
            "durability",
        ] {
            assert!(s.contains(stage), "missing {stage} in:\n{s}");
        }
        assert!(s.contains("DS"));
        assert!(s.contains("100.5"));
        assert!(s.contains("2.0 GB"));
        assert!(s.contains("12 roots, 5 hits (3 on materialized data), 8 views updated"));
        assert!(s.contains("5 rewritings costed (base 900.0s, best 450.0s)"));
        assert!(s.contains("2 view (1 new), 7 partition selections (4 new fragments)"));
        assert!(s.contains("40 considered, 4 creations, 2 evictions planned"));
        assert!(s.contains(
            "9 retries, 1 quarantined (3.0 MB), 1 base-table fallbacks, \
             0 fragment fallbacks, 2 corrupt, 4 breaker short-circuits"
        ));
        assert!(s.contains("120 journal records, 2 snapshots, 3 retries"));
    }

    /// Print-coverage half of the completeness audit (the aggregation half
    /// lives in `harness::tests`): every field `StageTotals::fields()` lists
    /// must surface somewhere in the rendered breakdown. Each field gets a
    /// distinct sentinel so a dropped `format!` argument is caught.
    #[test]
    fn stage_breakdown_prints_every_aggregated_field() {
        let t = StageTotals {
            match_roots: 101,
            match_hits: 103,
            materialized_hits: 105,
            views_updated: 107,
            rewrites_costed: 109,
            base_cost_secs: 111.5,
            best_cost_secs: 113.5,
            view_candidates: 115,
            new_views: 117,
            partition_selections: 119,
            new_fragments: 121,
            candidates_considered: 123,
            planned_creations: 125,
            planned_evictions: 127,
            execution_secs: 129.5,
            bytes_read: 131,
            bytes_written: 133,
            files_written: 135,
            fragments_covered: 137,
            creation_secs: 139.5,
            evictions_selected: 141,
            evictions_forced: 143,
            eviction_delete_secs: 144.5,
            retries: 145,
            retry_penalty_secs: 147.5,
            quarantined_views: 149,
            quarantined_bytes: 151,
            base_table_fallbacks: 153,
            fragment_fallbacks: 154,
            corrupt_fragments: 155,
            breaker_short_circuits: 156,
            journal_appends: 157,
            journal_retries: 159,
            journal_penalty_secs: 161.5,
            journal_snapshots: 163,
        };
        let s = stage_breakdown("DS", &t);
        for (name, v) in t.fields() {
            let as_int = format!("{}", v as u64);
            let as_secs = secs(v);
            let as_bytes = bytes(v as u64);
            assert!(
                s.contains(&as_int) || s.contains(&as_secs) || s.contains(&as_bytes),
                "field {name} (= {v}) is not printed by stage_breakdown:\n{s}"
            );
        }
    }

    #[test]
    fn top_n_table_ranks_rows() {
        let s = top_n_table(
            "hottest views",
            "hits",
            &[("store_sales.q30".into(), 42), ("web_clicks.q5".into(), 7)],
        );
        assert!(s.starts_with("hottest views:"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines[3].contains('1') && lines[3].contains("store_sales.q30"));
        assert!(lines[4].ends_with('7'));
    }
}
