//! Figure-by-figure reproduction of the paper's evaluation (§10).
//!
//! Each function regenerates one table/figure: it builds the exact workload
//! the paper describes, runs it under the paper's system variants, and
//! renders the same rows/series the paper plots. Absolute numbers come from
//! the cluster simulator, so only the *shape* (orderings, rough factors,
//! crossover points) is expected to match the paper.

use std::sync::Arc;

use deepsea_core::{baselines, ObsConfig, Observer};
use deepsea_engine::Catalog;
use deepsea_workload::schema::{BigBenchData, InstanceSize, ItemDistribution};
use deepsea_workload::sdss::{sdss_like_histogram, SdssTrace};
use deepsea_workload::sequences::{
    fig10_workload, fig5_workload, fig6_workload, fig7_workload, fig8a_workload, fig8b_workload,
    fig9_workload, item_domain,
};
use deepsea_workload::{Selectivity, Skew};
use serde::ObjectBuilder;

use crate::harness::{recoup_point, run_variants, run_workload, run_workload_observed, RunResult};
use crate::report::{bar_chart, pct, secs, series, stage_breakdown, table, top_n_table};

/// How much work to do: `Quick` for criterion benches and smoke runs,
/// `Paper` for the full experiment suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Scaled-down runs (fewer queries, smaller instance).
    Quick,
    /// Paper-scale runs.
    Paper,
}

impl Scale {
    pub(crate) fn fig5_queries(&self) -> usize {
        match self {
            Scale::Quick => 60,
            Scale::Paper => 1000,
        }
    }

    pub(crate) fn instance(&self) -> InstanceSize {
        match self {
            Scale::Quick => InstanceSize::Gb100,
            Scale::Paper => InstanceSize::Gb500,
        }
    }
}

/// A rendered experiment.
#[derive(Debug, Clone)]
pub struct ExperimentReport {
    /// Identifier, e.g. `fig5a`.
    pub id: String,
    /// Human title.
    pub title: String,
    /// Rendered body (tables/series).
    pub body: String,
}

impl ExperimentReport {
    pub(crate) fn new(id: &str, title: &str, body: String) -> Self {
        Self {
            id: id.to_string(),
            title: title.to_string(),
            body,
        }
    }
}

pub(crate) const SEED: u64 = 0xDEE9_5EA0;

pub(crate) fn sdss_catalog(size: InstanceSize) -> Arc<Catalog> {
    let (lo, hi) = item_domain();
    let hist = sdss_like_histogram(lo, hi);
    Arc::new(BigBenchData::generate(size, &ItemDistribution::Histogram(hist), SEED).catalog)
}

fn uniform_catalog(size: InstanceSize) -> Arc<Catalog> {
    Arc::new(BigBenchData::generate(size, &ItemDistribution::Uniform, SEED).catalog)
}

/// Figure 1: histogram of selection ranges on the SDSS-like trace.
pub fn fig1() -> ExperimentReport {
    let (lo, hi) = item_domain();
    let trace = SdssTrace::new(lo, hi);
    let ranges = trace.generate(10_000, SEED);
    let hist = trace.hit_histogram(&ranges, 28);
    let items: Vec<(String, f64)> = hist
        .iter()
        .map(|(b, h)| (format!("{b:>6}"), *h as f64))
        .collect();
    ExperimentReport::new(
        "fig1",
        "Histogram of selection ranges (SDSS-like trace, 10 000 queries)",
        bar_chart(&items, "hits"),
    )
}

/// Figure 2: evolution of selection ranges over the query sequence.
pub fn fig2() -> ExperimentReport {
    let (lo, hi) = item_domain();
    let trace = SdssTrace::new(lo, hi);
    let ranges = trace.generate(10_000, SEED);
    let mut body = String::from("  query#     lo .. hi (every 500th query)\n");
    for (i, (l, h)) in ranges.iter().enumerate().step_by(500) {
        body.push_str(&format!("{:>8}  {l:>6} .. {h:<6}\n", i + 1));
    }
    // Phase means make the shift explicit.
    let mid = |r: &(i64, i64)| (r.0 + r.1) / 2;
    let n = ranges.len();
    let early: i64 = ranges[..n / 3].iter().map(mid).sum::<i64>() / (n / 3) as i64;
    let late: i64 = ranges[n / 3..].iter().map(mid).sum::<i64>() / (n - n / 3) as i64;
    body.push_str(&format!(
        "\nmean midpoint, first third: {early};  rest: {late} (access pattern shifts)\n"
    ));
    ExperimentReport::new("fig2", "Evolution of selection ranges", body)
}

/// Figure 5a plus its machine-readable side products. The DS variant runs
/// under an attached [`Observer`] (bit-transparent, so the numbers match the
/// unobserved figure exactly); the observer feeds the hot-views table, the
/// `BENCH.json` document, and — via the `experiments` binary's
/// `--metrics-out` / `--events-out` flags — the raw metric/event dumps.
pub struct Fig5aRun {
    /// The rendered report (the same body `fig5a` returns).
    pub report: ExperimentReport,
    /// `BENCH.json`: per-variant totals, query count, DS stage totals and
    /// pool high-water mark.
    pub bench_json: String,
    /// The observer that watched the DS run (metrics, spans, events).
    pub observer: Observer,
}

/// Figure 5a: DS vs NP vs H on the SDSS-mapped workload, unlimited pool.
pub fn fig5a(scale: Scale) -> ExperimentReport {
    fig5a_observed(scale).report
}

/// Pool cap for the `DS-tight` fig5a companion run, as a divisor of the
/// base-table bytes. Tight enough that the Φ-ranked knapsack (§7.3) must
/// evict under decay as the SDSS access pattern shifts — the same squeeze
/// the `pressure` serving scenario applies.
const FIG5A_TIGHT_DIVISOR: u64 = 40;

/// [`fig5a`] with the observer and `BENCH.json` document exposed.
pub fn fig5a_observed(scale: Scale) -> Fig5aRun {
    let catalog = sdss_catalog(scale.instance());
    let plans = fig5_workload(scale.fig5_queries(), SEED);
    let baselines_runs = run_variants(
        &catalog,
        &[
            ("H", baselines::hive()),
            ("NP", baselines::non_partitioned()),
        ],
        &plans,
    );
    let obs = Observer::new(ObsConfig::on());
    // Mixed-template SDSS workload: fragment-size bounding on (§9).
    let ds_run = run_workload_observed(
        "DS",
        &catalog,
        baselines::deepsea().with_phi(0.05),
        &plans,
        obs.clone(),
    );
    // The §7.3 companion: the identical workload under a pool cap so tight
    // that Φ-ranked, decay-driven eviction must fire. Its stage totals ride
    // along in `BENCH.json` so the eviction path is tracked release to
    // release alongside the unlimited-pool headline.
    let smax = catalog.total_base_bytes() / FIG5A_TIGHT_DIVISOR;
    let ds_tight_run = run_workload(
        "DS-tight",
        &catalog,
        baselines::deepsea().with_phi(0.05).with_smax(smax),
        &plans,
    );
    let runs = [&baselines_runs[0], &baselines_runs[1], &ds_run];
    let items: Vec<(String, f64)> = runs
        .iter()
        .map(|r| (r.label.clone(), r.total_secs()))
        .collect();
    let h = items[0].1;
    let np = items[1].1;
    let ds = items[2].1;
    let mut body = bar_chart(&items, "s");
    body.push_str(&format!(
        "\nNP/H = {}   DS/NP = {}   DS/H = {}\n(paper: NP ≈ 65.6% of H; DS ≈ 64.2% of NP)\n",
        pct(np / h),
        pct(ds / np),
        pct(ds / h)
    ));
    // Where DS spent its time and effort, stage by stage.
    body.push('\n');
    body.push_str(&stage_breakdown(&ds_run.label, &ds_run.stage_totals()));
    let tight_totals = ds_tight_run.stage_totals();
    body.push_str(&format!(
        "\nDS-tight (Smax = base/{FIG5A_TIGHT_DIVISOR}): total {}, \
         evictions {} selected + {} forced, pool high-water {} B\n",
        secs(ds_tight_run.total_secs()),
        tight_totals.evictions_selected,
        tight_totals.evictions_forced,
        ds_tight_run.pool_high_water,
    ));
    // The views DS leaned on hardest, straight from the metrics registry.
    let hot = obs
        .metrics_snapshot()
        .top_counters("deepsea_view_hits_total", 5);
    if !hot.is_empty() {
        body.push('\n');
        body.push_str(&top_n_table("hottest views (DS)", "hits", &hot));
    }
    let bench_json = fig5a_bench_json(scale, &runs, &ds_run, &ds_tight_run, smax);
    let report = ExperimentReport::new(
        "fig5a",
        &format!(
            "Workload simulating SDSS ({} queries, {:?}): DS vs NP vs H",
            plans.len(),
            scale.instance()
        ),
        body,
    );
    Fig5aRun {
        report,
        bench_json,
        observer: obs,
    }
}

/// Render the `BENCH.json` document for a fig5a run: one deterministic JSON
/// object with the variant totals, the query count, the DS run's stage
/// totals plus pool high-water mark, and the pool-constrained `DS-tight`
/// companion's eviction profile.
fn fig5a_bench_json(
    scale: Scale,
    runs: &[&RunResult],
    ds: &RunResult,
    ds_tight: &RunResult,
    tight_smax: u64,
) -> String {
    let mut variants = ObjectBuilder::new();
    for r in runs {
        variants = variants.field(&r.label, r.total_secs());
    }
    let mut totals = ObjectBuilder::new();
    for (name, v) in ds.stage_totals().fields() {
        totals = totals.field(name, v);
    }
    let tight = ds_tight.stage_totals();
    ObjectBuilder::new()
        .field("experiment", "fig5a")
        .field(
            "scale",
            match scale {
                Scale::Quick => "quick",
                Scale::Paper => "paper",
            },
        )
        .field("queries", ds.per_query.len() as u64)
        .field("total_secs", variants.build())
        .field(
            "ds",
            ObjectBuilder::new()
                .field("total_secs", ds.total_secs())
                .field("final_pool_bytes", ds.final_pool_bytes)
                .field("pool_high_water_bytes", ds.pool_high_water)
                .field("stage_totals", totals.build())
                .build(),
        )
        .field(
            "ds_tight",
            ObjectBuilder::new()
                .field("smax_bytes", tight_smax)
                .field("total_secs", ds_tight.total_secs())
                .field("final_pool_bytes", ds_tight.final_pool_bytes)
                .field("pool_high_water_bytes", ds_tight.pool_high_water)
                .field("evictions_selected", tight.evictions_selected)
                .field("evictions_forced", tight.evictions_forced)
                .field("planned_evictions", tight.planned_evictions)
                .build(),
        )
        .build()
        .to_json()
}

/// Figure 5b: selection strategies N / N+ / DS across pool-size limits.
pub fn fig5b(scale: Scale) -> ExperimentReport {
    let catalog = sdss_catalog(scale.instance());
    let plans = fig5_workload(scale.fig5_queries(), SEED);
    let base_bytes = catalog.total_base_bytes();
    let mut rows = Vec::new();
    for frac in [0.10, 0.25, 0.50, 1.00] {
        let smax = (base_bytes as f64 * frac) as u64;
        let runs = run_variants(
            &catalog,
            &[
                ("N", baselines::nectar().with_phi(0.05).with_smax(smax)),
                (
                    "N+",
                    baselines::nectar_plus().with_phi(0.05).with_smax(smax),
                ),
                ("DS", baselines::deepsea().with_phi(0.05).with_smax(smax)),
            ],
            &plans,
        );
        rows.push(vec![
            pct(frac),
            secs(runs[0].total_secs()),
            secs(runs[1].total_secs()),
            secs(runs[2].total_secs()),
        ]);
    }
    let body = table(&["pool size", "N (s)", "N+ (s)", "DS (s)"], &rows);
    ExperimentReport::new(
        "fig5b",
        "Selection strategies across pool sizes (% of base tables)",
        body,
    )
}

/// Figure 6 (+ the §10.2 cluster-utilization analysis): DS vs equi-depth.
pub fn fig6(scale: Scale) -> ExperimentReport {
    let catalog = uniform_catalog(InstanceSize::Gb100);
    let plans = fig6_workload(SEED);
    let _ = scale;
    let variants = [
        ("DS", baselines::deepsea()),
        ("E-6", baselines::equi_depth(6)),
        ("E-15", baselines::equi_depth(15)),
        ("E-30", baselines::equi_depth(30)),
        ("E-60", baselines::equi_depth(60)),
    ];
    let runs = run_variants(&catalog, &variants, &plans);
    let n = plans.len();
    let mut rows = Vec::new();
    for r in &runs {
        // Figure 6b plots the *rewritten query* time (execution only); the
        // refinement overhead DS pays while converging shows up in the
        // cumulative column instead.
        let exec_avg = r.per_query[1..n].iter().map(|q| q.query).sum::<f64>() / (n - 1) as f64;
        let last3 = r.per_query[n - 3..n].iter().map(|q| q.query).sum::<f64>() / 3.0;
        rows.push(vec![
            r.label.clone(),
            secs(r.per_query[0].elapsed),
            secs(exec_avg),
            secs(last3),
            secs(r.total_secs()),
            r.map_tasks(1..n).to_string(),
        ]);
    }
    let body = table(
        &[
            "variant",
            "Q30_1 (s)",
            "avg exec Q30_2..10 (s)",
            "avg exec last 3 (s)",
            "cumulative (s)",
            "map tasks (reuse)",
        ],
        &rows,
    );
    ExperimentReport::new(
        "fig6",
        "Equi-depth vs adaptive partitioning (Q30 ×10, small sel., heavy skew, 100GB)",
        body,
    )
}

/// Figure 7a/7b: selectivity × skew grid — projected time (% of Hive) for 100
/// queries and the number of queries needed to recoup materialization cost.
pub fn fig7(scale: Scale) -> ExperimentReport {
    let catalog = uniform_catalog(scale.instance());
    let mut rows_a = Vec::new();
    let mut rows_b = Vec::new();
    for sel in [Selectivity::Big, Selectivity::Medium, Selectivity::Small] {
        for skew in [Skew::Uniform, Skew::Light, Skew::Heavy] {
            let setting = format!("{}{}", sel.abbrev(), skew.abbrev());
            let plans = fig7_workload(sel, skew, SEED);
            let runs = run_variants(
                &catalog,
                &[
                    ("H", baselines::hive()),
                    ("NP", baselines::non_partitioned()),
                    ("E", baselines::equi_depth(15)),
                    // "we use the same number of fragments for DeepSea and
                    // equi-depth" (§10.2): φ = 1/15 caps DS at 15 fragments'
                    // worth of size.
                    ("DS", baselines::deepsea().with_phi(1.0 / 15.0)),
                ],
                &plans,
            );
            let h100 = runs[0].projected_total(100).max(1e-9);
            rows_a.push(vec![
                setting.clone(),
                pct(runs[1].projected_total(100) / h100),
                pct(runs[2].projected_total(100) / h100),
                pct(runs[3].projected_total(100) / h100),
            ]);
            let rp = |r: &RunResult| {
                recoup_point(r, &runs[0])
                    .map(|q| q.to_string())
                    .unwrap_or_else(|| format!(">{}", plans.len()))
            };
            rows_b.push(vec![setting, rp(&runs[1]), rp(&runs[2]), rp(&runs[3])]);
        }
    }
    let mut body = String::from("(a) projected elapsed time for 100 queries, % of Hive\n");
    body.push_str(&table(&["setting", "NP", "E-15", "DS"], &rows_a));
    body.push_str("\n(b) queries needed to recoup materialization cost\n");
    body.push_str(&table(&["setting", "NP", "E-15", "DS"], &rows_b));
    ExperimentReport::new(
        "fig7",
        &format!("Varying selectivity and skew (Q30, {:?})", scale.instance()),
        body,
    )
}

/// Figure 8a: fragment-correlation exploitation — N vs DS, normal hits,
/// small pool.
pub fn fig8a(scale: Scale) -> ExperimentReport {
    // Pinned to the 100 GB instance: the paper's 7 GB pool holds a useful
    // number of *our* fragments at that scale (its views are smaller relative
    // to its base tables than ours).
    let _ = scale;
    let catalog = uniform_catalog(InstanceSize::Gb100);
    let plans = fig8a_workload(SEED);
    let smax = 7_000_000_000; // the paper's 7 GB pool
    let runs = run_variants(
        &catalog,
        &[
            ("N", baselines::nectar().with_phi(0.05).with_smax(smax)),
            ("DS", baselines::deepsea().with_phi(0.05).with_smax(smax)),
        ],
        &plans,
    );
    let mut body = String::new();
    for r in &runs {
        let cum = r.cumulative();
        let pts: Vec<(usize, f64)> = cum
            .iter()
            .enumerate()
            .step_by(4)
            .map(|(i, c)| (i + 1, *c))
            .collect();
        body.push_str(&format!(
            "{}:\n{}",
            r.label,
            series(&pts, "query", "cumulative (s)")
        ));
    }
    body.push_str(&format!(
        "\ntotals: N = {} s, DS = {} s (paper: DS below N under normal-distributed hits)\n",
        secs(runs[0].total_secs()),
        secs(runs[1].total_secs())
    ));
    ExperimentReport::new(
        "fig8a",
        "Fragment correlations, normal hits (Q30 ×20, pool 7GB)",
        body,
    )
}

/// Figure 8b: Zipf robustness — N vs DS across small pool sizes.
pub fn fig8b(scale: Scale) -> ExperimentReport {
    let _ = scale;
    let catalog = uniform_catalog(InstanceSize::Gb100);
    let plans = fig8b_workload(20, SEED);
    let mut rows = Vec::new();
    for gb in [4u64, 8, 25] {
        let smax = gb * 1_000_000_000;
        let runs = run_variants(
            &catalog,
            &[
                ("N", baselines::nectar().with_phi(0.05).with_smax(smax)),
                ("DS", baselines::deepsea().with_phi(0.05).with_smax(smax)),
            ],
            &plans,
        );
        rows.push(vec![
            format!("{gb} GB"),
            secs(runs[0].total_secs()),
            secs(runs[1].total_secs()),
        ]);
    }
    let body = table(&["pool", "N (s)", "DS (s)"], &rows);
    ExperimentReport::new(
        "fig8b",
        "Zipf-distributed selection ranges across pool sizes (paper: DS not worse than N)",
        body,
    )
}

/// Figure 9: overlapping vs strictly horizontal partitioning under a
/// three-phase midpoint shift.
pub fn fig9(_scale: Scale) -> ExperimentReport {
    let catalog = uniform_catalog(InstanceSize::Gb100);
    let plans = fig9_workload(SEED);
    let runs = run_variants(
        &catalog,
        &[
            ("Horizontal", baselines::horizontal_only()),
            ("Overlapping", baselines::deepsea()),
        ],
        &plans,
    );
    let mut body = String::new();
    let checkpoints = [0usize, 10, 20, 29];
    let mut rows = Vec::new();
    for r in &runs {
        let cum = r.cumulative();
        rows.push(vec![
            r.label.clone(),
            secs(cum[checkpoints[0]]),
            secs(cum[checkpoints[1]]),
            secs(cum[checkpoints[2]]),
            secs(cum[checkpoints[3]]),
        ]);
    }
    body.push_str(&table(
        &["variant", "Q30_1", "Q30_11", "Q30_21", "Q30_30"],
        &rows,
    ));
    body.push_str(
        "\n(cumulative seconds; paper: overlapping stays below horizontal after each shift)\n",
    );
    ExperimentReport::new(
        "fig9",
        "Overlapping partitioning (Q30 ×30, midpoints shift every 10 queries)",
        body,
    )
}

/// Figure 10a/10b: adaptation to a workload change.
pub fn fig10(_scale: Scale) -> ExperimentReport {
    let catalog = uniform_catalog(InstanceSize::Gb100);
    let plans = fig10_workload(SEED);
    let runs = run_variants(
        &catalog,
        &[
            ("NP", baselines::non_partitioned()),
            ("E-5", baselines::equi_depth(5)),
            ("NR", baselines::no_repartitioning()),
            ("DS", baselines::deepsea()),
        ],
        &plans,
    );
    // (a) elapsed over the post-shift half, Q5_101..200.
    let post = 100..plans.len();
    let items: Vec<(String, f64)> = runs
        .iter()
        .map(|r| {
            (
                r.label.clone(),
                r.per_query[post.clone()].iter().map(|q| q.elapsed).sum(),
            )
        })
        .collect();
    let mut body = String::from("(a) elapsed time, Q5_101..Q5_200\n");
    body.push_str(&bar_chart(&items, "s"));
    // (b) cumulative ratio DS/NR from query 101.
    let nr = &runs[2];
    let ds = &runs[3];
    let mut pts = Vec::new();
    let mut cum_nr = 0.0;
    let mut cum_ds = 0.0;
    for i in 100..plans.len() {
        cum_nr += nr.per_query[i].elapsed;
        cum_ds += ds.per_query[i].elapsed;
        if (i - 100) % 10 == 0 || i == plans.len() - 1 {
            pts.push((i + 1, cum_ds / cum_nr));
        }
    }
    body.push_str("\n(b) cumulative-time ratio DS/NR from Q5_101 (paper: >1 during repartitioning, then amortizes)\n");
    for (q, ratio) in &pts {
        body.push_str(&format!("{q:>8}  {ratio:.3}\n"));
    }
    ExperimentReport::new(
        "fig10",
        "Adaptation to workload changes (Q5 ×200, distribution shift at 100, 100GB)",
        body,
    )
}

/// Ablation study over DeepSea's design choices (DESIGN.md §5): disable one
/// mechanism at a time and run the workload that exercises it.
pub fn ablations(_scale: Scale) -> ExperimentReport {
    let catalog = uniform_catalog(InstanceSize::Gb100);
    let mut rows = Vec::new();

    // MLE fragment-correlation smoothing — exercised by the fig8a workload
    // under a tight pool.
    {
        let plans = fig8a_workload(SEED);
        let smax = 7_000_000_000;
        let runs = run_variants(
            &catalog,
            &[
                ("DS", baselines::deepsea().with_phi(0.05).with_smax(smax)),
                (
                    "DS-noMLE",
                    baselines::deepsea_no_mle().with_phi(0.05).with_smax(smax),
                ),
            ],
            &plans,
        );
        rows.push(vec![
            "MLE smoothing".into(),
            secs(runs[0].total_secs()),
            secs(runs[1].total_secs()),
            "fig8a workload, 7GB pool".into(),
        ]);
    }
    // Overlapping fragments — the fig9 shift workload.
    {
        let plans = fig9_workload(SEED);
        let runs = run_variants(
            &catalog,
            &[
                ("DS", baselines::deepsea()),
                ("DS-horizontal", baselines::horizontal_only()),
            ],
            &plans,
        );
        rows.push(vec![
            "overlapping fragments".into(),
            secs(runs[0].total_secs()),
            secs(runs[1].total_secs()),
            "fig9 workload".into(),
        ]);
    }
    // Progressive repartitioning — the fig10 shift workload.
    {
        let plans = fig10_workload(SEED);
        let runs = run_variants(
            &catalog,
            &[
                ("DS", baselines::deepsea()),
                ("DS-NR", baselines::no_repartitioning()),
            ],
            &plans,
        );
        rows.push(vec![
            "repartitioning".into(),
            secs(runs[0].total_secs()),
            secs(runs[1].total_secs()),
            "fig10 workload".into(),
        ]);
    }
    // φ fragment-size bound — the mixed SDSS workload.
    {
        let plans = fig5_workload(60, SEED);
        let sdss = sdss_catalog(InstanceSize::Gb100);
        let runs = run_variants(
            &sdss,
            &[
                ("DS(φ=5%)", baselines::deepsea().with_phi(0.05)),
                ("DS(no φ)", baselines::deepsea()),
            ],
            &plans,
        );
        rows.push(vec![
            "φ size bound".into(),
            secs(runs[0].total_secs()),
            secs(runs[1].total_secs()),
            "fig5 workload (60q)".into(),
        ]);
    }
    // Decay function — DS vs Nectar+ isolates exactly it (§10.1), on the
    // drifting SDSS workload under a bounded pool.
    {
        let plans = fig5_workload(60, SEED);
        let sdss = sdss_catalog(InstanceSize::Gb100);
        let smax = sdss.total_base_bytes() / 4;
        let runs = run_variants(
            &sdss,
            &[
                ("DS", baselines::deepsea().with_phi(0.05).with_smax(smax)),
                (
                    "N+ (no decay)",
                    baselines::nectar_plus().with_phi(0.05).with_smax(smax),
                ),
            ],
            &plans,
        );
        rows.push(vec![
            "benefit decay".into(),
            secs(runs[0].total_secs()),
            secs(runs[1].total_secs()),
            "fig5 workload, 25% pool".into(),
        ]);
    }
    let body = table(&["mechanism", "with (s)", "without (s)", "workload"], &rows);
    ExperimentReport::new(
        "ablations",
        "Design-choice ablations (each mechanism toggled off against full DS)",
        body,
    )
}

/// Table 1 is the parameter grid itself; render it for completeness.
pub fn table1() -> ExperimentReport {
    let body = table(
        &["parameter", "values (default bold)"],
        &[
            vec!["Instance size".into(), "100GB, *500GB*".into()],
            vec!["Pool size".into(), "50GB, 125GB, *250GB*, 500GB, ∞".into()],
            vec![
                "Query selectivity".into(),
                "1% (S), *5% (M)*, 25% (B)".into(),
            ],
            vec!["Query skew".into(), "Uniform, Light, *Heavy*".into()],
        ],
    );
    ExperimentReport::new("table1", "Parameters and their values", body)
}

/// Run every experiment at the given scale.
pub fn all(scale: Scale) -> Vec<ExperimentReport> {
    vec![
        fig1(),
        fig2(),
        table1(),
        fig5a(scale),
        fig5b(scale),
        fig6(scale),
        fig7(scale),
        fig8a(scale),
        fig8b(scale),
        fig9(scale),
        fig10(scale),
        ablations(scale),
    ]
}

/// Convenience wrapper used by tests and the quickstart example: run one
/// workload under DS and Hive and return `(ds_total, hive_total)`.
pub fn ds_vs_hive_total(
    catalog: &Arc<Catalog>,
    plans: &[deepsea_engine::LogicalPlan],
) -> (f64, f64) {
    let ds = run_workload("DS", catalog, baselines::deepsea(), plans);
    let h = run_workload("H", catalog, baselines::hive(), plans);
    (ds.total_secs(), h.total_secs())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_report_has_hot_and_cold_buckets() {
        let r = fig1();
        assert_eq!(r.id, "fig1");
        assert!(r.body.lines().count() >= 20);
        assert!(r.body.contains('█'));
    }

    #[test]
    fn fig2_shows_shift() {
        let r = fig2();
        assert!(r.body.contains("shifts"));
    }

    #[test]
    fn table1_renders() {
        let r = table1();
        assert!(r.body.contains("Query skew"));
    }

    #[test]
    fn fig6_quick_ordering() {
        let r = fig6(Scale::Quick);
        // DS row exists and the table has all five variants.
        for v in ["DS", "E-6", "E-15", "E-30", "E-60"] {
            assert!(r.body.contains(v), "missing {v} in:\n{}", r.body);
        }
    }

    #[test]
    fn fig5a_tight_companion_actually_evicts() {
        let run = fig5a_observed(Scale::Quick);
        // The DS-tight arm must hit the pool cap and run the Φ-ranked
        // eviction path; a cap nobody hits would silently stop guarding it.
        assert!(
            run.bench_json.contains("\"ds_tight\""),
            "missing ds_tight in:\n{}",
            run.bench_json
        );
        let evictions: u64 = run
            .bench_json
            .split("\"evictions_selected\":")
            .nth(1)
            .and_then(|s| s.split(|c: char| !c.is_ascii_digit()).next())
            .and_then(|s| s.parse().ok())
            .expect("evictions_selected present");
        assert!(
            evictions > 0,
            "tight Smax should evict:\n{}",
            run.bench_json
        );
        assert!(run.report.body.contains("DS-tight"));
    }

    #[test]
    fn fig5a_bench_json_has_expected_shape() {
        let catalog = uniform_catalog(InstanceSize::Gb100);
        let plans = fig6_workload(SEED);
        let h = run_workload("H", &catalog, baselines::hive(), &plans);
        let ds = run_workload("DS", &catalog, baselines::deepsea(), &plans);
        let smax = catalog.total_base_bytes() / FIG5A_TIGHT_DIVISOR;
        let tight = run_workload(
            "DS-tight",
            &catalog,
            baselines::deepsea().with_smax(smax),
            &plans,
        );
        let json = fig5a_bench_json(Scale::Quick, &[&h, &ds], &ds, &tight, smax);
        for key in [
            "\"experiment\":\"fig5a\"",
            "\"scale\":\"quick\"",
            "\"queries\":10",
            "\"total_secs\"",
            "\"pool_high_water_bytes\"",
            "\"stage_totals\"",
            "\"matching.roots\"",
            "\"durability.snapshots\"",
            "\"ds_tight\"",
            "\"smax_bytes\"",
            "\"evictions_selected\"",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn fig9_quick_runs() {
        let r = fig9(Scale::Quick);
        assert!(r.body.contains("Overlapping"));
        assert!(r.body.contains("Horizontal"));
    }
}
