//! # deepsea-bench
//!
//! The experiment harness that regenerates **every table and figure** of the
//! DeepSea paper's evaluation (§10). [`harness`] runs a workload under one or
//! more system variants and collects per-query simulated elapsed times;
//! [`report`] renders paper-style tables and series; [`experiments`] wires
//! both into the figure-by-figure reproductions driven by the `experiments`
//! binary and the criterion benches.

pub mod experiments;
pub mod gate;
pub mod golden;
pub mod harness;
pub mod pressure;
pub mod report;

pub use harness::{
    run_variants, run_workload, run_workload_observed, QueryRecord, RunResult, StageTotals,
};
