//! The bench-trajectory regression gate: diff a checked-in `BENCH*.json`
//! snapshot against a freshly regenerated run of the same experiment.
//!
//! The simulator is deterministic, so on an unchanged tree every metric
//! matches bit-for-bit and the gate is silent. When a change shifts a
//! *cost-like* metric — simulated seconds, latency percentiles, shed /
//! eviction / fallback counts — past the configured threshold, the gate
//! reports the regression and (under `--check`) fails, turning the
//! checked-in snapshots into a ratchet on the performance trajectory.
//!
//! Snapshots are compared as flattened numeric leaves: nested objects
//! become dotted keys (`by_hedging.hedging_on.p99_secs`), everything
//! non-numeric is ignored. Added or removed keys are reported but are not
//! regressions — schema evolution is an expected PR side effect.

use std::collections::BTreeMap;

use serde::Value;

/// One metric present in both snapshots.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDelta {
    /// Dotted flattened key.
    pub key: String,
    /// Value in the checked-in baseline.
    pub base: f64,
    /// Value in the fresh run.
    pub fresh: f64,
}

impl MetricDelta {
    /// Relative change `(fresh − base) / base`; ±∞ when the baseline is
    /// zero and the fresh value isn't.
    pub fn rel_change(&self) -> f64 {
        if self.base == 0.0 {
            if self.fresh == 0.0 {
                0.0
            } else {
                f64::INFINITY * self.fresh.signum()
            }
        } else {
            (self.fresh - self.base) / self.base
        }
    }

    /// True when this key measures a cost (larger = worse): simulated
    /// seconds, latency percentiles, a degradation counter, or a lint
    /// rule-hit count (`violations.R3` etc. — the lint snapshot rides the
    /// same ratchet).
    pub fn is_cost_like(&self) -> bool {
        if self.key.contains("violations") {
            return true;
        }
        let last = self.key.rsplit('.').next().unwrap_or(&self.key);
        last.ends_with("_secs")
            || matches!(last, "p50" | "p95" | "p99")
            || last.contains("shed")
            || last.contains("eviction")
            || last.contains("degraded")
            || last.contains("divergent")
            || last.contains("incorrect")
            || last.contains("fallback")
            || last.contains("dropped")
    }

    /// True when this delta is a regression at `threshold` (a fraction:
    /// `0.05` = 5%): a cost-like metric grew past `base · (1 + threshold)`.
    /// A zero baseline regresses on any growth — there is no budget to
    /// hide in.
    pub fn is_regression(&self, threshold: f64) -> bool {
        if !self.is_cost_like() || self.fresh <= self.base {
            return false;
        }
        if self.base == 0.0 {
            return self.fresh > 0.0;
        }
        self.fresh > self.base * (1.0 + threshold)
    }
}

/// The outcome of diffing one snapshot pair.
#[derive(Debug, Clone, Default)]
pub struct GateReport {
    /// Every key present in both snapshots, in key order.
    pub deltas: Vec<MetricDelta>,
    /// Keys only in the baseline (removed by the fresh run).
    pub missing: Vec<String>,
    /// Keys only in the fresh run (added since the baseline).
    pub added: Vec<String>,
}

impl GateReport {
    /// The deltas that regress past `threshold`, in key order.
    pub fn regressions(&self, threshold: f64) -> Vec<&MetricDelta> {
        self.deltas
            .iter()
            .filter(|d| d.is_regression(threshold))
            .collect()
    }

    /// The deltas whose values changed at all (any direction, any key).
    pub fn changed(&self) -> Vec<&MetricDelta> {
        self.deltas.iter().filter(|d| d.base != d.fresh).collect()
    }

    /// Render the human-readable diff: changed metrics with relative
    /// deltas, then schema additions/removals. Empty string when nothing
    /// changed.
    pub fn render(&self, threshold: f64) -> String {
        let mut out = String::new();
        for d in self.changed() {
            let marker = if d.is_regression(threshold) {
                "REGRESSION"
            } else if d.is_cost_like() && d.fresh < d.base {
                "improved"
            } else {
                "changed"
            };
            out.push_str(&format!(
                "  {marker:>10}  {}  {} -> {}  ({:+.2}%)\n",
                d.key,
                d.base,
                d.fresh,
                d.rel_change() * 100.0,
            ));
        }
        for k in &self.missing {
            out.push_str(&format!("     removed  {k}\n"));
        }
        for k in &self.added {
            out.push_str(&format!("       added  {k}\n"));
        }
        out
    }
}

/// Flatten a parsed JSON value into `dotted.key -> f64` for every numeric
/// leaf. Arrays index as `key.0`, `key.1`, …; non-numeric leaves (strings,
/// bools, nulls) are skipped.
pub fn flatten_numeric(value: &Value, prefix: &str, out: &mut BTreeMap<String, f64>) {
    let key = |k: &str| {
        if prefix.is_empty() {
            k.to_string()
        } else {
            format!("{prefix}.{k}")
        }
    };
    match value {
        Value::Object(fields) => {
            for (k, v) in fields {
                flatten_numeric(v, &key(k), out);
            }
        }
        Value::Array(items) => {
            for (i, v) in items.iter().enumerate() {
                flatten_numeric(v, &key(&i.to_string()), out);
            }
        }
        other => {
            if let Some(n) = other.as_f64() {
                out.insert(prefix.to_string(), n);
            }
        }
    }
}

/// Diff two snapshot JSON documents. Returns `Err` on malformed JSON or
/// when the baseline was captured at a different scale than the fresh run
/// (a paper-scale baseline diffed against a quick run would regress on
/// everything, meaninglessly).
pub fn compare_snapshots(baseline: &str, fresh: &str) -> Result<GateReport, String> {
    let base_v = serde::from_str(baseline).map_err(|e| format!("baseline: {e}"))?;
    let fresh_v = serde::from_str(fresh).map_err(|e| format!("fresh: {e}"))?;
    let scale = |v: &Value| v.get("scale").and_then(|s| s.as_str().map(str::to_string));
    if let (Some(b), Some(f)) = (scale(&base_v), scale(&fresh_v)) {
        if b != f {
            return Err(format!("scale mismatch: baseline {b:?} vs fresh {f:?}"));
        }
    }
    let mut base_flat = BTreeMap::new();
    let mut fresh_flat = BTreeMap::new();
    flatten_numeric(&base_v, "", &mut base_flat);
    flatten_numeric(&fresh_v, "", &mut fresh_flat);

    let mut report = GateReport::default();
    for (k, &b) in &base_flat {
        match fresh_flat.get(k) {
            Some(&f) => report.deltas.push(MetricDelta {
                key: k.clone(),
                base: b,
                fresh: f,
            }),
            None => report.missing.push(k.clone()),
        }
    }
    for k in fresh_flat.keys() {
        if !base_flat.contains_key(k) {
            report.added.push(k.clone());
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flatten_dots_nested_objects_and_arrays() {
        let v =
            serde::from_str(r#"{"a":1,"b":{"c":2.5,"d":{"e":3}},"f":[10,20],"s":"skip","n":null}"#)
                .expect("valid json");
        let mut flat = BTreeMap::new();
        flatten_numeric(&v, "", &mut flat);
        assert_eq!(flat.get("a"), Some(&1.0));
        assert_eq!(flat.get("b.c"), Some(&2.5));
        assert_eq!(flat.get("b.d.e"), Some(&3.0));
        assert_eq!(flat.get("f.0"), Some(&10.0));
        assert_eq!(flat.get("f.1"), Some(&20.0));
        assert_eq!(flat.len(), 5, "strings and nulls are not leaves");
    }

    #[test]
    fn identical_snapshots_produce_no_changes() {
        let s = r#"{"scale":"quick","p99_secs":4.5,"commits":60}"#;
        let report = compare_snapshots(s, s).expect("parses");
        assert!(report.changed().is_empty());
        assert!(report.regressions(0.0).is_empty());
        assert!(report.missing.is_empty() && report.added.is_empty());
    }

    #[test]
    fn cost_regression_past_threshold_is_flagged() {
        let base = r#"{"scale":"quick","total_secs":100.0,"queries":60}"#;
        let fresh = r#"{"scale":"quick","total_secs":104.0,"queries":60}"#;
        let report = compare_snapshots(base, fresh).expect("parses");
        // 4% over: passes a 5% gate, fails a 2% gate.
        assert!(report.regressions(0.05).is_empty());
        let regs = report.regressions(0.02);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].key, "total_secs");
        assert!(report.render(0.02).contains("REGRESSION"));
    }

    #[test]
    fn improvements_and_count_changes_are_not_regressions() {
        let base = r#"{"scale":"quick","p99_secs":10.0,"queries":60,"hits":5}"#;
        // p99 improved; a non-cost count changed: neither regresses.
        let fresh = r#"{"scale":"quick","p99_secs":2.0,"queries":60,"hits":9}"#;
        let report = compare_snapshots(base, fresh).expect("parses");
        assert!(report.regressions(0.0).is_empty());
        assert_eq!(report.changed().len(), 2);
        assert!(report.render(0.0).contains("improved"));
    }

    #[test]
    fn lint_rule_hit_counts_are_cost_like() {
        let base = r#"{"scale":"quick","violations":{"P1":9,"R3":0},"wall_ms":12.0}"#;
        let fresh = r#"{"scale":"quick","violations":{"P1":9,"R3":1},"wall_ms":90.0}"#;
        let report = compare_snapshots(base, fresh).expect("parses");
        // A new rule hit regresses even off a zero baseline; wall time is
        // informational (nondeterministic), never a regression.
        let regs = report.regressions(0.5);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].key, "violations.R3");
    }

    #[test]
    fn zero_baseline_regresses_on_any_growth() {
        let base = r#"{"shed_reads":0}"#;
        let fresh = r#"{"shed_reads":1}"#;
        let report = compare_snapshots(base, fresh).expect("parses");
        assert_eq!(report.regressions(0.5).len(), 1);
    }

    #[test]
    fn schema_changes_are_reported_not_failed() {
        let base = r#"{"scale":"quick","old_secs":1.0}"#;
        let fresh = r#"{"scale":"quick","new_secs":1.0}"#;
        let report = compare_snapshots(base, fresh).expect("parses");
        assert_eq!(report.missing, vec!["old_secs".to_string()]);
        assert_eq!(report.added, vec!["new_secs".to_string()]);
        assert!(report.regressions(0.0).is_empty());
    }

    #[test]
    fn scale_mismatch_is_an_error() {
        let base = r#"{"scale":"paper","total_secs":1.0}"#;
        let fresh = r#"{"scale":"quick","total_secs":1.0}"#;
        assert!(compare_snapshots(base, fresh).is_err());
    }
}
