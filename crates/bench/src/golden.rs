//! The fixed golden scenario shared by `tests/golden_pipeline.rs` (in the
//! root package) and the `golden_capture` example.
//!
//! A 50-query Figure-5-style workload on a seeded 100 GB instance, replayed
//! under three variants chosen to exercise every stage of the query
//! lifecycle: whole-view materialization and reuse (`NP`), progressive
//! fragment refinement (`DS`), and pool-pressure eviction (`DS-tight`).
//! The golden test asserts bit-exact `elapsed_secs` plus `materialized` /
//! `evicted` counts per query, so any behavioural drift in the driver
//! pipeline — however small — fails loudly.
//!
//! To regenerate the expected sequences after an *intentional* behaviour
//! change: `cargo run --release --example golden_capture` and paste its
//! output into `tests/golden_pipeline.rs`.

use std::sync::Arc;

use deepsea_core::{baselines, DeepSeaConfig};
use deepsea_engine::{Catalog, LogicalPlan};
use deepsea_workload::schema::{BigBenchData, InstanceSize, ItemDistribution};
use deepsea_workload::sequences::fig5_workload;

/// Seed for both the data generator and the workload sampler.
pub const GOLDEN_SEED: u64 = 7;

/// Number of queries in the replayed workload.
pub const GOLDEN_QUERIES: usize = 50;

/// The seeded instance the golden workload runs against.
pub fn golden_catalog() -> Arc<Catalog> {
    Arc::new(
        BigBenchData::generate(InstanceSize::Gb100, &ItemDistribution::Uniform, GOLDEN_SEED)
            .catalog,
    )
}

/// The fixed 50-query plan sequence.
pub fn golden_plans() -> Vec<LogicalPlan> {
    fig5_workload(GOLDEN_QUERIES, GOLDEN_SEED)
}

/// The three variants the sequences are recorded under.
pub fn golden_variants(catalog: &Catalog) -> Vec<(&'static str, DeepSeaConfig)> {
    vec![
        ("DS", baselines::deepsea().with_phi(0.05)),
        (
            "DS-tight",
            baselines::deepsea()
                .with_phi(0.05)
                .with_smax(catalog.total_base_bytes() / 40),
        ),
        ("NP", baselines::non_partitioned()),
    ]
}
