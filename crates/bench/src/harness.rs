//! Workload runner: execute a query sequence under a system variant and
//! collect per-query statistics.

use std::sync::Arc;

use deepsea_core::{DeepSea, DeepSeaConfig, Observer, QueryTrace};
use deepsea_engine::{Catalog, ClusterSim, LogicalPlan};
use deepsea_relation::Table;
use deepsea_storage::{BlockConfig, SimFs};

/// Per-query measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryRecord {
    /// Total simulated seconds charged to the query (execution + creation).
    pub elapsed: f64,
    /// Execution-only seconds.
    pub query: f64,
    /// Materialization/repartition overhead seconds.
    pub creation: f64,
    /// Map tasks launched by the chosen plan.
    pub map_tasks: u64,
    /// Simulated bytes read by the chosen plan.
    pub bytes_read: u64,
    /// Whether a view answered the query.
    pub used_view: bool,
    /// Number of views/fragments materialized during this query.
    pub materialized: usize,
    /// Number of evictions performed during this query.
    pub evicted: usize,
    /// Per-stage pipeline counters and simulated costs.
    pub trace: QueryTrace,
}

/// Per-stage activity summed over a whole run (from the per-query
/// [`QueryTrace`]s) — the input to [`crate::report::stage_breakdown`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageTotals {
    /// Definition-6 subplan roots examined by matching.
    pub match_roots: u64,
    /// Signature matches found (view could answer a subquery).
    pub match_hits: u64,
    /// Matches backed by materialized bytes in the pool.
    pub materialized_hits: u64,
    /// Views whose statistics recorded a (potential) benefit event.
    pub views_updated: u64,
    /// Rewritings costed by rewriting selection.
    pub rewrites_costed: u64,
    /// Simulated seconds the original (unrewritten) plans would have cost.
    pub base_cost_secs: f64,
    /// Simulated seconds of the chosen (possibly rewritten) plans.
    pub best_cost_secs: f64,
    /// View candidates derived (Definition 6).
    pub view_candidates: u64,
    /// View candidates newly registered (first time seen).
    pub new_views: u64,
    /// Partition-candidate selections processed (Definition 7).
    pub partition_selections: u64,
    /// Fragment candidates newly tracked by those selections.
    pub new_fragments: u64,
    /// Candidates ranked by the Φ knapsack.
    pub candidates_considered: u64,
    /// Creations the knapsack planned.
    pub planned_creations: u64,
    /// Evictions the knapsack planned.
    pub planned_evictions: u64,
    /// Simulated seconds executing (possibly rewritten) queries.
    pub execution_secs: f64,
    /// Simulated seconds creating/repartitioning views.
    pub creation_secs: f64,
    /// Bytes scanned to feed materialization.
    pub bytes_read: u64,
    /// Bytes written by materialization.
    pub bytes_written: u64,
    /// Files written by materialization.
    pub files_written: u64,
    /// Fragments reused via Algorithm-2 covers during repartitioning.
    pub fragments_covered: u64,
    /// Evictions applied from the planned configuration.
    pub evictions_selected: u64,
    /// Evictions forced afterwards to enforce `Smax`.
    pub evictions_forced: u64,
    /// Simulated seconds deleting evicted files (zero under default
    /// weights, where deletes are metadata-only).
    pub eviction_delete_secs: f64,
    /// Transient-failure retries absorbed across execution and
    /// materialization.
    pub retries: u64,
    /// Simulated seconds of retry backoff and latency spikes charged.
    pub retry_penalty_secs: f64,
    /// Views quarantined after permanent I/O failures.
    pub quarantined_views: u64,
    /// Pool bytes released by those quarantines.
    pub quarantined_bytes: u64,
    /// Rewritten plans re-answered from base tables after a view failed.
    pub base_table_fallbacks: u64,
    /// Fragment reads blocked by a node outage and patched at fragment
    /// granularity from base tables.
    pub fragment_fallbacks: u64,
    /// Fragment reads that failed checksum verification (detected, never
    /// served).
    pub corrupt_fragments: u64,
    /// Rewritings skipped because an open circuit breaker guarded the chosen
    /// view (served straight from base tables).
    pub breaker_short_circuits: u64,
    /// Catalog-journal records appended.
    pub journal_appends: u64,
    /// Transient journal-write failures retried.
    pub journal_retries: u64,
    /// Simulated seconds of journal-retry backoff charged.
    pub journal_penalty_secs: f64,
    /// Full-state journal snapshots installed.
    pub journal_snapshots: u64,
}

impl StageTotals {
    /// Flatten to `(name, value)` pairs using the same leaf names as
    /// [`QueryTrace::fields`]. The destructuring is exhaustive (no `..`), so
    /// adding a field here without naming it fails to compile — and the
    /// completeness test below compares this list name-for-name against the
    /// per-query trace flatten, failing whenever a `QueryTrace` field is not
    /// aggregated (or aggregated twice).
    pub fn fields(&self) -> Vec<(&'static str, f64)> {
        let StageTotals {
            match_roots,
            match_hits,
            materialized_hits,
            views_updated,
            rewrites_costed,
            base_cost_secs,
            best_cost_secs,
            view_candidates,
            new_views,
            partition_selections,
            new_fragments,
            candidates_considered,
            planned_creations,
            planned_evictions,
            execution_secs,
            creation_secs,
            bytes_read,
            bytes_written,
            files_written,
            fragments_covered,
            evictions_selected,
            evictions_forced,
            eviction_delete_secs,
            retries,
            retry_penalty_secs,
            quarantined_views,
            quarantined_bytes,
            base_table_fallbacks,
            fragment_fallbacks,
            corrupt_fragments,
            breaker_short_circuits,
            journal_appends,
            journal_retries,
            journal_penalty_secs,
            journal_snapshots,
        } = *self;
        vec![
            ("matching.roots", match_roots as f64),
            ("matching.hits", match_hits as f64),
            ("matching.materialized_hits", materialized_hits as f64),
            ("matching.views_updated", views_updated as f64),
            ("rewriting.rewrites_costed", rewrites_costed as f64),
            ("rewriting.base_cost_secs", base_cost_secs),
            ("rewriting.best_cost_secs", best_cost_secs),
            ("candidates.view_candidates", view_candidates as f64),
            ("candidates.new_views", new_views as f64),
            (
                "candidates.partition_selections",
                partition_selections as f64,
            ),
            ("candidates.new_fragments", new_fragments as f64),
            ("selection.considered", candidates_considered as f64),
            ("selection.planned_creations", planned_creations as f64),
            ("selection.planned_evictions", planned_evictions as f64),
            ("execution.query_secs", execution_secs),
            ("materialization.bytes_read", bytes_read as f64),
            ("materialization.bytes_written", bytes_written as f64),
            ("materialization.files_written", files_written as f64),
            (
                "materialization.fragments_covered",
                fragments_covered as f64,
            ),
            ("materialization.creation_secs", creation_secs),
            ("eviction.selected", evictions_selected as f64),
            ("eviction.limit_forced", evictions_forced as f64),
            ("eviction.delete_secs", eviction_delete_secs),
            ("recovery.retries", retries as f64),
            ("recovery.penalty_secs", retry_penalty_secs),
            ("recovery.quarantined_views", quarantined_views as f64),
            ("recovery.quarantined_bytes", quarantined_bytes as f64),
            ("recovery.base_table_fallbacks", base_table_fallbacks as f64),
            ("recovery.fragment_fallbacks", fragment_fallbacks as f64),
            ("recovery.corrupt_fragments", corrupt_fragments as f64),
            (
                "recovery.breaker_short_circuits",
                breaker_short_circuits as f64,
            ),
            ("durability.journal_appends", journal_appends as f64),
            ("durability.journal_retries", journal_retries as f64),
            ("durability.journal_penalty_secs", journal_penalty_secs),
            ("durability.snapshots", journal_snapshots as f64),
        ]
    }
}

/// The result of running one workload under one variant.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Variant label (`H`, `NP`, `DS`, …).
    pub label: String,
    /// Per-query records in submission order.
    pub per_query: Vec<QueryRecord>,
    /// Pool bytes at the end of the run.
    pub final_pool_bytes: u64,
    /// Largest pool footprint observed at any query boundary.
    pub pool_high_water: u64,
}

impl RunResult {
    /// Total simulated elapsed seconds.
    pub fn total_secs(&self) -> f64 {
        self.per_query.iter().map(|r| r.elapsed).sum()
    }

    /// Cumulative elapsed series (one point per query).
    pub fn cumulative(&self) -> Vec<f64> {
        let mut acc = 0.0;
        self.per_query
            .iter()
            .map(|r| {
                acc += r.elapsed;
                acc
            })
            .collect()
    }

    /// Mean elapsed over a range of query indices.
    pub fn avg_secs(&self, range: std::ops::Range<usize>) -> f64 {
        let slice = &self.per_query[range];
        if slice.is_empty() {
            return 0.0;
        }
        slice.iter().map(|r| r.elapsed).sum::<f64>() / slice.len() as f64
    }

    /// Total map tasks over a range of queries.
    pub fn map_tasks(&self, range: std::ops::Range<usize>) -> u64 {
        self.per_query[range].iter().map(|r| r.map_tasks).sum()
    }

    /// Sum the per-query traces into per-stage totals for the whole run.
    pub fn stage_totals(&self) -> StageTotals {
        let mut t = StageTotals::default();
        for q in &self.per_query {
            let tr = &q.trace;
            t.match_roots += tr.matching.roots as u64;
            t.match_hits += tr.matching.hits as u64;
            t.materialized_hits += tr.matching.materialized_hits as u64;
            t.views_updated += tr.matching.views_updated as u64;
            t.rewrites_costed += tr.rewriting.rewrites_costed as u64;
            t.base_cost_secs += tr.rewriting.base_cost_secs;
            t.best_cost_secs += tr.rewriting.best_cost_secs;
            t.view_candidates += tr.candidates.view_candidates as u64;
            t.new_views += tr.candidates.new_views as u64;
            t.partition_selections += tr.candidates.partition_selections as u64;
            t.new_fragments += tr.candidates.new_fragments as u64;
            t.candidates_considered += tr.selection.considered as u64;
            t.planned_creations += tr.selection.planned_creations as u64;
            t.planned_evictions += tr.selection.planned_evictions as u64;
            t.execution_secs += tr.execution.query_secs;
            t.creation_secs += tr.materialization.creation_secs;
            t.bytes_read += tr.materialization.bytes_read;
            t.bytes_written += tr.materialization.bytes_written;
            t.files_written += tr.materialization.files_written;
            t.fragments_covered += tr.materialization.fragments_covered;
            t.evictions_selected += tr.eviction.selected as u64;
            t.evictions_forced += tr.eviction.limit_forced as u64;
            t.eviction_delete_secs += tr.eviction.delete_secs;
            t.retries += tr.recovery.retries as u64;
            t.retry_penalty_secs += tr.recovery.penalty_secs;
            t.quarantined_views += tr.recovery.quarantined_views as u64;
            t.quarantined_bytes += tr.recovery.quarantined_bytes;
            t.base_table_fallbacks += tr.recovery.base_table_fallbacks as u64;
            t.fragment_fallbacks += tr.recovery.fragment_fallbacks as u64;
            t.corrupt_fragments += tr.recovery.corrupt_fragments as u64;
            t.breaker_short_circuits += tr.recovery.breaker_short_circuits as u64;
            t.journal_appends += tr.durability.journal_appends as u64;
            t.journal_retries += tr.durability.journal_retries as u64;
            t.journal_penalty_secs += tr.durability.journal_penalty_secs;
            t.journal_snapshots += tr.durability.snapshots as u64;
        }
        t
    }

    /// Projected total time for `n` queries (§9 "Simulator" / Figure 7a):
    /// the measured cumulative time plus the *steady-state* per-query rate
    /// (mean over the second half of the workload, after view creation and
    /// progressive refinement have settled) extrapolated to `n`.
    pub fn projected_total(&self, n: usize) -> f64 {
        let cum = self.cumulative();
        let m = cum.len();
        if m == 0 {
            return 0.0;
        }
        if n <= m {
            return cum[n - 1];
        }
        let half = m / 2;
        let steady = if half == 0 {
            cum[m - 1] / m as f64
        } else {
            (cum[m - 1] - cum[half - 1]) / (m - half) as f64
        };
        cum[m - 1] + steady * (n - m) as f64
    }
}

/// Least-squares fit of `y = a + b·x` over `(1..=len, ys)` evaluated at `x=n`.
pub fn linear_projection(cumulative: &[f64], n: usize) -> f64 {
    let m = cumulative.len();
    if m == 0 {
        return 0.0;
    }
    if m == 1 {
        return cumulative[0] * n as f64;
    }
    let xs: Vec<f64> = (1..=m).map(|i| i as f64).collect();
    let xbar = xs.iter().sum::<f64>() / m as f64;
    let ybar = cumulative.iter().sum::<f64>() / m as f64;
    let mut num = 0.0;
    let mut den = 0.0;
    for (x, y) in xs.iter().zip(cumulative) {
        num += (x - xbar) * (y - ybar);
        den += (x - xbar) * (x - xbar);
    }
    let slope = if den > 0.0 { num / den } else { 0.0 };
    let intercept = ybar - slope * xbar;
    intercept + slope * n as f64
}

/// Index (1-based) of the first query where `variant`'s cumulative time drops
/// to or below `baseline`'s — the "queries needed to recoup materialization
/// cost" of Figure 7b. `None` if it never recoups within the workload.
pub fn recoup_point(variant: &RunResult, baseline: &RunResult) -> Option<usize> {
    let v = variant.cumulative();
    let b = baseline.cumulative();
    v.iter().zip(&b).position(|(x, y)| x <= y).map(|i| i + 1)
}

/// Run one workload under one variant configuration. Every variant gets a
/// fresh simulated file system (its own pool); the catalog is shared.
pub fn run_workload(
    label: impl Into<String>,
    catalog: &Arc<Catalog>,
    config: DeepSeaConfig,
    plans: &[LogicalPlan],
) -> RunResult {
    let cluster = ClusterSim::paper_default();
    let fs = Arc::new(SimFs::new(BlockConfig::default(), cluster.weights));
    run_workload_on(label, catalog, fs, cluster, config, plans)
}

/// Like [`run_workload`] with explicit substrates.
pub fn run_workload_on(
    label: impl Into<String>,
    catalog: &Arc<Catalog>,
    fs: Arc<SimFs<Table>>,
    cluster: ClusterSim,
    config: DeepSeaConfig,
    plans: &[LogicalPlan],
) -> RunResult {
    let ds = DeepSea::with_parts(Arc::clone(catalog), fs, cluster, config);
    drive_workload(label, ds, config, plans)
}

/// Like [`run_workload`], but with an attached [`Observer`]: metrics, spans
/// and decision events accumulate in `obs` (shared via its internal `Arc`,
/// so the caller's handle sees everything after the run). The observed run
/// must be bit-identical to the unobserved one — `tests/obs_transparency.rs`
/// enforces this against the golden workload.
pub fn run_workload_observed(
    label: impl Into<String>,
    catalog: &Arc<Catalog>,
    config: DeepSeaConfig,
    plans: &[LogicalPlan],
    obs: Observer,
) -> RunResult {
    let cluster = ClusterSim::paper_default();
    let fs = Arc::new(SimFs::new(BlockConfig::default(), cluster.weights));
    let ds = DeepSea::with_parts(Arc::clone(catalog), fs, cluster, config).with_observer(obs);
    drive_workload(label, ds, config, plans)
}

fn drive_workload(
    label: impl Into<String>,
    mut ds: DeepSea,
    config: DeepSeaConfig,
    plans: &[LogicalPlan],
) -> RunResult {
    let mut per_query = Vec::with_capacity(plans.len());
    let mut pool_high_water = 0u64;
    for plan in plans {
        let out = ds
            .process_query(plan)
            .unwrap_or_else(|e| panic!("query failed under {:?}: {e}", config));
        pool_high_water = pool_high_water.max(ds.pool_bytes());
        per_query.push(QueryRecord {
            elapsed: out.elapsed_secs,
            query: out.query_secs,
            creation: out.creation_secs,
            map_tasks: out.metrics.map_tasks,
            bytes_read: out.metrics.bytes_read,
            used_view: out.used_view.is_some(),
            materialized: out.materialized.len(),
            evicted: out.evicted.len(),
            trace: out.trace,
        });
    }
    RunResult {
        label: label.into(),
        per_query,
        final_pool_bytes: ds.pool_bytes(),
        pool_high_water,
    }
}

/// Run the same workload under several variants in parallel (one thread per
/// variant; each has an independent pool).
pub fn run_variants(
    catalog: &Arc<Catalog>,
    variants: &[(&str, DeepSeaConfig)],
    plans: &[LogicalPlan],
) -> Vec<RunResult> {
    let mut results: Vec<Option<RunResult>> = Vec::new();
    results.resize_with(variants.len(), || None);
    std::thread::scope(|s| {
        for (slot, (label, cfg)) in results.iter_mut().zip(variants) {
            let catalog = Arc::clone(catalog);
            s.spawn(move || {
                *slot = Some(run_workload(*label, &catalog, *cfg, plans));
            });
        }
    });
    results.into_iter().map(|r| r.expect("filled")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepsea_core::baselines;
    use deepsea_workload::schema::{BigBenchData, InstanceSize, ItemDistribution};
    use deepsea_workload::sequences::fixed_template_workload;
    use deepsea_workload::{Selectivity, Skew, TemplateId};

    fn small_setup() -> (Arc<Catalog>, Vec<LogicalPlan>) {
        let data = BigBenchData::generate(InstanceSize::Gb100, &ItemDistribution::Uniform, 11);
        let plans =
            fixed_template_workload(TemplateId::Q30, 6, Selectivity::Medium, Skew::Heavy, 11);
        (Arc::new(data.catalog), plans)
    }

    #[test]
    fn hive_vs_deepsea_ordering() {
        let (catalog, plans) = small_setup();
        let h = run_workload("H", &catalog, baselines::hive(), &plans);
        let ds = run_workload("DS", &catalog, baselines::deepsea(), &plans);
        assert_eq!(h.per_query.len(), 6);
        assert!(
            ds.total_secs() < h.total_secs(),
            "DeepSea must beat Hive on a reuse-friendly workload: {} vs {}",
            ds.total_secs(),
            h.total_secs()
        );
        assert!(ds.final_pool_bytes > 0);
        assert_eq!(h.final_pool_bytes, 0);
    }

    #[test]
    fn run_variants_parallel_matches_serial() {
        let (catalog, plans) = small_setup();
        let serial = run_workload("DS", &catalog, baselines::deepsea(), &plans);
        let par = run_variants(
            &catalog,
            &[("H", baselines::hive()), ("DS", baselines::deepsea())],
            &plans,
        );
        assert_eq!(par.len(), 2);
        assert_eq!(par[1].label, "DS");
        // Determinism: simulated times are identical run to run.
        assert_eq!(serial.total_secs(), par[1].total_secs());
    }

    #[test]
    fn cumulative_is_monotone() {
        let (catalog, plans) = small_setup();
        let ds = run_workload("DS", &catalog, baselines::deepsea(), &plans);
        let c = ds.cumulative();
        assert!(c.windows(2).all(|w| w[1] >= w[0]));
        assert!((c.last().unwrap() - ds.total_secs()).abs() < 1e-9);
    }

    #[test]
    fn linear_projection_extrapolates() {
        // Perfectly linear: 10s per query.
        let cum: Vec<f64> = (1..=10).map(|i| 10.0 * i as f64).collect();
        let p = linear_projection(&cum, 100);
        assert!((p - 1000.0).abs() < 1e-6);
        assert_eq!(linear_projection(&[], 100), 0.0);
        assert_eq!(linear_projection(&[5.0], 10), 50.0);
    }

    #[test]
    fn recoup_point_detects_crossover() {
        let mk = |elapsed: Vec<f64>| RunResult {
            label: "x".into(),
            per_query: elapsed
                .into_iter()
                .map(|e| QueryRecord {
                    elapsed: e,
                    query: e,
                    creation: 0.0,
                    map_tasks: 0,
                    bytes_read: 0,
                    used_view: false,
                    materialized: 0,
                    evicted: 0,
                    trace: QueryTrace::default(),
                })
                .collect(),
            final_pool_bytes: 0,
            pool_high_water: 0,
        };
        // Variant pays 30 up front then 1/query; baseline pays 10/query.
        let variant = mk(vec![30.0, 1.0, 1.0, 1.0, 1.0]);
        let base = mk(vec![10.0, 10.0, 10.0, 10.0, 10.0]);
        assert_eq!(recoup_point(&variant, &base), Some(4));
        let never = mk(vec![100.0; 5]);
        assert_eq!(recoup_point(&never, &base), None);
    }

    #[test]
    fn stage_totals_sum_per_query_traces() {
        let (catalog, plans) = small_setup();
        let ds = run_workload("DS", &catalog, baselines::deepsea(), &plans);
        let t = ds.stage_totals();
        assert!(t.match_roots > 0);
        assert!(t.match_hits > 0, "repeated template must rehit its views");
        assert!(t.view_candidates > 0);
        assert!(t.candidates_considered > 0);
        assert!(t.planned_creations > 0);
        assert!(t.bytes_written > 0);
        // The per-stage costs must agree with the coarse per-query sums.
        let exec: f64 = ds.per_query.iter().map(|q| q.query).sum();
        let creation: f64 = ds.per_query.iter().map(|q| q.creation).sum();
        assert!((t.execution_secs - exec).abs() < 1e-9);
        assert!((t.creation_secs - creation).abs() < 1e-9);
        // Hive never enters the pipeline: everything but execution stays 0.
        let h = run_workload("H", &catalog, baselines::hive(), &plans);
        let ht = h.stage_totals();
        assert!(ht.execution_secs > 0.0);
        assert_eq!(
            StageTotals {
                execution_secs: ht.execution_secs,
                ..StageTotals::default()
            },
            ht
        );
    }

    /// The completeness audit: every `QueryTrace` leaf must be aggregated by
    /// `stage_totals()` exactly once, under the same name. Both flattens use
    /// exhaustive destructuring, so adding a trace field without extending
    /// `StageTotals` (or vice versa) fails to compile; aggregating a field
    /// into the wrong total (or forgetting the `+=`) fails here.
    #[test]
    fn stage_totals_cover_every_trace_field_exactly_once() {
        let (catalog, plans) = small_setup();
        let ds = run_workload("DS", &catalog, baselines::deepsea(), &plans);
        let totals = ds.stage_totals().fields();

        // Sum the per-query flattens by leaf name, preserving order.
        let mut summed: Vec<(&'static str, f64)> = Vec::new();
        for q in &ds.per_query {
            for (name, value) in q.trace.fields() {
                match summed.iter_mut().find(|(n, _)| *n == name) {
                    Some((_, acc)) => *acc += value,
                    None => summed.push((name, value)),
                }
            }
        }

        let total_names: Vec<&str> = totals.iter().map(|(n, _)| *n).collect();
        let trace_names: Vec<&str> = summed.iter().map(|(n, _)| *n).collect();
        assert_eq!(
            total_names, trace_names,
            "StageTotals::fields() must list exactly the QueryTrace leaves, in order"
        );
        for ((name, total), (_, sum)) in totals.iter().zip(&summed) {
            assert!(
                (total - sum).abs() <= 1e-9 * sum.abs().max(1.0),
                "{name}: stage_totals()={total} but per-query traces sum to {sum}"
            );
        }
    }

    #[test]
    fn pool_high_water_bounds_final_pool() {
        let (catalog, plans) = small_setup();
        let ds = run_workload("DS", &catalog, baselines::deepsea(), &plans);
        assert!(ds.pool_high_water >= ds.final_pool_bytes);
        assert!(ds.pool_high_water > 0);
        let h = run_workload("H", &catalog, baselines::hive(), &plans);
        assert_eq!(h.pool_high_water, 0);
    }

    #[test]
    fn observed_run_matches_unobserved_and_collects_metrics() {
        let (catalog, plans) = small_setup();
        let plain = run_workload("DS", &catalog, baselines::deepsea(), &plans);
        let obs = Observer::new(deepsea_core::ObsConfig::on());
        let observed =
            run_workload_observed("DS", &catalog, baselines::deepsea(), &plans, obs.clone());
        for (a, b) in plain.per_query.iter().zip(&observed.per_query) {
            assert_eq!(a.elapsed.to_bits(), b.elapsed.to_bits());
            assert_eq!(a.materialized, b.materialized);
            assert_eq!(a.evicted, b.evicted);
        }
        assert_eq!(plain.final_pool_bytes, observed.final_pool_bytes);
        let snap = obs.metrics_snapshot();
        assert_eq!(
            snap.counter("deepsea_queries_total", None),
            plans.len() as u64
        );
    }

    #[test]
    fn avg_and_map_tasks_ranges() {
        let (catalog, plans) = small_setup();
        let ds = run_workload("DS", &catalog, baselines::deepsea(), &plans);
        let avg_tail = ds.avg_secs(1..ds.per_query.len());
        assert!(avg_tail > 0.0);
        assert!(ds.map_tasks(0..ds.per_query.len()) > 0);
    }
}
