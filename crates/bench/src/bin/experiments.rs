//! Regenerate the paper's tables and figures.
//!
//! ```text
//! experiments [--quick] [all|fig1|fig2|table1|fig5a|fig5b|fig6|fig7|fig8a|fig8b|fig9|fig10|ablations]...
//! ```
//!
//! With no experiment arguments, runs everything. `--quick` scales workloads
//! down (used by CI/smoke runs); the default is paper scale.

use std::io::Write;

use deepsea_bench::experiments::{self, ExperimentReport, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scale = if quick { Scale::Quick } else { Scale::Paper };
    let wanted: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();

    let reports: Vec<ExperimentReport> = if wanted.is_empty() || wanted.iter().any(|w| *w == "all")
    {
        experiments::all(scale)
    } else {
        wanted
            .iter()
            .map(|w| match w.as_str() {
                "fig1" => experiments::fig1(),
                "fig2" => experiments::fig2(),
                "table1" => experiments::table1(),
                "fig5a" => experiments::fig5a(scale),
                "fig5b" => experiments::fig5b(scale),
                "fig6" => experiments::fig6(scale),
                "fig7" => experiments::fig7(scale),
                "fig8a" => experiments::fig8a(scale),
                "fig8b" => experiments::fig8b(scale),
                "fig9" => experiments::fig9(scale),
                "fig10" => experiments::fig10(scale),
                "ablations" => experiments::ablations(scale),
                other => {
                    eprintln!("unknown experiment {other:?}");
                    std::process::exit(2);
                }
            })
            .collect()
    };

    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for r in &reports {
        writeln!(out, "## {} — {}\n", r.id, r.title).unwrap();
        writeln!(out, "{}", r.body).unwrap();
    }
}
