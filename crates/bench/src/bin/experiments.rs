//! Regenerate the paper's tables and figures.
//!
//! ```text
//! experiments [--quick] [--metrics-out PATH] [--events-out PATH] [--trace-out PATH]
//!             [all|fig1|fig2|table1|fig5a|fig5b|fig6|fig7|fig8a|fig8b|fig9|fig10|ablations|pressure|node-failure|overload]...
//! ```
//!
//! With no experiment arguments, runs everything. `--quick` scales workloads
//! down (used by CI/smoke runs); the default is paper scale.
//!
//! Whenever `fig5a` runs (alone or as part of `all`), its DS variant runs
//! under an attached observer and the machine-readable summary is written to
//! `BENCH.json` in the current directory. `--metrics-out` additionally dumps
//! the observer's metrics in Prometheus text format, and `--events-out` the
//! decision-event audit log as JSONL. Whenever `pressure` runs, the
//! eviction-pressure serving scenario's summary (client latency
//! percentiles under concurrency) is written to `BENCH_pressure.json`, and
//! whenever `node-failure` runs, the rolling-outage serving scenario's
//! summary (latency percentiles and degraded-read rate at replication 1
//! and 2) is written to `BENCH_node_failure.json`, and whenever `overload`
//! runs, the tail-tolerance scenario's summary (latency percentiles, shed
//! rate and hedge counters under rolling gray slowness, hedging off vs on)
//! is written to `BENCH_overload.json`.
//!
//! `--trace-out PATH` writes the causal span log of the richest traced run
//! (overload if it ran, else pressure, node-failure, or fig5a) as
//! deterministic Chrome-trace-event JSON — loadable in Perfetto or
//! `chrome://tracing` — and prints a text top-down critical-path profile of
//! the slowest tickets to stdout.

use std::io::Write;

use deepsea_bench::experiments::{self, ExperimentReport, Fig5aRun, Scale};
use deepsea_bench::pressure::{self, PressureRun};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scale = if quick { Scale::Quick } else { Scale::Paper };
    let flag_value = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let metrics_out = flag_value("--metrics-out");
    let events_out = flag_value("--events-out");
    let trace_out = flag_value("--trace-out");
    let flag_values: Vec<&String> = [&metrics_out, &events_out, &trace_out]
        .iter()
        .filter_map(|o| o.as_ref())
        .collect();
    let wanted: Vec<&String> = args
        .iter()
        .filter(|a| !a.starts_with("--") && !flag_values.contains(a))
        .collect();

    let mut fig5a_run: Option<Fig5aRun> = None;
    let run_fig5a = |fig5a_run: &mut Option<Fig5aRun>| -> ExperimentReport {
        let run = experiments::fig5a_observed(scale);
        let report = run.report.clone();
        *fig5a_run = Some(run);
        report
    };
    let mut pressure_run: Option<PressureRun> = None;
    let run_pressure = |pressure_run: &mut Option<PressureRun>| -> ExperimentReport {
        let run = pressure::pressure(scale);
        let report = run.report.clone();
        *pressure_run = Some(run);
        report
    };
    let mut node_failure_run: Option<PressureRun> = None;
    let run_node_failure = |node_failure_run: &mut Option<PressureRun>| -> ExperimentReport {
        let run = pressure::node_failure(scale);
        let report = run.report.clone();
        *node_failure_run = Some(run);
        report
    };
    let mut overload_run: Option<PressureRun> = None;
    let run_overload = |overload_run: &mut Option<PressureRun>| -> ExperimentReport {
        let run = pressure::overload(scale);
        let report = run.report.clone();
        *overload_run = Some(run);
        report
    };

    let everything = wanted.is_empty() || wanted.iter().any(|w| *w == "all");
    let reports: Vec<ExperimentReport> = if everything {
        vec![
            experiments::fig1(),
            experiments::fig2(),
            experiments::table1(),
            run_fig5a(&mut fig5a_run),
            experiments::fig5b(scale),
            experiments::fig6(scale),
            experiments::fig7(scale),
            experiments::fig8a(scale),
            experiments::fig8b(scale),
            experiments::fig9(scale),
            experiments::fig10(scale),
            experiments::ablations(scale),
            run_pressure(&mut pressure_run),
            run_node_failure(&mut node_failure_run),
            run_overload(&mut overload_run),
        ]
    } else {
        wanted
            .iter()
            .map(|w| match w.as_str() {
                "fig1" => experiments::fig1(),
                "fig2" => experiments::fig2(),
                "table1" => experiments::table1(),
                "fig5a" => run_fig5a(&mut fig5a_run),
                "fig5b" => experiments::fig5b(scale),
                "fig6" => experiments::fig6(scale),
                "fig7" => experiments::fig7(scale),
                "fig8a" => experiments::fig8a(scale),
                "fig8b" => experiments::fig8b(scale),
                "fig9" => experiments::fig9(scale),
                "fig10" => experiments::fig10(scale),
                "ablations" => experiments::ablations(scale),
                "pressure" => run_pressure(&mut pressure_run),
                "node-failure" => run_node_failure(&mut node_failure_run),
                "overload" => run_overload(&mut overload_run),
                other => {
                    eprintln!("unknown experiment {other:?}");
                    std::process::exit(2);
                }
            })
            .collect()
    };

    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for r in &reports {
        writeln!(out, "## {} — {}\n", r.id, r.title).unwrap();
        writeln!(out, "{}", r.body).unwrap();
    }
    drop(out);

    if let Some(run) = &fig5a_run {
        std::fs::write("BENCH.json", format!("{}\n", run.bench_json)).expect("write BENCH.json");
        eprintln!("wrote BENCH.json");
        if let Some(path) = &metrics_out {
            std::fs::write(path, run.observer.render_prometheus()).expect("write metrics");
            eprintln!("wrote {path}");
        }
        if let Some(path) = &events_out {
            std::fs::write(path, run.observer.events_jsonl()).expect("write events");
            eprintln!("wrote {path}");
        }
    } else if metrics_out.is_some() || events_out.is_some() {
        eprintln!("--metrics-out/--events-out require fig5a (or all) to run");
        std::process::exit(2);
    }

    if let Some(run) = &pressure_run {
        std::fs::write("BENCH_pressure.json", format!("{}\n", run.bench_json))
            .expect("write BENCH_pressure.json");
        eprintln!("wrote BENCH_pressure.json");
    }

    if let Some(run) = &node_failure_run {
        std::fs::write("BENCH_node_failure.json", format!("{}\n", run.bench_json))
            .expect("write BENCH_node_failure.json");
        eprintln!("wrote BENCH_node_failure.json");
    }

    if let Some(run) = &overload_run {
        std::fs::write("BENCH_overload.json", format!("{}\n", run.bench_json))
            .expect("write BENCH_overload.json");
        eprintln!("wrote BENCH_overload.json");
    }

    if let Some(path) = &trace_out {
        let observer = overload_run
            .as_ref()
            .map(|r| &r.observer)
            .or(pressure_run.as_ref().map(|r| &r.observer))
            .or(node_failure_run.as_ref().map(|r| &r.observer))
            .or(fig5a_run.as_ref().map(|r| &r.observer));
        let Some(obs) = observer else {
            eprintln!(
                "--trace-out requires a traced experiment (fig5a, pressure, \
                 node-failure or overload) to run"
            );
            std::process::exit(2);
        };
        let spans = obs.spans_snapshot();
        std::fs::write(path, deepsea_obs::chrome_trace_json(&spans)).expect("write trace");
        let forest = deepsea_obs::TraceForest::from_spans(&spans);
        let tickets: Vec<u64> = forest.trace_ids().into_iter().filter(|&t| t != 0).collect();
        println!("{}", deepsea_obs::render_text_profile(&forest, &tickets, 5));
        eprintln!("wrote {path}");
    }
}
