//! The bench-trajectory gate.
//!
//! ```text
//! bench report [--check] [--threshold PCT] [--dir PATH]
//! ```
//!
//! `report` regenerates the quick-scale benchmark snapshots (fig5a,
//! node-failure, overload — the ones checked into the repository) and
//! diffs each against its checked-in `BENCH*.json` in `--dir` (default:
//! the current directory). Missing baselines are skipped with a note, so
//! the gate works on partial checkouts.
//!
//! The simulator is deterministic: on an unchanged tree every metric is
//! bit-identical and the diff is empty. `--check` turns regressions into a
//! nonzero exit: any *cost-like* metric (simulated seconds, latency
//! percentiles, shed/eviction/fallback counts) that grew more than
//! `--threshold` percent (default 2%) over its checked-in baseline fails
//! the gate. Improvements and non-cost changes are reported but pass —
//! refresh the snapshots with `experiments --quick` when they are
//! intentional.

use deepsea_bench::experiments::{self, Scale};
use deepsea_bench::gate::compare_snapshots;
use deepsea_bench::pressure;

/// Default regression threshold, percent.
const DEFAULT_THRESHOLD_PCT: f64 = 2.0;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) != Some("report") {
        eprintln!("usage: bench report [--check] [--threshold PCT] [--dir PATH]");
        std::process::exit(2);
    }
    let check = args.iter().any(|a| a == "--check");
    let flag_value = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let threshold_pct = flag_value("--threshold")
        .map(|v| {
            v.parse::<f64>().unwrap_or_else(|_| {
                eprintln!("--threshold wants a number (percent), got {v:?}");
                std::process::exit(2);
            })
        })
        .unwrap_or(DEFAULT_THRESHOLD_PCT);
    let threshold = threshold_pct / 100.0;
    let dir = flag_value("--dir").unwrap_or_else(|| ".".to_string());

    // (snapshot file, fresh quick-scale regeneration) — the experiments the
    // repository pins. BENCH_pressure.json is a side product, not a pinned
    // baseline, so it is not gated here.
    let snapshots: Vec<(&str, String)> = vec![
        (
            "BENCH.json",
            experiments::fig5a_observed(Scale::Quick).bench_json,
        ),
        (
            "BENCH_node_failure.json",
            pressure::node_failure(Scale::Quick).bench_json,
        ),
        (
            "BENCH_overload.json",
            pressure::overload(Scale::Quick).bench_json,
        ),
    ];

    let mut failed = false;
    for (file, fresh) in &snapshots {
        let path = format!("{dir}/{file}");
        let baseline = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(_) => {
                println!("{file}: no baseline at {path}, skipped");
                continue;
            }
        };
        let report = match compare_snapshots(&baseline, fresh) {
            Ok(r) => r,
            Err(e) => {
                println!("{file}: FAILED to diff: {e}");
                failed = true;
                continue;
            }
        };
        let regressions = report.regressions(threshold);
        if report.changed().is_empty() && report.missing.is_empty() && report.added.is_empty() {
            println!("{file}: unchanged ({} metrics)", report.deltas.len());
        } else {
            println!("{file}:");
            print!("{}", report.render(threshold));
        }
        if !regressions.is_empty() {
            println!(
                "{file}: {} regression(s) past {threshold_pct}% threshold",
                regressions.len()
            );
            failed = true;
        }
    }

    if failed && check {
        eprintln!("bench gate FAILED");
        std::process::exit(1);
    }
    if failed {
        eprintln!("regressions found (informational; use --check to fail)");
    }
}
