//! The bench-trajectory gate.
//!
//! ```text
//! bench report [--check] [--threshold PCT] [--dir PATH]
//! ```
//!
//! `report` regenerates the quick-scale benchmark snapshots (fig5a,
//! node-failure, overload — the ones checked into the repository) and
//! diffs each against its checked-in `BENCH*.json` in `--dir` (default:
//! the current directory). Missing baselines are skipped with a note, so
//! the gate works on partial checkouts.
//!
//! The simulator is deterministic: on an unchanged tree every metric is
//! bit-identical and the diff is empty. `--check` turns regressions into a
//! nonzero exit: any *cost-like* metric (simulated seconds, latency
//! percentiles, shed/eviction/fallback counts) that grew more than
//! `--threshold` percent (default 2%) over its checked-in baseline fails
//! the gate. Improvements and non-cost changes are reported but pass —
//! refresh the snapshots with `experiments --quick` when they are
//! intentional.

use deepsea_bench::experiments::{self, Scale};
use deepsea_bench::gate::compare_snapshots;
use deepsea_bench::pressure;
use serde::ObjectBuilder;

/// Run `deepsea-lint` over the workspace and snapshot its wall time and
/// per-rule hit counts, so linter slowdowns and rule regressions ride the
/// same trajectory gate as the simulator metrics (`violations.*` keys are
/// cost-like; `wall_ms` is informational — it is nondeterministic).
#[allow(clippy::disallowed_methods, clippy::disallowed_types)]
fn lint_snapshot() -> Option<String> {
    let cwd = std::env::current_dir().ok()?;
    let root = deepsea_lint::find_workspace_root(&cwd)?;
    // deepsea-lint: allow(wall_clock) -- measures the linter's own wall time
    // for the trajectory snapshot; feeds no simulated cost or decision.
    let start = std::time::Instant::now();
    let run = deepsea_lint::lint_workspace(&root).ok()?;
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let mut by_rule = ObjectBuilder::new();
    for rule in deepsea_lint::RuleId::all() {
        let n = run.violations.iter().filter(|v| v.rule == rule).count() as u64;
        by_rule = by_rule.field(rule.code(), n);
    }
    let obj = ObjectBuilder::new()
        .field("experiment", "lint")
        .field("scale", "quick")
        .field("files_scanned", run.files.len() as u64)
        .field("wall_ms", wall_ms)
        .field("violations_total", run.violations.len() as u64)
        .field("violations", by_rule.build())
        .build();
    Some(serde::to_string(&obj))
}

/// Default regression threshold, percent.
const DEFAULT_THRESHOLD_PCT: f64 = 2.0;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) != Some("report") {
        eprintln!("usage: bench report [--check] [--threshold PCT] [--dir PATH]");
        std::process::exit(2);
    }
    let check = args.iter().any(|a| a == "--check");
    let flag_value = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let threshold_pct = flag_value("--threshold")
        .map(|v| {
            v.parse::<f64>().unwrap_or_else(|_| {
                eprintln!("--threshold wants a number (percent), got {v:?}");
                std::process::exit(2);
            })
        })
        .unwrap_or(DEFAULT_THRESHOLD_PCT);
    let threshold = threshold_pct / 100.0;
    let dir = flag_value("--dir").unwrap_or_else(|| ".".to_string());

    // (snapshot file, fresh quick-scale regeneration) — the experiments the
    // repository pins. BENCH_pressure.json is a side product, not a pinned
    // baseline, so it is not gated here.
    let mut snapshots: Vec<(&str, String)> = vec![
        (
            "BENCH.json",
            experiments::fig5a_observed(Scale::Quick).bench_json,
        ),
        (
            "BENCH_node_failure.json",
            pressure::node_failure(Scale::Quick).bench_json,
        ),
        (
            "BENCH_overload.json",
            pressure::overload(Scale::Quick).bench_json,
        ),
    ];
    match lint_snapshot() {
        Some(json) => snapshots.push(("BENCH_lint.json", json)),
        None => println!("BENCH_lint.json: no workspace root found, lint snapshot skipped"),
    }

    let mut failed = false;
    for (file, fresh) in &snapshots {
        let path = format!("{dir}/{file}");
        let baseline = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(_) => {
                println!("{file}: no baseline at {path}, skipped");
                continue;
            }
        };
        let report = match compare_snapshots(&baseline, fresh) {
            Ok(r) => r,
            Err(e) => {
                println!("{file}: FAILED to diff: {e}");
                failed = true;
                continue;
            }
        };
        let regressions = report.regressions(threshold);
        if report.changed().is_empty() && report.missing.is_empty() && report.added.is_empty() {
            println!("{file}: unchanged ({} metrics)", report.deltas.len());
        } else {
            println!("{file}:");
            print!("{}", report.render(threshold));
        }
        if !regressions.is_empty() {
            println!(
                "{file}: {} regression(s) past {threshold_pct}% threshold",
                regressions.len()
            );
            failed = true;
        }
    }

    if failed && check {
        eprintln!("bench gate FAILED");
        std::process::exit(1);
    }
    if failed {
        eprintln!("regressions found (informational; use --check to fail)");
    }
}
