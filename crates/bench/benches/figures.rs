//! One criterion bench per table/figure of the paper's evaluation.
//!
//! Each bench runs a miniature of the corresponding experiment (the full
//! reproductions live in the `experiments` binary: `cargo run --release -p
//! deepsea-bench --bin experiments`). Benchmarked here is the end-to-end
//! harness cost — data already generated, pool rebuilt per iteration — so
//! regressions in matching/selection/materialization show up per figure.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use deepsea_bench::harness::run_workload;
use deepsea_core::baselines;
use deepsea_engine::Catalog;
use deepsea_workload::schema::{BigBenchData, InstanceSize, ItemDistribution};
use deepsea_workload::sdss::{sdss_like_histogram, SdssTrace};
use deepsea_workload::sequences::{
    fig10_workload, fig5_workload, fig6_workload, fig7_workload, fig8a_workload, fig8b_workload,
    fig9_workload, item_domain,
};
use deepsea_workload::{Selectivity, Skew};

fn uniform_catalog() -> Arc<Catalog> {
    Arc::new(BigBenchData::generate(InstanceSize::Gb100, &ItemDistribution::Uniform, 9).catalog)
}

fn sdss_catalog() -> Arc<Catalog> {
    let (lo, hi) = item_domain();
    Arc::new(
        BigBenchData::generate(
            InstanceSize::Gb100,
            &ItemDistribution::Histogram(sdss_like_histogram(lo, hi)),
            9,
        )
        .catalog,
    )
}

fn fig1_sdss_hist(c: &mut Criterion) {
    let (lo, hi) = item_domain();
    let trace = SdssTrace::new(lo, hi);
    c.bench_function("fig1_trace_and_histogram", |b| {
        b.iter(|| {
            let ranges = trace.generate(2_000, 9);
            black_box(trace.hit_histogram(&ranges, 42))
        })
    });
}

fn fig5_baselines(c: &mut Criterion) {
    let catalog = sdss_catalog();
    let plans = fig5_workload(12, 9);
    c.bench_function("fig5_ds_sdss_workload", |b| {
        b.iter(|| run_workload("DS", &catalog, baselines::deepsea().with_phi(0.05), &plans))
    });
    c.bench_function("fig5_np_sdss_workload", |b| {
        b.iter(|| run_workload("NP", &catalog, baselines::non_partitioned(), &plans))
    });
    let smax = catalog.total_base_bytes() / 10;
    c.bench_function("fig5b_nectar_small_pool", |b| {
        b.iter(|| {
            run_workload(
                "N",
                &catalog,
                baselines::nectar().with_phi(0.05).with_smax(smax),
                &plans,
            )
        })
    });
}

fn fig6_equidepth(c: &mut Criterion) {
    let catalog = uniform_catalog();
    let plans = fig6_workload(9);
    c.bench_function("fig6_ds_adaptive", |b| {
        b.iter(|| run_workload("DS", &catalog, baselines::deepsea(), &plans))
    });
    c.bench_function("fig6_e15_equidepth", |b| {
        b.iter(|| run_workload("E-15", &catalog, baselines::equi_depth(15), &plans))
    });
}

fn fig7_selectivity_skew(c: &mut Criterion) {
    let catalog = uniform_catalog();
    let plans = fig7_workload(Selectivity::Small, Skew::Heavy, 9)[..10].to_vec();
    c.bench_function("fig7_sh_ds", |b| {
        b.iter(|| {
            run_workload(
                "DS",
                &catalog,
                baselines::deepsea().with_phi(1.0 / 15.0),
                &plans,
            )
        })
    });
}

fn fig8_correlation(c: &mut Criterion) {
    let catalog = uniform_catalog();
    let plans = fig8a_workload(9);
    let smax = 7_000_000_000;
    c.bench_function("fig8a_ds_mle_small_pool", |b| {
        b.iter(|| {
            run_workload(
                "DS",
                &catalog,
                baselines::deepsea().with_phi(0.05).with_smax(smax),
                &plans,
            )
        })
    });
    let zipf = fig8b_workload(10, 9);
    c.bench_function("fig8b_ds_zipf", |b| {
        b.iter(|| {
            run_workload(
                "DS",
                &catalog,
                baselines::deepsea().with_phi(0.05).with_smax(smax),
                &zipf,
            )
        })
    });
}

fn fig9_overlapping(c: &mut Criterion) {
    let catalog = uniform_catalog();
    let plans = fig9_workload(9);
    c.bench_function("fig9_overlapping", |b| {
        b.iter(|| run_workload("OVL", &catalog, baselines::deepsea(), &plans))
    });
    c.bench_function("fig9_horizontal", |b| {
        b.iter(|| run_workload("HOR", &catalog, baselines::horizontal_only(), &plans))
    });
}

fn fig10_adaptation(c: &mut Criterion) {
    let catalog = uniform_catalog();
    let plans = fig10_workload(9)[..40].to_vec();
    c.bench_function("fig10_ds_shifting", |b| {
        b.iter(|| run_workload("DS", &catalog, baselines::deepsea(), &plans))
    });
    c.bench_function("fig10_nr_shifting", |b| {
        b.iter(|| run_workload("NR", &catalog, baselines::no_repartitioning(), &plans))
    });
}

fn ablations(c: &mut Criterion) {
    let catalog = uniform_catalog();
    let plans = fig8a_workload(9);
    let smax = 7_000_000_000;
    // MLE on/off — the fragment-correlation ablation.
    c.bench_function("ablation_no_mle", |b| {
        b.iter(|| {
            run_workload(
                "DS-noMLE",
                &catalog,
                baselines::deepsea_no_mle().with_phi(0.05).with_smax(smax),
                &plans,
            )
        })
    });
    // φ bound on/off.
    let p6 = fig6_workload(9);
    c.bench_function("ablation_phi_bound", |b| {
        b.iter(|| run_workload("DS-phi", &catalog, baselines::deepsea().with_phi(0.05), &p6))
    });
}

criterion_group!(
    name = figures;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = fig1_sdss_hist, fig5_baselines, fig6_equidepth, fig7_selectivity_skew,
              fig8_correlation, fig9_overlapping, fig10_adaptation, ablations
);
criterion_main!(figures);
