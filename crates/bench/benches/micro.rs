//! Microbenchmarks for DeepSea's hot per-query operations: the matching,
//! candidate-generation, statistics, and selection code that runs for every
//! query of a workload (Algorithm 1's non-execution overhead).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use deepsea_core::candidates::partition_candidates;
use deepsea_core::filter_tree::{FilterTree, ViewId};
use deepsea_core::fragment::FragmentId;
use deepsea_core::interval::Interval;
use deepsea_core::matching::partition_matching;
use deepsea_core::mle::{adjusted_hits, fit_normal};
use deepsea_core::selection::{select_configuration, CandidateKind, RankedItem};
use deepsea_engine::plan::AggExpr;
use deepsea_engine::signature::{matches, Signature};
use deepsea_engine::LogicalPlan;
use deepsea_relation::Predicate;

fn bench_signature(c: &mut Criterion) {
    let plan = LogicalPlan::scan("store_sales")
        .join(LogicalPlan::scan("item"), vec![("ss_item_sk", "i_item_sk")])
        .join(
            LogicalPlan::scan("customer"),
            vec![("ss_customer_sk", "c_customer_sk")],
        )
        .select(Predicate::range("ss_item_sk", 100, 500))
        .aggregate(vec!["i_category"], vec![AggExpr::count("cnt")]);
    c.bench_function("signature_of_3way_join", |b| {
        b.iter(|| Signature::of(black_box(&plan)))
    });
    let vsig = Signature::of(&plan).unwrap();
    let qsig = Signature::of(
        &LogicalPlan::scan("store_sales")
            .join(LogicalPlan::scan("item"), vec![("ss_item_sk", "i_item_sk")])
            .join(
                LogicalPlan::scan("customer"),
                vec![("ss_customer_sk", "c_customer_sk")],
            )
            .select(Predicate::range("ss_item_sk", 200, 400))
            .aggregate(vec!["i_category"], vec![AggExpr::count("cnt")]),
    )
    .unwrap();
    c.bench_function("sufficient_condition_match", |b| {
        b.iter(|| matches(black_box(&vsig), black_box(&qsig)))
    });
}

fn bench_filter_tree(c: &mut Criterion) {
    let mut ft = FilterTree::new();
    for i in 0..200 {
        let plan =
            LogicalPlan::scan(format!("t{i}")).join(LogicalPlan::scan("item"), vec![("a", "b")]);
        ft.insert(&Signature::of(&plan).unwrap(), ViewId(i));
    }
    let probe =
        Signature::of(&LogicalPlan::scan("t100").join(LogicalPlan::scan("item"), vec![("a", "b")]))
            .unwrap();
    c.bench_function("filter_tree_lookup_200_views", |b| {
        b.iter(|| ft.lookup(black_box(&probe)))
    });
}

fn bench_partition_ops(c: &mut Criterion) {
    // 64 fragments over [0, 400_000].
    let domain = Interval::new(0, 400_000);
    let frags: Vec<Interval> = domain.chop(64);
    let pairs: Vec<(FragmentId, Interval)> = frags
        .iter()
        .enumerate()
        .map(|(i, iv)| (FragmentId(i as u64), *iv))
        .collect();
    let theta = Interval::new(123_456, 234_567);
    c.bench_function("algorithm2_cover_64_fragments", |b| {
        b.iter(|| partition_matching(black_box(&theta), black_box(&pairs)))
    });
    c.bench_function("def7_candidates_64_fragments", |b| {
        b.iter(|| partition_candidates(black_box(&frags), &domain, black_box(&theta)))
    });
}

fn bench_mle(c: &mut Criterion) {
    let frags: Vec<(Interval, f64)> = (0..64)
        .map(|i| {
            let iv = Interval::new(i * 1_000, i * 1_000 + 999);
            let d = (i - 32) as f64;
            (iv, 1_000.0 * (-d * d / 50.0).exp())
        })
        .collect();
    c.bench_function("mle_fit_64_fragments", |b| {
        b.iter(|| fit_normal(black_box(&frags)))
    });
    let fit = fit_normal(&frags).unwrap();
    c.bench_function("mle_adjusted_hits", |b| {
        b.iter(|| adjusted_hits(1_000.0, black_box(&fit), &Interval::new(30_000, 31_000)))
    });
}

fn bench_selection(c: &mut Criterion) {
    let items: Vec<RankedItem> = (0..500)
        .map(|i| RankedItem {
            kind: CandidateKind::WholeView(ViewId(i)),
            phi: (i as f64 * 37.0) % 101.0,
            size: 1_000 + (i % 97) * 13,
            materialized: i % 3 == 0,
        })
        .collect();
    c.bench_function("greedy_knapsack_500_items", |b| {
        b.iter(|| select_configuration(black_box(items.clone()), Some(100_000)))
    });
}

criterion_group!(
    name = micro;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1));
    targets = bench_signature, bench_filter_tree, bench_partition_ops, bench_mle, bench_selection
);
criterion_main!(micro);
