//! # deepsea-serde
//!
//! A minimal, std-only serialization shim exposed to the workspace under the
//! familiar name `serde` (the build environment has no registry access, so
//! the small API surface this project needs — a [`Serialize`] trait plus a
//! JSON value model and writer — is vendored here, following the same
//! pattern as the local `rand` / `proptest` / `criterion` stand-ins).
//!
//! Design points:
//!
//! - **Deterministic output.** [`Value::Object`] keeps fields in insertion
//!   order (a `Vec`, not a hash map), so two identical structures always
//!   render the same bytes — a requirement for replay-stable event logs.
//! - **Lossless integers.** `u64`/`i64` have their own variants; they are
//!   never routed through `f64`.
//! - **Valid JSON always.** Non-finite floats render as `null`; strings are
//!   escaped per RFC 8259.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value. Objects preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer, rendered losslessly.
    U64(u64),
    /// A signed integer, rendered losslessly.
    I64(i64),
    /// A float; NaN / ±∞ render as `null`.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with insertion-ordered fields.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Render as compact JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }

    fn write_json(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::F64(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_escaped(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_json(out);
                }
                out.push(']');
            }
            Value::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write_json(out);
                }
                out.push('}');
            }
        }
    }

    /// Look up a field of an object (`None` on non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value of `U64` / `I64` / `F64` variants, as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::U64(v) => Some(*v as f64),
            Value::I64(v) => Some(*v as f64),
            Value::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// The string content of a `Str` variant.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a JSON document into a [`Value`]. Inverse of [`Value::to_json`]:
/// integers without a fraction or exponent come back as `U64`/`I64` (never
/// routed through `f64`), object field order is preserved, and trailing
/// garbage after the document is an error. Errors carry a byte offset.
pub fn from_str(input: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect_lit(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("expected `{lit}` at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.expect_lit("null", Value::Null),
            Some(b't') => self.expect_lit("true", Value::Bool(true)),
            Some(b'f') => self.expect_lit("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.pos += 1; // '{'
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(format!("expected `:` at byte {}", self.pos));
            }
            self.pos += 1;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        if self.peek() != Some(b'"') {
            return Err(format!("expected string at byte {}", self.pos));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            let b = self
                .peek()
                .ok_or_else(|| format!("unterminated string at byte {}", self.pos))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self
                        .peek()
                        .ok_or_else(|| format!("dangling escape at byte {}", self.pos))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a following `\uDC00..` low half.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let code =
                                        0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                    char::from_u32(code)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| {
                                format!("invalid \\u escape ending at byte {}", self.pos)
                            })?);
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                }
                _ => {
                    // Re-decode the UTF-8 sequence starting at the byte we
                    // just consumed (the input is a &str, so it is valid).
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| format!("invalid utf-8 at byte {start}"))?;
                    let c = s
                        .chars()
                        .next()
                        .ok_or_else(|| format!("invalid utf-8 at byte {start}"))?;
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(format!("truncated \\u escape at byte {}", self.pos));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
        let v = u32::from_str_radix(s, 16)
            .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("bad number at byte {start}"))?;
        if integral {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| format!("bad number at byte {start}"))
    }
}

/// Types that can serialize themselves into a [`Value`].
pub trait Serialize {
    /// Convert to the JSON value model.
    fn to_value(&self) -> Value;
}

/// Serialize to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(v: &T) -> String {
    v.to_value().to_json()
}

macro_rules! impl_serialize_u {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
    )*};
}
macro_rules! impl_serialize_i {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
    )*};
}
impl_serialize_u!(u8, u16, u32, u64, usize);
impl_serialize_i!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}
impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (*self).to_value()
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

/// Insertion-ordered builder for [`Value::Object`].
#[derive(Debug, Default, Clone)]
pub struct ObjectBuilder {
    fields: Vec<(String, Value)>,
}

impl ObjectBuilder {
    /// Start an empty object.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one field.
    pub fn field(mut self, key: &str, value: impl Serialize) -> Self {
        self.fields.push((key.to_string(), value.to_value()));
        self
    }

    /// Finish into a [`Value`].
    pub fn build(self) -> Value {
        Value::Object(self.fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render_as_json() {
        assert_eq!(to_string(&42u64), "42");
        assert_eq!(to_string(&-7i64), "-7");
        assert_eq!(to_string(&1.5f64), "1.5");
        assert_eq!(to_string(&true), "true");
        assert_eq!(to_string(&Option::<u64>::None), "null");
        assert_eq!(to_string("hi"), "\"hi\"");
    }

    #[test]
    fn integers_are_lossless() {
        let big = u64::MAX;
        assert_eq!(to_string(&big), big.to_string());
        assert_eq!(to_string(&i64::MIN), i64::MIN.to_string());
    }

    #[test]
    fn non_finite_floats_render_null() {
        assert_eq!(to_string(&f64::NAN), "null");
        assert_eq!(to_string(&f64::INFINITY), "null");
        assert_eq!(to_string(&f64::NEG_INFINITY), "null");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(to_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(to_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn objects_preserve_insertion_order() {
        let v = ObjectBuilder::new()
            .field("z", 1u64)
            .field("a", 2u64)
            .field("m", "x")
            .build();
        assert_eq!(v.to_json(), "{\"z\":1,\"a\":2,\"m\":\"x\"}");
        assert_eq!(v.get("a"), Some(&Value::U64(2)));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn arrays_and_nesting() {
        let v = Value::Array(vec![
            Value::U64(1),
            ObjectBuilder::new().field("k", vec![1u64, 2]).build(),
        ]);
        assert_eq!(v.to_json(), "[1,{\"k\":[1,2]}]");
    }

    #[test]
    fn from_str_round_trips_rendered_values() {
        let v = ObjectBuilder::new()
            .field("u", u64::MAX)
            .field("i", i64::MIN)
            .field("f", 1.25f64)
            .field("s", "a\"b\\c\nd\u{1}é")
            .field("b", true)
            .field("n", Value::Null)
            .field("a", vec![1u64, 2, 3])
            .field("o", ObjectBuilder::new().field("z", 9u64).build())
            .build();
        assert_eq!(from_str(&v.to_json()), Ok(v));
    }

    #[test]
    fn from_str_preserves_integer_types_and_order() {
        let v =
            from_str(" {\"z\" : 18446744073709551615, \"a\": -2, \"f\": 2.0} ").expect("parses");
        assert_eq!(
            v,
            Value::Object(vec![
                ("z".into(), Value::U64(u64::MAX)),
                ("a".into(), Value::I64(-2)),
                ("f".into(), Value::F64(2.0)),
            ])
        );
    }

    #[test]
    fn from_str_handles_escapes_and_surrogates() {
        assert_eq!(
            from_str("\"\\u0041\\u00e9\\ud83d\\ude00\\t\""),
            Ok(Value::Str("Aé😀\t".into()))
        );
        assert_eq!(from_str("[]"), Ok(Value::Array(vec![])));
        assert_eq!(from_str("{}"), Ok(Value::Object(vec![])));
    }

    #[test]
    fn from_str_rejects_malformed_input() {
        assert!(from_str("").is_err());
        assert!(from_str("{\"a\":1,}").is_err());
        assert!(from_str("[1 2]").is_err());
        assert!(from_str("1 2").is_err());
        assert!(from_str("\"unterminated").is_err());
        assert!(from_str("nul").is_err());
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::U64(3).as_f64(), Some(3.0));
        assert_eq!(Value::I64(-3).as_f64(), Some(-3.0));
        assert_eq!(Value::F64(0.5).as_f64(), Some(0.5));
        assert_eq!(Value::Str("s".into()).as_f64(), None);
        assert_eq!(Value::Str("s".into()).as_str(), Some("s"));
    }
}
