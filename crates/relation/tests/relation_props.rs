//! Property tests for the relational layer: value ordering, predicate
//! semantics, and generator guarantees.

use deepsea_relation::distr::{normal_cdf, WeightedBuckets, Zipf};
use deepsea_relation::generate::{ColumnGen, TableGen};
use deepsea_relation::{DataType, Field, Predicate, Schema, Value};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn any_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        (-1e12f64..1e12).prop_map(Value::Float),
        "[a-z]{0,8}".prop_map(Value::str),
    ]
}

proptest! {
    /// The Value ordering is a total order: antisymmetric and transitive on
    /// sampled triples, and consistent with equality.
    #[test]
    fn value_ordering_is_total(a in any_value(), b in any_value(), c in any_value()) {
        use std::cmp::Ordering::*;
        // Antisymmetry.
        match a.cmp(&b) {
            Less => prop_assert_eq!(b.cmp(&a), Greater),
            Greater => prop_assert_eq!(b.cmp(&a), Less),
            Equal => prop_assert_eq!(b.cmp(&a), Equal),
        }
        // Transitivity.
        if a.cmp(&b) != Greater && b.cmp(&c) != Greater {
            prop_assert_ne!(a.cmp(&c), Greater);
        }
        // Eq consistency.
        prop_assert_eq!(a == b, a.cmp(&b) == Equal);
    }

    /// Predicate::and is order-insensitive in evaluation.
    #[test]
    fn conjunction_commutes(
        k in -100i64..100,
        lo1 in -100i64..100, w1 in 0i64..100,
        lo2 in -100i64..100, w2 in 0i64..100,
    ) {
        let schema = Schema::new(vec![Field::new("t.a", DataType::Int)]);
        let row = vec![Value::Int(k)];
        let p1 = Predicate::range("t.a", lo1, lo1 + w1);
        let p2 = Predicate::range("t.a", lo2, lo2 + w2);
        let ab = Predicate::and(vec![p1.clone(), p2.clone()]);
        let ba = Predicate::and(vec![p2, p1]);
        prop_assert_eq!(ab.eval(&schema, &row), ba.eval(&schema, &row));
        // And equals the intersection semantics of range_on.
        let both = ab.eval(&schema, &row);
        let manual = (lo1..=lo1 + w1).contains(&k) && (lo2..=lo2 + w2).contains(&k);
        prop_assert_eq!(both, manual);
    }

    /// range_on returns exactly the interval a single Range predicate encodes.
    #[test]
    fn range_on_matches_eval(lo in -1000i64..1000, w in 0i64..1000, probe in -1100i64..1100) {
        let schema = Schema::new(vec![Field::new("t.a", DataType::Int)]);
        let p = Predicate::range("t.a", lo, lo + w);
        let (l, h) = p.range_on("t.a").unwrap();
        let in_range = l <= probe && probe <= h;
        prop_assert_eq!(p.eval(&schema, &vec![Value::Int(probe)]), in_range);
    }

    /// Generated tables honor their declared bounds and sizes.
    #[test]
    fn generator_bounds(rows in 1usize..200, lo in -50i64..0, hi in 1i64..50, seed in 0u64..500) {
        let schema = Schema::new(vec![
            Field::new("t.id", DataType::Int),
            Field::new("t.k", DataType::Int),
        ]);
        let t = TableGen::new(
            schema,
            vec![
                ColumnGen::Serial { start: 0 },
                ColumnGen::UniformInt { low: lo, high: hi },
            ],
            64,
            seed,
        )
        .generate(rows);
        prop_assert_eq!(t.len(), rows);
        prop_assert_eq!(t.sim_bytes(), rows as u64 * 64);
        for (i, r) in t.rows.iter().enumerate() {
            prop_assert_eq!(r[0].as_int(), Some(i as i64));
            let k = r[1].as_int().unwrap();
            prop_assert!(lo <= k && k <= hi);
        }
        prop_assert_eq!(t.int_min_max(0), Some((0, rows as i64 - 1)));
    }

    /// Zipf samples stay in range for any parameters.
    #[test]
    fn zipf_in_range(n in 1usize..200, s in 0.0f64..3.0, seed in 0u64..100) {
        let z = Zipf::new(n, s);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            let r = z.sample(&mut rng);
            prop_assert!((1..=n).contains(&r));
        }
    }

    /// Weighted buckets only emit values from their declared ranges.
    #[test]
    fn weighted_buckets_in_range(seed in 0u64..200) {
        let wb = WeightedBuckets::new(&[(0, 9, 1.0), (100, 109, 2.0), (50, 59, 0.5)]);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..100 {
            let v = wb.sample(&mut rng);
            prop_assert!(
                (0..=9).contains(&v) || (100..=109).contains(&v) || (50..=59).contains(&v),
                "{v} escaped its buckets"
            );
        }
    }

    /// The CDF approximation obeys symmetry: Φ(μ+x) + Φ(μ−x) = 1.
    #[test]
    fn normal_cdf_symmetry(x in 0.0f64..10.0, mean in -50.0f64..50.0, std in 0.1f64..20.0) {
        let hi = normal_cdf(mean + x * std, mean, std);
        let lo = normal_cdf(mean - x * std, mean, std);
        prop_assert!((hi + lo - 1.0).abs() < 1e-6, "hi={hi} lo={lo}");
    }
}
