//! In-memory tables with simulated on-disk sizes.

use crate::row::Row;
use crate::schema::Schema;
use crate::value::Value;

/// An in-memory table.
///
/// `bytes_per_row` is the *simulated* on-disk width of one row. Experiments
/// run on scaled-down row counts while cost accounting happens in simulated
/// bytes, so a "100 GB" instance is a table with, say, 200 000 rows and
/// `bytes_per_row = 500 000`.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// The table's schema.
    pub schema: Schema,
    /// Row data.
    pub rows: Vec<Row>,
    /// Simulated on-disk bytes per row.
    pub bytes_per_row: u64,
}

impl Table {
    /// Create a table.
    ///
    /// # Panics
    /// Panics in debug builds if a row's arity differs from the schema's.
    pub fn new(schema: Schema, rows: Vec<Row>, bytes_per_row: u64) -> Self {
        debug_assert!(
            rows.iter().all(|r| r.len() == schema.len()),
            "row arity must match schema"
        );
        Self {
            schema,
            rows,
            bytes_per_row,
        }
    }

    /// An empty table with the given schema.
    pub fn empty(schema: Schema, bytes_per_row: u64) -> Self {
        Self::new(schema, Vec::new(), bytes_per_row)
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Simulated on-disk size in bytes.
    pub fn sim_bytes(&self) -> u64 {
        self.rows.len() as u64 * self.bytes_per_row
    }

    /// Column values at `col` for every row.
    pub fn column(&self, col: usize) -> impl Iterator<Item = &Value> + '_ {
        self.rows.iter().map(move |r| &r[col])
    }

    /// Min and max of an integer column, ignoring NULLs. `None` if the column
    /// has no non-null values.
    pub fn int_min_max(&self, col: usize) -> Option<(i64, i64)> {
        let mut mm: Option<(i64, i64)> = None;
        for v in self.column(col) {
            if let Some(i) = v.as_int() {
                mm = Some(match mm {
                    None => (i, i),
                    Some((lo, hi)) => (lo.min(i), hi.max(i)),
                });
            }
        }
        mm
    }

    /// A canonical fingerprint of the table's contents, independent of row
    /// order. Used by tests to check that rewritten queries produce the same
    /// multiset of rows as the original.
    pub fn fingerprint(&self) -> Vec<String> {
        let mut keys: Vec<String> = self
            .rows
            .iter()
            .map(|r| {
                let mut s = String::new();
                for v in r {
                    s.push_str(&canonical_value(v));
                    s.push('\u{1}');
                }
                s
            })
            .collect();
        keys.sort_unstable();
        keys
    }
}

fn canonical_value(v: &Value) -> String {
    match v {
        // Print floats with enough precision to distinguish values but
        // tolerate the last few bits of summation-order noise.
        Value::Float(f) => format!("{f:.6}"),
        Value::Int(i) => format!("{i}"),
        Value::Str(s) => format!("s:{s}"),
        Value::Null => "∅".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Field;
    use crate::value::DataType;

    fn t() -> Table {
        let schema = Schema::new(vec![
            Field::new("t.a", DataType::Int),
            Field::new("t.b", DataType::Str),
        ]);
        Table::new(
            schema,
            vec![
                vec![Value::Int(3), Value::str("x")],
                vec![Value::Int(1), Value::str("y")],
                vec![Value::Null, Value::str("z")],
            ],
            100,
        )
    }

    #[test]
    fn sim_bytes_scales_with_rows() {
        assert_eq!(t().sim_bytes(), 300);
        assert_eq!(Table::empty(t().schema, 100).sim_bytes(), 0);
    }

    #[test]
    fn min_max_ignores_null() {
        assert_eq!(t().int_min_max(0), Some((1, 3)));
    }

    #[test]
    fn min_max_none_when_all_null() {
        let schema = Schema::new(vec![Field::new("a", DataType::Int)]);
        let t = Table::new(schema, vec![vec![Value::Null]], 1);
        assert_eq!(t.int_min_max(0), None);
    }

    #[test]
    fn fingerprint_order_independent() {
        let mut t2 = t();
        t2.rows.reverse();
        assert_eq!(t().fingerprint(), t2.fingerprint());
    }

    #[test]
    fn fingerprint_detects_multiset_difference() {
        let mut t2 = t();
        t2.rows.push(vec![Value::Int(3), Value::str("x")]); // duplicate row
        assert_ne!(t().fingerprint(), t2.fingerprint());
    }
}
