//! Selection predicates.
//!
//! DeepSea's partitioning logic reasons about conjunctions of *range*
//! conditions `l <= A <= u` over ordered attributes (§6.2 of the paper), with
//! arbitrary extra equality conditions treated as residual predicates. This
//! module is that predicate language.

use crate::row::Row;
use crate::schema::Schema;
use crate::value::Value;

/// A selection predicate over named columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Predicate {
    /// Always true (the empty conjunction).
    True,
    /// Inclusive range condition `low <= col <= high` on an integer column.
    Range {
        /// Column name (qualified or unambiguous bare name).
        col: String,
        /// Inclusive lower bound.
        low: i64,
        /// Inclusive upper bound.
        high: i64,
    },
    /// Equality condition `col = value`.
    Eq {
        /// Column name.
        col: String,
        /// Value compared against.
        value: Value,
    },
    /// Conjunction of predicates.
    And(Vec<Predicate>),
}

impl Predicate {
    /// `low <= col <= high`.
    pub fn range(col: impl Into<String>, low: i64, high: i64) -> Self {
        Predicate::Range {
            col: col.into(),
            low,
            high,
        }
    }

    /// `col = value`.
    pub fn eq(col: impl Into<String>, value: impl Into<Value>) -> Self {
        Predicate::Eq {
            col: col.into(),
            value: value.into(),
        }
    }

    /// Conjunction; flattens nested `And`s and drops `True`s.
    pub fn and(preds: Vec<Predicate>) -> Self {
        let mut flat = Vec::new();
        fn push(p: Predicate, out: &mut Vec<Predicate>) {
            match p {
                Predicate::True => {}
                Predicate::And(ps) => {
                    for q in ps {
                        push(q, out);
                    }
                }
                other => out.push(other),
            }
        }
        for p in preds {
            push(p, &mut flat);
        }
        match flat.len() {
            0 => Predicate::True,
            1 => flat.pop().unwrap(),
            _ => Predicate::And(flat),
        }
    }

    /// Evaluate against a row. Unknown columns and NULLs make the conjunct
    /// false (SQL three-valued logic collapsed to false at the top level).
    pub fn eval(&self, schema: &Schema, row: &Row) -> bool {
        match self {
            Predicate::True => true,
            Predicate::Range { col, low, high } => match schema.index_of(col) {
                Some(i) => match row[i].as_int() {
                    Some(v) => *low <= v && v <= *high,
                    None => false,
                },
                None => false,
            },
            Predicate::Eq { col, value } => match schema.index_of(col) {
                Some(i) => row[i] != Value::Null && row[i] == *value,
                None => false,
            },
            Predicate::And(ps) => ps.iter().all(|p| p.eval(schema, row)),
        }
    }

    /// The conjuncts of this predicate (itself if not an `And`).
    pub fn conjuncts(&self) -> Vec<&Predicate> {
        match self {
            Predicate::True => vec![],
            Predicate::And(ps) => ps.iter().flat_map(|p| p.conjuncts()).collect(),
            other => vec![other],
        }
    }

    /// The (intersected) range restriction this predicate places on `col`,
    /// if any conjunct is a range over it.
    pub fn range_on(&self, col: &str) -> Option<(i64, i64)> {
        let mut acc: Option<(i64, i64)> = None;
        for c in self.conjuncts() {
            if let Predicate::Range { col: c2, low, high } = c {
                if col_matches(c2, col) {
                    acc = Some(match acc {
                        None => (*low, *high),
                        Some((l, h)) => (l.max(*low), h.min(*high)),
                    });
                }
            }
        }
        acc
    }

    /// All columns this predicate mentions.
    pub fn columns(&self) -> Vec<&str> {
        let mut cols: Vec<&str> = self
            .conjuncts()
            .into_iter()
            .filter_map(|c| match c {
                Predicate::Range { col, .. } | Predicate::Eq { col, .. } => Some(col.as_str()),
                _ => None,
            })
            .collect();
        cols.sort_unstable();
        cols.dedup();
        cols
    }
}

/// Does predicate column name `pred_col` refer to attribute `attr`?
/// Either may be qualified (`t.c`) or bare (`c`).
fn col_matches(pred_col: &str, attr: &str) -> bool {
    if pred_col == attr {
        return true;
    }
    let pc = pred_col.rsplit('.').next().unwrap_or(pred_col);
    let ac = attr.rsplit('.').next().unwrap_or(attr);
    pc == ac
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Field;
    use crate::value::DataType;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("t.a", DataType::Int),
            Field::new("t.b", DataType::Str),
        ])
    }

    #[test]
    fn range_eval_inclusive() {
        let p = Predicate::range("t.a", 1, 3);
        let s = schema();
        assert!(p.eval(&s, &vec![Value::Int(1), Value::Null]));
        assert!(p.eval(&s, &vec![Value::Int(3), Value::Null]));
        assert!(!p.eval(&s, &vec![Value::Int(4), Value::Null]));
        assert!(!p.eval(&s, &vec![Value::Int(0), Value::Null]));
        assert!(!p.eval(&s, &vec![Value::Null, Value::Null]), "NULL fails");
    }

    #[test]
    fn eq_eval() {
        let p = Predicate::eq("t.b", "x");
        let s = schema();
        assert!(p.eval(&s, &vec![Value::Int(0), Value::str("x")]));
        assert!(!p.eval(&s, &vec![Value::Int(0), Value::str("y")]));
    }

    #[test]
    fn and_flattens_and_drops_true() {
        let p = Predicate::and(vec![
            Predicate::True,
            Predicate::and(vec![Predicate::range("a", 0, 1), Predicate::True]),
        ]);
        assert_eq!(p, Predicate::range("a", 0, 1));
        assert_eq!(Predicate::and(vec![]), Predicate::True);
        let q = Predicate::and(vec![Predicate::range("a", 0, 1), Predicate::eq("b", "x")]);
        assert_eq!(q.conjuncts().len(), 2);
    }

    #[test]
    fn range_on_intersects_multiple() {
        let p = Predicate::and(vec![
            Predicate::range("t.a", 0, 10),
            Predicate::range("a", 5, 20),
        ]);
        assert_eq!(p.range_on("t.a"), Some((5, 10)));
        assert_eq!(p.range_on("a"), Some((5, 10)), "bare name matches");
        assert_eq!(p.range_on("zz"), None);
    }

    #[test]
    fn unknown_column_fails_closed() {
        let p = Predicate::range("nope", 0, 10);
        assert!(!p.eval(&schema(), &vec![Value::Int(5), Value::Null]));
    }

    #[test]
    fn columns_sorted_deduped() {
        let p = Predicate::and(vec![
            Predicate::range("b", 0, 1),
            Predicate::eq("a", 1),
            Predicate::range("a", 0, 1),
        ]);
        assert_eq!(p.columns(), vec!["a", "b"]);
    }
}
