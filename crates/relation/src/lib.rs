//! # deepsea-relation
//!
//! The relational data model underneath DeepSea's execution engine: typed
//! values, schemas, rows, in-memory tables with simulated on-disk sizes, and
//! the predicate language (conjunctions of range and equality conditions —
//! exactly the class of selections DeepSea's partitioning reasons about).
//!
//! Also hosts the synthetic column generators (uniform / normal / Zipf /
//! histogram-driven) used to rebuild the paper's BigBench-with-SDSS-skew
//! datasets.

pub mod distr;
pub mod generate;
pub mod predicate;
pub mod row;
pub mod schema;
pub mod table;
pub mod value;

pub use predicate::Predicate;
pub use row::Row;
pub use schema::{Field, Schema};
pub use table::Table;
pub use value::{DataType, Value};
