//! Probability distributions used for data and workload generation.
//!
//! Implemented from scratch (Box–Muller for the normal, inverse-CDF with a
//! precomputed table for Zipf, alias-free histogram sampling) because the
//! sanctioned dependency set includes only the `rand` core crate.

use rand::{Rng, RngExt};

/// Draw a standard-normal sample via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // u1 in (0,1] to avoid ln(0).
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Draw from N(mean, std).
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std: f64) -> f64 {
    mean + std * standard_normal(rng)
}

/// Standard normal cumulative distribution function Φ(x), via the
/// Abramowitz–Stegun 7.1.26 rational approximation of erf (|error| < 1.5e-7).
pub fn normal_cdf(x: f64, mean: f64, std: f64) -> f64 {
    if std <= 0.0 {
        return if x < mean { 0.0 } else { 1.0 };
    }
    let z = (x - mean) / (std * std::f64::consts::SQRT_2);
    0.5 * (1.0 + erf(z))
}

/// Error function approximation (Abramowitz & Stegun 7.1.26).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// A Zipf distribution over ranks `1..=n` with exponent `s`, sampled by
/// binary search over the precomputed CDF.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a Zipf(n, s) sampler.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is not finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s.is_finite(), "Zipf exponent must be finite");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Self { cdf }
    }

    /// Number of ranks.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Draw a rank in `1..=n`. Rank 1 is the most frequent.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        match self.cdf.binary_search_by(|c| c.total_cmp(&u)) {
            Ok(i) | Err(i) => (i + 1).min(self.cdf.len()),
        }
    }
}

/// A discrete sampler over weighted buckets (used to draw values following an
/// SDSS-like hit histogram).
#[derive(Debug, Clone)]
pub struct WeightedBuckets {
    /// Inclusive value ranges per bucket.
    ranges: Vec<(i64, i64)>,
    cdf: Vec<f64>,
}

impl WeightedBuckets {
    /// Build from `(low, high, weight)` bucket descriptions.
    ///
    /// # Panics
    /// Panics if empty, if any weight is negative or all are zero, or if any
    /// bucket has `low > high`.
    pub fn new(buckets: &[(i64, i64, f64)]) -> Self {
        assert!(!buckets.is_empty(), "need at least one bucket");
        let mut ranges = Vec::with_capacity(buckets.len());
        let mut cdf = Vec::with_capacity(buckets.len());
        let mut acc = 0.0;
        for &(lo, hi, w) in buckets {
            assert!(lo <= hi, "bucket bounds inverted");
            assert!(w >= 0.0, "negative weight");
            ranges.push((lo, hi));
            acc += w;
            cdf.push(acc);
        }
        assert!(acc > 0.0, "all weights zero");
        for c in &mut cdf {
            *c /= acc;
        }
        Self { ranges, cdf }
    }

    /// Draw a value: pick a bucket by weight, then uniform within it.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> i64 {
        let u: f64 = rng.random();
        let i = match self.cdf.binary_search_by(|c| c.total_cmp(&u)) {
            Ok(i) | Err(i) => i.min(self.ranges.len() - 1),
        };
        let (lo, hi) = self.ranges[i];
        rng.random_range(lo..=hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments_roughly_right() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng, 10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean={mean}");
        assert!((var - 4.0).abs() < 0.3, "var={var}");
    }

    #[test]
    fn cdf_matches_known_points() {
        assert!((normal_cdf(0.0, 0.0, 1.0) - 0.5).abs() < 1e-6);
        assert!((normal_cdf(1.96, 0.0, 1.0) - 0.975).abs() < 1e-3);
        assert!((normal_cdf(-1.96, 0.0, 1.0) - 0.025).abs() < 1e-3);
        assert!(normal_cdf(100.0, 0.0, 1.0) > 0.999999);
    }

    #[test]
    fn cdf_degenerate_std_is_step() {
        assert_eq!(normal_cdf(-0.1, 0.0, 0.0), 0.0);
        assert_eq!(normal_cdf(0.1, 0.0, 0.0), 1.0);
    }

    #[test]
    fn zipf_rank1_most_frequent() {
        let z = Zipf::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 101];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[1] > counts[2]);
        assert!(counts[2] > counts[10]);
        assert!(counts[0] == 0, "rank 0 never drawn");
    }

    #[test]
    fn zipf_s0_is_uniformish() {
        let z = Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 11];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for (k, &count) in counts.iter().enumerate().skip(1) {
            let frac = count as f64 / 50_000.0;
            assert!((frac - 0.1).abs() < 0.01, "rank {k} frac {frac}");
        }
    }

    #[test]
    fn weighted_buckets_respect_weights() {
        let wb = WeightedBuckets::new(&[(0, 9, 9.0), (10, 19, 1.0)]);
        let mut rng = StdRng::seed_from_u64(3);
        let mut low = 0;
        for _ in 0..10_000 {
            if wb.sample(&mut rng) < 10 {
                low += 1;
            }
        }
        let frac = low as f64 / 10_000.0;
        assert!((frac - 0.9).abs() < 0.02, "frac={frac}");
    }

    #[test]
    fn weighted_buckets_values_in_range() {
        let wb = WeightedBuckets::new(&[(5, 5, 1.0)]);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            assert_eq!(wb.sample(&mut rng), 5);
        }
    }

    #[test]
    #[should_panic(expected = "all weights zero")]
    fn zero_weights_rejected() {
        WeightedBuckets::new(&[(0, 1, 0.0)]);
    }
}
