//! Rows.

use crate::value::Value;

/// A row is an ordered list of values, positionally aligned with a
/// [`crate::Schema`].
pub type Row = Vec<Value>;

/// Serialized width of a row in bytes (used for shuffle-size estimates).
pub fn row_width(row: &Row) -> u64 {
    row.iter().map(Value::width).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_sums_values() {
        let r: Row = vec![Value::Int(1), Value::str("ab"), Value::Null];
        assert_eq!(row_width(&r), 8 + 2 + 1);
    }

    #[test]
    fn empty_row_zero_width() {
        assert_eq!(row_width(&Vec::new()), 0);
    }
}
