//! Schemas: ordered lists of named, typed fields.

use crate::value::DataType;

/// A named, typed column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Qualified name, conventionally `table.column`.
    pub name: String,
    /// Column type.
    pub dtype: DataType,
}

impl Field {
    /// Create a field.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Self {
            name: name.into(),
            dtype,
        }
    }

    /// The part after the last `.` (the bare column name).
    pub fn short_name(&self) -> &str {
        self.name.rsplit('.').next().unwrap_or(&self.name)
    }
}

/// An ordered list of fields.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Build a schema from fields.
    ///
    /// # Panics
    /// Panics if two fields share the same qualified name.
    pub fn new(fields: Vec<Field>) -> Self {
        for (i, f) in fields.iter().enumerate() {
            for g in &fields[i + 1..] {
                assert_ne!(f.name, g.name, "duplicate field name {:?}", f.name);
            }
        }
        Self { fields }
    }

    /// The fields in order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True if there are no columns.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Index of the column with the given name. Accepts either the qualified
    /// name (`t.c`) or, when unambiguous, the bare column name (`c`).
    pub fn index_of(&self, name: &str) -> Option<usize> {
        if let Some(i) = self.fields.iter().position(|f| f.name == name) {
            return Some(i);
        }
        let mut found = None;
        for (i, f) in self.fields.iter().enumerate() {
            if f.short_name() == name {
                if found.is_some() {
                    return None; // ambiguous
                }
                found = Some(i);
            }
        }
        found
    }

    /// Field at `idx`.
    pub fn field(&self, idx: usize) -> &Field {
        &self.fields[idx]
    }

    /// A new schema containing the named columns in the given order.
    ///
    /// # Panics
    /// Panics if any name is unknown.
    pub fn project(&self, names: &[&str]) -> (Schema, Vec<usize>) {
        let mut fields = Vec::with_capacity(names.len());
        let mut idxs = Vec::with_capacity(names.len());
        for n in names {
            let i = self
                .index_of(n)
                .unwrap_or_else(|| panic!("unknown column {n:?}"));
            fields.push(self.fields[i].clone());
            idxs.push(i);
        }
        (Schema::new(fields), idxs)
    }

    /// Concatenate two schemas (for join results).
    pub fn concat(&self, other: &Schema) -> Schema {
        let mut fields = self.fields.clone();
        fields.extend(other.fields.iter().cloned());
        Schema::new(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s() -> Schema {
        Schema::new(vec![
            Field::new("t.a", DataType::Int),
            Field::new("t.b", DataType::Str),
            Field::new("u.a", DataType::Int),
        ])
    }

    #[test]
    fn index_by_qualified_name() {
        assert_eq!(s().index_of("t.b"), Some(1));
        assert_eq!(s().index_of("u.a"), Some(2));
    }

    #[test]
    fn bare_name_when_unambiguous() {
        assert_eq!(s().index_of("b"), Some(1));
        assert_eq!(s().index_of("a"), None, "ambiguous bare name");
        assert_eq!(s().index_of("zzz"), None);
    }

    #[test]
    fn project_reorders() {
        let (p, idxs) = s().project(&["u.a", "t.b"]);
        assert_eq!(idxs, vec![2, 1]);
        assert_eq!(p.field(0).name, "u.a");
        assert_eq!(p.len(), 2);
    }

    #[test]
    #[should_panic(expected = "unknown column")]
    fn project_unknown_panics() {
        s().project(&["nope"]);
    }

    #[test]
    #[should_panic(expected = "duplicate field name")]
    fn duplicates_rejected() {
        Schema::new(vec![
            Field::new("x", DataType::Int),
            Field::new("x", DataType::Int),
        ]);
    }

    #[test]
    fn concat_joins_schemas() {
        let a = Schema::new(vec![Field::new("t.a", DataType::Int)]);
        let b = Schema::new(vec![Field::new("u.b", DataType::Int)]);
        let c = a.concat(&b);
        assert_eq!(c.len(), 2);
        assert_eq!(c.field(1).name, "u.b");
    }

    #[test]
    fn short_name() {
        assert_eq!(Field::new("t.a", DataType::Int).short_name(), "a");
        assert_eq!(Field::new("plain", DataType::Int).short_name(), "plain");
    }
}
