//! Typed values with a total order.

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// Data types supported by the engine.
///
/// DeepSea only partitions on *ordered* attributes; all three types are
/// totally ordered here (floats via IEEE `total_cmp`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer (the partition-key type in all experiments).
    Int,
    /// 64-bit float (measures).
    Float,
    /// Interned UTF-8 string (dimension labels).
    Str,
}

/// A single value. `Null` sorts before everything.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Integer value.
    Int(i64),
    /// Float value.
    Float(f64),
    /// String value; `Arc` so copies between operators are cheap.
    Str(Arc<str>),
}

impl Value {
    /// The value's type, or `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Str),
        }
    }

    /// Integer payload, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Float payload, coercing ints.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// String payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Construct a string value.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Approximate serialized width in bytes, used for shuffle sizing.
    pub fn width(&self) -> u64 {
        match self {
            Value::Null => 1,
            Value::Int(_) => 8,
            Value::Float(_) => 8,
            Value::Str(s) => s.len() as u64,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            // Cross-type: numbers sort before strings (arbitrary but total).
            (Int(_) | Float(_), Str(_)) => Ordering::Less,
            (Str(_), Int(_) | Float(_)) => Ordering::Greater,
        }
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Int(i) => {
                1u8.hash(state);
                i.hash(state);
            }
            Value::Float(f) => {
                // Hash consistent with total_cmp-based Eq for the values we
                // generate (no -0.0 vs 0.0 mixing in practice); NaNs all hash
                // alike which is fine for grouping.
                2u8.hash(state);
                f.to_bits().hash(state);
            }
            Value::Str(s) => {
                3u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sorts_first() {
        assert!(Value::Null < Value::Int(i64::MIN));
        assert!(Value::Null < Value::str(""));
        assert_eq!(Value::Null, Value::Null);
    }

    #[test]
    fn numeric_cross_type_compare() {
        assert_eq!(Value::Int(3), Value::Float(3.0));
        assert!(Value::Int(3) < Value::Float(3.5));
        assert!(Value::Float(2.5) < Value::Int(3));
    }

    #[test]
    fn strings_sort_after_numbers() {
        assert!(Value::Int(1_000_000) < Value::str("a"));
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Int(7).as_float(), Some(7.0));
        assert_eq!(Value::str("x").as_str(), Some("x"));
        assert_eq!(Value::Null.as_int(), None);
        assert_eq!(Value::Null.data_type(), None);
        assert_eq!(Value::Float(1.0).data_type(), Some(DataType::Float));
    }

    #[test]
    fn widths() {
        assert_eq!(Value::Int(1).width(), 8);
        assert_eq!(Value::str("abc").width(), 3);
        assert_eq!(Value::Null.width(), 1);
    }

    #[test]
    fn display() {
        assert_eq!(Value::Int(-5).to_string(), "-5");
        assert_eq!(Value::Null.to_string(), "NULL");
    }

    #[test]
    fn hash_consistent_with_eq_for_ints() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(Value::Int(1));
        assert!(s.contains(&Value::Int(1)));
        assert!(!s.contains(&Value::Int(2)));
    }
}
