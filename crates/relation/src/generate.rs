//! Synthetic column/table generation.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::distr::{normal, WeightedBuckets, Zipf};
use crate::row::Row;
use crate::schema::Schema;
use crate::table::Table;
use crate::value::Value;

/// How to generate the values of one column.
#[derive(Debug, Clone)]
pub enum ColumnGen {
    /// Sequential ids starting at `start` (primary keys).
    Serial {
        /// First id.
        start: i64,
    },
    /// Uniform integers in `[low, high]`.
    UniformInt {
        /// Inclusive lower bound.
        low: i64,
        /// Inclusive upper bound.
        high: i64,
    },
    /// Normal(mean, std) rounded and clamped to `[low, high]`.
    NormalInt {
        /// Mean.
        mean: f64,
        /// Standard deviation.
        std: f64,
        /// Clamp lower bound.
        low: i64,
        /// Clamp upper bound.
        high: i64,
    },
    /// Zipf-ranked values mapped onto `[low, low + n)`.
    ZipfInt {
        /// Number of distinct values.
        n: usize,
        /// Zipf exponent.
        s: f64,
        /// Value of rank 1.
        low: i64,
    },
    /// Values drawn from a weighted-bucket histogram (SDSS-style skew).
    Histogram(WeightedBuckets),
    /// Uniform floats in `[low, high)`.
    UniformFloat {
        /// Lower bound.
        low: f64,
        /// Upper bound.
        high: f64,
    },
    /// Strings `"{prefix}{k}"` with `k` uniform in `[0, card)`.
    Label {
        /// Prefix of every label.
        prefix: &'static str,
        /// Number of distinct labels.
        card: usize,
    },
}

impl ColumnGen {
    fn value(&self, rng: &mut StdRng, row_idx: usize) -> Value {
        match self {
            ColumnGen::Serial { start } => Value::Int(start + row_idx as i64),
            ColumnGen::UniformInt { low, high } => Value::Int(rng.random_range(*low..=*high)),
            ColumnGen::NormalInt {
                mean,
                std,
                low,
                high,
            } => {
                let v = normal(rng, *mean, *std).round() as i64;
                Value::Int(v.clamp(*low, *high))
            }
            ColumnGen::ZipfInt { n, s, low } => {
                // Constructing the CDF per value would be O(n); callers that
                // care use `TableGen` which caches samplers.
                let z = Zipf::new(*n, *s);
                Value::Int(low + (z.sample(rng) as i64 - 1))
            }
            ColumnGen::Histogram(wb) => Value::Int(wb.sample(rng)),
            ColumnGen::UniformFloat { low, high } => {
                Value::Float(low + (high - low) * rng.random::<f64>())
            }
            ColumnGen::Label { prefix, card } => {
                Value::str(format!("{prefix}{}", rng.random_range(0..*card)))
            }
        }
    }
}

/// Deterministic table generator.
#[derive(Debug, Clone)]
pub struct TableGen {
    schema: Schema,
    gens: Vec<ColumnGen>,
    bytes_per_row: u64,
    seed: u64,
}

impl TableGen {
    /// Create a generator; one `ColumnGen` per schema column.
    ///
    /// # Panics
    /// Panics if arities differ.
    pub fn new(schema: Schema, gens: Vec<ColumnGen>, bytes_per_row: u64, seed: u64) -> Self {
        assert_eq!(schema.len(), gens.len(), "one generator per column");
        Self {
            schema,
            gens,
            bytes_per_row,
            seed,
        }
    }

    /// Generate `rows` rows. Same seed ⇒ same table.
    pub fn generate(&self, rows: usize) -> Table {
        let mut rng = StdRng::seed_from_u64(self.seed);
        // Pre-build Zipf samplers (they are expensive to construct).
        let zipfs: Vec<Option<Zipf>> = self
            .gens
            .iter()
            .map(|g| match g {
                ColumnGen::ZipfInt { n, s, .. } => Some(Zipf::new(*n, *s)),
                _ => None,
            })
            .collect();
        let mut data: Vec<Row> = Vec::with_capacity(rows);
        for r in 0..rows {
            let mut row = Vec::with_capacity(self.gens.len());
            for (c, g) in self.gens.iter().enumerate() {
                let v = match (&zipfs[c], g) {
                    (Some(z), ColumnGen::ZipfInt { low, .. }) => {
                        Value::Int(low + (z.sample(&mut rng) as i64 - 1))
                    }
                    _ => g.value(&mut rng, r),
                };
                row.push(v);
            }
            data.push(row);
        }
        Table::new(self.schema.clone(), data, self.bytes_per_row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Field;
    use crate::value::DataType;

    fn gen_table(rows: usize, seed: u64) -> Table {
        let schema = Schema::new(vec![
            Field::new("t.id", DataType::Int),
            Field::new("t.k", DataType::Int),
            Field::new("t.m", DataType::Float),
            Field::new("t.l", DataType::Str),
        ]);
        TableGen::new(
            schema,
            vec![
                ColumnGen::Serial { start: 1 },
                ColumnGen::UniformInt { low: 0, high: 99 },
                ColumnGen::UniformFloat {
                    low: 0.0,
                    high: 1.0,
                },
                ColumnGen::Label {
                    prefix: "c",
                    card: 5,
                },
            ],
            64,
            seed,
        )
        .generate(rows)
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(gen_table(50, 1).rows, gen_table(50, 1).rows);
        assert_ne!(gen_table(50, 1).rows, gen_table(50, 2).rows);
    }

    #[test]
    fn serial_is_sequential() {
        let t = gen_table(10, 1);
        for (i, r) in t.rows.iter().enumerate() {
            assert_eq!(r[0].as_int(), Some(1 + i as i64));
        }
    }

    #[test]
    fn uniform_in_bounds() {
        let t = gen_table(500, 3);
        for r in &t.rows {
            let k = r[1].as_int().unwrap();
            assert!((0..=99).contains(&k));
            let m = r[2].as_float().unwrap();
            assert!((0.0..1.0).contains(&m));
        }
    }

    #[test]
    fn normal_gen_clamped() {
        let schema = Schema::new(vec![Field::new("a", DataType::Int)]);
        let t = TableGen::new(
            schema,
            vec![ColumnGen::NormalInt {
                mean: 50.0,
                std: 100.0,
                low: 0,
                high: 100,
            }],
            8,
            9,
        )
        .generate(1000);
        for r in &t.rows {
            let v = r[0].as_int().unwrap();
            assert!((0..=100).contains(&v));
        }
    }

    #[test]
    fn zipf_gen_skews_to_low() {
        let schema = Schema::new(vec![Field::new("a", DataType::Int)]);
        let t = TableGen::new(
            schema,
            vec![ColumnGen::ZipfInt {
                n: 1000,
                s: 1.2,
                low: 0,
            }],
            8,
            11,
        )
        .generate(5000);
        let zeros = t.rows.iter().filter(|r| r[0].as_int() == Some(0)).count();
        assert!(zeros > 100, "rank-1 value should dominate, got {zeros}");
    }
}
