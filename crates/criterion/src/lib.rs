//! A minimal micro-benchmark runner exposing the subset of the `criterion`
//! crate's API this workspace uses (`Criterion::bench_function`, `Bencher::
//! iter`, `criterion_group!`, `criterion_main!`). The build environment has
//! no registry access, so the workspace vendors this stand-in instead of
//! depending on crates.io.
//!
//! Measurement model: after a short warm-up, each sample times a batch of
//! iterations sized so one sample lasts roughly `measurement_time /
//! sample_size`; the report prints min / median / max per-iteration time.
//! No statistical outlier analysis, plots, or baselines.

// The bench harness is the one place wall-clock time is the point; both the
// deepsea-lint D2 rule and clippy.toml's disallowed lists exempt it here.
#![allow(clippy::disallowed_methods, clippy::disallowed_types)]

use std::time::{Duration, Instant};

/// Benchmark runner configuration and entry point.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Run one named benchmark. `f` receives a [`Bencher`] and is expected
    /// to call [`Bencher::iter`].
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            samples_ns: Vec::new(),
        };
        f(&mut b);
        b.report(name);
        self
    }
}

/// Times closures handed to it by a benchmark function.
pub struct Bencher {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    /// Mean per-iteration nanoseconds, one entry per sample.
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Measure `f`, called repeatedly; its return value is passed through
    /// a black box so the computation cannot be optimised away.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        // Warm-up: run until the warm-up budget elapses, estimating cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            std::hint::black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos() as f64 / warm_iters.max(1) as f64;

        // Size each sample's batch so one sample ≈ measurement/sample_size.
        let sample_budget_ns = self.measurement_time.as_nanos() as f64 / self.sample_size as f64;
        let batch = ((sample_budget_ns / per_iter.max(1.0)) as u64).max(1);

        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            let ns = start.elapsed().as_nanos() as f64 / batch as f64;
            self.samples_ns.push(ns);
        }
    }

    fn report(&self, name: &str) {
        if self.samples_ns.is_empty() {
            println!("{name:<40} (no samples — Bencher::iter never called)");
            return;
        }
        let mut sorted = self.samples_ns.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let min = sorted[0];
        let median = sorted[sorted.len() / 2];
        let max = sorted[sorted.len() - 1];
        println!(
            "{name:<40} [{} {} {}]",
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(max)
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Group benchmark functions: plain `criterion_group!(name, targets...)` or
/// the configured `criterion_group!(name = ...; config = ...; targets = ...)`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| std::hint::black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(fmt_ns(12.34), "12.3 ns");
        assert_eq!(fmt_ns(12_345.0), "12.35 µs");
        assert_eq!(fmt_ns(12_345_678.0), "12.35 ms");
    }
}
