//! The structured decision audit log: typed [`DecisionEvent`]s explaining
//! *why* the pool changed — per-candidate selection verdicts, per-victim
//! eviction records with the full Φ breakdown, fragment split/merge/overlap
//! decisions, quarantine/recovery/fsck outcomes, and MLE fit quality.
//!
//! Events are serialized to JSONL through the local serde shim; each line
//! carries a monotonic sequence number and the logical time `t` of the query
//! that produced it, so logs from replayed runs are byte-identical.

use serde::{ObjectBuilder, Serialize, Value};

/// The Φ = COST·B/S breakdown of one item at decision time.
#[derive(Debug, Clone, PartialEq)]
pub struct PhiBreakdown {
    /// The value the policy actually used to rank the item.
    pub phi: f64,
    /// `COST(V)` — the view's (re)creation cost in simulated seconds.
    pub cost: f64,
    /// Decayed accumulated benefit `B` at `tnow`.
    pub benefit: f64,
    /// Benefit without the decay function (pre-decay).
    pub benefit_raw: f64,
    /// Adjusted (decayed, MLE-smoothed where active) hit count `HA`.
    pub ha_hits: f64,
    /// Raw (undecayed, unadjusted) hit/use count.
    pub raw_hits: u64,
    /// Size `S` in simulated bytes.
    pub size: u64,
}

impl Serialize for PhiBreakdown {
    fn to_value(&self) -> Value {
        ObjectBuilder::new()
            .field("phi", self.phi)
            .field("cost", self.cost)
            .field("benefit", self.benefit)
            .field("benefit_raw", self.benefit_raw)
            .field("ha_hits", self.ha_hits)
            .field("raw_hits", self.raw_hits)
            .field("size", self.size)
            .build()
    }
}

/// One audited decision.
#[derive(Debug, Clone, PartialEq)]
pub enum DecisionEvent {
    /// Selection's verdict on one `ALLCAND` item.
    SelectionVerdict {
        /// Item description (`V3` or `V3.item.k[0, 99]`).
        item: String,
        /// `"create"`, `"evict"`, `"keep"` or `"reject"`.
        verdict: &'static str,
        /// The Φ the knapsack ranked the item by.
        phi: f64,
        /// Item size in simulated bytes.
        size: u64,
        /// Whether the item was already materialized.
        materialized: bool,
    },
    /// One victim actually evicted, with its full Φ breakdown.
    Eviction {
        /// Victim description.
        victim: String,
        /// The victim's Φ breakdown at eviction time.
        breakdown: PhiBreakdown,
        /// The runner-up victim (next-lowest Φ still in the pool), if any.
        runner_up: Option<String>,
        /// The runner-up's Φ.
        runner_up_phi: Option<f64>,
        /// Whether this eviction was forced by `Smax` enforcement (stage 7)
        /// rather than planned by selection (stage 5).
        forced: bool,
    },
    /// A refinement split a materialized fragment (horizontal mode).
    FragmentSplit {
        /// Owning view.
        view: String,
        /// Partition attribute.
        attr: String,
        /// The refined target interval.
        target: String,
        /// Materialized source fragments read.
        sources: u64,
        /// Remainder pieces rewritten.
        remainders: u64,
    },
    /// A refinement kept its overlapping sources (overlapping mode, §10.4).
    OverlapKept {
        /// Owning view.
        view: String,
        /// Partition attribute.
        attr: String,
        /// The refined target interval.
        target: String,
        /// Overlapping materialized sources kept in place.
        sources: u64,
    },
    /// The §11 maintenance pass merged two co-hit fragments.
    FragmentMerge {
        /// Owning view.
        view: String,
        /// Partition attribute.
        attr: String,
        /// The merged interval.
        merged: String,
        /// Size of the merged fragment in simulated bytes.
        bytes: u64,
    },
    /// A view was quarantined after a permanent I/O failure.
    Quarantine {
        /// Quarantined view.
        view: String,
        /// Backing files dropped.
        files: u64,
        /// Pool bytes released.
        bytes: u64,
        /// Fragments stripped.
        fragments: u64,
    },
    /// A cold-start fsck sweep completed.
    Fsck {
        /// Catalog-referenced files missing from the FS.
        missing_files: u64,
        /// Files that failed checksum verification.
        corrupt_files: u64,
        /// Unreferenced files garbage-collected.
        orphan_files: u64,
        /// Views quarantined by the sweep.
        quarantined_views: u64,
        /// Journal records replayed before the sweep.
        replayed_records: u64,
    },
    /// Quality of one MLE normal fit over a partition's hits (§7.1).
    MleFit {
        /// Owning view.
        view: String,
        /// Partition attribute.
        attr: String,
        /// Fitted mean `μ̂`.
        mean: f64,
        /// Fitted standard deviation `σ̂`.
        std: f64,
        /// Total decayed hits the fit was computed over.
        total_hits: f64,
        /// Fragments in the partition.
        fragments: u64,
    },
    /// A journal snapshot was installed (truncating the record log).
    JournalSnapshot {
        /// Records appended since the previous snapshot.
        appended_since_last: u64,
    },
    /// A cluster node went down (temporary outage).
    NodeDown {
        /// The node, as `node<N>`.
        node: String,
    },
    /// A cluster node returned from an outage.
    NodeUp {
        /// The node, as `node<N>`.
        node: String,
    },
    /// A cluster node was permanently killed.
    NodeKilled {
        /// The node, as `node<N>`.
        node: String,
    },
    /// A fragment became unreachable (every replica down) and was
    /// temporarily quarantined at fragment granularity; queries patch the
    /// gap from base tables until the node returns.
    FragmentOutage {
        /// The unreachable backing file id.
        file: u64,
        /// Owning view, when known.
        view: Option<String>,
    },
    /// A previously-offline fragment's node returned; the fragment serves
    /// reads again with no rebuild.
    FragmentReadmitted {
        /// The backing file id.
        file: u64,
    },
    /// A cluster node entered a gray-failure window: alive but serving
    /// reads at a latency multiplier.
    NodeSlow {
        /// The node, as `node<N>`.
        node: String,
        /// The latency multiplier in force.
        multiplier: f64,
    },
    /// A cluster node's gray-failure window was cleared.
    NodeSlowCleared {
        /// The node, as `node<N>`.
        node: String,
    },
    /// A circuit breaker changed state.
    BreakerTransition {
        /// The guarded view.
        view: String,
        /// The node the breaker is keyed to (`u32::MAX` = untraced).
        node: u64,
        /// State before (`closed` / `open` / `half_open`).
        from: &'static str,
        /// State after.
        to: &'static str,
    },
    /// The read path short-circuited an open breaker's view straight to
    /// its fallback.
    BreakerShortCircuit {
        /// The guarded view that was skipped.
        view: String,
    },
    /// Hedged-read activity attributed to one served request (deltas of
    /// the file-system counters across the read).
    HedgedRead {
        /// Serving ticket (arrival order).
        ticket: u64,
        /// Hedges issued during this read.
        issued: u64,
        /// Hedges that beat the primary.
        won: u64,
        /// Hedges cancelled because the primary won.
        cancelled: u64,
    },
    /// The server shed a request instead of serving it in full.
    Shed {
        /// Shed ticket (arrival order).
        ticket: u64,
        /// The policy applied: `reject`, `serve_stale`, or `degrade_base`.
        policy: &'static str,
        /// Why: `deadline_passed`, `queue_full`, or `projected_overrun`.
        reason: &'static str,
        /// The ticket's deadline in simulated seconds.
        deadline_secs: f64,
    },
}

impl DecisionEvent {
    /// The event's kind tag, as serialized.
    pub fn kind(&self) -> &'static str {
        match self {
            DecisionEvent::SelectionVerdict { .. } => "selection_verdict",
            DecisionEvent::Eviction { .. } => "eviction",
            DecisionEvent::FragmentSplit { .. } => "fragment_split",
            DecisionEvent::OverlapKept { .. } => "overlap_kept",
            DecisionEvent::FragmentMerge { .. } => "fragment_merge",
            DecisionEvent::Quarantine { .. } => "quarantine",
            DecisionEvent::Fsck { .. } => "fsck",
            DecisionEvent::MleFit { .. } => "mle_fit",
            DecisionEvent::JournalSnapshot { .. } => "journal_snapshot",
            DecisionEvent::NodeDown { .. } => "node_down",
            DecisionEvent::NodeUp { .. } => "node_up",
            DecisionEvent::NodeKilled { .. } => "node_killed",
            DecisionEvent::FragmentOutage { .. } => "fragment_outage",
            DecisionEvent::FragmentReadmitted { .. } => "fragment_readmitted",
            DecisionEvent::NodeSlow { .. } => "node_slow",
            DecisionEvent::NodeSlowCleared { .. } => "node_slow_cleared",
            DecisionEvent::BreakerTransition { .. } => "breaker_transition",
            DecisionEvent::BreakerShortCircuit { .. } => "breaker_short_circuit",
            DecisionEvent::HedgedRead { .. } => "hedged_read",
            DecisionEvent::Shed { .. } => "shed",
        }
    }
}

impl Serialize for DecisionEvent {
    fn to_value(&self) -> Value {
        let b = ObjectBuilder::new().field("kind", self.kind());
        match self {
            DecisionEvent::SelectionVerdict {
                item,
                verdict,
                phi,
                size,
                materialized,
            } => b
                .field("item", item)
                .field("verdict", *verdict)
                .field("phi", *phi)
                .field("size", *size)
                .field("materialized", *materialized)
                .build(),
            DecisionEvent::Eviction {
                victim,
                breakdown,
                runner_up,
                runner_up_phi,
                forced,
            } => b
                .field("victim", victim)
                .field("breakdown", breakdown)
                .field("runner_up", runner_up.as_deref())
                .field("runner_up_phi", runner_up_phi.as_ref())
                .field("forced", *forced)
                .build(),
            DecisionEvent::FragmentSplit {
                view,
                attr,
                target,
                sources,
                remainders,
            } => b
                .field("view", view)
                .field("attr", attr)
                .field("target", target)
                .field("sources", *sources)
                .field("remainders", *remainders)
                .build(),
            DecisionEvent::OverlapKept {
                view,
                attr,
                target,
                sources,
            } => b
                .field("view", view)
                .field("attr", attr)
                .field("target", target)
                .field("sources", *sources)
                .build(),
            DecisionEvent::FragmentMerge {
                view,
                attr,
                merged,
                bytes,
            } => b
                .field("view", view)
                .field("attr", attr)
                .field("merged", merged)
                .field("bytes", *bytes)
                .build(),
            DecisionEvent::Quarantine {
                view,
                files,
                bytes,
                fragments,
            } => b
                .field("view", view)
                .field("files", *files)
                .field("bytes", *bytes)
                .field("fragments", *fragments)
                .build(),
            DecisionEvent::Fsck {
                missing_files,
                corrupt_files,
                orphan_files,
                quarantined_views,
                replayed_records,
            } => b
                .field("missing_files", *missing_files)
                .field("corrupt_files", *corrupt_files)
                .field("orphan_files", *orphan_files)
                .field("quarantined_views", *quarantined_views)
                .field("replayed_records", *replayed_records)
                .build(),
            DecisionEvent::MleFit {
                view,
                attr,
                mean,
                std,
                total_hits,
                fragments,
            } => b
                .field("view", view)
                .field("attr", attr)
                .field("mean", *mean)
                .field("std", *std)
                .field("total_hits", *total_hits)
                .field("fragments", *fragments)
                .build(),
            DecisionEvent::JournalSnapshot {
                appended_since_last,
            } => b.field("appended_since_last", *appended_since_last).build(),
            DecisionEvent::NodeDown { node }
            | DecisionEvent::NodeUp { node }
            | DecisionEvent::NodeKilled { node } => b.field("node", node).build(),
            DecisionEvent::FragmentOutage { file, view } => b
                .field("file", *file)
                .field("view", view.as_deref())
                .build(),
            DecisionEvent::FragmentReadmitted { file } => b.field("file", *file).build(),
            DecisionEvent::NodeSlow { node, multiplier } => b
                .field("node", node)
                .field("multiplier", *multiplier)
                .build(),
            DecisionEvent::NodeSlowCleared { node } => b.field("node", node).build(),
            DecisionEvent::BreakerTransition {
                view,
                node,
                from,
                to,
            } => b
                .field("view", view)
                .field("node", *node)
                .field("from", *from)
                .field("to", *to)
                .build(),
            DecisionEvent::BreakerShortCircuit { view } => b.field("view", view).build(),
            DecisionEvent::HedgedRead {
                ticket,
                issued,
                won,
                cancelled,
            } => b
                .field("ticket", *ticket)
                .field("issued", *issued)
                .field("won", *won)
                .field("cancelled", *cancelled)
                .build(),
            DecisionEvent::Shed {
                ticket,
                policy,
                reason,
                deadline_secs,
            } => b
                .field("ticket", *ticket)
                .field("policy", *policy)
                .field("reason", *reason)
                .field("deadline_secs", *deadline_secs)
                .build(),
        }
    }
}

/// One event with its log position: sequence number and logical time.
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    /// Monotonic sequence number (emission order).
    pub seq: u64,
    /// Logical time (query sequence number) at emission.
    pub tnow: u64,
    /// The decision.
    pub event: DecisionEvent,
}

impl Serialize for EventRecord {
    fn to_value(&self) -> Value {
        // Flatten: {"seq":..,"t":..,"kind":..,<event fields>}.
        let mut fields = vec![
            ("seq".to_string(), Value::U64(self.seq)),
            ("t".to_string(), Value::U64(self.tnow)),
        ];
        if let Value::Object(ev) = self.event.to_value() {
            fields.extend(ev);
        }
        Value::Object(fields)
    }
}

/// Append-only decision log.
#[derive(Debug, Default, Clone)]
pub struct EventLog {
    events: Vec<EventRecord>,
    next_seq: u64,
}

impl EventLog {
    /// Append an event; assigns the next sequence number.
    pub fn record(&mut self, tnow: u64, event: DecisionEvent) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.events.push(EventRecord { seq, tnow, event });
    }

    /// All events in emission order.
    pub fn events(&self) -> &[EventRecord] {
        &self.events
    }

    /// Render as JSONL, one event per line.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&serde::to_string(e));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eviction_event_serializes_full_breakdown() {
        let mut log = EventLog::default();
        log.record(
            9,
            DecisionEvent::Eviction {
                victim: "V1.item.k[0, 99]".into(),
                breakdown: PhiBreakdown {
                    phi: 1.5,
                    cost: 3.0,
                    benefit: 0.5,
                    benefit_raw: 2.0,
                    ha_hits: 4.25,
                    raw_hits: 6,
                    size: 1024,
                },
                runner_up: Some("V2".into()),
                runner_up_phi: Some(2.5),
                forced: true,
            },
        );
        let line = log.to_jsonl();
        for needle in [
            "\"seq\":0",
            "\"t\":9",
            "\"kind\":\"eviction\"",
            "\"victim\":\"V1.item.k[0, 99]\"",
            "\"phi\":1.5",
            "\"cost\":3",
            "\"benefit\":0.5",
            "\"benefit_raw\":2",
            "\"ha_hits\":4.25",
            "\"raw_hits\":6",
            "\"size\":1024",
            "\"runner_up\":\"V2\"",
            "\"runner_up_phi\":2.5",
            "\"forced\":true",
        ] {
            assert!(line.contains(needle), "missing {needle} in {line}");
        }
    }

    #[test]
    fn kinds_are_stable_tags() {
        let ev = DecisionEvent::Fsck {
            missing_files: 1,
            corrupt_files: 2,
            orphan_files: 3,
            quarantined_views: 4,
            replayed_records: 5,
        };
        assert_eq!(ev.kind(), "fsck");
        assert!(serde::to_string(&ev).starts_with("{\"kind\":\"fsck\""));
    }

    #[test]
    fn tail_tolerance_events_serialize() {
        let cases: Vec<(DecisionEvent, &[&str])> = vec![
            (
                DecisionEvent::NodeSlow {
                    node: "node2".into(),
                    multiplier: 8.0,
                },
                &[
                    "\"kind\":\"node_slow\"",
                    "\"node\":\"node2\"",
                    "\"multiplier\":8",
                ],
            ),
            (
                DecisionEvent::NodeSlowCleared {
                    node: "node2".into(),
                },
                &["\"kind\":\"node_slow_cleared\""],
            ),
            (
                DecisionEvent::BreakerTransition {
                    view: "V1".into(),
                    node: 3,
                    from: "closed",
                    to: "open",
                },
                &[
                    "\"kind\":\"breaker_transition\"",
                    "\"view\":\"V1\"",
                    "\"node\":3",
                    "\"from\":\"closed\"",
                    "\"to\":\"open\"",
                ],
            ),
            (
                DecisionEvent::BreakerShortCircuit { view: "V1".into() },
                &["\"kind\":\"breaker_short_circuit\"", "\"view\":\"V1\""],
            ),
            (
                DecisionEvent::HedgedRead {
                    ticket: 7,
                    issued: 2,
                    won: 1,
                    cancelled: 1,
                },
                &[
                    "\"kind\":\"hedged_read\"",
                    "\"ticket\":7",
                    "\"issued\":2",
                    "\"won\":1",
                    "\"cancelled\":1",
                ],
            ),
            (
                DecisionEvent::Shed {
                    ticket: 11,
                    policy: "serve_stale",
                    reason: "projected_overrun",
                    deadline_secs: 42.5,
                },
                &[
                    "\"kind\":\"shed\"",
                    "\"ticket\":11",
                    "\"policy\":\"serve_stale\"",
                    "\"reason\":\"projected_overrun\"",
                    "\"deadline_secs\":42.5",
                ],
            ),
        ];
        for (ev, needles) in cases {
            let line = serde::to_string(&ev);
            for needle in needles {
                assert!(line.contains(needle), "missing {needle} in {line}");
            }
        }
    }

    #[test]
    fn log_sequences_events_in_order() {
        let mut log = EventLog::default();
        for t in 1..=3 {
            log.record(
                t,
                DecisionEvent::JournalSnapshot {
                    appended_since_last: t,
                },
            );
        }
        let seqs: Vec<u64> = log.events().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        assert_eq!(log.to_jsonl().lines().count(), 3);
    }
}
