//! Prometheus text-exposition rendering of a [`MetricsRegistry`], plus a
//! small line parser used by tests (and by anyone who wants to consume the
//! dump without a real Prometheus server).
//!
//! Rendering rules:
//! - counters: `# TYPE name counter` then `name{view="V1"} 5` per series,
//! - gauges: `# TYPE name gauge` then one line per series,
//! - histograms: `# TYPE name histogram` with cumulative `name_bucket`
//!   lines (`le` inclusive upper bounds, `+Inf` last), `name_sum`,
//!   `name_count`, and estimated `name_p50/_p95/_p99` gauges.
//!
//! Output order is fully deterministic: metric families alphabetically
//! (`BTreeMap` iteration), series by label within each family.

use crate::metrics::{bucket_upper_bound, Histogram, MetricsRegistry};
use std::fmt::Write as _;

fn write_name(out: &mut String, name: &str, suffix: &str, label: Option<&str>) {
    out.push_str(name);
    out.push_str(suffix);
    if let Some(l) = label {
        let escaped = l.replace('\\', "\\\\").replace('"', "\\\"");
        let _ = write!(out, "{{view=\"{escaped}\"}}");
    }
    out.push(' ');
}

fn write_f64(out: &mut String, v: f64) {
    if v.is_nan() {
        out.push_str("NaN");
    } else if v == f64::INFINITY {
        out.push_str("+Inf");
    } else if v == f64::NEG_INFINITY {
        out.push_str("-Inf");
    } else {
        let _ = write!(out, "{v}");
    }
    out.push('\n');
}

fn write_histogram(out: &mut String, name: &str, label: Option<&str>, h: &Histogram) {
    let mut cum = 0u64;
    for (i, c) in h.counts.iter().enumerate() {
        cum += c;
        if *c == 0 && i + 1 < h.counts.len() {
            continue; // keep the dump readable; +Inf is always emitted
        }
        let le = bucket_upper_bound(i);
        let le_txt = if le.is_infinite() {
            "+Inf".to_string()
        } else {
            format!("{le}")
        };
        if let Some(l) = label {
            let escaped = l.replace('\\', "\\\\").replace('"', "\\\"");
            let _ = writeln!(
                out,
                "{name}_bucket{{view=\"{escaped}\",le=\"{le_txt}\"}} {cum}"
            );
        } else {
            let _ = writeln!(out, "{name}_bucket{{le=\"{le_txt}\"}} {cum}");
        }
    }
    write_name(out, name, "_sum", label);
    write_f64(out, h.sum);
    write_name(out, name, "_count", label);
    let _ = writeln!(out, "{}", h.count);
    if let Some((p50, p95, p99)) = h.percentiles() {
        for (suffix, v) in [("_p50", p50), ("_p95", p95), ("_p99", p99)] {
            write_name(out, name, suffix, label);
            write_f64(out, v);
        }
    }
}

/// Render the registry in Prometheus text exposition format.
pub fn render_prometheus(m: &MetricsRegistry) -> String {
    let mut out = String::new();
    for (name, series) in &m.counters {
        let _ = writeln!(out, "# TYPE {name} counter");
        for (label, v) in series {
            write_name(&mut out, name, "", label.as_deref());
            let _ = writeln!(out, "{v}");
        }
    }
    for (name, series) in &m.gauges {
        let _ = writeln!(out, "# TYPE {name} gauge");
        for (label, v) in series {
            write_name(&mut out, name, "", label.as_deref());
            write_f64(&mut out, *v);
        }
    }
    for (name, series) in &m.histograms {
        let _ = writeln!(out, "# TYPE {name} histogram");
        for (label, h) in series {
            write_histogram(&mut out, name, label.as_deref(), h);
        }
    }
    out
}

/// One parsed sample line: metric name, `(key, value)` label pairs in
/// order, and the sample value.
#[derive(Debug, Clone, PartialEq)]
pub struct PromSample {
    /// Metric name (including `_bucket` / `_sum` / … suffixes).
    pub name: String,
    /// Label pairs, in source order.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

/// Parse Prometheus text exposition format, returning every sample line.
/// Comment (`#`) and blank lines are skipped. Returns `Err` with the
/// offending line on malformed input.
pub fn parse_prometheus(text: &str) -> Result<Vec<PromSample>, String> {
    let mut samples = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (head, value_txt) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("no value separator: {line}"))?;
        let value = match value_txt {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            "NaN" => f64::NAN,
            v => v.parse().map_err(|_| format!("bad value: {line}"))?,
        };
        let (name, labels) = match head.split_once('{') {
            None => (head.to_string(), Vec::new()),
            Some((name, rest)) => {
                let body = rest
                    .strip_suffix('}')
                    .ok_or_else(|| format!("unterminated labels: {line}"))?;
                let mut labels = Vec::new();
                for pair in split_label_pairs(body) {
                    let (k, v) = pair
                        .split_once('=')
                        .ok_or_else(|| format!("bad label pair: {line}"))?;
                    let v = v
                        .strip_prefix('"')
                        .and_then(|v| v.strip_suffix('"'))
                        .ok_or_else(|| format!("unquoted label value: {line}"))?;
                    labels.push((k.to_string(), v.replace("\\\"", "\"").replace("\\\\", "\\")));
                }
                (name.to_string(), labels)
            }
        };
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        {
            return Err(format!("bad metric name: {line}"));
        }
        samples.push(PromSample {
            name,
            labels,
            value,
        });
    }
    Ok(samples)
}

/// Split `a="x",b="y"` on commas outside quotes.
fn split_label_pairs(body: &str) -> Vec<String> {
    let mut pairs = Vec::new();
    let mut cur = String::new();
    let mut in_quotes = false;
    let mut escaped = false;
    for c in body.chars() {
        if escaped {
            cur.push(c);
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_quotes => {
                cur.push(c);
                escaped = true;
            }
            '"' => {
                cur.push(c);
                in_quotes = !in_quotes;
            }
            ',' if !in_quotes => {
                pairs.push(std::mem::take(&mut cur));
            }
            c => cur.push(c),
        }
    }
    if !cur.is_empty() {
        pairs.push(cur);
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_and_parse_roundtrip() {
        let mut m = MetricsRegistry::new(16);
        m.counter_add("deepsea_queries_total", None, 42);
        m.counter_add("deepsea_view_hits_total", Some("V1"), 5);
        m.counter_add("deepsea_view_hits_total", Some("V2"), 9);
        m.gauge_set("deepsea_pool_bytes", None, 1.5e9);
        m.observe("deepsea_query_secs", None, 2.0);
        m.observe("deepsea_query_secs", None, 300.0);

        let text = render_prometheus(&m);
        let samples = parse_prometheus(&text).expect("render output must parse");

        let find = |name: &str, label: Option<(&str, &str)>| -> f64 {
            samples
                .iter()
                .find(|s| {
                    s.name == name
                        && match label {
                            None => s.labels.is_empty(),
                            Some((k, v)) => s.labels.iter().any(|(lk, lv)| lk == k && lv == v),
                        }
                })
                .unwrap_or_else(|| panic!("missing {name} {label:?}"))
                .value
        };
        assert_eq!(find("deepsea_queries_total", None), 42.0);
        assert_eq!(find("deepsea_view_hits_total", Some(("view", "V1"))), 5.0);
        assert_eq!(find("deepsea_view_hits_total", Some(("view", "V2"))), 9.0);
        assert_eq!(find("deepsea_pool_bytes", None), 1.5e9);
        assert_eq!(find("deepsea_query_secs_count", None), 2.0);
        assert_eq!(find("deepsea_query_secs_sum", None), 302.0);
        // Cumulative +Inf bucket covers everything.
        let inf = samples
            .iter()
            .find(|s| {
                s.name == "deepsea_query_secs_bucket" && s.labels.iter().any(|(_, v)| v == "+Inf")
            })
            .unwrap();
        assert_eq!(inf.value, 2.0);
        // Every sample line parsed with a well-formed name.
        assert!(samples.iter().all(|s| !s.name.is_empty()));
    }

    #[test]
    fn type_lines_precede_samples() {
        let mut m = MetricsRegistry::new(4);
        m.counter_add("c_total", None, 1);
        let text = render_prometheus(&m);
        assert!(text.starts_with("# TYPE c_total counter\nc_total 1\n"));
    }

    #[test]
    fn label_values_are_escaped_and_unescaped() {
        let mut m = MetricsRegistry::new(4);
        m.counter_add("c", Some("V\"odd\\name"), 7);
        let text = render_prometheus(&m);
        let samples = parse_prometheus(&text).unwrap();
        assert_eq!(
            samples[0].labels[0],
            ("view".to_string(), "V\"odd\\name".to_string())
        );
        assert_eq!(samples[0].value, 7.0);
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse_prometheus("name_only").is_err());
        assert!(parse_prometheus("name{unclosed 3").is_err());
        assert!(parse_prometheus("name{k=v} 3").is_err(), "unquoted value");
        assert!(parse_prometheus("bad name 3").is_err());
        assert!(parse_prometheus("ok 3\n# comment\n\n").is_ok());
    }

    #[test]
    fn histograms_emit_percentile_gauges() {
        let mut m = MetricsRegistry::new(4);
        for _ in 0..100 {
            m.observe("lat", Some("V1"), 4.0);
        }
        let text = render_prometheus(&m);
        let samples = parse_prometheus(&text).unwrap();
        for p in ["lat_p50", "lat_p95", "lat_p99"] {
            let s = samples.iter().find(|s| s.name == p).unwrap();
            assert_eq!(s.value, 4.0, "{p}");
            assert_eq!(s.labels, vec![("view".to_string(), "V1".to_string())]);
        }
    }
}
