//! Causal span tracing driven by the **simulated** clock.
//!
//! A span is a named region of work with a start/end in simulated seconds,
//! a monotonic sequence number, and — since the causal upgrade — a trace id
//! (one per ticket / query) plus span and parent ids forming a tree.
//! Wall-clock never appears: replaying the same workload produces
//! byte-identical span logs, which is what makes the traces diffable across
//! runs and PRs.
//!
//! Spans are emitted *post hoc*: every duration in the simulator is known
//! analytically when the work completes, so a parent span is recorded
//! before its children and the returned [`SpanCtx`] is handed down as the
//! children's parent handle. `SpanCtx` is a plain `Copy` pair of ids — the
//! disabled observer hands out [`SpanCtx::NONE`] and drops everything, so
//! threading a context through the read/write paths costs nothing when
//! tracing is off.

use serde::{ObjectBuilder, Serialize, Value};

/// A causal handle: the trace (ticket) a span belongs to plus the span's
/// own id, used as the parent id of its children. `{0, 0}` is the null
/// context ([`SpanCtx::NONE`]) handed out by a disabled observer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanCtx {
    /// Trace (ticket) id; `0` means "no trace".
    pub trace_id: u64,
    /// Span id within the log; `0` means "no parent" (a root span).
    pub span_id: u64,
}

impl SpanCtx {
    /// The null context: no trace, no parent. Recording under it with a
    /// nonzero trace id starts a new root.
    pub const NONE: SpanCtx = SpanCtx {
        trace_id: 0,
        span_id: 0,
    };

    /// A parent handle for starting a root span of trace `trace_id`.
    pub fn root(trace_id: u64) -> SpanCtx {
        SpanCtx {
            trace_id,
            span_id: 0,
        }
    }

    /// True for the null context.
    pub fn is_none(&self) -> bool {
        self.trace_id == 0 && self.span_id == 0
    }
}

/// One completed span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Monotonic sequence number (emission order).
    pub seq: u64,
    /// Logical time (query sequence number) the span belongs to.
    pub tnow: u64,
    /// Trace (ticket) id grouping the causal tree; `0` = untraced.
    pub trace_id: u64,
    /// This span's id (unique within the log, allocated from 1).
    pub span_id: u64,
    /// Parent span id; `0` = root of its trace.
    pub parent_id: u64,
    /// Stage / operation name.
    pub name: &'static str,
    /// Optional view/fragment/node label.
    pub label: Option<String>,
    /// Start offset in simulated seconds (cumulative sim time of the run).
    pub start_sim_secs: f64,
    /// End offset in simulated seconds.
    pub end_sim_secs: f64,
}

impl SpanRecord {
    /// Simulated duration.
    pub fn duration_secs(&self) -> f64 {
        self.end_sim_secs - self.start_sim_secs
    }
}

impl Serialize for SpanRecord {
    fn to_value(&self) -> Value {
        ObjectBuilder::new()
            .field("seq", self.seq)
            .field("t", self.tnow)
            .field("trace", self.trace_id)
            .field("span", self.span_id)
            .field("parent", self.parent_id)
            .field("name", self.name)
            .field("label", self.label.as_deref())
            .field("start_sim_secs", self.start_sim_secs)
            .field("end_sim_secs", self.end_sim_secs)
            .build()
    }
}

/// Append-only log of completed spans with an optional retention cap.
///
/// The cap bounds *storage*, never *identity*: sequence numbers and span
/// ids keep advancing past the cap (dropped spans are counted in
/// [`SpanLog::spans_dropped`]), so enabling a cap cannot perturb the ids —
/// and therefore the causal structure — of the spans that are retained.
#[derive(Debug, Default, Clone)]
pub struct SpanLog {
    spans: Vec<SpanRecord>,
    next_seq: u64,
    next_span_id: u64,
    /// Retain at most this many spans; `0` = unbounded.
    max_spans: usize,
    spans_dropped: u64,
}

impl SpanLog {
    /// Build with a retention cap (`0` = unbounded).
    pub fn with_cap(max_spans: usize) -> Self {
        Self {
            max_spans,
            ..Self::default()
        }
    }

    /// Record a completed span as a child of `parent` (use
    /// [`SpanCtx::root`] to start a new trace root). Returns the new span's
    /// context for recording its own children.
    pub fn record_span(
        &mut self,
        tnow: u64,
        name: &'static str,
        label: Option<&str>,
        parent: SpanCtx,
        start_sim_secs: f64,
        end_sim_secs: f64,
    ) -> SpanCtx {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.next_span_id += 1;
        let span_id = self.next_span_id;
        if self.max_spans != 0 && self.spans.len() >= self.max_spans {
            self.spans_dropped += 1;
        } else {
            self.spans.push(SpanRecord {
                seq,
                tnow,
                trace_id: parent.trace_id,
                span_id,
                parent_id: parent.span_id,
                name,
                label: label.map(String::from),
                start_sim_secs,
                end_sim_secs,
            });
        }
        SpanCtx {
            trace_id: parent.trace_id,
            span_id,
        }
    }

    /// Allocate a span id under `parent` *without* recording anything — for
    /// a parent (e.g. a ticket root) whose duration is only known after its
    /// children have completed. Children may immediately use the returned
    /// context as their parent; the caller completes the span later with
    /// [`SpanLog::record_allocated`]. Ids advance the same counter as
    /// [`SpanLog::record_span`], so *allocation* order — not completion
    /// order — fixes them deterministically.
    pub fn alloc_span(&mut self, parent: SpanCtx) -> SpanCtx {
        self.next_span_id += 1;
        SpanCtx {
            trace_id: parent.trace_id,
            span_id: self.next_span_id,
        }
    }

    /// Record a span whose context was pre-allocated with
    /// [`SpanLog::alloc_span`]. The sequence number is assigned now
    /// (completion order); the identity was fixed at allocation.
    #[allow(clippy::too_many_arguments)]
    pub fn record_allocated(
        &mut self,
        ctx: SpanCtx,
        tnow: u64,
        name: &'static str,
        label: Option<&str>,
        parent: SpanCtx,
        start_sim_secs: f64,
        end_sim_secs: f64,
    ) {
        let seq = self.next_seq;
        self.next_seq += 1;
        if self.max_spans != 0 && self.spans.len() >= self.max_spans {
            self.spans_dropped += 1;
        } else {
            self.spans.push(SpanRecord {
                seq,
                tnow,
                trace_id: ctx.trace_id,
                span_id: ctx.span_id,
                parent_id: parent.span_id,
                name,
                label: label.map(String::from),
                start_sim_secs,
                end_sim_secs,
            });
        }
    }

    /// Record a flat (untraced, root) span; assigns the next sequence
    /// number. Kept for call sites that don't participate in a trace.
    pub fn record(
        &mut self,
        tnow: u64,
        name: &'static str,
        label: Option<&str>,
        start_sim_secs: f64,
        end_sim_secs: f64,
    ) {
        self.record_span(
            tnow,
            name,
            label,
            SpanCtx::root(tnow),
            start_sim_secs,
            end_sim_secs,
        );
    }

    /// All retained spans in emission order.
    pub fn spans(&self) -> &[SpanRecord] {
        &self.spans
    }

    /// Spans dropped by the retention cap.
    pub fn spans_dropped(&self) -> u64 {
        self.spans_dropped
    }

    /// Render as JSONL, one span per line.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for s in &self.spans {
            out.push_str(&serde::to_string(s));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequence_numbers_are_monotonic() {
        let mut log = SpanLog::default();
        log.record(1, "execute", None, 0.0, 5.0);
        log.record(1, "materialize", Some("V1"), 5.0, 7.5);
        log.record(2, "execute", None, 7.5, 9.0);
        let seqs: Vec<u64> = log.spans().iter().map(|s| s.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        assert_eq!(log.spans()[1].duration_secs(), 2.5);
    }

    #[test]
    fn record_span_builds_a_parent_child_tree() {
        let mut log = SpanLog::default();
        let root = log.record_span(7, "ticket", None, SpanCtx::root(7), 0.0, 10.0);
        assert_eq!(
            root,
            SpanCtx {
                trace_id: 7,
                span_id: 1
            }
        );
        let read = log.record_span(7, "read", None, root, 2.0, 10.0);
        let exec = log.record_span(7, "execute", Some("V1"), read, 2.0, 9.0);
        assert_eq!(exec.trace_id, 7);
        let spans = log.spans();
        assert_eq!(spans[0].parent_id, 0);
        assert_eq!(spans[1].parent_id, root.span_id);
        assert_eq!(spans[2].parent_id, read.span_id);
        assert!(spans.iter().all(|s| s.trace_id == 7));
    }

    #[test]
    fn cap_drops_spans_but_never_ids() {
        let mut log = SpanLog::with_cap(2);
        let a = log.record_span(1, "a", None, SpanCtx::root(1), 0.0, 1.0);
        let b = log.record_span(1, "b", None, a, 0.0, 1.0);
        let c = log.record_span(1, "c", None, b, 0.0, 1.0);
        // Storage is capped…
        assert_eq!(log.spans().len(), 2);
        assert_eq!(log.spans_dropped(), 1);
        // …but ids advance exactly as they would uncapped.
        assert_eq!((a.span_id, b.span_id, c.span_id), (1, 2, 3));
    }

    #[test]
    fn alloc_then_record_keeps_children_attached() {
        let mut log = SpanLog::default();
        // The root's duration is unknown until its children finish: allocate
        // its identity up front, attach children, complete it last.
        let root = log.alloc_span(SpanCtx::root(5));
        let child = log.record_span(5, "execute", None, root, 1.0, 4.0);
        log.record_allocated(
            root,
            5,
            "ticket",
            Some("client0"),
            SpanCtx::root(5),
            0.0,
            4.0,
        );
        assert_eq!(root.span_id, 1);
        assert_eq!(child.span_id, 2);
        let spans = log.spans();
        // Completion order: the child was recorded first…
        assert_eq!(spans[0].name, "execute");
        assert_eq!(spans[0].parent_id, root.span_id);
        // …but the root keeps its pre-allocated id and root parentage.
        assert_eq!(spans[1].name, "ticket");
        assert_eq!(spans[1].span_id, root.span_id);
        assert_eq!(spans[1].parent_id, 0);
        assert_eq!((spans[0].seq, spans[1].seq), (0, 1));
    }

    #[test]
    fn jsonl_is_one_valid_object_per_line() {
        let mut log = SpanLog::default();
        log.record(3, "execute", Some("V2"), 1.0, 2.0);
        let out = log.to_jsonl();
        assert_eq!(out.lines().count(), 1);
        assert_eq!(
            out.trim(),
            "{\"seq\":0,\"t\":3,\"trace\":3,\"span\":1,\"parent\":0,\
             \"name\":\"execute\",\"label\":\"V2\",\
             \"start_sim_secs\":1,\"end_sim_secs\":2}"
        );
    }
}
