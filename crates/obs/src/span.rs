//! Span-based tracing driven by the **simulated** clock.
//!
//! A span is a named region of work with a start/end in simulated seconds
//! plus a monotonic sequence number. Wall-clock never appears: replaying the
//! same workload produces byte-identical span logs, which is what makes the
//! traces diffable across runs and PRs.

use serde::{ObjectBuilder, Serialize, Value};

/// One completed span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Monotonic sequence number (emission order).
    pub seq: u64,
    /// Logical time (query sequence number) the span belongs to.
    pub tnow: u64,
    /// Stage / operation name.
    pub name: &'static str,
    /// Optional view/fragment label.
    pub label: Option<String>,
    /// Start offset in simulated seconds (cumulative sim time of the run).
    pub start_sim_secs: f64,
    /// End offset in simulated seconds.
    pub end_sim_secs: f64,
}

impl SpanRecord {
    /// Simulated duration.
    pub fn duration_secs(&self) -> f64 {
        self.end_sim_secs - self.start_sim_secs
    }
}

impl Serialize for SpanRecord {
    fn to_value(&self) -> Value {
        ObjectBuilder::new()
            .field("seq", self.seq)
            .field("t", self.tnow)
            .field("name", self.name)
            .field("label", self.label.as_deref())
            .field("start_sim_secs", self.start_sim_secs)
            .field("end_sim_secs", self.end_sim_secs)
            .build()
    }
}

/// Append-only log of completed spans.
#[derive(Debug, Default, Clone)]
pub struct SpanLog {
    spans: Vec<SpanRecord>,
    next_seq: u64,
}

impl SpanLog {
    /// Record a completed span; assigns the next sequence number.
    pub fn record(
        &mut self,
        tnow: u64,
        name: &'static str,
        label: Option<&str>,
        start_sim_secs: f64,
        end_sim_secs: f64,
    ) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.spans.push(SpanRecord {
            seq,
            tnow,
            name,
            label: label.map(String::from),
            start_sim_secs,
            end_sim_secs,
        });
    }

    /// All spans in emission order.
    pub fn spans(&self) -> &[SpanRecord] {
        &self.spans
    }

    /// Render as JSONL, one span per line.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for s in &self.spans {
            out.push_str(&serde::to_string(s));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequence_numbers_are_monotonic() {
        let mut log = SpanLog::default();
        log.record(1, "execute", None, 0.0, 5.0);
        log.record(1, "materialize", Some("V1"), 5.0, 7.5);
        log.record(2, "execute", None, 7.5, 9.0);
        let seqs: Vec<u64> = log.spans().iter().map(|s| s.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        assert_eq!(log.spans()[1].duration_secs(), 2.5);
    }

    #[test]
    fn jsonl_is_one_valid_object_per_line() {
        let mut log = SpanLog::default();
        log.record(3, "execute", Some("V2"), 1.0, 2.0);
        let out = log.to_jsonl();
        assert_eq!(out.lines().count(), 1);
        assert_eq!(
            out.trim(),
            "{\"seq\":0,\"t\":3,\"name\":\"execute\",\"label\":\"V2\",\
             \"start_sim_secs\":1,\"end_sim_secs\":2}"
        );
    }
}
