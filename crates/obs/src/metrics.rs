//! The typed metrics registry: monotonic counters, gauges, and fixed
//! log-bucket histograms with percentile estimation.
//!
//! Every metric is addressed by a `&'static str` name plus an optional
//! label (a view or fragment identifier). Label cardinality is bounded per
//! metric: once a metric has [`MetricsRegistry::max_cardinality`] distinct
//! labels, further *new* labels collapse into [`OVERFLOW_LABEL`] — existing
//! labels keep updating. This is the standard defence against unbounded
//! time-series growth when fragment churn mints new identifiers.

use std::collections::BTreeMap;

/// The label that absorbs updates once a metric's cardinality limit is hit.
pub const OVERFLOW_LABEL: &str = "__other__";

/// Number of histogram buckets: underflow + 62 log₂ buckets + overflow.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// Exponent of the smallest bucket's upper bound: bucket 0 holds
/// `v ≤ 2^MIN_EXP` (including zero and negatives).
pub const MIN_EXP: i32 = -20;

/// A fixed log₂-bucket histogram.
///
/// Bucket layout over a value `v`:
/// - bucket `0`: `v ≤ 2^MIN_EXP` (underflow — also zero/negative/NaN),
/// - bucket `i` (1 ≤ i ≤ 62): `2^(MIN_EXP+i−1) < v ≤ 2^(MIN_EXP+i)`,
/// - bucket `63`: `v > 2^(MIN_EXP+62)` (overflow).
///
/// Exact powers of two land in the bucket whose *upper bound* they equal
/// (inclusive upper bounds, like Prometheus `le` buckets).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Per-bucket observation counts.
    pub counts: [u64; HISTOGRAM_BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            counts: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0.0,
        }
    }
}

/// Map a value to its bucket index.
pub fn bucket_of(v: f64) -> usize {
    let lowest = (MIN_EXP as f64).exp2();
    if v.partial_cmp(&lowest) != Some(std::cmp::Ordering::Greater) {
        // NaN, negatives, zero and tiny values all land in the underflow
        // bucket (`partial_cmp` returns `None` for NaN, routing it here too).
        return 0;
    }
    let e = v.log2().ceil() as i32; // v ≤ 2^e, v > 2^(e−1)
    let idx = e - MIN_EXP;
    (idx.max(1) as usize).min(HISTOGRAM_BUCKETS - 1)
}

/// Upper bound of bucket `i` (`+∞` for the overflow bucket).
pub fn bucket_upper_bound(i: usize) -> f64 {
    if i >= HISTOGRAM_BUCKETS - 1 {
        f64::INFINITY
    } else {
        ((MIN_EXP + i as i32) as f64).exp2()
    }
}

impl Histogram {
    /// Record one observation.
    pub fn observe(&mut self, v: f64) {
        self.counts[bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v;
    }

    /// Estimate the `q`-quantile (`0 < q ≤ 1`) as the upper bound of the
    /// first bucket whose cumulative count reaches `⌈q·count⌉`. Returns
    /// `None` on an empty histogram. The estimate is exact when all
    /// observations in the deciding bucket sit on its upper bound, and
    /// otherwise overestimates by at most one bucket width (a factor of 2).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                return Some(bucket_upper_bound(i));
            }
        }
        Some(f64::INFINITY)
    }

    /// p50 / p95 / p99 in one call (`None` when empty).
    pub fn percentiles(&self) -> Option<(f64, f64, f64)> {
        Some((
            self.quantile(0.50)?,
            self.quantile(0.95)?,
            self.quantile(0.99)?,
        ))
    }
}

/// One metric's per-label series. `None` is the unlabeled series.
pub type Series<T> = BTreeMap<Option<String>, T>;

/// The registry: three metric families, each `name → label → value`.
#[derive(Debug, Default, Clone)]
pub struct MetricsRegistry {
    /// Monotonic counters.
    pub counters: BTreeMap<&'static str, Series<u64>>,
    /// Last-write-wins gauges.
    pub gauges: BTreeMap<&'static str, Series<f64>>,
    /// Log-bucket histograms.
    pub histograms: BTreeMap<&'static str, Series<Histogram>>,
    /// Per-metric label cardinality limit.
    pub max_cardinality: usize,
}

impl MetricsRegistry {
    /// A registry bounding each metric to `max_cardinality` labels.
    pub fn new(max_cardinality: usize) -> Self {
        Self {
            max_cardinality: max_cardinality.max(1),
            ..Self::default()
        }
    }

    fn slot<'a, T: Default>(
        series: &'a mut Series<T>,
        label: Option<&str>,
        max: usize,
    ) -> &'a mut T {
        let key = match label {
            None => None,
            Some(l) => {
                let owned = Some(l.to_string());
                if series.contains_key(&owned) || series.len() < max {
                    owned
                } else {
                    Some(OVERFLOW_LABEL.to_string())
                }
            }
        };
        series.entry(key).or_default()
    }

    /// Add to a counter.
    pub fn counter_add(&mut self, name: &'static str, label: Option<&str>, delta: u64) {
        let max = self.max_cardinality;
        *Self::slot(self.counters.entry(name).or_default(), label, max) += delta;
    }

    /// Set a gauge.
    pub fn gauge_set(&mut self, name: &'static str, label: Option<&str>, v: f64) {
        let max = self.max_cardinality;
        *Self::slot(self.gauges.entry(name).or_default(), label, max) = v;
    }

    /// Record a histogram observation.
    pub fn observe(&mut self, name: &'static str, label: Option<&str>, v: f64) {
        let max = self.max_cardinality;
        Self::slot(self.histograms.entry(name).or_default(), label, max).observe(v);
    }

    /// Read a counter (0 when absent).
    pub fn counter(&self, name: &str, label: Option<&str>) -> u64 {
        self.counters
            .get(name)
            .and_then(|s| s.get(&label.map(String::from)))
            .copied()
            .unwrap_or(0)
    }

    /// Read a gauge.
    pub fn gauge(&self, name: &str, label: Option<&str>) -> Option<f64> {
        self.gauges
            .get(name)
            .and_then(|s| s.get(&label.map(String::from)))
            .copied()
    }

    /// Read a histogram.
    pub fn histogram(&self, name: &str, label: Option<&str>) -> Option<&Histogram> {
        self.histograms
            .get(name)
            .and_then(|s| s.get(&label.map(String::from)))
    }

    /// The `n` largest labeled series of a counter, descending (ties broken
    /// by label, ascending, for determinism). Unlabeled and overflow series
    /// are excluded.
    pub fn top_counters(&self, name: &str, n: usize) -> Vec<(String, u64)> {
        let mut rows: Vec<(String, u64)> = self
            .counters
            .get(name)
            .map(|s| {
                s.iter()
                    .filter_map(|(k, v)| k.clone().map(|k| (k, *v)))
                    .filter(|(k, _)| k != OVERFLOW_LABEL)
                    .collect()
            })
            .unwrap_or_default();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        rows.truncate(n);
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_inclusive_upper() {
        // Exact powers of two land in the bucket they bound.
        for e in [-5i32, 0, 1, 10] {
            let v = (e as f64).exp2();
            let b = bucket_of(v);
            assert_eq!(
                bucket_upper_bound(b),
                v,
                "2^{e} must land on its own upper bound"
            );
            // Nudging above moves exactly one bucket up.
            assert_eq!(bucket_of(v * 1.0001), b + 1, "just above 2^{e}");
        }
    }

    #[test]
    fn underflow_and_overflow_buckets() {
        assert_eq!(bucket_of(0.0), 0);
        assert_eq!(bucket_of(-3.0), 0);
        assert_eq!(bucket_of(f64::NAN), 0);
        assert_eq!(
            bucket_of((MIN_EXP as f64).exp2()),
            0,
            "≤ 2^MIN_EXP underflows"
        );
        assert_eq!(bucket_of(f64::MAX), HISTOGRAM_BUCKETS - 1);
        assert!(bucket_upper_bound(HISTOGRAM_BUCKETS - 1).is_infinite());
    }

    #[test]
    fn every_finite_bucket_has_doubling_bounds() {
        for i in 1..HISTOGRAM_BUCKETS - 2 {
            assert_eq!(bucket_upper_bound(i + 1), bucket_upper_bound(i) * 2.0);
        }
    }

    #[test]
    fn quantiles_at_bucket_edges() {
        let mut h = Histogram::default();
        // 50 observations at exactly 1.0 (bucket upper bound), 50 at 100.0.
        for _ in 0..50 {
            h.observe(1.0);
        }
        for _ in 0..50 {
            h.observe(100.0);
        }
        // p50's deciding observation is the 50th — still in the 1.0 bucket,
        // whose upper bound is exactly 1.0.
        assert_eq!(h.quantile(0.50), Some(1.0));
        // p95/p99 land in 100.0's bucket: (64, 128].
        assert_eq!(h.quantile(0.95), Some(128.0));
        assert_eq!(h.quantile(0.99), Some(128.0));
        let (p50, p95, p99) = h.percentiles().unwrap();
        assert_eq!((p50, p95, p99), (1.0, 128.0, 128.0));
    }

    #[test]
    fn quantile_edge_cases() {
        let mut h = Histogram::default();
        assert_eq!(h.quantile(0.5), None, "empty histogram");
        h.observe(8.0);
        // A single observation decides every quantile.
        assert_eq!(h.quantile(0.01), Some(8.0));
        assert_eq!(h.quantile(1.0), Some(8.0));
        assert_eq!(h.count, 1);
        assert_eq!(h.sum, 8.0);
    }

    #[test]
    fn quantile_monotone_in_q() {
        let mut h = Histogram::default();
        for i in 1..=1000u32 {
            h.observe(i as f64);
        }
        let qs = [0.01, 0.25, 0.5, 0.75, 0.95, 0.99, 1.0];
        let vals: Vec<f64> = qs.iter().map(|&q| h.quantile(q).unwrap()).collect();
        assert!(vals.windows(2).all(|w| w[0] <= w[1]), "{vals:?}");
        // The p50 estimate must bracket the true median within one bucket.
        let p50 = h.quantile(0.5).unwrap();
        assert!((500.0..=1024.0).contains(&p50), "{p50}");
    }

    #[test]
    fn counter_and_gauge_basics() {
        let mut m = MetricsRegistry::new(16);
        m.counter_add("q_total", None, 1);
        m.counter_add("q_total", None, 2);
        m.counter_add("hits", Some("V1"), 5);
        assert_eq!(m.counter("q_total", None), 3);
        assert_eq!(m.counter("hits", Some("V1")), 5);
        assert_eq!(m.counter("hits", Some("V2")), 0);
        m.gauge_set("pool", None, 1.5);
        m.gauge_set("pool", None, 2.5);
        assert_eq!(m.gauge("pool", None), Some(2.5));
        assert_eq!(m.gauge("nope", None), None);
    }

    #[test]
    fn label_cardinality_collapses_to_overflow() {
        let mut m = MetricsRegistry::new(3);
        for i in 0..10 {
            m.counter_add("hits", Some(&format!("V{i}")), 1);
        }
        let series = &m.counters["hits"];
        // 3 real labels + the overflow series.
        assert_eq!(series.len(), 4);
        assert_eq!(m.counter("hits", Some(OVERFLOW_LABEL)), 7);
        // Existing labels keep updating after the limit is hit.
        m.counter_add("hits", Some("V0"), 10);
        assert_eq!(m.counter("hits", Some("V0")), 11);
        assert_eq!(series_len(&m, "hits"), 4);
        // Gauges and histograms share the rule.
        let mut g = MetricsRegistry::new(1);
        g.gauge_set("g", Some("a"), 1.0);
        g.gauge_set("g", Some("b"), 2.0);
        assert_eq!(g.gauge("g", Some(OVERFLOW_LABEL)), Some(2.0));
        let mut h = MetricsRegistry::new(1);
        h.observe("h", Some("a"), 1.0);
        h.observe("h", Some("b"), 1.0);
        assert_eq!(h.histogram("h", Some(OVERFLOW_LABEL)).unwrap().count, 1);
    }

    fn series_len(m: &MetricsRegistry, name: &str) -> usize {
        m.counters[name].len()
    }

    #[test]
    fn unlabeled_series_shares_the_budget() {
        let mut m = MetricsRegistry::new(2);
        m.counter_add("c", None, 1);
        m.counter_add("c", Some("a"), 1);
        m.counter_add("c", Some("b"), 1);
        // None + a + overflow(b): the unlabeled slot consumed one budget
        // entry (documented behaviour: the limit bounds total series).
        assert_eq!(m.counter("c", None), 1);
        assert_eq!(m.counter("c", Some("a")), 1);
        assert_eq!(m.counter("c", Some(OVERFLOW_LABEL)), 1);
    }

    #[test]
    fn top_counters_sorted_and_truncated() {
        let mut m = MetricsRegistry::new(16);
        m.counter_add("hits", Some("V1"), 5);
        m.counter_add("hits", Some("V2"), 9);
        m.counter_add("hits", Some("V3"), 9);
        m.counter_add("hits", Some("V4"), 1);
        m.counter_add("hits", None, 100); // unlabeled excluded
        let top = m.top_counters("hits", 3);
        assert_eq!(
            top,
            vec![
                ("V2".to_string(), 9),
                ("V3".to_string(), 9),
                ("V1".to_string(), 5)
            ]
        );
        assert!(m.top_counters("absent", 3).is_empty());
    }
}
