//! # deepsea-obs
//!
//! Observability for the DeepSea view pool: a typed metrics registry
//! (counters / gauges / log-bucket histograms with percentile estimation),
//! span tracing driven by the *simulated* clock, and a structured decision
//! audit log (JSONL) explaining every selection, eviction, split/merge and
//! recovery decision — plus a Prometheus text exporter.
//!
//! ## Determinism contract
//!
//! Everything here is replay-stable: spans and events are timestamped with
//! sim-seconds and a monotonic sequence number, never wall-clock, and all
//! map iteration is ordered (`BTreeMap`). Two runs of the same workload
//! produce byte-identical dumps.
//!
//! ## Transparency contract
//!
//! A disabled observer ([`Observer::default`] or [`ObsConfig::off`]) is a
//! no-op handle: every method returns immediately and no state is
//! allocated. The driver's decisions must be identical with observation on
//! or off — the observer only *reads* engine state, and enabling it must
//! never change a query result, an eviction choice, or `state_digest()`.
//! `tests/obs_transparency.rs` in the workspace root enforces this against
//! the golden 50-query workload.

pub mod events;
pub mod metrics;
pub mod prometheus;
pub mod span;
pub mod trace;

pub use events::{DecisionEvent, EventLog, EventRecord, PhiBreakdown};
pub use metrics::{Histogram, MetricsRegistry, HISTOGRAM_BUCKETS, OVERFLOW_LABEL};
pub use prometheus::{parse_prometheus, render_prometheus, PromSample};
pub use span::{SpanCtx, SpanLog, SpanRecord};
pub use trace::{
    chrome_trace_json, render_text_profile, CriticalPathStep, ProfileRow, TraceForest,
};

// deepsea-lint: allow(lock_discipline) -- observer buffers are shared across worker threads; single lock per sink
use std::sync::{Arc, Mutex, MutexGuard};

/// What to collect. [`ObsConfig::off`] (the `Default`) collects nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsConfig {
    /// Collect counters / gauges / histograms.
    pub metrics: bool,
    /// Record per-stage spans.
    pub spans: bool,
    /// Record decision audit events.
    pub events: bool,
    /// Per-metric label cardinality budget (see
    /// [`metrics::MetricsRegistry`]).
    pub max_label_cardinality: usize,
    /// Retain at most this many spans (`0` = unbounded). The cap bounds
    /// storage only: span ids keep advancing and drops are counted in
    /// [`Observer::spans_dropped`], so capping never perturbs the causal
    /// structure of the retained spans — let alone any engine decision.
    pub max_spans: usize,
}

impl ObsConfig {
    /// Collect nothing (the default).
    pub fn off() -> Self {
        Self {
            metrics: false,
            spans: false,
            events: false,
            max_label_cardinality: 0,
            max_spans: 0,
        }
    }

    /// Collect everything, with a budget of 256 labels per metric and an
    /// unbounded span log.
    pub fn on() -> Self {
        Self {
            metrics: true,
            spans: true,
            events: true,
            max_label_cardinality: 256,
            max_spans: 0,
        }
    }

    /// Cap span retention at `max_spans` (`0` = unbounded).
    pub fn with_span_cap(mut self, max_spans: usize) -> Self {
        self.max_spans = max_spans;
        self
    }

    /// True when at least one collector is enabled.
    pub fn any(&self) -> bool {
        self.metrics || self.spans || self.events
    }
}

impl Default for ObsConfig {
    fn default() -> Self {
        Self::off()
    }
}

#[derive(Debug)]
struct State {
    metrics: MetricsRegistry,
    spans: SpanLog,
    events: EventLog,
}

#[derive(Debug)]
struct Inner {
    config: ObsConfig,
    state: Mutex<State>,
}

/// A cheap, cloneable handle to the collectors. The default-constructed
/// handle is disabled and allocation-free; every method on it is a no-op.
///
/// The handle uses interior mutability (`Mutex`) so instrumentation sites
/// only need `&self`; contention is nil because the driver is
/// single-threaded per `DeepSea` instance (the bench harness gives each
/// variant its own driver and observer).
#[derive(Debug, Default, Clone)]
pub struct Observer {
    inner: Option<Arc<Inner>>,
}

impl Observer {
    /// Build from a config; `ObsConfig::off()` yields the disabled handle.
    pub fn new(config: ObsConfig) -> Self {
        if !config.any() {
            return Self::default();
        }
        Self {
            inner: Some(Arc::new(Inner {
                config,
                state: Mutex::new(State {
                    metrics: MetricsRegistry::new(config.max_label_cardinality.max(1)),
                    spans: SpanLog::with_cap(config.max_spans),
                    events: EventLog::default(),
                }),
            })),
        }
    }

    /// The fully-disabled handle (same as `Default`).
    pub fn off() -> Self {
        Self::default()
    }

    /// True when any collector is active. Instrumentation sites use this to
    /// skip *pure* derived computation (e.g. a Φ breakdown) when nobody is
    /// listening; effectful code must never hide behind it.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// True when decision events are being recorded.
    pub fn events_enabled(&self) -> bool {
        self.inner.as_ref().is_some_and(|i| i.config.events)
    }

    /// True when spans are being recorded. Instrumentation uses this to
    /// skip label formatting (and to gate the engine-side detail buffers
    /// that feed span conversion) when nobody is tracing.
    pub fn spans_enabled(&self) -> bool {
        self.inner.as_ref().is_some_and(|i| i.config.spans)
    }

    fn lock(&self) -> Option<(MutexGuard<'_, State>, ObsConfig)> {
        let inner = self.inner.as_ref()?;
        Some((
            inner.state.lock().unwrap_or_else(|e| e.into_inner()),
            inner.config,
        ))
    }

    /// Add to a counter.
    pub fn counter_add(&self, name: &'static str, label: Option<&str>, delta: u64) {
        if let Some((mut s, c)) = self.lock() {
            if c.metrics {
                s.metrics.counter_add(name, label, delta);
            }
        }
    }

    /// Increment a counter by one.
    pub fn counter_inc(&self, name: &'static str, label: Option<&str>) {
        self.counter_add(name, label, 1);
    }

    /// Set a gauge.
    pub fn gauge_set(&self, name: &'static str, label: Option<&str>, v: f64) {
        if let Some((mut s, c)) = self.lock() {
            if c.metrics {
                s.metrics.gauge_set(name, label, v);
            }
        }
    }

    /// Record a histogram observation.
    pub fn observe(&self, name: &'static str, label: Option<&str>, v: f64) {
        if let Some((mut s, c)) = self.lock() {
            if c.metrics {
                s.metrics.observe(name, label, v);
            }
        }
    }

    /// Record a completed span (`start`/`end` in cumulative sim-seconds).
    pub fn span(
        &self,
        tnow: u64,
        name: &'static str,
        label: Option<&str>,
        start_sim_secs: f64,
        end_sim_secs: f64,
    ) {
        if let Some((mut s, c)) = self.lock() {
            if c.spans {
                s.spans
                    .record(tnow, name, label, start_sim_secs, end_sim_secs);
            }
        }
    }

    /// Record a completed span as a child of `parent` (use
    /// [`SpanCtx::root`] to start a new trace) and return the new span's
    /// context for recording its children. The disabled observer returns
    /// [`SpanCtx::NONE`] without touching any state.
    pub fn record_span(
        &self,
        tnow: u64,
        name: &'static str,
        label: Option<&str>,
        parent: SpanCtx,
        start_sim_secs: f64,
        end_sim_secs: f64,
    ) -> SpanCtx {
        if let Some((mut s, c)) = self.lock() {
            if c.spans {
                return s.spans.record_span(
                    tnow,
                    name,
                    label,
                    parent,
                    start_sim_secs,
                    end_sim_secs,
                );
            }
        }
        SpanCtx::NONE
    }

    /// Pre-allocate a span context under `parent` for a span whose duration
    /// is only known after its children complete (e.g. a ticket root).
    /// Children can attach to the returned context immediately; complete the
    /// span itself with [`Observer::record_span_at`]. Returns
    /// [`SpanCtx::NONE`] when disabled.
    pub fn alloc_span(&self, parent: SpanCtx) -> SpanCtx {
        if let Some((mut s, c)) = self.lock() {
            if c.spans {
                return s.spans.alloc_span(parent);
            }
        }
        SpanCtx::NONE
    }

    /// Record a span whose context was pre-allocated with
    /// [`Observer::alloc_span`]. A [`SpanCtx::NONE`] context is a no-op.
    #[allow(clippy::too_many_arguments)]
    pub fn record_span_at(
        &self,
        ctx: SpanCtx,
        tnow: u64,
        name: &'static str,
        label: Option<&str>,
        parent: SpanCtx,
        start_sim_secs: f64,
        end_sim_secs: f64,
    ) {
        if ctx.is_none() {
            return;
        }
        if let Some((mut s, c)) = self.lock() {
            if c.spans {
                s.spans.record_allocated(
                    ctx,
                    tnow,
                    name,
                    label,
                    parent,
                    start_sim_secs,
                    end_sim_secs,
                );
            }
        }
    }

    /// Spans dropped by the retention cap (`0` when disabled or uncapped).
    pub fn spans_dropped(&self) -> u64 {
        self.lock()
            .map(|(s, _)| s.spans.spans_dropped())
            .unwrap_or(0)
    }

    /// Record a decision event.
    pub fn event(&self, tnow: u64, event: DecisionEvent) {
        if let Some((mut s, c)) = self.lock() {
            if c.events {
                s.events.record(tnow, event);
            }
        }
    }

    /// Snapshot the metrics registry (empty when disabled).
    pub fn metrics_snapshot(&self) -> MetricsRegistry {
        self.lock()
            .map(|(s, _)| s.metrics.clone())
            .unwrap_or_default()
    }

    /// Snapshot the recorded events (empty when disabled).
    pub fn events_snapshot(&self) -> Vec<EventRecord> {
        self.lock()
            .map(|(s, _)| s.events.events().to_vec())
            .unwrap_or_default()
    }

    /// Snapshot the recorded spans (empty when disabled).
    pub fn spans_snapshot(&self) -> Vec<SpanRecord> {
        self.lock()
            .map(|(s, _)| s.spans.spans().to_vec())
            .unwrap_or_default()
    }

    /// Render the metrics in Prometheus text format.
    pub fn render_prometheus(&self) -> String {
        self.lock()
            .map(|(s, _)| prometheus::render_prometheus(&s.metrics))
            .unwrap_or_default()
    }

    /// Render the event log as JSONL.
    pub fn events_jsonl(&self) -> String {
        self.lock()
            .map(|(s, _)| s.events.to_jsonl())
            .unwrap_or_default()
    }

    /// Render the span log as JSONL.
    pub fn spans_jsonl(&self) -> String {
        self.lock()
            .map(|(s, _)| s.spans.to_jsonl())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_observer_is_allocation_free_and_inert() {
        let obs = Observer::default();
        assert!(!obs.enabled());
        obs.counter_inc("c", None);
        obs.gauge_set("g", None, 1.0);
        obs.observe("h", None, 1.0);
        obs.span(1, "s", None, 0.0, 1.0);
        obs.event(
            1,
            DecisionEvent::JournalSnapshot {
                appended_since_last: 1,
            },
        );
        assert_eq!(obs.metrics_snapshot().counter("c", None), 0);
        assert!(obs.events_snapshot().is_empty());
        assert!(obs.spans_snapshot().is_empty());
        assert_eq!(obs.render_prometheus(), "");
        assert_eq!(obs.events_jsonl(), "");
        assert!(Observer::new(ObsConfig::off()).inner.is_none());
    }

    #[test]
    fn enabled_observer_records_across_clones() {
        let obs = Observer::new(ObsConfig::on());
        assert!(obs.enabled() && obs.events_enabled());
        let clone = obs.clone();
        clone.counter_add("q_total", None, 2);
        obs.counter_inc("q_total", None);
        assert_eq!(obs.metrics_snapshot().counter("q_total", None), 3);
        clone.span(1, "execute", Some("V1"), 0.0, 2.0);
        assert_eq!(obs.spans_snapshot().len(), 1);
        obs.event(
            4,
            DecisionEvent::JournalSnapshot {
                appended_since_last: 9,
            },
        );
        let evs = obs.events_snapshot();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].tnow, 4);
    }

    #[test]
    fn partial_configs_gate_each_collector() {
        let cfg = ObsConfig {
            metrics: true,
            spans: false,
            events: false,
            max_label_cardinality: 8,
            max_spans: 0,
        };
        let obs = Observer::new(cfg);
        assert!(obs.enabled());
        assert!(!obs.events_enabled());
        obs.counter_inc("c", None);
        obs.span(1, "s", None, 0.0, 1.0);
        obs.event(
            1,
            DecisionEvent::JournalSnapshot {
                appended_since_last: 1,
            },
        );
        assert_eq!(obs.metrics_snapshot().counter("c", None), 1);
        assert!(obs.spans_snapshot().is_empty());
        assert!(obs.events_snapshot().is_empty());
    }
}
