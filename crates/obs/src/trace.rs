//! Causal-trace analysis: per-ticket span trees, critical-path extraction
//! with self-time attribution, aggregated profiles, and renderers
//! (deterministic Chrome-trace-event JSON plus a text top-down profile).
//!
//! ## Critical path
//!
//! The critical path of a trace is the longest causal chain through its
//! span tree: starting from the root's end time, repeatedly pick the
//! last-finishing child that ends at or before the current cursor (ties
//! broken by lower sequence number — deterministic), recurse into it, then
//! continue leftwards from that child's start. Each step's **self time**
//! is its duration minus the durations of its chosen children, so the self
//! times of all steps telescope back to exactly the root's duration (up to
//! f64 rounding of the simulated clock) — gaps between children are
//! attributed to the parent that contained them.
//!
//! ## Determinism
//!
//! Everything here is a pure function of the span log, which is itself a
//! deterministic function of the workload (sim clock + monotonic sequence
//! numbers). Maps are `BTreeMap`s; ordering rules are total. Two replays
//! render byte-identical JSON and text.

use std::collections::BTreeMap;

use serde::{ObjectBuilder, Value};

use crate::span::SpanRecord;

/// Tolerance for "ends at or before" comparisons on the simulated clock:
/// spans laid out analytically can carry f64 rounding dust.
const EPS_SECS: f64 = 1e-9;

/// One step of a critical path, in root-to-leaf order.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPathStep {
    /// Depth below the trace root (root = 0).
    pub depth: usize,
    /// Stage name of the span.
    pub name: &'static str,
    /// Span label (view / node / outcome), if any.
    pub label: Option<String>,
    /// Span start, cumulative sim-seconds.
    pub start_sim_secs: f64,
    /// Span end, cumulative sim-seconds.
    pub end_sim_secs: f64,
    /// Span duration minus the durations of its on-path children.
    pub self_secs: f64,
}

impl CriticalPathStep {
    /// `name` or `name[label]` — the aggregation key for profiles.
    pub fn stage(&self) -> String {
        match &self.label {
            Some(l) => format!("{}[{}]", self.name, l),
            None => self.name.to_string(),
        }
    }
}

/// One row of an aggregated critical-path profile.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileRow {
    /// Aggregation key: `name` or `name[label]`.
    pub stage: String,
    /// Total self time attributed to this stage across the profiled traces.
    pub self_secs: f64,
    /// Share of the summed root durations (0..=1).
    pub share: f64,
    /// Number of critical-path steps aggregated into this row.
    pub steps: u64,
}

/// An index over a span log: spans grouped into traces, each a tree.
#[derive(Debug, Default)]
pub struct TraceForest {
    spans: Vec<SpanRecord>,
    /// span_id → index into `spans`.
    by_id: BTreeMap<u64, usize>,
    /// parent span_id → child indexes (emission order).
    children: BTreeMap<u64, Vec<usize>>,
    /// trace_id → root span indexes (almost always exactly one).
    roots: BTreeMap<u64, Vec<usize>>,
}

impl TraceForest {
    /// Index a span log. Spans with `trace_id == 0` (untraced) are kept in
    /// the forest but form their own degenerate single-span traces only if
    /// they are roots.
    pub fn from_spans(spans: &[SpanRecord]) -> Self {
        let mut forest = TraceForest {
            spans: spans.to_vec(),
            ..TraceForest::default()
        };
        for (i, s) in forest.spans.iter().enumerate() {
            forest.by_id.insert(s.span_id, i);
        }
        for (i, s) in forest.spans.iter().enumerate() {
            if s.parent_id != 0 && forest.by_id.contains_key(&s.parent_id) {
                forest.children.entry(s.parent_id).or_default().push(i);
            } else {
                forest.roots.entry(s.trace_id).or_default().push(i);
            }
        }
        forest
    }

    /// All trace ids that have at least one root, ascending.
    pub fn trace_ids(&self) -> Vec<u64> {
        self.roots.keys().copied().collect()
    }

    /// The root span of a trace (the first-emitted root if several).
    pub fn root(&self, trace_id: u64) -> Option<&SpanRecord> {
        self.roots
            .get(&trace_id)
            .and_then(|r| r.first())
            .map(|&i| &self.spans[i])
    }

    /// Number of spans recorded under a trace id.
    pub fn span_count(&self, trace_id: u64) -> usize {
        self.spans.iter().filter(|s| s.trace_id == trace_id).count()
    }

    /// True when every span of the trace is reachable from its root by
    /// parent links — i.e. no orphaned spans.
    pub fn all_reachable_from_root(&self, trace_id: u64) -> bool {
        let Some(root) = self.root(trace_id) else {
            return false;
        };
        let mut reach = 0usize;
        let mut stack = vec![root.span_id];
        while let Some(id) = stack.pop() {
            reach += 1;
            if let Some(kids) = self.children.get(&id) {
                stack.extend(kids.iter().map(|&i| self.spans[i].span_id));
            }
        }
        reach == self.span_count(trace_id)
    }

    /// Children of a span, sorted for the critical-path walk: by end time
    /// descending, ties by sequence number ascending.
    fn sorted_children(&self, span_id: u64) -> Vec<usize> {
        let mut kids = self.children.get(&span_id).cloned().unwrap_or_default();
        kids.sort_by(|&a, &b| {
            let (sa, sb) = (&self.spans[a], &self.spans[b]);
            sb.end_sim_secs
                .total_cmp(&sa.end_sim_secs)
                .then(sa.seq.cmp(&sb.seq))
        });
        kids
    }

    /// Extract the critical path of a trace, root first. Empty when the
    /// trace has no root.
    pub fn critical_path(&self, trace_id: u64) -> Vec<CriticalPathStep> {
        let Some(roots) = self.roots.get(&trace_id) else {
            return Vec::new();
        };
        let Some(&root) = roots.first() else {
            return Vec::new();
        };
        let mut out = Vec::new();
        self.walk_critical(root, 0, &mut out);
        out
    }

    /// Append the critical steps of span `idx` (at `depth`) to `out`:
    /// the span itself (self time filled in later), then recursively the
    /// chain of last-finishing non-overlapping children.
    fn walk_critical(&self, idx: usize, depth: usize, out: &mut Vec<CriticalPathStep>) {
        let s = &self.spans[idx];
        let slot = out.len();
        out.push(CriticalPathStep {
            depth,
            name: s.name,
            label: s.label.clone(),
            start_sim_secs: s.start_sim_secs,
            end_sim_secs: s.end_sim_secs,
            self_secs: 0.0,
        });
        // Choose the non-overlapping chain of children, scanning from the
        // span's end backwards.
        let kids = self.sorted_children(s.span_id);
        let mut cursor = s.end_sim_secs;
        let mut chain: Vec<usize> = Vec::new();
        for &k in &kids {
            let kid = &self.spans[k];
            if kid.end_sim_secs <= cursor + EPS_SECS {
                chain.push(k);
                cursor = kid.start_sim_secs.min(cursor);
            }
        }
        // `chain` is in reverse time order; recurse in forward order.
        chain.reverse();
        let mut kids_secs = 0.0;
        for k in chain {
            kids_secs += self.spans[k].duration_secs();
            self.walk_critical(k, depth + 1, out);
        }
        out[slot].self_secs = s.duration_secs() - kids_secs;
    }

    /// Aggregate the critical paths of `trace_ids` into a profile table,
    /// rows sorted by self time descending (ties by stage name ascending).
    /// Shares are fractions of the summed root durations.
    pub fn profile(&self, trace_ids: &[u64]) -> Vec<ProfileRow> {
        let mut by_stage: BTreeMap<String, (f64, u64)> = BTreeMap::new();
        let mut total = 0.0;
        for &tid in trace_ids {
            let path = self.critical_path(tid);
            if let Some(root) = path.first() {
                total += root.end_sim_secs - root.start_sim_secs;
            }
            for step in path {
                let e = by_stage.entry(step.stage()).or_insert((0.0, 0));
                e.0 += step.self_secs;
                e.1 += 1;
            }
        }
        let mut rows: Vec<ProfileRow> = by_stage
            .into_iter()
            .map(|(stage, (self_secs, steps))| ProfileRow {
                stage,
                self_secs,
                share: if total > 0.0 { self_secs / total } else { 0.0 },
                steps,
            })
            .collect();
        rows.sort_by(|a, b| {
            b.self_secs
                .total_cmp(&a.self_secs)
                .then_with(|| a.stage.cmp(&b.stage))
        });
        rows
    }
}

/// Render spans as deterministic Chrome-trace-event JSON (the Trace Event
/// Format's `traceEvents` array of `"ph":"X"` complete events, loadable by
/// Perfetto / `chrome://tracing`). Timestamps and durations are the sim
/// clock scaled to integer microseconds; `pid` is the trace id so each
/// ticket renders as its own process track.
pub fn chrome_trace_json(spans: &[SpanRecord]) -> String {
    let usecs = |s: f64| (s * 1e6).round() as u64;
    let events: Vec<Value> = spans
        .iter()
        .map(|s| {
            let mut args = ObjectBuilder::new()
                .field("seq", s.seq)
                .field("span", s.span_id)
                .field("parent", s.parent_id);
            if let Some(l) = &s.label {
                args = args.field("label", l.as_str());
            }
            ObjectBuilder::new()
                .field("name", s.name)
                .field("ph", "X")
                .field("ts", usecs(s.start_sim_secs))
                .field("dur", usecs(s.duration_secs().max(0.0)))
                .field("pid", s.trace_id)
                .field("tid", s.span_id)
                .field("args", args.build())
                .build()
        })
        .collect();
    ObjectBuilder::new()
        .field("displayTimeUnit", "ms")
        .field("traceEvents", events)
        .build()
        .to_json()
}

/// Render a text top-down profile: the slowest `top` traces' critical
/// paths (indented, with self-time per step) followed by the aggregated
/// profile table over all listed traces.
pub fn render_text_profile(forest: &TraceForest, trace_ids: &[u64], top: usize) -> String {
    let mut out = String::new();
    // Slowest traces by root duration, ties by trace id ascending.
    let mut by_dur: Vec<(f64, u64)> = trace_ids
        .iter()
        .filter_map(|&tid| forest.root(tid).map(|r| (r.duration_secs(), tid)))
        .collect();
    by_dur.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
    for &(dur, tid) in by_dur.iter().take(top) {
        out.push_str(&format!("trace {tid}  ({dur:.3}s)\n"));
        for step in forest.critical_path(tid) {
            out.push_str(&format!(
                "{:indent$}{}  {:.3}s (self {:.3}s)\n",
                "",
                step.stage(),
                step.end_sim_secs - step.start_sim_secs,
                step.self_secs,
                indent = 2 * (step.depth + 1),
            ));
        }
    }
    out.push_str("\ncritical-path profile (self time)\n");
    for row in forest.profile(trace_ids) {
        out.push_str(&format!(
            "  {:6.1}%  {:10.3}s  x{:<5} {}\n",
            row.share * 100.0,
            row.self_secs,
            row.steps,
            row.stage
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{SpanCtx, SpanLog};

    /// A small two-ticket log: ticket 1 with a nested read/execute plus an
    /// overlapping hedge pair, ticket 2 a bare root.
    fn sample_log() -> SpanLog {
        let mut log = SpanLog::default();
        let t1 = log.record_span(1, "ticket", None, SpanCtx::root(1), 0.0, 10.0);
        let _q = log.record_span(1, "queue_wait", None, t1, 0.0, 2.0);
        let read = log.record_span(1, "read", None, t1, 2.0, 10.0);
        let exec = log.record_span(1, "execute", Some("V1"), read, 2.0, 9.0);
        // Hedge race: both arms overlap; the replica wins.
        log.record_span(1, "hedge_primary", Some("node0 lose"), exec, 2.0, 8.5);
        log.record_span(1, "hedge_replica", Some("node1 win"), exec, 3.0, 6.0);
        log.record_span(2, "ticket", None, SpanCtx::root(2), 4.0, 5.0);
        log
    }

    #[test]
    fn forest_indexes_roots_and_reachability() {
        let log = sample_log();
        let forest = TraceForest::from_spans(log.spans());
        assert_eq!(forest.trace_ids(), vec![1, 2]);
        assert_eq!(forest.span_count(1), 6);
        assert!(forest.all_reachable_from_root(1));
        assert!(forest.all_reachable_from_root(2));
    }

    #[test]
    fn critical_path_self_times_sum_to_root_duration() {
        let log = sample_log();
        let forest = TraceForest::from_spans(log.spans());
        let path = forest.critical_path(1);
        // ticket → (queue_wait, read) → execute → hedge arm.
        assert_eq!(path[0].name, "ticket");
        assert!(path.iter().any(|s| s.name == "read"));
        assert!(path.iter().any(|s| s.name == "execute"));
        let total: f64 = path.iter().map(|s| s.self_secs).sum();
        let root_dur = path[0].end_sim_secs - path[0].start_sim_secs;
        assert!(
            (total - root_dur).abs() < 1e-9,
            "self times must telescope to the root duration: {total} vs {root_dur}"
        );
    }

    #[test]
    fn critical_path_prefers_last_finishing_child() {
        let log = sample_log();
        let forest = TraceForest::from_spans(log.spans());
        let path = forest.critical_path(1);
        // Under `execute`, the primary arm ends later (8.5 vs 6.0), so it —
        // not the winning replica — sits on the critical path.
        let arm = path
            .iter()
            .find(|s| s.name.starts_with("hedge"))
            .expect("a hedge arm is on the path");
        assert_eq!(arm.name, "hedge_primary");
    }

    #[test]
    fn profile_aggregates_and_orders_by_self_time() {
        let log = sample_log();
        let forest = TraceForest::from_spans(log.spans());
        let rows = forest.profile(&forest.trace_ids());
        let total_share: f64 = rows.iter().map(|r| r.share).sum();
        assert!((total_share - 1.0).abs() < 1e-9);
        for pair in rows.windows(2) {
            assert!(pair[0].self_secs >= pair[1].self_secs);
        }
    }

    #[test]
    fn chrome_trace_json_is_valid_and_deterministic() {
        let log = sample_log();
        let json = chrome_trace_json(log.spans());
        let v = serde::from_str(&json).expect("chrome trace renders valid JSON");
        let events = match v.get("traceEvents") {
            Some(serde::Value::Array(items)) => items.clone(),
            other => panic!("traceEvents must be an array, got {other:?}"),
        };
        assert_eq!(events.len(), log.spans().len());
        for ev in &events {
            assert_eq!(ev.get("ph").and_then(|p| p.as_str()), Some("X"));
            assert!(ev.get("name").is_some());
            assert!(ev.get("ts").and_then(|t| t.as_f64()).is_some());
            assert!(ev.get("dur").and_then(|d| d.as_f64()).is_some());
            assert!(ev.get("pid").is_some() && ev.get("tid").is_some());
        }
        assert_eq!(json, chrome_trace_json(log.spans()));
    }

    #[test]
    fn text_profile_lists_slowest_traces_first() {
        let log = sample_log();
        let forest = TraceForest::from_spans(log.spans());
        let text = render_text_profile(&forest, &forest.trace_ids(), 2);
        let t1 = text.find("trace 1").expect("trace 1 listed");
        let t2 = text.find("trace 2").expect("trace 2 listed");
        assert!(t1 < t2, "the 10s trace renders before the 1s trace");
        assert!(text.contains("critical-path profile"));
    }
}
