//! Property tests for the engine: executor semantics, signature matching
//! soundness, SQL parser robustness, and optimizer equivalence.

use deepsea_engine::catalog::Catalog;
use deepsea_engine::exec::execute;
use deepsea_engine::optimize::push_down_selections;
use deepsea_engine::plan::{AggExpr, AggFunc, LogicalPlan};
use deepsea_engine::signature::{matches, Signature};
use deepsea_engine::sql;
use deepsea_relation::{DataType, Field, Predicate, Schema, Table, Value};
use deepsea_storage::{BlockConfig, CostWeights, SimFs};
use proptest::prelude::*;

fn catalog(fact_rows: i64) -> Catalog {
    let mut c = Catalog::new();
    c.register(
        "fact",
        Table::new(
            Schema::new(vec![
                Field::new("fact.k", DataType::Int),
                Field::new("fact.v", DataType::Float),
            ]),
            (0..fact_rows)
                .map(|i| vec![Value::Int(i % 50), Value::Float((i * 7 % 13) as f64)])
                .collect(),
            1_000,
        ),
    );
    c.register(
        "dim",
        Table::new(
            Schema::new(vec![
                Field::new("dim.k", DataType::Int),
                Field::new("dim.label", DataType::Str),
            ]),
            (0..50)
                .map(|i| vec![Value::Int(i), Value::str(format!("l{}", i % 5))])
                .collect(),
            100,
        ),
    );
    c
}

fn fs() -> SimFs<Table> {
    SimFs::new(BlockConfig::new(4096), CostWeights::default())
}

proptest! {
    /// Selection result = brute-force filter of the unselected result.
    #[test]
    fn select_is_a_filter(lo in 0i64..60, width in 0i64..60) {
        let cat = catalog(200);
        let fs = fs();
        let hi = lo + width;
        let base = LogicalPlan::scan("fact");
        let (all, _) = execute(&base, &cat, &fs).unwrap();
        let (sel, _) = execute(
            &base.select(Predicate::range("fact.k", lo, hi)),
            &cat,
            &fs,
        )
        .unwrap();
        let expected = all
            .rows
            .iter()
            .filter(|r| r[0].as_int().map(|k| lo <= k && k <= hi).unwrap_or(false))
            .count();
        prop_assert_eq!(sel.len(), expected);
    }

    /// Join-order invariance: fact ⋈ dim and dim ⋈ fact return the same
    /// multiset once projected to a common column order.
    #[test]
    fn join_order_invariance(lo in 0i64..50, width in 0i64..20) {
        let cat = catalog(150);
        let fs = fs();
        let hi = lo + width;
        let cols = vec!["fact.k", "fact.v", "dim.label"];
        let a = LogicalPlan::scan("fact")
            .join(LogicalPlan::scan("dim"), vec![("fact.k", "dim.k")])
            .select(Predicate::range("fact.k", lo, hi))
            .project(cols.clone());
        let b = LogicalPlan::scan("dim")
            .join(LogicalPlan::scan("fact"), vec![("dim.k", "fact.k")])
            .select(Predicate::range("fact.k", lo, hi))
            .project(cols);
        let (ra, _) = execute(&a, &cat, &fs).unwrap();
        let (rb, _) = execute(&b, &cat, &fs).unwrap();
        prop_assert_eq!(ra.fingerprint(), rb.fingerprint());
        // And their signatures collide into one view identity.
        prop_assert_eq!(
            Signature::of(&a).unwrap().canonical_key(),
            Signature::of(&b).unwrap().canonical_key()
        );
    }

    /// Matching soundness on ranges: a view restricted to [vl, vh] matches a
    /// query restricted to [ql, qh] iff the query range is contained.
    #[test]
    fn matching_respects_range_containment(
        vl in 0i64..100, vw in 0i64..100,
        ql in 0i64..100, qw in 0i64..100,
    ) {
        let (vh, qh) = (vl + vw, ql + qw);
        let base = || LogicalPlan::scan("fact")
            .join(LogicalPlan::scan("dim"), vec![("fact.k", "dim.k")]);
        let v = Signature::of(&base().select(Predicate::range("fact.k", vl, vh))).unwrap();
        let q = Signature::of(&base().select(Predicate::range("fact.k", ql, qh))).unwrap();
        let contained = vl <= ql && qh <= vh;
        prop_assert_eq!(matches(&v, &q).is_some(), contained);
    }

    /// COUNT over a group equals the number of rows in that group.
    #[test]
    fn aggregate_count_is_consistent(lo in 0i64..50, width in 0i64..30) {
        let cat = catalog(200);
        let fs = fs();
        let hi = lo + width;
        let plan = LogicalPlan::scan("fact")
            .select(Predicate::range("fact.k", lo, hi))
            .aggregate(vec!["fact.k"], vec![AggExpr::count("cnt")]);
        let (agg, _) = execute(&plan, &cat, &fs).unwrap();
        let total: i64 = agg.rows.iter().map(|r| r[1].as_int().unwrap()).sum();
        let (raw, _) = execute(
            &LogicalPlan::scan("fact").select(Predicate::range("fact.k", lo, hi)),
            &cat,
            &fs,
        )
        .unwrap();
        prop_assert_eq!(total as usize, raw.len());
        // SUM via AVG×COUNT cross-check on one group.
        let plan2 = LogicalPlan::scan("fact")
            .select(Predicate::range("fact.k", lo, hi))
            .aggregate(
                vec!["fact.k"],
                vec![
                    AggExpr::count("cnt"),
                    AggExpr::of(AggFunc::Sum, "fact.v", "s"),
                    AggExpr::of(AggFunc::Avg, "fact.v", "a"),
                ],
            );
        let (agg2, _) = execute(&plan2, &cat, &fs).unwrap();
        for row in &agg2.rows {
            let cnt = row[1].as_int().unwrap() as f64;
            let sum = row[2].as_float().unwrap();
            let avg = row[3].as_float().unwrap();
            prop_assert!((sum - avg * cnt).abs() < 1e-6);
        }
    }

    /// Predicate pushdown never changes answers, for arbitrary conjunctions.
    #[test]
    fn pushdown_equivalence(
        lo in 0i64..50, width in 0i64..30,
        label in 0usize..5,
    ) {
        let cat = catalog(150);
        let fs = fs();
        let plan = LogicalPlan::scan("fact")
            .join(LogicalPlan::scan("dim"), vec![("fact.k", "dim.k")])
            .select(Predicate::and(vec![
                Predicate::range("fact.k", lo, lo + width),
                Predicate::eq("dim.label", format!("l{label}").as_str()),
            ]))
            .aggregate(vec!["dim.label"], vec![AggExpr::count("cnt")]);
        let optimized = push_down_selections(&plan, &cat);
        let (a, _) = execute(&plan, &cat, &fs).unwrap();
        let (b, _) = execute(&optimized, &cat, &fs).unwrap();
        prop_assert_eq!(a.fingerprint(), b.fingerprint());
    }

    /// The SQL parser never panics on template-shaped inputs and round-trips
    /// ranges faithfully.
    #[test]
    fn sql_parser_roundtrips_ranges(lo in -1_000i64..1_000, width in 0i64..1_000) {
        let hi = lo + width;
        let text = format!(
            "SELECT dim.label, COUNT(*) AS cnt FROM fact \
             JOIN dim ON fact.k = dim.k \
             WHERE fact.k BETWEEN {lo} AND {hi} GROUP BY dim.label"
        );
        let plan = sql::parse(&text).unwrap();
        let sig = Signature::of(&plan).unwrap();
        prop_assert_eq!(sig.range_on_attr("fact.k"), Some((lo, hi)));
    }

    /// Garbage input never panics the parser — it errors.
    #[test]
    fn sql_parser_total_on_garbage(input in "[a-zA-Z0-9<>=,.*()' ]{0,60}") {
        let _ = sql::parse(&input); // must not panic
    }
}
