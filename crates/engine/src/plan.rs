//! Logical plan algebra.

use std::fmt;

use deepsea_relation::{Predicate, Schema};
use deepsea_storage::FileId;

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// `COUNT(*)`.
    Count,
    /// `SUM(col)`.
    Sum,
    /// `MIN(col)`.
    Min,
    /// `MAX(col)`.
    Max,
    /// `AVG(col)`.
    Avg,
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
            AggFunc::Avg => "avg",
        };
        f.write_str(s)
    }
}

/// One aggregate expression, e.g. `SUM(ss.net_paid) AS total`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AggExpr {
    /// The function.
    pub func: AggFunc,
    /// Input column; `None` only for `COUNT(*)`.
    pub col: Option<String>,
    /// Output column name.
    pub alias: String,
}

impl AggExpr {
    /// `COUNT(*) AS alias`.
    pub fn count(alias: impl Into<String>) -> Self {
        Self {
            func: AggFunc::Count,
            col: None,
            alias: alias.into(),
        }
    }

    /// `func(col) AS alias`.
    pub fn of(func: AggFunc, col: impl Into<String>, alias: impl Into<String>) -> Self {
        Self {
            func,
            col: Some(col.into()),
            alias: alias.into(),
        }
    }

    /// Canonical string, e.g. `sum(ss.net_paid)`.
    pub fn canonical(&self) -> String {
        match &self.col {
            Some(c) => format!("{}({})", self.func, c),
            None => format!("{}(*)", self.func),
        }
    }
}

/// Information needed to scan a materialized (possibly partitioned) view:
/// the fragment files to read and the view's schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViewScanInfo {
    /// Name of the view (for reports).
    pub view_name: String,
    /// Fragment files to read, in domain order.
    pub files: Vec<FileId>,
    /// Schema of the view output.
    pub schema: Schema,
}

/// A logical query plan.
///
/// The algebra covers exactly the query class the paper's evaluation uses:
/// select-project-join-aggregate with conjunctive range/equality selections.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogicalPlan {
    /// Scan of a base table by catalog name.
    Scan {
        /// Catalog table name.
        table: String,
    },
    /// Selection.
    Select {
        /// Filter predicate.
        pred: Predicate,
        /// Input plan.
        input: Box<LogicalPlan>,
    },
    /// Projection onto named columns.
    Project {
        /// Output columns, in order.
        cols: Vec<String>,
        /// Input plan.
        input: Box<LogicalPlan>,
    },
    /// Inner equi-join.
    Join {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
        /// Equality pairs `(left_col, right_col)`.
        on: Vec<(String, String)>,
    },
    /// Hash aggregation.
    Aggregate {
        /// Group-by columns (empty = global aggregate).
        group_by: Vec<String>,
        /// Aggregate expressions.
        aggs: Vec<AggExpr>,
        /// Input plan.
        input: Box<LogicalPlan>,
    },
    /// Scan of a materialized view's fragments.
    ViewScan(ViewScanInfo),
}

impl LogicalPlan {
    /// Scan builder.
    pub fn scan(table: impl Into<String>) -> Self {
        LogicalPlan::Scan {
            table: table.into(),
        }
    }

    /// Selection builder (drops `Predicate::True`).
    pub fn select(self, pred: Predicate) -> Self {
        if pred == Predicate::True {
            return self;
        }
        LogicalPlan::Select {
            pred,
            input: Box::new(self),
        }
    }

    /// Projection builder.
    pub fn project(self, cols: Vec<impl Into<String>>) -> Self {
        LogicalPlan::Project {
            cols: cols.into_iter().map(Into::into).collect(),
            input: Box::new(self),
        }
    }

    /// Join builder.
    pub fn join(self, right: LogicalPlan, on: Vec<(impl Into<String>, impl Into<String>)>) -> Self {
        LogicalPlan::Join {
            left: Box::new(self),
            right: Box::new(right),
            on: on.into_iter().map(|(l, r)| (l.into(), r.into())).collect(),
        }
    }

    /// Aggregation builder.
    pub fn aggregate(self, group_by: Vec<impl Into<String>>, aggs: Vec<AggExpr>) -> Self {
        LogicalPlan::Aggregate {
            group_by: group_by.into_iter().map(Into::into).collect(),
            aggs,
            input: Box::new(self),
        }
    }

    /// Direct children of this node.
    pub fn children(&self) -> Vec<&LogicalPlan> {
        match self {
            LogicalPlan::Scan { .. } | LogicalPlan::ViewScan(_) => vec![],
            LogicalPlan::Select { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Aggregate { input, .. } => vec![input],
            LogicalPlan::Join { left, right, .. } => vec![left, right],
        }
    }

    /// Base tables referenced, sorted and deduplicated.
    pub fn base_tables(&self) -> Vec<&str> {
        let mut out = Vec::new();
        fn walk<'a>(p: &'a LogicalPlan, out: &mut Vec<&'a str>) {
            if let LogicalPlan::Scan { table } = p {
                out.push(table.as_str());
            }
            for c in p.children() {
                walk(c, out);
            }
        }
        walk(self, &mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Number of operator nodes.
    pub fn node_count(&self) -> usize {
        1 + self
            .children()
            .iter()
            .map(|c| c.node_count())
            .sum::<usize>()
    }

    /// One-line plan rendering for logs and reports.
    pub fn display_compact(&self) -> String {
        match self {
            LogicalPlan::Scan { table } => table.clone(),
            LogicalPlan::ViewScan(v) => format!("view:{}[{}]", v.view_name, v.files.len()),
            LogicalPlan::Select { pred, input } => {
                format!("σ[{:?}]({})", pred_summary(pred), input.display_compact())
            }
            LogicalPlan::Project { cols, input } => {
                format!("π[{}]({})", cols.len(), input.display_compact())
            }
            LogicalPlan::Join { left, right, .. } => {
                format!("({} ⋈ {})", left.display_compact(), right.display_compact())
            }
            LogicalPlan::Aggregate {
                group_by, input, ..
            } => {
                format!("γ[{}]({})", group_by.join(","), input.display_compact())
            }
        }
    }
}

fn pred_summary(p: &Predicate) -> String {
    match p {
        Predicate::Range { col, low, high } => format!("{low}≤{col}≤{high}"),
        Predicate::Eq { col, value } => format!("{col}={value}"),
        Predicate::And(ps) => ps.iter().map(pred_summary).collect::<Vec<_>>().join("∧"),
        Predicate::True => "⊤".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q() -> LogicalPlan {
        LogicalPlan::scan("store_sales")
            .join(LogicalPlan::scan("item"), vec![("ss.item_sk", "i.item_sk")])
            .select(Predicate::range("i.item_sk", 10, 20))
            .aggregate(vec!["i.category"], vec![AggExpr::count("cnt")])
    }

    #[test]
    fn base_tables_sorted_unique() {
        assert_eq!(q().base_tables(), vec!["item", "store_sales"]);
        let self_join = LogicalPlan::scan("t").join(LogicalPlan::scan("t"), vec![("a", "b")]);
        assert_eq!(self_join.base_tables(), vec!["t"]);
    }

    #[test]
    fn node_count() {
        // scan, scan, join, select, aggregate
        assert_eq!(q().node_count(), 5);
    }

    #[test]
    fn select_true_is_identity() {
        let s = LogicalPlan::scan("t").select(Predicate::True);
        assert_eq!(s, LogicalPlan::scan("t"));
    }

    #[test]
    fn agg_canonical() {
        assert_eq!(AggExpr::count("c").canonical(), "count(*)");
        assert_eq!(AggExpr::of(AggFunc::Sum, "x", "s").canonical(), "sum(x)");
    }

    #[test]
    fn display_compact_mentions_shape() {
        let d = q().display_compact();
        assert!(d.contains('⋈'));
        assert!(d.contains('γ'));
    }
}
