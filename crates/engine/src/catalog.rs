//! Base-table catalog.

use std::collections::BTreeMap;
use std::sync::Arc;

use deepsea_relation::Table;

/// Per-column statistics the cost estimator uses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ColumnStats {
    /// Minimum integer value (for ordered columns), if any.
    pub min: i64,
    /// Maximum integer value.
    pub max: i64,
}

/// Named base tables plus lightweight statistics.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: BTreeMap<String, Arc<Table>>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a table under `name`.
    pub fn register(&mut self, name: impl Into<String>, table: Table) {
        self.tables.insert(name.into(), Arc::new(table));
    }

    /// Look up a table.
    pub fn get(&self, name: &str) -> Option<&Arc<Table>> {
        self.tables.get(name)
    }

    /// Iterate over `(name, table)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Arc<Table>)> {
        self.tables.iter().map(|(n, t)| (n.as_str(), t))
    }

    /// Total simulated bytes across all base tables (the paper expresses pool
    /// sizes as a percentage of this).
    pub fn total_base_bytes(&self) -> u64 {
        self.tables.values().map(|t| t.sim_bytes()).sum()
    }

    /// Integer min/max stats for `table.column`, if computable.
    pub fn column_stats(&self, table: &str, column: &str) -> Option<ColumnStats> {
        let t = self.tables.get(table)?;
        let idx = t.schema.index_of(column)?;
        let (min, max) = t.int_min_max(idx)?;
        Some(ColumnStats { min, max })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepsea_relation::{DataType, Field, Schema, Value};

    fn table() -> Table {
        let schema = Schema::new(vec![Field::new("t.a", DataType::Int)]);
        Table::new(schema, vec![vec![Value::Int(5)], vec![Value::Int(-1)]], 100)
    }

    #[test]
    fn register_and_get() {
        let mut c = Catalog::new();
        c.register("t", table());
        assert!(c.get("t").is_some());
        assert!(c.get("u").is_none());
        assert_eq!(c.total_base_bytes(), 200);
    }

    #[test]
    fn column_stats() {
        let mut c = Catalog::new();
        c.register("t", table());
        let s = c.column_stats("t", "t.a").unwrap();
        assert_eq!((s.min, s.max), (-1, 5));
        assert_eq!(c.column_stats("t", "a").map(|s| s.max), Some(5));
        assert!(c.column_stats("t", "zz").is_none());
        assert!(c.column_stats("zz", "a").is_none());
    }
}
