//! Compensation-based query rewriting against matched views.

use crate::catalog::Catalog;
use crate::plan::{LogicalPlan, ViewScanInfo};
use crate::signature::Compensation;
use crate::subquery::{output_columns, replace_at, subplan_at};

/// Build the plan fragment that computes the subquery from a view scan:
/// `π_order(σ_comp(ViewScan))`.
///
/// `original_columns` — the output columns (in order) of the subquery being
/// replaced — restores the exact schema the enclosing operators expect, which
/// the view may present in a different column order (e.g. after join-order
/// normalization).
pub fn compensated_view_scan(
    info: ViewScanInfo,
    comp: &Compensation,
    original_columns: &[String],
) -> LogicalPlan {
    let scan = LogicalPlan::ViewScan(info);
    let filtered = scan.select(comp.predicate());
    filtered.project(original_columns.to_vec())
}

/// Rewrite `plan` by replacing the subquery at `path` with a compensated scan
/// of the given view. Returns `None` if the path is invalid or the subquery's
/// output schema cannot be resolved.
pub fn rewrite_with_view(
    plan: &LogicalPlan,
    path: &[usize],
    info: ViewScanInfo,
    comp: &Compensation,
    catalog: &Catalog,
) -> Option<LogicalPlan> {
    let sub = subplan_at(plan, path)?;
    let cols = output_columns(sub, catalog)?;
    let replacement = compensated_view_scan(info, comp, &cols);
    Some(replace_at(plan, path, replacement))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute;
    use crate::plan::AggExpr;
    use crate::signature::{matches, Signature};
    use crate::subquery::view_candidate_subplans;
    use deepsea_relation::{DataType, Field, Predicate, Schema, Table, Value};
    use deepsea_storage::{BlockConfig, CostWeights, SimFs};

    fn fixture() -> (Catalog, SimFs<Table>) {
        let mut c = Catalog::new();
        let sales = Table::new(
            Schema::new(vec![
                Field::new("s.item", DataType::Int),
                Field::new("s.amount", DataType::Float),
            ]),
            (0..50)
                .map(|i| vec![Value::Int(i % 10), Value::Float(i as f64)])
                .collect(),
            1000,
        );
        let item = Table::new(
            Schema::new(vec![
                Field::new("i.item", DataType::Int),
                Field::new("i.cat", DataType::Str),
            ]),
            (0..10)
                .map(|i| vec![Value::Int(i), Value::str(format!("c{}", i % 3))])
                .collect(),
            100,
        );
        c.register("sales", sales);
        c.register("item", item);
        (
            c,
            SimFs::new(BlockConfig::new(4096), CostWeights::default()),
        )
    }

    /// End-to-end: materialize the join result as a view, rewrite a more
    /// selective query against it, and check the rewritten query returns the
    /// same rows as the original.
    #[test]
    fn rewritten_query_is_equivalent() {
        let (catalog, fs) = fixture();
        let join =
            LogicalPlan::scan("sales").join(LogicalPlan::scan("item"), vec![("s.item", "i.item")]);
        // Materialize the join result.
        let (view_table, _) = execute(&join, &catalog, &fs).unwrap();
        let schema = view_table.schema.clone();
        let bytes = view_table.sim_bytes();
        let (fid, _) = fs.create("v_join", bytes, view_table);

        // A narrower query on top of the same join.
        let query = join
            .clone()
            .select(Predicate::range("i.item", 2, 5))
            .aggregate(vec!["i.cat"], vec![AggExpr::count("cnt")]);

        // Find the join subquery and match it against the view.
        let vsig = Signature::of(&join).unwrap();
        let cands = view_candidate_subplans(&query);
        let (path, sub) = cands
            .iter()
            .find(|(_, p)| matches!(p, LogicalPlan::Join { .. }))
            .unwrap();
        let qsig = Signature::of(sub).unwrap();
        let comp = matches(&vsig, &qsig).expect("view matches join subquery");
        assert!(comp.is_exact(), "join subquery equals the view");

        let info = ViewScanInfo {
            view_name: "v_join".into(),
            files: vec![fid],
            schema,
        };
        let rewritten = rewrite_with_view(&query, path, info, &comp, &catalog).unwrap();

        let (orig, orig_m) = execute(&query, &catalog, &fs).unwrap();
        let (rew, rew_m) = execute(&rewritten, &catalog, &fs).unwrap();
        assert_eq!(orig.fingerprint(), rew.fingerprint());
        // The rewritten query reads the (wider) view rows instead of both
        // base tables; here the view is bigger than `item` but the engine
        // still executes correctly. What matters for DeepSea is that the
        // elapsed-time accounting can now see fragment-level reads.
        assert!(rew_m.bytes_read > 0);
        assert!(orig_m.bytes_read > 0);
    }

    /// Rewriting the *whole* query (root path) against a view of itself.
    #[test]
    fn rewrite_at_root_with_compensation() {
        let (catalog, fs) = fixture();
        let wide = LogicalPlan::scan("sales")
            .join(LogicalPlan::scan("item"), vec![("s.item", "i.item")])
            .select(Predicate::range("i.item", 0, 8));
        let narrow = LogicalPlan::scan("sales")
            .join(LogicalPlan::scan("item"), vec![("s.item", "i.item")])
            .select(Predicate::range("i.item", 3, 4));

        let (vt, _) = execute(&wide, &catalog, &fs).unwrap();
        let schema = vt.schema.clone();
        let (fid, _) = fs.create("v_wide", vt.sim_bytes(), vt);

        let comp = matches(
            &Signature::of(&wide).unwrap(),
            &Signature::of(&narrow).unwrap(),
        )
        .expect("wider view matches");
        assert_eq!(comp.ranges.len(), 1);

        let info = ViewScanInfo {
            view_name: "v_wide".into(),
            files: vec![fid],
            schema,
        };
        let rewritten = rewrite_with_view(&narrow, &[], info, &comp, &catalog).unwrap();
        let (orig, _) = execute(&narrow, &catalog, &fs).unwrap();
        let (rew, _) = execute(&rewritten, &catalog, &fs).unwrap();
        assert_eq!(orig.fingerprint(), rew.fingerprint());
        assert_eq!(
            orig.schema.fields().len(),
            rew.schema.fields().len(),
            "column order restored by the compensating projection"
        );
    }

    #[test]
    fn invalid_path_returns_none() {
        let (catalog, _fs) = fixture();
        let q = LogicalPlan::scan("sales");
        let info = ViewScanInfo {
            view_name: "v".into(),
            files: vec![],
            schema: Schema::default(),
        };
        assert!(rewrite_with_view(&q, &[3], info, &Compensation::default(), &catalog).is_none());
    }
}
