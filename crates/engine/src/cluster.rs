//! MapReduce cluster simulator: converts execution metrics into elapsed time.

use deepsea_storage::CostWeights;

use crate::exec::ExecMetrics;

/// A slot-limited MapReduce cluster.
///
/// Models the paper's evaluation cluster: one master plus 31 slaves with 6
/// map/reduce slots each. Elapsed time for a query is computed from its
/// [`ExecMetrics`]:
///
/// - reads, CPU and shuffle are spread over the effective map parallelism
///   (`min(map_tasks, slots)` — a scan of a single small fragment cannot use
///   the whole cluster),
/// - writes happen in the reduce phase at full slot parallelism,
/// - every *wave* of map tasks pays one task-startup overhead (this is what
///   makes very many small fragments slow, the paper's E-60 effect),
/// - every MapReduce stage pays a fixed job-startup cost (Hive launches one
///   MR job per stage).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterSim {
    /// Concurrent task slots.
    pub slots: u64,
    /// I/O and CPU weights.
    pub weights: CostWeights,
    /// Fixed startup cost per MapReduce stage (seconds).
    pub stage_overhead: f64,
    /// Serial scheduling cost per task (seconds) — the JobTracker dispatches
    /// tasks one at a time, which is what makes jobs with very many (small)
    /// input files slow even on an idle cluster.
    pub dispatch_per_task: f64,
    /// Cost of committing one output file to the distributed FS (seconds) —
    /// rename + namenode bookkeeping; what makes writing very many small
    /// fragments expensive.
    pub file_commit_secs: f64,
}

impl ClusterSim {
    /// The paper's cluster: 31 slaves × 6 threads.
    pub fn paper_default() -> Self {
        Self {
            slots: 31 * 6,
            weights: CostWeights::default(),
            stage_overhead: 5.0,
            dispatch_per_task: 0.1,
            file_commit_secs: 1.0,
        }
    }

    /// Build with explicit parameters.
    pub fn new(slots: u64, weights: CostWeights, stage_overhead: f64) -> Self {
        assert!(slots > 0, "cluster needs at least one slot");
        Self {
            slots,
            weights,
            stage_overhead,
            dispatch_per_task: 0.1,
            file_commit_secs: 1.0,
        }
    }

    /// Elapsed wall-clock seconds for one query execution.
    pub fn elapsed_secs(&self, m: &ExecMetrics) -> f64 {
        let w = &self.weights;
        let map_tasks = m.map_tasks.max(1);
        let map_par = map_tasks.min(self.slots) as f64;
        let waves = (map_tasks as f64 / self.slots as f64).ceil();
        let reduce_par = self.slots as f64;

        w.read_cost(m.bytes_read) / map_par
            + w.cpu_cost(m.rows_processed) / map_par
            + w.shuffle_cost(m.shuffle_bytes) / reduce_par
            + w.write_cost(m.bytes_written) / reduce_par
            + waves * w.task_overhead
            + m.map_tasks as f64 * self.dispatch_per_task
            + m.stages as f64 * self.stage_overhead
    }

    /// Elapsed seconds for a pure scan of `bytes` split into blocks — the
    /// quantity DeepSea uses to estimate the saving from reading a view
    /// instead of recomputing it.
    pub fn scan_secs(&self, bytes: u64, block_bytes: u64) -> f64 {
        let tasks = if bytes == 0 {
            1
        } else {
            bytes.div_ceil(block_bytes.max(1))
        };
        self.elapsed_secs(&ExecMetrics {
            bytes_read: bytes,
            map_tasks: tasks,
            stages: 1,
            ..Default::default()
        })
    }

    /// Elapsed seconds for materializing `bytes` into `files` output files
    /// (write side only — the computation is a by-product of query
    /// execution). Each file pays a commit cost on top of the byte cost.
    pub fn write_secs(&self, bytes: u64, files: u64) -> f64 {
        self.elapsed_secs(&ExecMetrics {
            bytes_written: bytes,
            map_tasks: files.max(1),
            stages: 1,
            ..Default::default()
        }) + files as f64 * self.file_commit_secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(bytes_read: u64, map_tasks: u64) -> ExecMetrics {
        ExecMetrics {
            bytes_read,
            map_tasks,
            stages: 1,
            ..Default::default()
        }
    }

    #[test]
    fn reading_less_is_faster() {
        let c = ClusterSim::paper_default();
        let big = c.elapsed_secs(&m(100_000_000_000, 800));
        let small = c.elapsed_secs(&m(1_000_000_000, 8));
        assert!(small < big);
    }

    #[test]
    fn many_tiny_tasks_pay_wave_overhead() {
        let c = ClusterSim::paper_default();
        // Same bytes, spread over 10 tasks vs 10_000 tasks.
        let coarse = c.elapsed_secs(&m(10_000_000_000, 10));
        let shredded = c.elapsed_secs(&m(10_000_000_000, 10_000));
        assert!(
            shredded > coarse,
            "small-file explosion must hurt: {shredded} <= {coarse}"
        );
    }

    #[test]
    fn single_small_task_cannot_use_whole_cluster() {
        let c = ClusterSim::paper_default();
        let one_task = c.elapsed_secs(&m(10_000_000_000, 1));
        let many_tasks = c.elapsed_secs(&m(10_000_000_000, 186));
        assert!(one_task > many_tasks);
    }

    #[test]
    fn writes_cost_more_than_reads() {
        let c = ClusterSim::paper_default();
        let read = c.elapsed_secs(&ExecMetrics {
            bytes_read: 50_000_000_000,
            map_tasks: 186,
            ..Default::default()
        });
        let write = c.elapsed_secs(&ExecMetrics {
            bytes_written: 50_000_000_000,
            map_tasks: 186,
            ..Default::default()
        });
        assert!(write > read);
    }

    #[test]
    fn stage_overhead_charged_per_stage() {
        let c = ClusterSim::paper_default();
        let one = c.elapsed_secs(&ExecMetrics {
            stages: 1,
            ..Default::default()
        });
        let three = c.elapsed_secs(&ExecMetrics {
            stages: 3,
            ..Default::default()
        });
        assert!((three - one - 2.0 * c.stage_overhead).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slots_rejected() {
        ClusterSim::new(0, CostWeights::default(), 1.0);
    }

    #[test]
    fn scan_secs_monotone_in_bytes() {
        let c = ClusterSim::paper_default();
        let block = 128 * 1024 * 1024;
        assert!(c.scan_secs(100_000_000_000, block) > c.scan_secs(1_000_000_000, block));
        assert!(c.scan_secs(0, block) > 0.0, "even empty scans pay overhead");
    }

    #[test]
    fn write_secs_penalizes_many_files() {
        let c = ClusterSim::paper_default();
        assert!(c.write_secs(1_000_000_000, 600) > c.write_secs(1_000_000_000, 6));
    }

    #[test]
    fn dispatch_cost_scales_with_tasks() {
        let c = ClusterSim::paper_default();
        let few = c.elapsed_secs(&m(0, 10));
        let many = c.elapsed_secs(&m(0, 1000));
        assert!(many - few > 0.9 * 990.0 * c.dispatch_per_task);
    }
}
