//! Analytic plan cost estimation.
//!
//! DeepSea needs cost and size estimates for view candidates *before* they
//! are first materialized (§7.1: "initially estimated when we first see this
//! view as a candidate. The creation cost is replaced with the actual cost
//! once the first query containing the view as a subquery has been
//! executed"). This module provides those initial estimates; they are crude
//! by design and are superseded by measurements.

use deepsea_relation::{Predicate, Table};
use deepsea_storage::SimFs;

use crate::catalog::Catalog;
use crate::cluster::ClusterSim;
use crate::exec::ExecMetrics;
use crate::plan::LogicalPlan;

/// Estimated properties of a plan's output and execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Estimated output rows.
    pub out_rows: f64,
    /// Estimated output size in simulated bytes.
    pub out_bytes: f64,
    /// Estimated execution metrics.
    pub metrics: ExecMetrics,
}

/// Default selectivity for equality predicates with no statistics.
const EQ_SELECTIVITY: f64 = 0.1;
/// Default selectivity when nothing is known.
const UNKNOWN_SELECTIVITY: f64 = 0.33;
/// Row-count reduction factor assumed for group-by aggregation.
const AGG_REDUCTION: f64 = 0.2;

/// Plan cost/size estimator.
pub struct CostEstimator<'a> {
    catalog: &'a Catalog,
    fs: &'a SimFs<Table>,
    cluster: &'a ClusterSim,
}

impl<'a> CostEstimator<'a> {
    /// Create an estimator over the given catalog, storage and cluster.
    pub fn new(catalog: &'a Catalog, fs: &'a SimFs<Table>, cluster: &'a ClusterSim) -> Self {
        Self {
            catalog,
            fs,
            cluster,
        }
    }

    /// Estimate a plan bottom-up.
    pub fn estimate(&self, plan: &LogicalPlan) -> Estimate {
        match plan {
            LogicalPlan::Scan { table } => {
                let (rows, bytes) = match self.catalog.get(table) {
                    Some(t) => (t.len() as f64, t.sim_bytes() as f64),
                    None => (0.0, 0.0),
                };
                let tasks = self.fs.block_config().blocks_for(bytes as u64);
                Estimate {
                    out_rows: rows,
                    out_bytes: bytes,
                    metrics: ExecMetrics {
                        bytes_read: bytes as u64,
                        rows_processed: rows as u64,
                        map_tasks: tasks,
                        stages: 1,
                        ..Default::default()
                    },
                }
            }
            LogicalPlan::ViewScan(v) => {
                let mut bytes = 0u64;
                for &fid in &v.files {
                    if let Some((_, b)) = self.fs.stat(fid) {
                        bytes += b;
                    }
                }
                let tasks = v
                    .files
                    .iter()
                    .map(|&fid| {
                        self.fs
                            .stat(fid)
                            .map(|(_, b)| self.fs.block_config().blocks_for(b))
                            .unwrap_or(0)
                    })
                    .sum();
                // Rows unknown without reading; approximate via bytes at an
                // assumed width (only used for CPU, a minor term).
                let rows = bytes as f64 / 1000.0;
                Estimate {
                    out_rows: rows,
                    out_bytes: bytes as f64,
                    metrics: ExecMetrics {
                        bytes_read: bytes,
                        rows_processed: rows as u64,
                        map_tasks: tasks,
                        stages: 1,
                        ..Default::default()
                    },
                }
            }
            LogicalPlan::Select { pred, input } => {
                let mut e = self.estimate(input);
                let sel = self.selectivity(pred, input);
                e.metrics.rows_processed += e.out_rows as u64;
                e.out_rows *= sel;
                e.out_bytes *= sel;
                e
            }
            LogicalPlan::Project { cols, input } => {
                let mut e = self.estimate(input);
                // Assume equal column widths.
                let in_cols = plan_arity(input, self.catalog).max(1);
                let frac = (cols.len() as f64 / in_cols as f64).min(1.0);
                e.metrics.rows_processed += e.out_rows as u64;
                e.out_bytes *= frac;
                e
            }
            LogicalPlan::Join { left, right, .. } => {
                let l = self.estimate(left);
                let r = self.estimate(right);
                let mut m = l.metrics;
                m.absorb(&r.metrics);
                // Foreign-key join assumption: output cardinality matches the
                // larger (fact) side.
                let out_rows = l.out_rows.max(r.out_rows);
                let width = safe_div(l.out_bytes, l.out_rows) + safe_div(r.out_bytes, r.out_rows);
                let out_bytes = out_rows * width;
                m.shuffle_bytes += (l.out_bytes + r.out_bytes) as u64;
                m.stages += 1;
                m.rows_processed += (l.out_rows + r.out_rows + out_rows) as u64;
                Estimate {
                    out_rows,
                    out_bytes,
                    metrics: m,
                }
            }
            LogicalPlan::Aggregate {
                group_by, input, ..
            } => {
                let e = self.estimate(input);
                let mut m = e.metrics;
                m.shuffle_bytes += e.out_bytes as u64;
                m.stages += 1;
                m.rows_processed += e.out_rows as u64;
                let out_rows = if group_by.is_empty() {
                    1.0
                } else {
                    (e.out_rows * AGG_REDUCTION).max(1.0)
                };
                let width = safe_div(e.out_bytes, e.out_rows).max(16.0);
                Estimate {
                    out_rows,
                    out_bytes: out_rows * width,
                    metrics: m,
                }
            }
        }
    }

    /// Estimated execution time in seconds.
    pub fn estimated_secs(&self, plan: &LogicalPlan) -> f64 {
        self.cluster.elapsed_secs(&self.estimate(plan).metrics)
    }

    /// Estimated selectivity of a predicate over the input plan.
    fn selectivity(&self, pred: &Predicate, input: &LogicalPlan) -> f64 {
        match pred {
            Predicate::True => 1.0,
            Predicate::And(ps) => ps.iter().map(|p| self.selectivity(p, input)).product(),
            Predicate::Eq { .. } => EQ_SELECTIVITY,
            Predicate::Range { col, low, high } => {
                if high < low {
                    return 0.0;
                }
                // Find stats for this column on any base table underneath.
                for t in input.base_tables() {
                    if let Some(s) = self.catalog.column_stats(t, col) {
                        let dom = (s.max - s.min) as f64 + 1.0;
                        let lo = (*low).max(s.min);
                        let hi = (*high).min(s.max);
                        if hi < lo {
                            return 0.0;
                        }
                        return (((hi - lo) as f64 + 1.0) / dom).clamp(0.0, 1.0);
                    }
                }
                UNKNOWN_SELECTIVITY
            }
        }
    }
}

fn safe_div(a: f64, b: f64) -> f64 {
    if b <= 0.0 {
        0.0
    } else {
        a / b
    }
}

/// Output arity of a plan (column count), best effort.
fn plan_arity(plan: &LogicalPlan, catalog: &Catalog) -> usize {
    match plan {
        LogicalPlan::Scan { table } => catalog.get(table).map(|t| t.schema.len()).unwrap_or(1),
        LogicalPlan::ViewScan(v) => v.schema.len(),
        LogicalPlan::Select { input, .. } => plan_arity(input, catalog),
        LogicalPlan::Project { cols, .. } => cols.len(),
        LogicalPlan::Join { left, right, .. } => {
            plan_arity(left, catalog) + plan_arity(right, catalog)
        }
        LogicalPlan::Aggregate { group_by, aggs, .. } => group_by.len() + aggs.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepsea_relation::{DataType, Field, Schema, Value};
    use deepsea_storage::{BlockConfig, CostWeights};

    fn fixture() -> (Catalog, SimFs<Table>, ClusterSim) {
        let mut c = Catalog::new();
        let rows: Vec<Vec<Value>> = (0..100)
            .map(|i| vec![Value::Int(i), Value::Float(i as f64)])
            .collect();
        let t = Table::new(
            Schema::new(vec![
                Field::new("t.k", DataType::Int),
                Field::new("t.v", DataType::Float),
            ]),
            rows,
            1000,
        );
        c.register("t", t);
        (
            c,
            SimFs::new(BlockConfig::new(1 << 20), CostWeights::default()),
            ClusterSim::paper_default(),
        )
    }

    #[test]
    fn scan_estimate_matches_table() {
        let (c, fs, cl) = fixture();
        let est = CostEstimator::new(&c, &fs, &cl);
        let e = est.estimate(&LogicalPlan::scan("t"));
        assert_eq!(e.out_rows, 100.0);
        assert_eq!(e.out_bytes, 100_000.0);
    }

    #[test]
    fn range_selectivity_uses_stats() {
        let (c, fs, cl) = fixture();
        let est = CostEstimator::new(&c, &fs, &cl);
        // domain of t.k is [0,99]; range [0,24] is 25%
        let q = LogicalPlan::scan("t").select(Predicate::range("t.k", 0, 24));
        let e = est.estimate(&q);
        assert!((e.out_rows - 25.0).abs() < 1e-9, "rows={}", e.out_rows);
        // empty range
        let q2 = LogicalPlan::scan("t").select(Predicate::range("t.k", 500, 600));
        assert_eq!(est.estimate(&q2).out_rows, 0.0);
    }

    #[test]
    fn narrower_selection_cheaper_output_not_cost() {
        let (c, fs, cl) = fixture();
        let est = CostEstimator::new(&c, &fs, &cl);
        let wide = LogicalPlan::scan("t").select(Predicate::range("t.k", 0, 99));
        let narrow = LogicalPlan::scan("t").select(Predicate::range("t.k", 0, 9));
        // Selection over a base table reads everything either way…
        assert_eq!(
            est.estimate(&wide).metrics.bytes_read,
            est.estimate(&narrow).metrics.bytes_read
        );
        // …but yields less output.
        assert!(est.estimate(&narrow).out_bytes < est.estimate(&wide).out_bytes);
    }

    #[test]
    fn join_estimate_adds_shuffle_and_stage() {
        let (c, fs, cl) = fixture();
        let est = CostEstimator::new(&c, &fs, &cl);
        let j = LogicalPlan::scan("t").join(LogicalPlan::scan("t"), vec![("t.k", "t.k")]);
        let e = est.estimate(&j);
        assert!(e.metrics.shuffle_bytes > 0);
        assert_eq!(e.metrics.stages, 3); // two scans + one shuffle stage
        assert_eq!(e.out_rows, 100.0);
    }

    #[test]
    fn aggregate_reduces_rows() {
        let (c, fs, cl) = fixture();
        let est = CostEstimator::new(&c, &fs, &cl);
        let a = LogicalPlan::scan("t").aggregate(vec!["t.k"], vec![]);
        assert!(est.estimate(&a).out_rows < 100.0);
        let g = LogicalPlan::scan("t").aggregate(Vec::<String>::new(), vec![]);
        assert_eq!(est.estimate(&g).out_rows, 1.0);
    }

    #[test]
    fn estimated_secs_positive_and_monotone_in_size() {
        let (c, fs, cl) = fixture();
        let est = CostEstimator::new(&c, &fs, &cl);
        let q = LogicalPlan::scan("t");
        assert!(est.estimated_secs(&q) > 0.0);
    }
}
