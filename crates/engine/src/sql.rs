//! A SQL front end for the engine — the role Hive's parser and semantic
//! analyzer play in Figure 4 of the paper ("Query → AST Tree → Operator
//! Tree").
//!
//! Supports the query class the evaluation uses: select-project-join-
//! aggregate blocks with conjunctive range/equality predicates:
//!
//! ```sql
//! SELECT i.category, SUM(ss.net_paid) AS revenue
//! FROM store_sales ss JOIN item i ON ss.item_sk = i.item_sk
//! WHERE ss.item_sk BETWEEN 100 AND 500 AND i.color = 'red'
//! GROUP BY i.category
//! ```
//!
//! The parser is a hand-written recursive-descent over a simple tokenizer;
//! it produces a [`LogicalPlan`] directly (joins left-deep in FROM order,
//! WHERE applied above the joins — deliberately *not* pushed down, which is
//! DeepSea's materialization-friendly plan shape; the [`crate::optimize`]
//! pass can push selections down for the vanilla-Hive baseline).

use std::fmt;

use deepsea_relation::{Predicate, Value};

use crate::plan::{AggExpr, AggFunc, LogicalPlan};

/// Parse errors with byte positions.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub position: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    Symbol(char), // ( ) , . * =
    Le,           // <=
    Ge,           // >=
    Lt,
    Gt,
    Eof,
}

struct Lexer<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Self { src, pos: 0 }
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            position: self.pos,
        }
    }

    fn rest(&self) -> &str {
        &self.src[self.pos..]
    }

    fn next_token(&mut self) -> Result<(Token, usize), ParseError> {
        while self
            .rest()
            .chars()
            .next()
            .is_some_and(|c| c.is_whitespace())
        {
            self.pos += 1;
        }
        let start = self.pos;
        let Some(c) = self.rest().chars().next() else {
            return Ok((Token::Eof, start));
        };
        match c {
            '(' | ')' | ',' | '.' | '*' | '=' => {
                self.pos += 1;
                Ok((Token::Symbol(c), start))
            }
            '<' => {
                self.pos += 1;
                if self.rest().starts_with('=') {
                    self.pos += 1;
                    Ok((Token::Le, start))
                } else {
                    Ok((Token::Lt, start))
                }
            }
            '>' => {
                self.pos += 1;
                if self.rest().starts_with('=') {
                    self.pos += 1;
                    Ok((Token::Ge, start))
                } else {
                    Ok((Token::Gt, start))
                }
            }
            '\'' => {
                self.pos += 1;
                let mut s = String::new();
                loop {
                    match self.rest().chars().next() {
                        Some('\'') => {
                            self.pos += 1;
                            break;
                        }
                        Some(ch) => {
                            s.push(ch);
                            self.pos += ch.len_utf8();
                        }
                        None => return Err(self.error("unterminated string literal")),
                    }
                }
                Ok((Token::Str(s), start))
            }
            c if c.is_ascii_digit() || c == '-' => {
                let mut end = self.pos + 1;
                let bytes = self.src.as_bytes();
                while end < bytes.len()
                    && (bytes[end].is_ascii_digit() || bytes[end] == b'.' || bytes[end] == b'_')
                {
                    end += 1;
                }
                let text = self.src[self.pos..end].replace('_', "");
                self.pos = end;
                if text.contains('.') {
                    text.parse::<f64>()
                        .map(|f| (Token::Float(f), start))
                        .map_err(|_| self.error(format!("bad float literal {text:?}")))
                } else {
                    text.parse::<i64>()
                        .map(|i| (Token::Int(i), start))
                        .map_err(|_| self.error(format!("bad integer literal {text:?}")))
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut end = self.pos;
                let bytes = self.src.as_bytes();
                while end < bytes.len()
                    && (bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_')
                {
                    end += 1;
                }
                let word = self.src[self.pos..end].to_string();
                self.pos = end;
                Ok((Token::Ident(word), start))
            }
            other => Err(self.error(format!("unexpected character {other:?}"))),
        }
    }
}

/// Parser state: a token stream with one-token lookahead.
struct Parser {
    tokens: Vec<(Token, usize)>,
    idx: usize,
}

impl Parser {
    fn new(src: &str) -> Result<Self, ParseError> {
        let mut lex = Lexer::new(src);
        let mut tokens = Vec::new();
        loop {
            let t = lex.next_token()?;
            let eof = t.0 == Token::Eof;
            tokens.push(t);
            if eof {
                break;
            }
        }
        Ok(Self { tokens, idx: 0 })
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.idx].0
    }

    fn pos(&self) -> usize {
        self.tokens[self.idx].1
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            position: self.pos(),
        }
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.idx].0.clone();
        if self.idx + 1 < self.tokens.len() {
            self.idx += 1;
        }
        t
    }

    /// Consume a keyword (case-insensitive identifier) or fail.
    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.peek() {
            Token::Ident(w) if w.eq_ignore_ascii_case(kw) => {
                self.bump();
                Ok(())
            }
            other => Err(self.error(format!("expected {kw}, found {other:?}"))),
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        matches!(self.peek(), Token::Ident(w) if w.eq_ignore_ascii_case(kw))
            && self.bump() != Token::Eof
    }

    fn expect_symbol(&mut self, c: char) -> Result<(), ParseError> {
        match self.peek() {
            Token::Symbol(s) if *s == c => {
                self.bump();
                Ok(())
            }
            other => Err(self.error(format!("expected {c:?}, found {other:?}"))),
        }
    }

    /// `ident(.ident)?` → possibly-qualified column name, resolving table
    /// aliases registered in FROM.
    fn column(&mut self, aliases: &[(String, String)]) -> Result<String, ParseError> {
        const RESERVED: [&str; 11] = [
            "select", "from", "where", "group", "by", "join", "on", "and", "between", "order", "as",
        ];
        if let Token::Ident(w) = self.peek() {
            if RESERVED.iter().any(|k| w.eq_ignore_ascii_case(k)) {
                return Err(self.error(format!("expected identifier, found keyword {w:?}")));
            }
        }
        let first = match self.bump() {
            Token::Ident(w) => w,
            other => return Err(self.error(format!("expected identifier, found {other:?}"))),
        };
        if *self.peek() == Token::Symbol('.') {
            self.bump();
            let second = match self.bump() {
                Token::Ident(w) => w,
                other => return Err(self.error(format!("expected column name, found {other:?}"))),
            };
            // Resolve an alias (ss.item_sk → store_sales.ss_item_sk happens
            // at schema level; here we just expand alias → table name).
            let table = aliases
                .iter()
                .find(|(a, _)| a.eq_ignore_ascii_case(&first))
                .map(|(_, t)| t.clone())
                .unwrap_or(first);
            Ok(format!("{table}.{second}"))
        } else {
            Ok(first)
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.bump() {
            Token::Int(i) => Ok(Value::Int(i)),
            Token::Float(f) => Ok(Value::Float(f)),
            Token::Str(s) => Ok(Value::str(s)),
            other => Err(self.error(format!("expected literal, found {other:?}"))),
        }
    }

    fn int(&mut self) -> Result<i64, ParseError> {
        match self.bump() {
            Token::Int(i) => Ok(i),
            other => Err(self.error(format!("expected integer, found {other:?}"))),
        }
    }
}

/// One SELECT-list item.
enum SelectItem {
    Column(String),
    Agg(AggExpr),
    Star,
}

/// Parse one SQL query into a [`LogicalPlan`].
pub fn parse(sql: &str) -> Result<LogicalPlan, ParseError> {
    let mut p = Parser::new(sql)?;
    p.expect_kw("select")?;

    // ── SELECT list (deferred until aliases are known; store raw idx) ──
    let select_start = p.idx;
    skip_until_kw(&mut p, "from")?;

    // ── FROM with JOIN ... ON chains ──
    p.expect_kw("from")?;
    let mut aliases: Vec<(String, String)> = Vec::new();
    let (first_table, first_alias) = table_ref(&mut p)?;
    aliases.push((first_alias, first_table.clone()));
    let mut joins: Vec<(String, String, String)> = Vec::new(); // (table, lcol raw, rcol raw) — resolved later
    let mut join_tables = Vec::new();
    while p.eat_kw("join") {
        let (t, a) = table_ref(&mut p)?;
        aliases.push((a, t.clone()));
        p.expect_kw("on")?;
        // Columns may reference aliases declared later? No — left-deep only.
        let l = p.column(&aliases)?;
        p.expect_symbol('=')?;
        let r = p.column(&aliases)?;
        join_tables.push(t.clone());
        joins.push((t, l, r));
    }

    // ── WHERE ──
    let mut predicates: Vec<Predicate> = Vec::new();
    if p.eat_kw("where") {
        loop {
            predicates.push(parse_condition(&mut p, &aliases)?);
            if !p.eat_kw("and") {
                break;
            }
        }
    }

    // ── GROUP BY ──
    let mut group_by: Vec<String> = Vec::new();
    if p.eat_kw("group") {
        p.expect_kw("by")?;
        loop {
            group_by.push(p.column(&aliases)?);
            if *p.peek() == Token::Symbol(',') {
                p.bump();
            } else {
                break;
            }
        }
    }
    match p.peek() {
        Token::Eof => {}
        other => return Err(p.error(format!("trailing input: {other:?}"))),
    }

    // ── now parse the SELECT list with aliases known ──
    let end_idx = p.idx;
    p.idx = select_start;
    let items = select_list(&mut p, &aliases)?;
    p.idx = end_idx;

    // ── assemble the plan: left-deep joins, σ above, γ/π on top ──
    let mut plan = LogicalPlan::scan(first_table);
    for (t, l, r) in joins {
        plan = plan.join(LogicalPlan::scan(t), vec![(l, r)]);
    }
    plan = plan.select(Predicate::and(predicates));

    let aggs: Vec<AggExpr> = items
        .iter()
        .filter_map(|i| match i {
            SelectItem::Agg(a) => Some(a.clone()),
            _ => None,
        })
        .collect();
    let cols: Vec<String> = items
        .iter()
        .filter_map(|i| match i {
            SelectItem::Column(c) => Some(c.clone()),
            _ => None,
        })
        .collect();
    let has_star = items.iter().any(|i| matches!(i, SelectItem::Star));

    if !aggs.is_empty() || !group_by.is_empty() {
        // Aggregation query: non-aggregate select items must be grouping cols.
        for c in &cols {
            if !group_by.iter().any(|g| g == c) {
                return Err(ParseError {
                    message: format!("column {c:?} must appear in GROUP BY"),
                    position: 0,
                });
            }
        }
        Ok(plan.aggregate(group_by, aggs))
    } else if has_star {
        Ok(plan)
    } else {
        Ok(plan.project(cols))
    }
}

fn table_ref(p: &mut Parser) -> Result<(String, String), ParseError> {
    let table = match p.bump() {
        Token::Ident(w) => w,
        other => return Err(p.error(format!("expected table name, found {other:?}"))),
    };
    // Optional alias (bare identifier that is not a clause keyword).
    let alias = match p.peek() {
        Token::Ident(w)
            if !["join", "on", "where", "group", "order"]
                .iter()
                .any(|k| w.eq_ignore_ascii_case(k)) =>
        {
            let a = w.clone();
            p.bump();
            a
        }
        _ => table.clone(),
    };
    Ok((table, alias))
}

fn skip_until_kw(p: &mut Parser, kw: &str) -> Result<(), ParseError> {
    loop {
        match p.peek() {
            Token::Ident(w) if w.eq_ignore_ascii_case(kw) => return Ok(()),
            Token::Eof => return Err(p.error(format!("expected {kw} clause"))),
            _ => {
                p.bump();
            }
        }
    }
}

fn select_list(
    p: &mut Parser,
    aliases: &[(String, String)],
) -> Result<Vec<SelectItem>, ParseError> {
    let mut items = Vec::new();
    loop {
        let item = match p.peek().clone() {
            Token::Symbol('*') => {
                p.bump();
                SelectItem::Star
            }
            Token::Ident(w) if is_agg_fn(&w) && p.tokens[p.idx + 1].0 == Token::Symbol('(') => {
                p.bump(); // fn name
                p.bump(); // (
                let func = agg_fn(&w).expect("checked");
                let col = if *p.peek() == Token::Symbol('*') {
                    p.bump();
                    None
                } else {
                    Some(p.column(aliases)?)
                };
                p.expect_symbol(')')?;
                let alias = if p.eat_kw("as") {
                    match p.bump() {
                        Token::Ident(a) => a,
                        other => return Err(p.error(format!("expected alias, found {other:?}"))),
                    }
                } else {
                    match &col {
                        Some(c) => format!("{}_{}", w.to_lowercase(), c.replace('.', "_")),
                        None => "count".to_string(),
                    }
                };
                match (func, col) {
                    (AggFunc::Count, None) => SelectItem::Agg(AggExpr::count(alias)),
                    (f, Some(c)) => SelectItem::Agg(AggExpr::of(f, c, alias)),
                    (f, None) => return Err(p.error(format!("{f} requires a column argument"))),
                }
            }
            _ => SelectItem::Column(p.column(aliases)?),
        };
        items.push(item);
        if *p.peek() == Token::Symbol(',') {
            p.bump();
        } else {
            return Ok(items);
        }
    }
}

fn is_agg_fn(w: &str) -> bool {
    agg_fn(w).is_some()
}

fn agg_fn(w: &str) -> Option<AggFunc> {
    match w.to_ascii_lowercase().as_str() {
        "count" => Some(AggFunc::Count),
        "sum" => Some(AggFunc::Sum),
        "min" => Some(AggFunc::Min),
        "max" => Some(AggFunc::Max),
        "avg" => Some(AggFunc::Avg),
        _ => None,
    }
}

/// `col BETWEEN a AND b` | `col <=/<"/>/>= n` | `col = literal`.
fn parse_condition(p: &mut Parser, aliases: &[(String, String)]) -> Result<Predicate, ParseError> {
    let col = p.column(aliases)?;
    if p.eat_kw("between") {
        let lo = p.int()?;
        p.expect_kw("and")?;
        let hi = p.int()?;
        if lo > hi {
            return Err(p.error(format!("empty BETWEEN range [{lo}, {hi}]")));
        }
        return Ok(Predicate::range(col, lo, hi));
    }
    match p.bump() {
        Token::Symbol('=') => Ok(Predicate::eq(col, p.value()?)),
        Token::Le => Ok(Predicate::range(col, i64::MIN, p.int()?)),
        Token::Lt => Ok(Predicate::range(col, i64::MIN, p.int()? - 1)),
        Token::Ge => Ok(Predicate::range(col, p.int()?, i64::MAX)),
        Token::Gt => Ok(Predicate::range(col, p.int()? + 1, i64::MAX)),
        other => Err(p.error(format!("expected comparison operator, found {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_paper_style_query() {
        let plan = parse(
            "SELECT item.i_category, SUM(store_sales.ss_net_paid) AS revenue \
             FROM store_sales JOIN item ON store_sales.ss_item_sk = item.i_item_sk \
             WHERE store_sales.ss_item_sk BETWEEN 100 AND 500 \
             GROUP BY item.i_category",
        )
        .expect("parses");
        let LogicalPlan::Aggregate {
            group_by,
            aggs,
            input,
        } = &plan
        else {
            panic!("expected aggregate root, got {plan:?}")
        };
        assert_eq!(group_by, &["item.i_category"]);
        assert_eq!(aggs[0].canonical(), "sum(store_sales.ss_net_paid)");
        assert_eq!(aggs[0].alias, "revenue");
        let LogicalPlan::Select { pred, .. } = &**input else {
            panic!("expected selection below aggregate")
        };
        assert_eq!(pred.range_on("store_sales.ss_item_sk"), Some((100, 500)));
        assert_eq!(plan.base_tables(), vec!["item", "store_sales"]);
    }

    #[test]
    fn aliases_resolve_to_table_names() {
        let plan = parse(
            "SELECT i.i_category, COUNT(*) AS cnt \
             FROM store_sales ss JOIN item i ON ss.ss_item_sk = i.i_item_sk \
             WHERE ss.ss_item_sk BETWEEN 1 AND 2 GROUP BY i.i_category",
        )
        .unwrap();
        let sig = crate::signature::Signature::of(&plan).unwrap();
        assert!(sig.relations.contains_key("store_sales"));
        assert_eq!(sig.range_on_attr("store_sales.ss_item_sk"), Some((1, 2)));
    }

    #[test]
    fn select_star_is_identity_projection() {
        let plan = parse("SELECT * FROM item WHERE item.i_item_sk <= 10").unwrap();
        assert!(matches!(plan, LogicalPlan::Select { .. }));
    }

    #[test]
    fn projection_without_aggregates() {
        let plan = parse("SELECT item.i_category, item.i_price FROM item").unwrap();
        let LogicalPlan::Project { cols, .. } = &plan else {
            panic!("expected projection")
        };
        assert_eq!(cols.len(), 2);
    }

    #[test]
    fn three_way_join_left_deep() {
        let plan = parse(
            "SELECT COUNT(*) FROM store_sales ss \
             JOIN item i ON ss.ss_item_sk = i.i_item_sk \
             JOIN customer c ON ss.ss_customer_sk = c.c_customer_sk",
        )
        .unwrap();
        assert_eq!(plan.base_tables(), vec!["customer", "item", "store_sales"]);
        assert_eq!(plan.node_count(), 6); // 3 scans + 2 joins + 1 aggregate
    }

    #[test]
    fn comparison_operators_desugar_to_ranges() {
        let p1 = parse("SELECT * FROM t WHERE t.a >= 5").unwrap();
        let LogicalPlan::Select { pred, .. } = &p1 else {
            panic!()
        };
        assert_eq!(pred.range_on("t.a"), Some((5, i64::MAX)));
        let p2 = parse("SELECT * FROM t WHERE t.a < 5").unwrap();
        let LogicalPlan::Select { pred, .. } = &p2 else {
            panic!()
        };
        assert_eq!(pred.range_on("t.a"), Some((i64::MIN, 4)));
    }

    #[test]
    fn string_equality_predicate() {
        let p = parse("SELECT * FROM item WHERE item.i_category = 'cat7'").unwrap();
        let LogicalPlan::Select { pred, .. } = &p else {
            panic!()
        };
        assert_eq!(
            pred.conjuncts()[0],
            &Predicate::eq("item.i_category", "cat7")
        );
    }

    #[test]
    fn multiple_where_conjuncts() {
        let p =
            parse("SELECT * FROM t WHERE t.a BETWEEN 1 AND 9 AND t.b = 3 AND t.c >= 0").unwrap();
        let LogicalPlan::Select { pred, .. } = &p else {
            panic!()
        };
        assert_eq!(pred.conjuncts().len(), 3);
    }

    #[test]
    fn errors_report_position_and_reason() {
        let err = parse("SELECT FROM t").unwrap_err();
        assert!(err.to_string().contains("identifier") || err.to_string().contains("expected"));
        assert!(parse("SELECT * FROM").is_err());
        assert!(parse("SELECT * FROM t WHERE t.a BETWEEN 9 AND 1").is_err());
        assert!(parse("SELECT * FROM t WHERE t.a ~ 3").is_err());
        assert!(parse("SELECT * FROM t extra garbage").is_err());
        assert!(parse("SELECT * FROM t WHERE t.s = 'unterminated").is_err());
    }

    #[test]
    fn non_grouped_column_rejected() {
        let err =
            parse("SELECT item.i_category, COUNT(*) FROM item GROUP BY item.i_price").unwrap_err();
        assert!(err.message.contains("GROUP BY"));
    }

    #[test]
    fn agg_aliases_default_sensibly() {
        let plan = parse("SELECT COUNT(*), AVG(t.x) FROM t").unwrap();
        let LogicalPlan::Aggregate { aggs, .. } = &plan else {
            panic!()
        };
        assert_eq!(aggs[0].alias, "count");
        assert_eq!(aggs[1].alias, "avg_t_x");
    }

    #[test]
    fn case_insensitive_keywords() {
        assert!(parse("select * from t where t.a between 1 and 2").is_ok());
        assert!(parse("SeLeCt * FrOm t").is_ok());
    }
}
