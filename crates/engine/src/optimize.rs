//! Plan optimization passes.
//!
//! The only rewrite the reproduction needs is **predicate pushdown**: §10.2
//! notes that "most optimizers will push down selections for reducing the
//! size of intermediate results. Our materialization strategy requires that
//! selections are not pushed down and hence we incur a performance hit
//! initially." The vanilla-Hive baseline therefore runs *with* pushdown,
//! while DeepSea's instrumented plans keep selections above the
//! materialization point.

use deepsea_relation::Predicate;

use crate::catalog::Catalog;
use crate::plan::LogicalPlan;

/// Push selection conjuncts as far down the plan as their column references
/// allow. Conjuncts whose columns all come from one side of a join move below
/// it; the rest stay in place. Idempotent.
pub fn push_down_selections(plan: &LogicalPlan, catalog: &Catalog) -> LogicalPlan {
    match plan {
        LogicalPlan::Select { pred, input } => {
            let inner = push_down_selections(input, catalog);
            let conjuncts: Vec<Predicate> = pred.conjuncts().into_iter().cloned().collect();
            push_conjuncts(inner, conjuncts, catalog)
        }
        LogicalPlan::Project { cols, input } => LogicalPlan::Project {
            cols: cols.clone(),
            input: Box::new(push_down_selections(input, catalog)),
        },
        LogicalPlan::Aggregate {
            group_by,
            aggs,
            input,
        } => LogicalPlan::Aggregate {
            group_by: group_by.clone(),
            aggs: aggs.clone(),
            input: Box::new(push_down_selections(input, catalog)),
        },
        LogicalPlan::Join { left, right, on } => LogicalPlan::Join {
            left: Box::new(push_down_selections(left, catalog)),
            right: Box::new(push_down_selections(right, catalog)),
            on: on.clone(),
        },
        leaf @ (LogicalPlan::Scan { .. } | LogicalPlan::ViewScan(_)) => leaf.clone(),
    }
}

/// Place each conjunct at the deepest node of `plan` that provides all its
/// columns.
fn push_conjuncts(plan: LogicalPlan, conjuncts: Vec<Predicate>, catalog: &Catalog) -> LogicalPlan {
    match plan {
        LogicalPlan::Join { left, right, on } => {
            let mut to_left = Vec::new();
            let mut to_right = Vec::new();
            let mut stay = Vec::new();
            for c in conjuncts {
                if covers_columns(&left, &c, catalog) {
                    to_left.push(c);
                } else if covers_columns(&right, &c, catalog) {
                    to_right.push(c);
                } else {
                    stay.push(c);
                }
            }
            let new_left = push_conjuncts(*left, to_left, catalog);
            let new_right = push_conjuncts(*right, to_right, catalog);
            LogicalPlan::Join {
                left: Box::new(new_left),
                right: Box::new(new_right),
                on,
            }
            .select(Predicate::and(stay))
        }
        // Selections merge; anything else receives the filter on top.
        LogicalPlan::Select { pred, input } => {
            let mut all = conjuncts;
            all.extend(pred.conjuncts().into_iter().cloned());
            push_conjuncts(*input, all, catalog)
        }
        other => other.select(Predicate::and(conjuncts)),
    }
}

/// Does `plan` provide every column the predicate references?
fn covers_columns(plan: &LogicalPlan, pred: &Predicate, catalog: &Catalog) -> bool {
    let provided = crate::subquery::output_columns(plan, catalog);
    let Some(provided) = provided else {
        return false;
    };
    pred.columns().iter().all(|c| {
        provided
            .iter()
            .any(|p| p == c || p.rsplit('.').next() == c.rsplit('.').next())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute;
    use deepsea_relation::{DataType, Field, Schema, Table, Value};
    use deepsea_storage::{BlockConfig, CostWeights, SimFs};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register(
            "fact",
            Table::new(
                Schema::new(vec![
                    Field::new("fact.k", DataType::Int),
                    Field::new("fact.v", DataType::Float),
                ]),
                (0..100)
                    .map(|i| vec![Value::Int(i % 20), Value::Float(i as f64)])
                    .collect(),
                100,
            ),
        );
        c.register(
            "dim",
            Table::new(
                Schema::new(vec![
                    Field::new("dim.k", DataType::Int),
                    Field::new("dim.label", DataType::Str),
                ]),
                (0..20)
                    .map(|i| vec![Value::Int(i), Value::str(format!("l{i}"))])
                    .collect(),
                10,
            ),
        );
        c
    }

    fn q() -> LogicalPlan {
        LogicalPlan::scan("fact")
            .join(LogicalPlan::scan("dim"), vec![("fact.k", "dim.k")])
            .select(Predicate::and(vec![
                Predicate::range("fact.k", 3, 8),
                Predicate::eq("dim.label", "l5"),
            ]))
    }

    #[test]
    fn pushdown_moves_single_side_conjuncts_below_join() {
        let cat = catalog();
        let optimized = push_down_selections(&q(), &cat);
        // Both conjuncts sink: the root is the join itself.
        let LogicalPlan::Join { left, right, .. } = &optimized else {
            panic!("expected join at root, got {optimized:?}");
        };
        assert!(matches!(&**left, LogicalPlan::Select { .. }));
        assert!(matches!(&**right, LogicalPlan::Select { .. }));
    }

    #[test]
    fn pushdown_preserves_results() {
        let cat = catalog();
        let fs: SimFs<Table> = SimFs::new(BlockConfig::new(1024), CostWeights::default());
        let (plain, plain_m) = execute(&q(), &cat, &fs).unwrap();
        let optimized = push_down_selections(&q(), &cat);
        let (opt, opt_m) = execute(&optimized, &cat, &fs).unwrap();
        assert_eq!(plain.fingerprint(), opt.fingerprint());
        // Pushdown shrinks the join inputs → fewer shuffled bytes.
        assert!(opt_m.shuffle_bytes < plain_m.shuffle_bytes);
    }

    #[test]
    fn pushdown_is_idempotent() {
        let cat = catalog();
        let once = push_down_selections(&q(), &cat);
        let twice = push_down_selections(&once, &cat);
        assert_eq!(once, twice);
    }

    #[test]
    fn cross_side_predicates_stay_above_the_join() {
        let cat = catalog();
        // A predicate referencing columns from both sides cannot sink.
        // (Use an Eq on a column from each side via an And.)
        let plan = LogicalPlan::scan("fact")
            .join(LogicalPlan::scan("dim"), vec![("fact.k", "dim.k")])
            .select(Predicate::eq("nonexistent.col", 1));
        let optimized = push_down_selections(&plan, &cat);
        assert!(
            matches!(optimized, LogicalPlan::Select { .. }),
            "unresolvable predicate stays put: {optimized:?}"
        );
    }

    #[test]
    fn pushdown_through_aggregate_input() {
        let cat = catalog();
        let plan = q().aggregate(vec!["dim.label"], vec![crate::plan::AggExpr::count("c")]);
        let optimized = push_down_selections(&plan, &cat);
        let LogicalPlan::Aggregate { input, .. } = &optimized else {
            panic!()
        };
        assert!(matches!(&**input, LogicalPlan::Join { .. }));
        let fs: SimFs<Table> = SimFs::new(BlockConfig::new(1024), CostWeights::default());
        let (a, _) = execute(&plan, &cat, &fs).unwrap();
        let (b, _) = execute(&optimized, &cat, &fs).unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
    }
}
