//! # deepsea-engine
//!
//! A miniature SQL-on-MapReduce execution engine standing in for Hive in the
//! DeepSea reproduction. It provides:
//!
//! - a logical plan algebra ([`plan::LogicalPlan`]: scan / select / project /
//!   join / aggregate / view-scan) mirroring the operator trees Hive builds,
//! - a real executor ([`exec`]) over in-memory tables that also charges all
//!   simulated I/O to the storage layer and reports [`exec::ExecMetrics`],
//! - a pluggable **execution backend** ([`backend::ExecutionBackend`]) — the
//!   only interface through which `deepsea-core` runs plans and prices I/O;
//!   [`backend::SimBackend`] pairs the executor with the cluster simulator,
//! - a MapReduce **cluster simulator** ([`cluster::ClusterSim`]) converting
//!   metrics into elapsed seconds using task waves over a fixed slot count —
//!   the quantity every figure of the paper plots,
//! - an analytic **cost estimator** ([`cost`]) used for the initial
//!   cost/size estimates of view candidates before they are first executed,
//! - a **SQL front end** ([`sql`]) covering the select-project-join-aggregate
//!   class the evaluation uses (the role of Hive's parser in Figure 4),
//! - a predicate-**pushdown optimizer** ([`optimize`]) used by the
//!   vanilla-Hive baseline (§10.2 contrasts DeepSea's no-pushdown plans
//!   against it),
//! - Goldstein–Larson style **query signatures** ([`signature`]) and the
//!   sufficient matching condition DeepSea uses for logical view matching,
//! - compensation-based **rewriting** ([`rewrite`]) of a query against a
//!   matched view, and subquery enumeration ([`subquery`], Definition 6).

pub mod backend;
pub mod catalog;
pub mod cluster;
pub mod cost;
pub mod exec;
pub mod explain;
pub mod optimize;
pub mod plan;
pub mod rewrite;
pub mod signature;
pub mod sql;
pub mod subquery;

pub use backend::{ExecutionBackend, RetryAttempt, RetryPolicy, RetryingBackend, SimBackend};
pub use catalog::Catalog;
pub use cluster::ClusterSim;
pub use exec::{execute, ExecError, ExecMetrics};
pub use plan::{AggExpr, AggFunc, LogicalPlan, ViewScanInfo};
pub use signature::Signature;
