//! Query signatures and the sufficient matching condition.
//!
//! Following Goldstein & Larson ("Optimizing queries using materialized
//! views: a practical, scalable solution", SIGMOD 2001) — the technique §8.1
//! of the DeepSea paper adopts — a query's *signature* abstracts away syntax
//! (in particular join order) and records:
//!
//! - the multiset of base relations accessed,
//! - normalized equality join pairs (attribute equivalence classes),
//! - per-attribute range restrictions (intersected),
//! - remaining (equality) predicates,
//! - the projection column set,
//! - group-by columns and aggregate expressions.
//!
//! A view `V` can answer a query `Q` (logical matching) when `V` is *weaker*
//! on every filter and *wider* on every output: same relations and join
//! pairs, `V`'s ranges contain `Q`'s, `V`'s residuals are a subset of `Q`'s,
//! and `V` outputs every column `Q` needs. The difference becomes the
//! *compensation* applied on top of the view scan.

use std::collections::{BTreeMap, BTreeSet};

use deepsea_relation::{Predicate, Value};

use crate::plan::{AggExpr, LogicalPlan};

/// A per-attribute inclusive range restriction.
pub type RangeMap = BTreeMap<String, (i64, i64)>;

/// A query/view signature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Signature {
    /// Base relations and their access counts.
    pub relations: BTreeMap<String, usize>,
    /// Normalized join equality pairs.
    pub join_pairs: BTreeSet<(String, String)>,
    /// Intersected range restrictions per attribute.
    pub ranges: RangeMap,
    /// Equality predicates `(column, value)` not absorbed into ranges.
    pub residuals: BTreeSet<(String, Value)>,
    /// Output columns (`None` = all columns of the join result).
    pub projection: Option<BTreeSet<String>>,
    /// Group-by columns, if the plan aggregates (sorted).
    pub group_by: Option<Vec<String>>,
    /// Canonical aggregate expressions, if the plan aggregates.
    pub aggs: Option<BTreeSet<String>>,
}

impl Signature {
    /// Compute the signature of a plan. Returns `None` for plan shapes the
    /// matcher does not support (nested aggregation, plans already using
    /// views).
    pub fn of(plan: &LogicalPlan) -> Option<Signature> {
        match plan {
            LogicalPlan::Scan { table } => Some(Signature {
                relations: BTreeMap::from([(table.clone(), 1)]),
                join_pairs: BTreeSet::new(),
                ranges: RangeMap::new(),
                residuals: BTreeSet::new(),
                projection: None,
                group_by: None,
                aggs: None,
            }),
            LogicalPlan::ViewScan(_) => None,
            LogicalPlan::Select { pred, input } => {
                let mut sig = Signature::of(input)?;
                sig.absorb_predicate(pred);
                Some(sig)
            }
            LogicalPlan::Project { cols, input } => {
                let mut sig = Signature::of(input)?;
                let set: BTreeSet<String> = cols.iter().cloned().collect();
                // Outer projections narrow inner ones.
                sig.projection = Some(match sig.projection {
                    None => set,
                    Some(prev) => prev.intersection(&set).cloned().collect(),
                });
                Some(sig)
            }
            LogicalPlan::Join { left, right, on } => {
                let l = Signature::of(left)?;
                let r = Signature::of(right)?;
                if l.group_by.is_some() || r.group_by.is_some() {
                    return None; // joins over aggregates unsupported
                }
                let mut relations = l.relations;
                for (t, n) in r.relations {
                    *relations.entry(t).or_insert(0) += n;
                }
                let mut join_pairs = l.join_pairs;
                join_pairs.extend(r.join_pairs);
                for (a, b) in on {
                    join_pairs.insert(normalize_pair(a, b));
                }
                let mut ranges = l.ranges;
                for (c, iv) in r.ranges {
                    merge_range(&mut ranges, c, iv);
                }
                let mut residuals = l.residuals;
                residuals.extend(r.residuals);
                // A projection below a join is unusual in our templates; give
                // up on tracking it precisely and treat output as "all".
                Some(Signature {
                    relations,
                    join_pairs,
                    ranges,
                    residuals,
                    projection: None,
                    group_by: None,
                    aggs: None,
                })
            }
            LogicalPlan::Aggregate {
                group_by,
                aggs,
                input,
            } => {
                let mut sig = Signature::of(input)?;
                if sig.group_by.is_some() {
                    return None; // nested aggregation unsupported
                }
                let mut gb = group_by.clone();
                gb.sort_unstable();
                sig.group_by = Some(gb);
                sig.aggs = Some(aggs.iter().map(AggExpr::canonical).collect());
                // Aggregate output = group-by columns + aggregate aliases.
                let mut out: BTreeSet<String> = group_by.iter().cloned().collect();
                out.extend(aggs.iter().map(|a| a.alias.clone()));
                sig.projection = Some(out);
                Some(sig)
            }
        }
    }

    fn absorb_predicate(&mut self, pred: &Predicate) {
        match pred {
            Predicate::True => {}
            Predicate::Range { col, low, high } => {
                merge_range(&mut self.ranges, col.clone(), (*low, *high));
            }
            Predicate::Eq { col, value } => {
                self.residuals.insert((col.clone(), value.clone()));
            }
            Predicate::And(ps) => {
                for p in ps {
                    self.absorb_predicate(p);
                }
            }
        }
    }

    /// The range restriction this signature places on `attr` (qualified or
    /// bare), if any. Used for partition matching (§8.2).
    pub fn range_on_attr(&self, attr: &str) -> Option<(i64, i64)> {
        if let Some(iv) = self.ranges.get(attr) {
            return Some(*iv);
        }
        let bare = short(attr);
        let mut found = None;
        for (c, iv) in &self.ranges {
            if short(c) == bare {
                if found.is_some() {
                    return None; // ambiguous
                }
                found = Some(*iv);
            }
        }
        found
    }

    /// Attributes with range restrictions, as written in the plan.
    pub fn range_attrs(&self) -> impl Iterator<Item = &str> {
        self.ranges.keys().map(String::as_str)
    }

    /// A stable, canonical key identifying the *view shape* of this
    /// signature: relations, join pairs, projection, grouping and aggregates,
    /// plus any residual/range predicates. Two plans with the same key
    /// compute the same result.
    pub fn canonical_key(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        for (t, n) in &self.relations {
            let _ = write!(s, "R:{t}*{n};");
        }
        for (a, b) in &self.join_pairs {
            let _ = write!(s, "J:{a}={b};");
        }
        for (c, (l, h)) in &self.ranges {
            let _ = write!(s, "S:{l}<={c}<={h};");
        }
        for (c, v) in &self.residuals {
            let _ = write!(s, "E:{c}={v};");
        }
        match &self.projection {
            None => s.push_str("P:*;"),
            Some(cols) => {
                let _ = write!(
                    s,
                    "P:{};",
                    cols.iter().cloned().collect::<Vec<_>>().join(",")
                );
            }
        }
        if let Some(gb) = &self.group_by {
            let _ = write!(s, "G:{};", gb.join(","));
        }
        if let Some(aggs) = &self.aggs {
            let _ = write!(
                s,
                "A:{};",
                aggs.iter().cloned().collect::<Vec<_>>().join(",")
            );
        }
        s
    }
}

/// What must be applied on top of a view scan to answer the query.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Compensation {
    /// Range predicates to re-apply.
    pub ranges: Vec<(String, i64, i64)>,
    /// Equality predicates to re-apply.
    pub residuals: Vec<(String, Value)>,
    /// Columns to project (in sorted order), if narrowing is needed.
    pub projection: Option<Vec<String>>,
}

impl Compensation {
    /// True if the view answers the query with no further filtering.
    pub fn is_exact(&self) -> bool {
        self.ranges.is_empty() && self.residuals.is_empty() && self.projection.is_none()
    }

    /// Build the compensating predicate.
    pub fn predicate(&self) -> Predicate {
        let mut ps: Vec<Predicate> = self
            .ranges
            .iter()
            .map(|(c, l, h)| Predicate::range(c.clone(), *l, *h))
            .collect();
        ps.extend(
            self.residuals
                .iter()
                .map(|(c, v)| Predicate::eq(c.clone(), v.clone())),
        );
        Predicate::and(ps)
    }
}

/// Check the sufficient matching condition: can a view with signature `view`
/// be used to answer a (sub)query with signature `query`? On success returns
/// the compensation to apply on top of the view scan.
pub fn matches(view: &Signature, query: &Signature) -> Option<Compensation> {
    // 1. Same base relations (with multiplicity) and join structure.
    if view.relations != query.relations || view.join_pairs != query.join_pairs {
        return None;
    }
    // 2. Aggregation must line up exactly (no roll-up reasoning).
    if view.group_by != query.group_by || view.aggs != query.aggs {
        return None;
    }
    // 3. View predicates must be weaker.
    //    Every view range must contain the query's range on that attribute.
    let mut comp_ranges: Vec<(String, i64, i64)> = Vec::new();
    for (col, (vl, vh)) in &view.ranges {
        match lookup_range(&query.ranges, col) {
            Some((ql, qh)) if vl <= &ql && &qh <= vh => {}
            _ => return None,
        }
    }
    //    Query ranges not fully enforced by the view become compensation.
    for (col, (ql, qh)) in &query.ranges {
        let enforced = lookup_range(&view.ranges, col)
            .map(|(vl, vh)| vl == *ql && vh == *qh)
            .unwrap_or(false);
        if !enforced {
            comp_ranges.push((col.clone(), *ql, *qh));
        }
    }
    //    View residuals ⊆ query residuals; the difference is compensation.
    if !view.residuals.is_subset(&query.residuals) {
        return None;
    }
    let comp_residuals: Vec<(String, Value)> = query
        .residuals
        .difference(&view.residuals)
        .cloned()
        .collect();
    // 4. The view must output every column the query needs: the query's
    //    projection plus all compensation columns.
    let mut needed: BTreeSet<String> = match &query.projection {
        Some(cols) => cols.clone(),
        None => BTreeSet::new(),
    };
    let needs_all = query.projection.is_none();
    for (c, _, _) in &comp_ranges {
        needed.insert(c.clone());
    }
    for (c, _) in &comp_residuals {
        needed.insert(c.clone());
    }
    match &view.projection {
        None => {} // view keeps all columns
        Some(vcols) => {
            if needs_all && view.group_by.is_none() {
                // Query needs every column but the view dropped some. Only
                // safe if the view projection is exactly the query's (both
                // aggregates handled above).
                return None;
            }
            for n in &needed {
                if !set_contains_attr(vcols, n) {
                    return None;
                }
            }
        }
    }
    // 5. For aggregated views, compensation predicates must be over group-by
    //    columns (selection only commutes with γ on grouping attributes).
    if let Some(gb) = &view.group_by {
        let on_group = |c: &str| gb.iter().any(|g| g == c || short(g) == short(c));
        if !comp_ranges.iter().all(|(c, _, _)| on_group(c))
            || !comp_residuals.iter().all(|(c, _)| on_group(c))
        {
            return None;
        }
    }
    // Projection compensation: narrow only when the query wants fewer
    // columns than the view provides.
    let projection = match (&query.projection, &view.projection) {
        (Some(q), Some(v)) if q != v => Some(q.iter().cloned().collect()),
        (Some(q), None) => Some(q.iter().cloned().collect()),
        _ => None,
    };
    Some(Compensation {
        ranges: comp_ranges,
        residuals: comp_residuals,
        projection,
    })
}

fn normalize_pair(a: &str, b: &str) -> (String, String) {
    if a <= b {
        (a.to_string(), b.to_string())
    } else {
        (b.to_string(), a.to_string())
    }
}

fn merge_range(ranges: &mut RangeMap, col: String, (low, high): (i64, i64)) {
    ranges
        .entry(col)
        .and_modify(|(l, h)| {
            *l = (*l).max(low);
            *h = (*h).min(high);
        })
        .or_insert((low, high));
}

fn short(name: &str) -> &str {
    name.rsplit('.').next().unwrap_or(name)
}

fn lookup_range(ranges: &RangeMap, col: &str) -> Option<(i64, i64)> {
    if let Some(iv) = ranges.get(col) {
        return Some(*iv);
    }
    let bare = short(col);
    let mut found = None;
    for (c, iv) in ranges {
        if short(c) == bare {
            if found.is_some() {
                return None;
            }
            found = Some(*iv);
        }
    }
    found
}

fn set_contains_attr(set: &BTreeSet<String>, attr: &str) -> bool {
    set.contains(attr) || set.iter().any(|c| short(c) == short(attr))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::AggExpr;

    fn base_join() -> LogicalPlan {
        LogicalPlan::scan("sales").join(LogicalPlan::scan("item"), vec![("s.item", "i.item")])
    }

    #[test]
    fn join_order_invariant() {
        let a = base_join();
        let b =
            LogicalPlan::scan("item").join(LogicalPlan::scan("sales"), vec![("i.item", "s.item")]);
        assert_eq!(
            Signature::of(&a).unwrap().canonical_key(),
            Signature::of(&b).unwrap().canonical_key()
        );
    }

    #[test]
    fn select_ranges_intersect() {
        let p = base_join()
            .select(Predicate::range("i.item", 0, 100))
            .select(Predicate::range("i.item", 50, 200));
        let sig = Signature::of(&p).unwrap();
        assert_eq!(sig.ranges.get("i.item"), Some(&(50, 100)));
        assert_eq!(sig.range_on_attr("item"), Some((50, 100)));
    }

    #[test]
    fn unrestricted_view_matches_restricted_query() {
        let v = Signature::of(&base_join()).unwrap();
        let q = Signature::of(&base_join().select(Predicate::range("i.item", 10, 20))).unwrap();
        let comp = matches(&v, &q).expect("should match");
        assert_eq!(comp.ranges, vec![("i.item".to_string(), 10, 20)]);
        assert!(!comp.is_exact());
    }

    #[test]
    fn restricted_view_rejects_wider_query() {
        let v = Signature::of(&base_join().select(Predicate::range("i.item", 10, 20))).unwrap();
        let q = Signature::of(&base_join().select(Predicate::range("i.item", 0, 100))).unwrap();
        assert!(matches(&v, &q).is_none());
    }

    #[test]
    fn restricted_view_matches_contained_query() {
        let v = Signature::of(&base_join().select(Predicate::range("i.item", 0, 100))).unwrap();
        let q = Signature::of(&base_join().select(Predicate::range("i.item", 10, 20))).unwrap();
        let comp = matches(&v, &q).expect("contained range matches");
        assert_eq!(comp.ranges, vec![("i.item".to_string(), 10, 20)]);
    }

    #[test]
    fn exact_match_has_no_compensation() {
        let p = base_join().select(Predicate::range("i.item", 10, 20));
        let v = Signature::of(&p).unwrap();
        let q = Signature::of(&p).unwrap();
        let comp = matches(&v, &q).expect("identical match");
        assert!(comp.is_exact(), "{comp:?}");
    }

    #[test]
    fn different_relations_reject() {
        let v = Signature::of(&LogicalPlan::scan("sales")).unwrap();
        let q = Signature::of(&LogicalPlan::scan("item")).unwrap();
        assert!(matches(&v, &q).is_none());
    }

    #[test]
    fn self_join_multiplicity_matters() {
        let one = Signature::of(&LogicalPlan::scan("t")).unwrap();
        let two =
            Signature::of(&LogicalPlan::scan("t").join(LogicalPlan::scan("t"), vec![("a", "b")]))
                .unwrap();
        assert!(matches(&one, &two).is_none());
        assert_eq!(two.relations.get("t"), Some(&2));
    }

    #[test]
    fn aggregate_must_match_exactly() {
        let qplan = base_join().aggregate(vec!["i.cat"], vec![AggExpr::count("cnt")]);
        let v = Signature::of(&qplan).unwrap();
        let q = Signature::of(&qplan).unwrap();
        assert!(matches(&v, &q).is_some());
        let other = base_join().aggregate(vec!["i.cat"], vec![AggExpr::count("n")]);
        // Same canonical aggregate but a different output alias: rejected
        // (conservatively — the rewriter resolves columns by name, and our
        // workload templates use fixed aliases so this never loses a reuse).
        assert!(matches(&Signature::of(&other).unwrap(), &q).is_none());
        let diff = base_join().aggregate(vec!["s.item"], vec![AggExpr::count("cnt")]);
        assert!(matches(&Signature::of(&diff).unwrap(), &q).is_none());
    }

    #[test]
    fn aggregated_view_takes_group_by_compensation_only() {
        let view_plan = base_join().aggregate(vec!["i.item"], vec![AggExpr::count("cnt")]);
        let v = Signature::of(&view_plan).unwrap();
        // Selection on the group-by column: OK.
        let q1 = Signature::of(
            &base_join()
                .select(Predicate::range("i.item", 0, 5))
                .aggregate(vec!["i.item"], vec![AggExpr::count("cnt")]),
        )
        .unwrap();
        assert!(matches(&v, &q1).is_some());
        // Selection on a non-grouping column: must reject.
        let q2 = Signature::of(
            &base_join()
                .select(Predicate::range("s.price", 0, 5))
                .aggregate(vec!["i.item"], vec![AggExpr::count("cnt")]),
        )
        .unwrap();
        assert!(matches(&v, &q2).is_none());
    }

    #[test]
    fn residual_eq_subset_rule() {
        let v = Signature::of(&base_join().select(Predicate::eq("i.cat", "a"))).unwrap();
        let q = Signature::of(&base_join().select(Predicate::and(vec![
            Predicate::eq("i.cat", "a"),
            Predicate::eq("i.brand", "b"),
        ])))
        .unwrap();
        let comp = matches(&v, &q).expect("subset residuals match");
        assert_eq!(comp.residuals.len(), 1);
        assert!(matches(&q, &v).is_none(), "superset residuals don't");
    }

    #[test]
    fn projection_view_must_cover_query_columns() {
        let v = Signature::of(&base_join().project(vec!["i.item", "s.amount"])).unwrap();
        let q_ok = Signature::of(&base_join().project(vec!["i.item"])).unwrap();
        assert!(matches(&v, &q_ok).is_some());
        let q_more = Signature::of(&base_join().project(vec!["i.cat"])).unwrap();
        assert!(matches(&v, &q_more).is_none());
        // Query needing all columns can't use a projected view.
        let q_all = Signature::of(&base_join()).unwrap();
        assert!(matches(&v, &q_all).is_none());
    }

    #[test]
    fn view_scan_plans_have_no_signature() {
        let p = LogicalPlan::ViewScan(crate::plan::ViewScanInfo {
            view_name: "v".into(),
            files: vec![],
            schema: deepsea_relation::Schema::default(),
        });
        assert!(Signature::of(&p).is_none());
    }

    #[test]
    fn canonical_key_distinguishes_ranges() {
        let a = Signature::of(&base_join().select(Predicate::range("i.item", 0, 1))).unwrap();
        let b = Signature::of(&base_join().select(Predicate::range("i.item", 0, 2))).unwrap();
        assert_ne!(a.canonical_key(), b.canonical_key());
    }
}
