//! The execution backend abstraction: how the driver runs plans and prices
//! simulated I/O.
//!
//! `deepsea-core` never calls [`crate::exec::execute`] or a cluster model
//! directly — it holds a `Box<dyn ExecutionBackend>` and goes through this
//! trait for every plan execution and every scan/write charge. [`SimBackend`]
//! is the in-process implementation backing all tests and experiments: the
//! real executor over [`SimFs`] plus the paper's [`ClusterSim`] time model.
//! A distributed deployment would implement the same trait against an actual
//! cluster.

// deepsea-lint: allow(lock_discipline) -- backend instrumentation counter cell; single lock, held for a field update only
use std::sync::Mutex;

use deepsea_relation::Table;
use deepsea_storage::{FileId, SimFs};

use crate::catalog::Catalog;
use crate::cluster::ClusterSim;
use crate::exec::{self, ExecError, ExecMetrics};
use crate::plan::LogicalPlan;

/// Executes plans and converts I/O volumes into simulated elapsed seconds.
///
/// The three pricing methods mirror [`ClusterSim`]: `elapsed_secs` for a full
/// metric set, `scan_secs`/`write_secs` for the pure read/write jobs the
/// driver charges when estimating savings and materialization overheads.
pub trait ExecutionBackend: Send + Sync {
    /// Execute a plan against the catalog and pool, returning the result
    /// table and the instrumented execution metrics.
    fn execute(
        &self,
        plan: &LogicalPlan,
        catalog: &Catalog,
        fs: &SimFs<Table>,
    ) -> Result<(Table, ExecMetrics), ExecError>;

    /// Wall-clock seconds for one execution's metrics.
    fn elapsed_secs(&self, metrics: &ExecMetrics) -> f64;

    /// Seconds for a pure scan of `bytes` split into `block_bytes` blocks.
    fn scan_secs(&self, bytes: u64, block_bytes: u64) -> f64;

    /// Seconds for writing `bytes` into `files` output files.
    fn write_secs(&self, bytes: u64, files: u64) -> f64;

    /// The cluster model driving the cost estimator — the analytic side of
    /// the same pricing this backend applies to real executions.
    fn cluster(&self) -> &ClusterSim;

    /// Take (and reset) the retry cost of executions that ultimately
    /// *failed*: `(retries, backoff_secs)` spent before giving up. A backend
    /// that retries cannot report this through `ExecMetrics` — there is no
    /// success to attach it to — so the driver drains it here and charges it
    /// to whatever recovery path it takes next. Non-retrying backends owe
    /// nothing.
    fn drain_retry_debt(&self) -> (u64, f64) {
        (0, 0.0)
    }

    /// A read-only clone of this backend for a concurrent snapshot reader,
    /// pricing I/O identically (same cluster model, bit for bit). `None`
    /// (the default) means the backend cannot be shared across readers —
    /// e.g. it carries retry debt or other mutable bookkeeping that must
    /// stay attributed to the single writer.
    fn fork_reader(&self) -> Option<Box<dyn ExecutionBackend>> {
        None
    }

    /// Arm (or disarm, with `None`) a per-query retry *budget*: a token
    /// bucket of simulated backoff seconds shared across every operation of
    /// the query. While armed, a retry is only taken if its backoff still
    /// fits in the remaining budget, so retry debt cannot amplify under
    /// overload. The driver calls this at the start of each query;
    /// non-retrying backends ignore it.
    fn reset_retry_budget(&self, _budget_secs: Option<f64>) {}

    /// Enable or disable the drainable retry-attempt trace (see
    /// [`RetryAttempt`]). Off by default; enabling it records metadata only
    /// and never changes a retry decision, a backoff charge, or a result.
    /// Non-retrying backends ignore it.
    fn set_attempt_trace(&self, _enabled: bool) {}

    /// Drain the retry-ladder steps recorded since the last drain (always
    /// empty unless [`ExecutionBackend::set_attempt_trace`] enabled the
    /// trace). The tracing layer above converts these into spans.
    fn drain_retry_attempts(&self) -> Vec<RetryAttempt> {
        Vec::new()
    }
}

/// One step of a retry ladder, recorded by the attempt trace so the
/// observability layer can render each backoff wait as a span. Purely
/// descriptive: the retry decision was already made when this is recorded.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryAttempt {
    /// 0-based retry index within its ladder.
    pub attempt: u32,
    /// Simulated seconds this step waited before re-running.
    pub backoff_secs: f64,
    /// The file whose transient failure triggered the retry, if known.
    pub file: Option<FileId>,
}

/// Retry budget and exponential-backoff schedule for transient I/O failures.
///
/// Backoff is charged in *simulated* seconds so reported elapsed times
/// reflect retry cost honestly; attempt `n` (0-based) waits
/// `base_backoff_secs * backoff_multiplier^n` before re-running.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Maximum number of re-executions after the first failure.
    pub max_retries: u32,
    /// Simulated seconds waited before the first retry.
    pub base_backoff_secs: f64,
    /// Multiplier applied to the backoff after each failed attempt.
    pub backoff_multiplier: f64,
    /// Hard cap on the *total* simulated backoff one operation may accrue,
    /// whatever `max_retries` says. Exponential backoff is unbounded in the
    /// retry count; this bounds it in seconds, so a pathological policy (or
    /// a permanently failing op under a generous retry count) cannot charge
    /// more than the cap to elapsed time or retry debt.
    pub max_total_backoff_secs: f64,
}

impl RetryPolicy {
    /// Simulated backoff before retry number `attempt` (0-based).
    pub fn backoff_secs(&self, attempt: u32) -> f64 {
        self.base_backoff_secs * self.backoff_multiplier.powi(attempt as i32)
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 3,
            base_backoff_secs: 0.5,
            backoff_multiplier: 2.0,
            max_total_backoff_secs: 600.0,
        }
    }
}

/// Decorator adding transient-failure retry with exponential backoff to any
/// [`ExecutionBackend`].
///
/// Transient errors re-run the whole plan (executions are deterministic, so
/// a retried success is bit-identical to an undisturbed one); permanent
/// errors and non-I/O errors propagate immediately. Backoff and retry counts
/// for *successful* executions ride along in the returned
/// [`ExecMetrics::penalty_secs`] / [`ExecMetrics::retries`]; the cost of
/// executions that exhausted the budget accumulates as debt the driver
/// drains via [`ExecutionBackend::drain_retry_debt`].
#[derive(Debug)]
pub struct RetryingBackend<B> {
    inner: B,
    policy: RetryPolicy,
    /// `(retries, backoff_secs)` spent on executions that ultimately failed.
    debt: Mutex<(u64, f64)>,
    /// Remaining per-query retry budget in simulated seconds, when armed
    /// (see [`ExecutionBackend::reset_retry_budget`]). `None` = unbudgeted:
    /// only `max_retries` and `max_total_backoff_secs` bound retries.
    budget: Mutex<Option<f64>>,
    /// Drainable retry-ladder steps; `None` = attempt trace disabled.
    attempts_log: Mutex<Option<Vec<RetryAttempt>>>,
}

impl<B> RetryingBackend<B> {
    /// Wrap a backend with a retry policy.
    pub fn new(inner: B, policy: RetryPolicy) -> Self {
        Self {
            inner,
            policy,
            debt: Mutex::new((0, 0.0)),
            budget: Mutex::new(None),
            attempts_log: Mutex::new(None),
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> RetryPolicy {
        self.policy
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// Remaining simulated seconds in the armed retry budget, if any.
    pub fn retry_budget_remaining(&self) -> Option<f64> {
        *self.budget.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Whether the next retry's backoff fits both the per-op cap and the
    /// per-query budget; deducts from the budget when it does. `spent` is
    /// the backoff already accrued by this operation.
    fn take_backoff_token(&self, spent: f64, attempt: u32) -> bool {
        let next = self.policy.backoff_secs(attempt);
        if spent + next > self.policy.max_total_backoff_secs {
            return false;
        }
        let mut budget = self.budget.lock().unwrap_or_else(|p| p.into_inner());
        match budget.as_mut() {
            None => true,
            Some(remaining) if next <= *remaining => {
                *remaining -= next;
                true
            }
            Some(_) => false,
        }
    }
}

impl<B: ExecutionBackend> ExecutionBackend for RetryingBackend<B> {
    fn execute(
        &self,
        plan: &LogicalPlan,
        catalog: &Catalog,
        fs: &SimFs<Table>,
    ) -> Result<(Table, ExecMetrics), ExecError> {
        let mut attempts = 0u32;
        let mut backoff = 0.0f64;
        loop {
            match self.inner.execute(plan, catalog, fs) {
                Ok((table, mut m)) => {
                    m.retries += attempts as u64;
                    m.penalty_secs += backoff;
                    return Ok((table, m));
                }
                // Don't burn the retry budget against a whole-node outage:
                // when every replica of the failing file is down, the
                // namenode already knows a retry cannot succeed until a node
                // returns, so the error propagates immediately and the
                // driver's degraded path takes over. Only ever true on a
                // cluster-sharded FS, so plain fault schedules keep their
                // exact retry timings.
                Err(e)
                    if e.is_transient()
                        && attempts < self.policy.max_retries
                        && !e.file().is_some_and(|f| fs.outage_blocked(f))
                        && self.take_backoff_token(backoff, attempts) =>
                {
                    let wait = self.policy.backoff_secs(attempts);
                    let mut log = self.attempts_log.lock().unwrap_or_else(|p| p.into_inner());
                    if let Some(log) = log.as_mut() {
                        log.push(RetryAttempt {
                            attempt: attempts,
                            backoff_secs: wait,
                            file: e.file(),
                        });
                    }
                    drop(log);
                    backoff += wait;
                    attempts += 1;
                }
                Err(e) => {
                    if attempts > 0 {
                        let mut debt = self.debt.lock().unwrap_or_else(|p| p.into_inner());
                        debt.0 += attempts as u64;
                        debt.1 += backoff;
                    }
                    return Err(e);
                }
            }
        }
    }

    fn elapsed_secs(&self, metrics: &ExecMetrics) -> f64 {
        self.inner.elapsed_secs(metrics)
    }

    fn scan_secs(&self, bytes: u64, block_bytes: u64) -> f64 {
        self.inner.scan_secs(bytes, block_bytes)
    }

    fn write_secs(&self, bytes: u64, files: u64) -> f64 {
        self.inner.write_secs(bytes, files)
    }

    fn cluster(&self) -> &ClusterSim {
        self.inner.cluster()
    }

    fn drain_retry_debt(&self) -> (u64, f64) {
        let mut debt = self.debt.lock().unwrap_or_else(|p| p.into_inner());
        std::mem::take(&mut *debt)
    }

    fn reset_retry_budget(&self, budget_secs: Option<f64>) {
        *self.budget.lock().unwrap_or_else(|p| p.into_inner()) = budget_secs;
    }

    fn fork_reader(&self) -> Option<Box<dyn ExecutionBackend>> {
        // A forked reader retries under the same policy but owns *fresh*
        // debt and budget cells: retry cost stays attributed to the reader
        // that paid it, and one reader's budget can never starve another's.
        // The attempt-trace gate is inherited so reader-side retry ladders
        // keep tracing (their spans are no longer orphaned).
        let inner = self.inner.fork_reader()?;
        let fork = RetryingBackend::new(inner, self.policy);
        if self
            .attempts_log
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .is_some()
        {
            fork.set_attempt_trace(true);
        }
        Some(Box::new(fork))
    }

    fn set_attempt_trace(&self, enabled: bool) {
        *self.attempts_log.lock().unwrap_or_else(|p| p.into_inner()) =
            if enabled { Some(Vec::new()) } else { None };
    }

    fn drain_retry_attempts(&self) -> Vec<RetryAttempt> {
        self.attempts_log
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .as_mut()
            .map(std::mem::take)
            .unwrap_or_default()
    }
}

impl ExecutionBackend for Box<dyn ExecutionBackend> {
    fn execute(
        &self,
        plan: &LogicalPlan,
        catalog: &Catalog,
        fs: &SimFs<Table>,
    ) -> Result<(Table, ExecMetrics), ExecError> {
        (**self).execute(plan, catalog, fs)
    }

    fn elapsed_secs(&self, metrics: &ExecMetrics) -> f64 {
        (**self).elapsed_secs(metrics)
    }

    fn scan_secs(&self, bytes: u64, block_bytes: u64) -> f64 {
        (**self).scan_secs(bytes, block_bytes)
    }

    fn write_secs(&self, bytes: u64, files: u64) -> f64 {
        (**self).write_secs(bytes, files)
    }

    fn cluster(&self) -> &ClusterSim {
        (**self).cluster()
    }

    fn drain_retry_debt(&self) -> (u64, f64) {
        (**self).drain_retry_debt()
    }

    fn fork_reader(&self) -> Option<Box<dyn ExecutionBackend>> {
        (**self).fork_reader()
    }

    fn reset_retry_budget(&self, budget_secs: Option<f64>) {
        (**self).reset_retry_budget(budget_secs)
    }

    fn set_attempt_trace(&self, enabled: bool) {
        (**self).set_attempt_trace(enabled)
    }

    fn drain_retry_attempts(&self) -> Vec<RetryAttempt> {
        (**self).drain_retry_attempts()
    }
}

/// The simulated backend: the in-memory executor timed by [`ClusterSim`].
#[derive(Debug, Clone, Copy)]
pub struct SimBackend {
    cluster: ClusterSim,
}

impl SimBackend {
    /// Wrap a cluster model.
    pub fn new(cluster: ClusterSim) -> Self {
        Self { cluster }
    }

    /// The paper's evaluation cluster.
    pub fn paper_default() -> Self {
        Self::new(ClusterSim::paper_default())
    }
}

impl ExecutionBackend for SimBackend {
    fn execute(
        &self,
        plan: &LogicalPlan,
        catalog: &Catalog,
        fs: &SimFs<Table>,
    ) -> Result<(Table, ExecMetrics), ExecError> {
        exec::execute(plan, catalog, fs)
    }

    fn elapsed_secs(&self, metrics: &ExecMetrics) -> f64 {
        // Injected latency spikes and retry backoff are simulated wall time
        // the cluster model knows nothing about; fault-free metrics carry a
        // penalty of exactly +0.0, which leaves the sum bit-identical.
        self.cluster.elapsed_secs(metrics) + metrics.penalty_secs
    }

    fn scan_secs(&self, bytes: u64, block_bytes: u64) -> f64 {
        self.cluster.scan_secs(bytes, block_bytes)
    }

    fn write_secs(&self, bytes: u64, files: u64) -> f64 {
        self.cluster.write_secs(bytes, files)
    }

    fn cluster(&self) -> &ClusterSim {
        &self.cluster
    }

    fn fork_reader(&self) -> Option<Box<dyn ExecutionBackend>> {
        // Stateless (the cluster model is `Copy`): a fork prices and
        // executes identically to the original.
        Some(Box::new(*self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepsea_storage::BlockConfig;

    fn backend_and_world() -> (SimBackend, Catalog, SimFs<Table>) {
        use deepsea_relation::generate::{ColumnGen, TableGen};
        use deepsea_relation::{DataType, Field, Schema};
        let mut catalog = Catalog::new();
        let t = TableGen::new(
            Schema::new(vec![Field::new("t.a", DataType::Int)]),
            vec![ColumnGen::UniformInt { low: 0, high: 9 }],
            1_000,
            1,
        )
        .generate(100);
        catalog.register("t", t);
        let cluster = ClusterSim::paper_default();
        let fs = SimFs::new(BlockConfig::default(), cluster.weights);
        (SimBackend::new(cluster), catalog, fs)
    }

    #[test]
    fn sim_backend_matches_direct_execution() {
        let (backend, catalog, fs) = backend_and_world();
        let plan = LogicalPlan::scan("t");
        let (via_trait, m1) = backend.execute(&plan, &catalog, &fs).unwrap();
        let (direct, m2) = exec::execute(&plan, &catalog, &fs).unwrap();
        assert_eq!(via_trait.fingerprint(), direct.fingerprint());
        assert_eq!(m1, m2);
        assert_eq!(
            backend.elapsed_secs(&m1).to_bits(),
            backend.cluster().elapsed_secs(&m2).to_bits()
        );
    }

    #[test]
    fn pricing_delegates_to_cluster() {
        let backend = SimBackend::paper_default();
        let c = ClusterSim::paper_default();
        let block = 128 * 1024 * 1024;
        assert_eq!(
            backend.scan_secs(1_000_000_000, block).to_bits(),
            c.scan_secs(1_000_000_000, block).to_bits()
        );
        assert_eq!(
            backend.write_secs(1_000_000_000, 8).to_bits(),
            c.write_secs(1_000_000_000, 8).to_bits()
        );
    }

    #[test]
    fn backend_is_object_safe() {
        let boxed: Box<dyn ExecutionBackend> = Box::new(SimBackend::paper_default());
        assert!(boxed.scan_secs(0, 1) > 0.0, "even empty scans pay overhead");
        assert_eq!(boxed.drain_retry_debt(), (0, 0.0), "sim backend owes none");
    }

    use deepsea_relation::{DataType, Field, Schema, Value};
    use deepsea_storage::{CostWeights, FaultConfig, FaultInjector, FileId};

    /// A one-fragment view scan over a fault-injecting FS.
    fn faulty_view_world(cfg: FaultConfig) -> (Catalog, SimFs<Table>, LogicalPlan, FileId) {
        let catalog = Catalog::new();
        let fs = SimFs::with_faults(
            BlockConfig::default(),
            CostWeights::default(),
            FaultInjector::new(cfg),
        );
        let schema = Schema::new(vec![Field::new("v.a", DataType::Int)]);
        let frag = Table::new(schema.clone(), vec![vec![Value::Int(1)]], 500);
        let (id, _) = fs.create("frag", frag.sim_bytes(), frag);
        let plan = LogicalPlan::ViewScan(crate::plan::ViewScanInfo {
            view_name: "v".into(),
            files: vec![id],
            schema,
        });
        (catalog, fs, plan, id)
    }

    #[test]
    fn retrying_backend_retries_transients_to_success() {
        // ~50% transient failures against a deep retry budget: every
        // execution in this fixed schedule succeeds, most after retries.
        let cfg = FaultConfig::seeded(11).with_transient_reads(0.5);
        let (catalog, fs, plan, _) = faulty_view_world(cfg);
        let policy = RetryPolicy {
            max_retries: 16,
            ..RetryPolicy::default()
        };
        let backend = RetryingBackend::new(SimBackend::paper_default(), policy);
        let mut total_retries = 0;
        let mut saw_backoff = false;
        for _ in 0..20 {
            let (t, m) = backend
                .execute(&plan, &catalog, &fs)
                .expect("within budget");
            assert_eq!(t.len(), 1, "retried result is the real result");
            total_retries += m.retries;
            saw_backoff |= m.penalty_secs > 0.0;
            // Backoff is charged into elapsed time.
            let base = backend.inner().elapsed_secs(&ExecMetrics {
                penalty_secs: 0.0,
                ..m
            });
            assert_eq!(
                backend.elapsed_secs(&m).to_bits(),
                (base + m.penalty_secs).to_bits()
            );
        }
        assert!(total_retries > 0, "seed 11 must exercise retries");
        assert!(saw_backoff, "retries charge simulated backoff");
        assert_eq!(backend.drain_retry_debt(), (0, 0.0), "no failed executions");
    }

    #[test]
    fn retrying_backend_gives_up_and_records_debt() {
        let cfg = FaultConfig::seeded(1).with_transient_reads(1.0);
        let (catalog, fs, plan, id) = faulty_view_world(cfg);
        let policy = RetryPolicy::default();
        let backend = RetryingBackend::new(SimBackend::paper_default(), policy);
        let err = backend.execute(&plan, &catalog, &fs).unwrap_err();
        assert_eq!(
            err,
            ExecError::TransientIo(deepsea_storage::IoError::TransientRead(id))
        );
        let (retries, secs) = backend.drain_retry_debt();
        assert_eq!(retries, policy.max_retries as u64);
        let expected: f64 = (0..policy.max_retries)
            .map(|a| policy.backoff_secs(a))
            .sum();
        assert_eq!(secs.to_bits(), expected.to_bits());
        assert_eq!(
            backend.drain_retry_debt(),
            (0, 0.0),
            "drain resets the debt"
        );
    }

    #[test]
    fn retrying_backend_short_circuits_node_outages() {
        use deepsea_storage::{NodeConfig, NodeId, NodeSet};
        let catalog = Catalog::new();
        let fs = SimFs::with_cluster(
            BlockConfig::default(),
            CostWeights::default(),
            FaultInjector::disabled(),
            NodeSet::new(NodeConfig::new(2, 1)),
        );
        let schema = Schema::new(vec![Field::new("v.a", DataType::Int)]);
        let frag = Table::new(schema.clone(), vec![vec![Value::Int(1)]], 500);
        let out = fs
            .try_create_placed("frag", frag.sim_bytes(), frag, &[NodeId(0)])
            .expect("no faults");
        let id = out.value;
        let plan = LogicalPlan::ViewScan(crate::plan::ViewScanInfo {
            view_name: "v".into(),
            files: vec![id],
            schema,
        });
        fs.set_node_down(NodeId(0));
        let backend = RetryingBackend::new(SimBackend::paper_default(), RetryPolicy::default());
        let err = backend.execute(&plan, &catalog, &fs).unwrap_err();
        assert!(
            err.is_transient(),
            "an outage is transient (node may return)"
        );
        assert_eq!(err.file(), Some(id));
        assert_eq!(
            backend.drain_retry_debt(),
            (0, 0.0),
            "no retry budget burned against a whole-node outage"
        );
        // Once the node returns, the same plan executes cleanly.
        fs.set_node_up(NodeId(0));
        let (t, m) = backend.execute(&plan, &catalog, &fs).expect("node is back");
        assert_eq!(t.len(), 1);
        assert_eq!(m.retries, 0);
    }

    #[test]
    fn total_backoff_is_capped_even_outside_budget_mode() {
        // Regression: a permanently-failing op under a pathological policy
        // (deep retry count, no budget armed) must not accrue more backoff
        // than `max_total_backoff_secs` in simulated seconds.
        let cfg = FaultConfig::seeded(1).with_transient_reads(1.0);
        let (catalog, fs, plan, _) = faulty_view_world(cfg);
        let policy = RetryPolicy {
            max_retries: 64,
            max_total_backoff_secs: 100.0,
            ..RetryPolicy::default()
        };
        let backend = RetryingBackend::new(SimBackend::paper_default(), policy);
        let err = backend.execute(&plan, &catalog, &fs).unwrap_err();
        assert!(err.is_transient());
        let (retries, secs) = backend.drain_retry_debt();
        assert!(secs <= 100.0, "debt capped at the policy ceiling: {secs}");
        // 0.5 * (2^8 - 1) = 127.5 > 100 > 63.5: exactly 7 retries fit.
        assert_eq!(retries, 7);
        let expected: f64 = (0..7).map(|a| policy.backoff_secs(a)).sum();
        assert_eq!(secs.to_bits(), expected.to_bits());
        assert_eq!(backend.drain_retry_debt(), (0, 0.0), "drain resets");
    }

    #[test]
    fn retry_budget_bounds_backoff_across_ops_of_a_query() {
        let cfg = FaultConfig::seeded(1).with_transient_reads(1.0);
        let (catalog, fs, plan, _) = faulty_view_world(cfg);
        let policy = RetryPolicy {
            max_retries: 16,
            ..RetryPolicy::default()
        };
        let backend = RetryingBackend::new(SimBackend::paper_default(), policy);
        // Budget of 2.0 simulated seconds: backoffs 0.5 + 1.0 fit, the next
        // (2.0 > 0.5 remaining) does not — two retries, then give up.
        backend.reset_retry_budget(Some(2.0));
        let err = backend.execute(&plan, &catalog, &fs).unwrap_err();
        assert!(err.is_transient());
        let (retries, secs) = backend.drain_retry_debt();
        assert_eq!(retries, 2);
        assert_eq!(secs.to_bits(), 1.5f64.to_bits());
        // The budget is shared across ops: a second failing op of the same
        // query finds the bucket nearly empty and takes a single retry.
        let err = backend.execute(&plan, &catalog, &fs).unwrap_err();
        assert!(err.is_transient());
        let (retries, secs) = backend.drain_retry_debt();
        assert_eq!(retries, 1);
        assert_eq!(secs.to_bits(), 0.5f64.to_bits());
        assert_eq!(backend.retry_budget_remaining(), Some(0.0));
        // Re-arming restores the full bucket; disarming removes the bound.
        backend.reset_retry_budget(Some(2.0));
        assert_eq!(backend.retry_budget_remaining(), Some(2.0));
        backend.reset_retry_budget(None);
        let _ = backend.execute(&plan, &catalog, &fs).unwrap_err();
        let (retries, _) = backend.drain_retry_debt();
        // Unbudgeted again: only the per-op cap binds now. With the default
        // 600 s ceiling and 0.5 · 2^n backoff, 10 retries fit (511.5 s).
        assert_eq!(retries, 10, "unbudgeted again, capped per-op");
    }

    #[test]
    fn attempt_trace_records_ladder_steps_without_changing_decisions() {
        let cfg = FaultConfig::seeded(1).with_transient_reads(1.0);
        let (catalog, fs, plan, id) = faulty_view_world(cfg);
        let policy = RetryPolicy::default();
        let backend = RetryingBackend::new(SimBackend::paper_default(), policy);
        // Trace off (the default): the ladder runs, nothing is recorded.
        let _ = backend.execute(&plan, &catalog, &fs).unwrap_err();
        assert!(backend.drain_retry_attempts().is_empty());
        let (untraced_retries, untraced_secs) = backend.drain_retry_debt();
        // Trace on: identical ladder, every step recorded.
        backend.set_attempt_trace(true);
        let _ = backend.execute(&plan, &catalog, &fs).unwrap_err();
        let steps = backend.drain_retry_attempts();
        assert_eq!(steps.len(), untraced_retries as usize);
        let total: f64 = steps.iter().map(|s| s.backoff_secs).sum();
        assert_eq!(total.to_bits(), untraced_secs.to_bits());
        for (i, s) in steps.iter().enumerate() {
            assert_eq!(s.attempt, i as u32);
            assert_eq!(s.file, Some(id));
            assert_eq!(
                s.backoff_secs.to_bits(),
                policy.backoff_secs(s.attempt).to_bits()
            );
        }
        assert!(backend.drain_retry_attempts().is_empty(), "drain resets");
        // A forked reader inherits the gate.
        let fork = backend.fork_reader().expect("sim backend forks");
        let _ = fork.execute(&plan, &catalog, &fs).unwrap_err();
        assert!(!fork.drain_retry_attempts().is_empty());
        backend.set_attempt_trace(false);
        assert!(backend
            .fork_reader()
            .expect("forks")
            .drain_retry_attempts()
            .is_empty());
    }

    #[test]
    fn retrying_backend_does_not_retry_permanent_failures() {
        let cfg = FaultConfig::seeded(1).with_permanent_loss(1.0);
        let (catalog, fs, plan, id) = faulty_view_world(cfg);
        let backend = RetryingBackend::new(SimBackend::paper_default(), RetryPolicy::default());
        let err = backend.execute(&plan, &catalog, &fs).unwrap_err();
        assert!(!err.is_transient());
        assert_eq!(err.file(), Some(id));
        assert_eq!(
            backend.drain_retry_debt(),
            (0, 0.0),
            "permanent failures spend no retry budget"
        );
    }

    #[test]
    fn retrying_backend_is_transparent_without_faults() {
        let (inner, catalog, fs) = backend_and_world();
        let backend = RetryingBackend::new(inner, RetryPolicy::default());
        let plan = LogicalPlan::scan("t");
        let (t1, m1) = backend.execute(&plan, &catalog, &fs).unwrap();
        let (t2, m2) = inner.execute(&plan, &catalog, &fs).unwrap();
        assert_eq!(t1.fingerprint(), t2.fingerprint());
        assert_eq!(m1, m2);
        assert_eq!(
            backend.elapsed_secs(&m1).to_bits(),
            inner.elapsed_secs(&m2).to_bits()
        );
    }
}
