//! The execution backend abstraction: how the driver runs plans and prices
//! simulated I/O.
//!
//! `deepsea-core` never calls [`crate::exec::execute`] or a cluster model
//! directly — it holds a `Box<dyn ExecutionBackend>` and goes through this
//! trait for every plan execution and every scan/write charge. [`SimBackend`]
//! is the in-process implementation backing all tests and experiments: the
//! real executor over [`SimFs`] plus the paper's [`ClusterSim`] time model.
//! A distributed deployment would implement the same trait against an actual
//! cluster.

use deepsea_relation::Table;
use deepsea_storage::SimFs;

use crate::catalog::Catalog;
use crate::cluster::ClusterSim;
use crate::exec::{self, ExecError, ExecMetrics};
use crate::plan::LogicalPlan;

/// Executes plans and converts I/O volumes into simulated elapsed seconds.
///
/// The three pricing methods mirror [`ClusterSim`]: `elapsed_secs` for a full
/// metric set, `scan_secs`/`write_secs` for the pure read/write jobs the
/// driver charges when estimating savings and materialization overheads.
pub trait ExecutionBackend: Send + Sync {
    /// Execute a plan against the catalog and pool, returning the result
    /// table and the instrumented execution metrics.
    fn execute(
        &self,
        plan: &LogicalPlan,
        catalog: &Catalog,
        fs: &SimFs<Table>,
    ) -> Result<(Table, ExecMetrics), ExecError>;

    /// Wall-clock seconds for one execution's metrics.
    fn elapsed_secs(&self, metrics: &ExecMetrics) -> f64;

    /// Seconds for a pure scan of `bytes` split into `block_bytes` blocks.
    fn scan_secs(&self, bytes: u64, block_bytes: u64) -> f64;

    /// Seconds for writing `bytes` into `files` output files.
    fn write_secs(&self, bytes: u64, files: u64) -> f64;

    /// The cluster model driving the cost estimator — the analytic side of
    /// the same pricing this backend applies to real executions.
    fn cluster(&self) -> &ClusterSim;
}

/// The simulated backend: the in-memory executor timed by [`ClusterSim`].
#[derive(Debug, Clone, Copy)]
pub struct SimBackend {
    cluster: ClusterSim,
}

impl SimBackend {
    /// Wrap a cluster model.
    pub fn new(cluster: ClusterSim) -> Self {
        Self { cluster }
    }

    /// The paper's evaluation cluster.
    pub fn paper_default() -> Self {
        Self::new(ClusterSim::paper_default())
    }
}

impl ExecutionBackend for SimBackend {
    fn execute(
        &self,
        plan: &LogicalPlan,
        catalog: &Catalog,
        fs: &SimFs<Table>,
    ) -> Result<(Table, ExecMetrics), ExecError> {
        exec::execute(plan, catalog, fs)
    }

    fn elapsed_secs(&self, metrics: &ExecMetrics) -> f64 {
        self.cluster.elapsed_secs(metrics)
    }

    fn scan_secs(&self, bytes: u64, block_bytes: u64) -> f64 {
        self.cluster.scan_secs(bytes, block_bytes)
    }

    fn write_secs(&self, bytes: u64, files: u64) -> f64 {
        self.cluster.write_secs(bytes, files)
    }

    fn cluster(&self) -> &ClusterSim {
        &self.cluster
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepsea_storage::BlockConfig;

    fn backend_and_world() -> (SimBackend, Catalog, SimFs<Table>) {
        use deepsea_relation::generate::{ColumnGen, TableGen};
        use deepsea_relation::{DataType, Field, Schema};
        let mut catalog = Catalog::new();
        let t = TableGen::new(
            Schema::new(vec![Field::new("t.a", DataType::Int)]),
            vec![ColumnGen::UniformInt { low: 0, high: 9 }],
            1_000,
            1,
        )
        .generate(100);
        catalog.register("t", t);
        let cluster = ClusterSim::paper_default();
        let fs = SimFs::new(BlockConfig::default(), cluster.weights);
        (SimBackend::new(cluster), catalog, fs)
    }

    #[test]
    fn sim_backend_matches_direct_execution() {
        let (backend, catalog, fs) = backend_and_world();
        let plan = LogicalPlan::scan("t");
        let (via_trait, m1) = backend.execute(&plan, &catalog, &fs).unwrap();
        let (direct, m2) = exec::execute(&plan, &catalog, &fs).unwrap();
        assert_eq!(via_trait.fingerprint(), direct.fingerprint());
        assert_eq!(m1, m2);
        assert_eq!(
            backend.elapsed_secs(&m1).to_bits(),
            backend.cluster().elapsed_secs(&m2).to_bits()
        );
    }

    #[test]
    fn pricing_delegates_to_cluster() {
        let backend = SimBackend::paper_default();
        let c = ClusterSim::paper_default();
        let block = 128 * 1024 * 1024;
        assert_eq!(
            backend.scan_secs(1_000_000_000, block).to_bits(),
            c.scan_secs(1_000_000_000, block).to_bits()
        );
        assert_eq!(
            backend.write_secs(1_000_000_000, 8).to_bits(),
            c.write_secs(1_000_000_000, 8).to_bits()
        );
    }

    #[test]
    fn backend_is_object_safe() {
        let boxed: Box<dyn ExecutionBackend> = Box::new(SimBackend::paper_default());
        assert!(boxed.scan_secs(0, 1) > 0.0, "even empty scans pay overhead");
    }
}
