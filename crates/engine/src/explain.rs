//! `EXPLAIN`-style plan rendering: a multi-line operator tree with per-node
//! cost estimates, for examples, logs and debugging rewritings.

use crate::catalog::Catalog;
use crate::cluster::ClusterSim;
use crate::cost::CostEstimator;
use crate::plan::LogicalPlan;
use deepsea_relation::Table;
use deepsea_storage::SimFs;

/// Render a plan as an indented operator tree.
pub fn explain(plan: &LogicalPlan) -> String {
    let mut out = String::new();
    render(plan, 0, &mut out, None);
    out
}

/// Render a plan with estimated output rows/bytes per node.
pub fn explain_with_estimates(
    plan: &LogicalPlan,
    catalog: &Catalog,
    fs: &SimFs<Table>,
    cluster: &ClusterSim,
) -> String {
    let est = CostEstimator::new(catalog, fs, cluster);
    let mut out = String::new();
    render(plan, 0, &mut out, Some(&est));
    out
}

fn render(plan: &LogicalPlan, depth: usize, out: &mut String, est: Option<&CostEstimator<'_>>) {
    let pad = "  ".repeat(depth);
    let label = match plan {
        LogicalPlan::Scan { table } => format!("Scan {table}"),
        LogicalPlan::ViewScan(v) => {
            format!("ViewScan {} ({} fragments)", v.view_name, v.files.len())
        }
        LogicalPlan::Select { pred, .. } => format!("Select {pred:?}"),
        LogicalPlan::Project { cols, .. } => format!("Project [{}]", cols.join(", ")),
        LogicalPlan::Join { on, .. } => {
            let conds: Vec<String> = on.iter().map(|(a, b)| format!("{a} = {b}")).collect();
            format!("HashJoin on {}", conds.join(" AND "))
        }
        LogicalPlan::Aggregate { group_by, aggs, .. } => {
            let a: Vec<String> = aggs.iter().map(|x| x.canonical()).collect();
            format!(
                "Aggregate [{}] group by [{}]",
                a.join(", "),
                group_by.join(", ")
            )
        }
    };
    out.push_str(&pad);
    out.push_str(&label);
    if let Some(e) = est {
        let est = e.estimate(plan);
        out.push_str(&format!(
            "  (~{:.0} rows, ~{:.1} MB)",
            est.out_rows,
            est.out_bytes / 1e6
        ));
    }
    out.push('\n');
    for c in plan.children() {
        render(c, depth + 1, out, est);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::AggExpr;
    use deepsea_relation::{DataType, Field, Predicate, Schema, Value};
    use deepsea_storage::{BlockConfig, CostWeights};

    fn plan() -> LogicalPlan {
        LogicalPlan::scan("fact")
            .join(LogicalPlan::scan("dim"), vec![("fact.k", "dim.k")])
            .select(Predicate::range("fact.k", 0, 9))
            .aggregate(vec!["dim.label"], vec![AggExpr::count("cnt")])
    }

    #[test]
    fn tree_structure_and_indentation() {
        let text = explain(&plan());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines[0].starts_with("Aggregate [count(*)] group by [dim.label]"));
        assert!(lines[1].starts_with("  Select"));
        assert!(lines[2].starts_with("    HashJoin on fact.k = dim.k"));
        assert!(lines[3].starts_with("      Scan fact"));
        assert!(lines[4].starts_with("      Scan dim"));
    }

    #[test]
    fn estimates_appear_per_node() {
        let mut c = Catalog::new();
        c.register(
            "fact",
            Table::new(
                Schema::new(vec![
                    Field::new("fact.k", DataType::Int),
                    Field::new("fact.v", DataType::Float),
                ]),
                (0..50)
                    .map(|i| vec![Value::Int(i), Value::Float(0.0)])
                    .collect(),
                1000,
            ),
        );
        c.register(
            "dim",
            Table::new(
                Schema::new(vec![
                    Field::new("dim.k", DataType::Int),
                    Field::new("dim.label", DataType::Str),
                ]),
                (0..50)
                    .map(|i| vec![Value::Int(i), Value::str("x")])
                    .collect(),
                100,
            ),
        );
        let fs = SimFs::new(BlockConfig::default(), CostWeights::default());
        let cluster = ClusterSim::paper_default();
        let text = explain_with_estimates(&plan(), &c, &fs, &cluster);
        assert!(text.contains("rows"), "{text}");
        assert!(text.contains("MB"), "{text}");
        assert!(text.lines().count() == 5);
    }
}
