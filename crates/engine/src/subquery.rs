//! Subquery enumeration and plan-tree addressing.

use crate::catalog::Catalog;
use crate::plan::LogicalPlan;

/// A path from the root to a subplan: child indices at each step.
pub type PlanPath = Vec<usize>;

/// Enumerate all subplans with their paths, root first (pre-order).
pub fn all_subplans(plan: &LogicalPlan) -> Vec<(PlanPath, &LogicalPlan)> {
    let mut out = Vec::new();
    fn walk<'a>(
        p: &'a LogicalPlan,
        path: &mut PlanPath,
        out: &mut Vec<(PlanPath, &'a LogicalPlan)>,
    ) {
        out.push((path.clone(), p));
        for (i, c) in p.children().into_iter().enumerate() {
            path.push(i);
            walk(c, path, out);
            path.pop();
        }
    }
    walk(plan, &mut Vec::new(), &mut out);
    out
}

/// View-candidate subqueries per Definition 6 of the paper: subplans of the
/// form `γ(Q1)`, `Q1 ⋈ Q2`, or `π(Q1)`. Selections and base scans are
/// excluded ("materializing the input of the selection and partitioning it on
/// the attribute used in the selection is usually more effective").
///
/// Larger (outer) candidates are returned before the subplans they contain.
pub fn view_candidate_subplans(plan: &LogicalPlan) -> Vec<(PlanPath, &LogicalPlan)> {
    all_subplans(plan)
        .into_iter()
        .filter(|(_, p)| {
            matches!(
                p,
                LogicalPlan::Aggregate { .. }
                    | LogicalPlan::Join { .. }
                    | LogicalPlan::Project { .. }
            )
        })
        .collect()
}

/// The subplan at `path`.
pub fn subplan_at<'a>(plan: &'a LogicalPlan, path: &[usize]) -> Option<&'a LogicalPlan> {
    let mut cur = plan;
    for &i in path {
        cur = *cur.children().get(i)?;
    }
    Some(cur)
}

/// A copy of `plan` with the subplan at `path` replaced by `replacement`.
///
/// # Panics
/// Panics if the path is invalid.
pub fn replace_at(plan: &LogicalPlan, path: &[usize], replacement: LogicalPlan) -> LogicalPlan {
    if path.is_empty() {
        return replacement;
    }
    let (head, rest) = (path[0], &path[1..]);
    match plan {
        LogicalPlan::Select { pred, input } => {
            assert_eq!(head, 0, "Select has one child");
            LogicalPlan::Select {
                pred: pred.clone(),
                input: Box::new(replace_at(input, rest, replacement)),
            }
        }
        LogicalPlan::Project { cols, input } => {
            assert_eq!(head, 0, "Project has one child");
            LogicalPlan::Project {
                cols: cols.clone(),
                input: Box::new(replace_at(input, rest, replacement)),
            }
        }
        LogicalPlan::Aggregate {
            group_by,
            aggs,
            input,
        } => {
            assert_eq!(head, 0, "Aggregate has one child");
            LogicalPlan::Aggregate {
                group_by: group_by.clone(),
                aggs: aggs.clone(),
                input: Box::new(replace_at(input, rest, replacement)),
            }
        }
        LogicalPlan::Join { left, right, on } => match head {
            0 => LogicalPlan::Join {
                left: Box::new(replace_at(left, rest, replacement)),
                right: right.clone(),
                on: on.clone(),
            },
            1 => LogicalPlan::Join {
                left: left.clone(),
                right: Box::new(replace_at(right, rest, replacement)),
                on: on.clone(),
            },
            _ => panic!("Join has two children"),
        },
        LogicalPlan::Scan { .. } | LogicalPlan::ViewScan(_) => {
            panic!("path descends below a leaf")
        }
    }
}

/// The output column names of a plan, in order, without executing it.
/// `None` if a referenced table/column cannot be resolved.
pub fn output_columns(plan: &LogicalPlan, catalog: &Catalog) -> Option<Vec<String>> {
    match plan {
        LogicalPlan::Scan { table } => Some(
            catalog
                .get(table)?
                .schema
                .fields()
                .iter()
                .map(|f| f.name.clone())
                .collect(),
        ),
        LogicalPlan::ViewScan(v) => {
            Some(v.schema.fields().iter().map(|f| f.name.clone()).collect())
        }
        LogicalPlan::Select { input, .. } => output_columns(input, catalog),
        LogicalPlan::Project { cols, .. } => Some(cols.clone()),
        LogicalPlan::Join { left, right, .. } => {
            let mut l = output_columns(left, catalog)?;
            l.extend(output_columns(right, catalog)?);
            Some(l)
        }
        LogicalPlan::Aggregate { group_by, aggs, .. } => {
            let mut out = group_by.clone();
            out.extend(aggs.iter().map(|a| a.alias.clone()));
            Some(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::AggExpr;
    use deepsea_relation::Predicate;

    fn q() -> LogicalPlan {
        LogicalPlan::scan("a")
            .join(LogicalPlan::scan("b"), vec![("a.k", "b.k")])
            .select(Predicate::range("a.k", 0, 9))
            .aggregate(vec!["a.k"], vec![AggExpr::count("cnt")])
    }

    #[test]
    fn all_subplans_preorder() {
        let plan = q();
        let subs = all_subplans(&plan);
        assert_eq!(subs.len(), 5);
        assert!(subs[0].0.is_empty());
        assert!(matches!(subs[0].1, LogicalPlan::Aggregate { .. }));
        assert!(matches!(subs.last().unwrap().1, LogicalPlan::Scan { .. }));
    }

    #[test]
    fn candidates_exclude_select_and_scan() {
        let plan = q();
        let cands = view_candidate_subplans(&plan);
        // aggregate (root) and join
        assert_eq!(cands.len(), 2);
        assert!(matches!(cands[0].1, LogicalPlan::Aggregate { .. }));
        assert!(matches!(cands[1].1, LogicalPlan::Join { .. }));
        // outer candidate comes first
        assert!(cands[0].0.len() < cands[1].0.len());
    }

    #[test]
    fn subplan_at_resolves_paths() {
        let plan = q();
        assert!(matches!(
            subplan_at(&plan, &[0, 0, 1]),
            Some(LogicalPlan::Scan { table }) if table == "b"
        ));
        assert!(subplan_at(&plan, &[0, 0, 5]).is_none());
    }

    #[test]
    fn replace_at_swaps_subtree() {
        let plan = q();
        let rewritten = replace_at(&plan, &[0, 0, 1], LogicalPlan::scan("c"));
        assert_eq!(rewritten.base_tables(), vec!["a", "c"]);
        assert_eq!(plan.base_tables(), vec!["a", "b"], "original untouched");
        // Replacing at the root returns the replacement itself.
        let root = replace_at(&plan, &[], LogicalPlan::scan("x"));
        assert_eq!(root, LogicalPlan::scan("x"));
    }

    #[test]
    fn output_columns_for_each_shape() {
        use deepsea_relation::{DataType, Field, Schema, Table};
        let mut cat = Catalog::new();
        cat.register(
            "a",
            Table::empty(
                Schema::new(vec![
                    Field::new("a.k", DataType::Int),
                    Field::new("a.v", DataType::Int),
                ]),
                8,
            ),
        );
        cat.register(
            "b",
            Table::empty(Schema::new(vec![Field::new("b.k", DataType::Int)]), 8),
        );
        let plan = q();
        assert_eq!(
            output_columns(&plan, &cat),
            Some(vec!["a.k".into(), "cnt".into()])
        );
        let join = LogicalPlan::scan("a").join(LogicalPlan::scan("b"), vec![("a.k", "b.k")]);
        assert_eq!(
            output_columns(&join, &cat),
            Some(vec!["a.k".into(), "a.v".into(), "b.k".into()])
        );
        assert_eq!(output_columns(&LogicalPlan::scan("zzz"), &cat), None);
    }
}
