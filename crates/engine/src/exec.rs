//! Physical execution of logical plans.
//!
//! The executor really runs the query over in-memory tables (so rewritings
//! can be validated for correctness) while accounting all *simulated* I/O —
//! bytes read/written, map tasks, shuffle volume — which the cluster
//! simulator turns into elapsed seconds.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use deepsea_relation::row::row_width;
use deepsea_relation::{DataType, Field, Row, Schema, Table, Value};
use deepsea_storage::{FileId, IoError, SimFs};

use crate::catalog::Catalog;
use crate::plan::{AggFunc, LogicalPlan};

/// Simulated resource usage of one query execution.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ExecMetrics {
    /// Simulated bytes read from base tables and view fragments.
    pub bytes_read: u64,
    /// Simulated bytes written (filled in by instrumentation, not the
    /// read-only executor).
    pub bytes_written: u64,
    /// Rows flowing through operators (CPU proxy).
    pub rows_processed: u64,
    /// Simulated bytes shuffled between map and reduce stages.
    pub shuffle_bytes: u64,
    /// Map tasks launched (one per block of every scanned file).
    pub map_tasks: u64,
    /// Number of MapReduce stages (scan stages + shuffle stages).
    pub stages: u64,
    /// Transient-failure retries absorbed while producing this result.
    pub retries: u64,
    /// Extra simulated seconds from injected latency spikes and retry
    /// backoff — charged on top of the cluster model's elapsed time.
    pub penalty_secs: f64,
}

impl ExecMetrics {
    /// Merge metrics from a sub-execution.
    pub fn absorb(&mut self, other: &ExecMetrics) {
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
        self.rows_processed += other.rows_processed;
        self.shuffle_bytes += other.shuffle_bytes;
        self.map_tasks += other.map_tasks;
        self.stages += other.stages;
        self.retries += other.retries;
        self.penalty_secs += other.penalty_secs;
    }
}

/// Execution errors.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ExecError {
    /// Plan references a table missing from the catalog.
    UnknownTable(String),
    /// Plan references a column missing from its input schema.
    UnknownColumn(String),
    /// A view fragment file has been evicted.
    MissingFile(FileId),
    /// A retryable I/O fault (flaky read/write); re-running the plan may
    /// succeed.
    TransientIo(IoError),
    /// A fragment file is permanently gone (lost or evicted); retries cannot
    /// help and the caller must fall back to base tables.
    PermanentIo(IoError),
    /// A fragment file failed checksum verification. The data was never
    /// served; the caller must quarantine the owning view and fall back to
    /// base tables.
    CorruptIo(IoError),
}

impl ExecError {
    /// Whether re-running the failed operation could succeed.
    pub fn is_transient(&self) -> bool {
        matches!(self, ExecError::TransientIo(_))
    }

    /// The fragment file involved, when the failure names one.
    pub fn file(&self) -> Option<FileId> {
        match self {
            ExecError::MissingFile(id) => Some(*id),
            ExecError::TransientIo(e) | ExecError::PermanentIo(e) | ExecError::CorruptIo(e) => {
                e.file()
            }
            _ => None,
        }
    }
}

impl From<IoError> for ExecError {
    fn from(e: IoError) -> Self {
        match e {
            IoError::Corrupt(_) => ExecError::CorruptIo(e),
            _ if e.is_transient() => ExecError::TransientIo(e),
            _ => ExecError::PermanentIo(e),
        }
    }
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::UnknownTable(t) => write!(f, "unknown table {t:?}"),
            ExecError::UnknownColumn(c) => write!(f, "unknown column {c:?}"),
            ExecError::MissingFile(id) => write!(f, "missing fragment file {id}"),
            ExecError::TransientIo(e) => write!(f, "transient I/O failure: {e}"),
            ExecError::PermanentIo(e) => write!(f, "permanent I/O failure: {e}"),
            ExecError::CorruptIo(e) => write!(f, "corrupt fragment: {e}"),
        }
    }
}

impl std::error::Error for ExecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExecError::TransientIo(e) | ExecError::PermanentIo(e) | ExecError::CorruptIo(e) => {
                Some(e)
            }
            _ => None,
        }
    }
}

/// Intermediate result: schema + rows + the simulated width of one row.
struct Out {
    schema: Schema,
    rows: Rows,
    bytes_per_row: u64,
}

enum Rows {
    Shared(Arc<Table>),
    Owned(Vec<Row>),
}

impl Out {
    fn rows(&self) -> &[Row] {
        match &self.rows {
            Rows::Shared(t) => &t.rows,
            Rows::Owned(v) => v,
        }
    }

    fn len(&self) -> usize {
        self.rows().len()
    }

    fn sim_bytes(&self) -> u64 {
        self.len() as u64 * self.bytes_per_row
    }

    fn into_table(self) -> Table {
        match self.rows {
            Rows::Shared(t) => Table::new(self.schema, t.rows.clone(), self.bytes_per_row),
            Rows::Owned(v) => Table::new(self.schema, v, self.bytes_per_row),
        }
    }
}

/// Average actual (in-memory serialized) row width, sampled.
fn avg_actual_width(rows: &[Row]) -> f64 {
    if rows.is_empty() {
        return 8.0;
    }
    let n = rows.len().min(128);
    let total: u64 = rows[..n].iter().map(row_width).sum();
    (total as f64 / n as f64).max(1.0)
}

/// Execute `plan` against `catalog`, reading view fragments from `fs`.
/// Returns the result table and the simulated resource usage.
pub fn execute(
    plan: &LogicalPlan,
    catalog: &Catalog,
    fs: &SimFs<Table>,
) -> Result<(Table, ExecMetrics), ExecError> {
    let mut m = ExecMetrics::default();
    let out = run(plan, catalog, fs, &mut m)?;
    Ok((out.into_table(), m))
}

fn run(
    plan: &LogicalPlan,
    catalog: &Catalog,
    fs: &SimFs<Table>,
    m: &mut ExecMetrics,
) -> Result<Out, ExecError> {
    match plan {
        LogicalPlan::Scan { table } => {
            let t = catalog
                .get(table)
                .ok_or_else(|| ExecError::UnknownTable(table.clone()))?;
            m.bytes_read += t.sim_bytes();
            m.map_tasks += fs.block_config().blocks_for(t.sim_bytes());
            m.stages += 1;
            m.rows_processed += t.len() as u64;
            Ok(Out {
                schema: t.schema.clone(),
                bytes_per_row: t.bytes_per_row,
                rows: Rows::Shared(Arc::clone(t)),
            })
        }
        LogicalPlan::ViewScan(v) => {
            let mut rows: Vec<Row> = Vec::new();
            let mut bpr = 8u64;
            for &fid in &v.files {
                let out = fs.try_read(fid).map_err(ExecError::from)?;
                m.penalty_secs += out.spike_secs;
                let (payload, bytes) = (out.value, out.sim_bytes);
                m.bytes_read += bytes;
                m.map_tasks += fs.block_config().blocks_for(bytes);
                m.rows_processed += payload.len() as u64;
                bpr = bpr.max(payload.bytes_per_row);
                rows.extend(payload.rows.iter().cloned());
            }
            m.stages += 1;
            Ok(Out {
                schema: v.schema.clone(),
                rows: Rows::Owned(rows),
                bytes_per_row: bpr,
            })
        }
        LogicalPlan::Select { pred, input } => {
            let child = run(input, catalog, fs, m)?;
            m.rows_processed += child.len() as u64;
            let kept: Vec<Row> = child
                .rows()
                .iter()
                .filter(|r| pred.eval(&child.schema, r))
                .cloned()
                .collect();
            Ok(Out {
                schema: child.schema,
                bytes_per_row: child.bytes_per_row,
                rows: Rows::Owned(kept),
            })
        }
        LogicalPlan::Project { cols, input } => {
            let child = run(input, catalog, fs, m)?;
            m.rows_processed += child.len() as u64;
            let names: Vec<&str> = cols.iter().map(String::as_str).collect();
            for n in &names {
                if child.schema.index_of(n).is_none() {
                    return Err(ExecError::UnknownColumn((*n).to_string()));
                }
            }
            let (schema, idxs) = child.schema.project(&names);
            let in_width = avg_actual_width(child.rows());
            let rows: Vec<Row> = child
                .rows()
                .iter()
                .map(|r| idxs.iter().map(|&i| r[i].clone()).collect())
                .collect();
            let out_width = avg_actual_width(&rows);
            // Keep the simulated-bytes scale of the input: a projection keeps
            // the same fraction of simulated width as of actual width.
            let bpr = ((child.bytes_per_row as f64) * (out_width / in_width))
                .round()
                .max(1.0) as u64;
            Ok(Out {
                schema,
                rows: Rows::Owned(rows),
                bytes_per_row: bpr,
            })
        }
        LogicalPlan::Join { left, right, on } => {
            let l = run(left, catalog, fs, m)?;
            let r = run(right, catalog, fs, m)?;
            // A repartition join shuffles both inputs.
            m.shuffle_bytes += l.sim_bytes() + r.sim_bytes();
            m.stages += 1;
            m.rows_processed += (l.len() + r.len()) as u64;

            // Resolve join columns against the two input schemas; accept the
            // pairs in either order.
            let mut lk = Vec::with_capacity(on.len());
            let mut rk = Vec::with_capacity(on.len());
            for (a, b) in on {
                match (l.schema.index_of(a), r.schema.index_of(b)) {
                    (Some(ai), Some(bi)) => {
                        lk.push(ai);
                        rk.push(bi);
                    }
                    _ => match (l.schema.index_of(b), r.schema.index_of(a)) {
                        (Some(bi), Some(ai)) => {
                            lk.push(bi);
                            rk.push(ai);
                        }
                        _ => {
                            return Err(ExecError::UnknownColumn(format!("{a} = {b}")));
                        }
                    },
                }
            }

            // Build on the smaller input.
            let (build, probe, build_keys, probe_keys, build_is_left) = if l.len() <= r.len() {
                (&l, &r, &lk, &rk, true)
            } else {
                (&r, &l, &rk, &lk, false)
            };
            // deepsea-lint: allow(hash_iter) -- join build table: probed per
            // row, never iterated; output order follows the probe side scan.
            let mut ht: HashMap<Vec<Value>, Vec<usize>> = HashMap::with_capacity(build.len());
            for (i, row) in build.rows().iter().enumerate() {
                let key: Vec<Value> = build_keys.iter().map(|&k| row[k].clone()).collect();
                if key.contains(&Value::Null) {
                    continue; // NULL never joins
                }
                ht.entry(key).or_default().push(i);
            }
            let schema = l.schema.concat(&r.schema);
            let mut rows: Vec<Row> = Vec::new();
            for prow in probe.rows() {
                let key: Vec<Value> = probe_keys.iter().map(|&k| prow[k].clone()).collect();
                if key.contains(&Value::Null) {
                    continue;
                }
                if let Some(idxs) = ht.get(&key) {
                    for &bi in idxs {
                        let brow = &build.rows()[bi];
                        let mut out: Row = Vec::with_capacity(schema.len());
                        if build_is_left {
                            out.extend(brow.iter().cloned());
                            out.extend(prow.iter().cloned());
                        } else {
                            out.extend(prow.iter().cloned());
                            out.extend(brow.iter().cloned());
                        }
                        rows.push(out);
                    }
                }
            }
            m.rows_processed += rows.len() as u64;
            Ok(Out {
                schema,
                rows: Rows::Owned(rows),
                bytes_per_row: l.bytes_per_row + r.bytes_per_row,
            })
        }
        LogicalPlan::Aggregate {
            group_by,
            aggs,
            input,
        } => {
            let child = run(input, catalog, fs, m)?;
            m.shuffle_bytes += child.sim_bytes();
            m.stages += 1;
            m.rows_processed += child.len() as u64;

            let gidx: Vec<usize> = group_by
                .iter()
                .map(|g| {
                    child
                        .schema
                        .index_of(g)
                        .ok_or_else(|| ExecError::UnknownColumn(g.clone()))
                })
                .collect::<Result<_, _>>()?;
            let aidx: Vec<Option<usize>> = aggs
                .iter()
                .map(|a| match &a.col {
                    Some(c) => child
                        .schema
                        .index_of(c)
                        .map(Some)
                        .ok_or_else(|| ExecError::UnknownColumn(c.clone())),
                    None => Ok(None),
                })
                .collect::<Result<_, _>>()?;

            // deepsea-lint: allow(hash_iter) -- aggregation states keyed by
            // group; drained below into rows that are then sorted.
            let mut groups: HashMap<Vec<Value>, Vec<AggState>> = HashMap::new();
            for row in child.rows() {
                let key: Vec<Value> = gidx.iter().map(|&i| row[i].clone()).collect();
                let states = groups
                    .entry(key)
                    .or_insert_with(|| aggs.iter().map(|a| AggState::new(a.func)).collect());
                for (s, idx) in states.iter_mut().zip(&aidx) {
                    s.update(idx.map(|i| &row[i]));
                }
            }
            // Global aggregation over empty input still yields one row.
            if gidx.is_empty() && groups.is_empty() {
                groups.insert(
                    Vec::new(),
                    aggs.iter().map(|a| AggState::new(a.func)).collect(),
                );
            }

            let mut fields: Vec<Field> = gidx
                .iter()
                .map(|&i| child.schema.field(i).clone())
                .collect();
            for (a, idx) in aggs.iter().zip(&aidx) {
                let dtype = match a.func {
                    AggFunc::Count => DataType::Int,
                    AggFunc::Sum | AggFunc::Avg => DataType::Float,
                    AggFunc::Min | AggFunc::Max => idx
                        .map(|i| child.schema.field(i).dtype)
                        .unwrap_or(DataType::Int),
                };
                fields.push(Field::new(a.alias.clone(), dtype));
            }
            let schema = Schema::new(fields);
            // deepsea-lint: allow(hash_iter) -- hash order is erased by the
            // `rows.sort_unstable()` below before anything observes the rows.
            let mut rows: Vec<Row> = groups
                .into_iter()
                .map(|(key, states)| {
                    let mut row = key;
                    row.extend(states.into_iter().map(AggState::finish));
                    row
                })
                .collect();
            // Deterministic output order for reproducibility.
            rows.sort_unstable();
            m.rows_processed += rows.len() as u64;
            let out_width = avg_actual_width(&rows);
            // Aggregates produce compact rows; keep the input's scale factor.
            let in_width = avg_actual_width(child.rows());
            let bpr = ((child.bytes_per_row as f64) * (out_width / in_width))
                .round()
                .max(1.0) as u64;
            Ok(Out {
                schema,
                rows: Rows::Owned(rows),
                bytes_per_row: bpr,
            })
        }
    }
}

/// Streaming aggregate state.
enum AggState {
    Count(i64),
    Sum(f64, bool),
    Min(Option<Value>),
    Max(Option<Value>),
    Avg(f64, i64),
}

impl AggState {
    fn new(func: AggFunc) -> Self {
        match func {
            AggFunc::Count => AggState::Count(0),
            AggFunc::Sum => AggState::Sum(0.0, false),
            AggFunc::Min => AggState::Min(None),
            AggFunc::Max => AggState::Max(None),
            AggFunc::Avg => AggState::Avg(0.0, 0),
        }
    }

    fn update(&mut self, v: Option<&Value>) {
        match self {
            AggState::Count(c) => *c += 1,
            AggState::Sum(s, seen) => {
                if let Some(x) = v.and_then(Value::as_float) {
                    *s += x;
                    *seen = true;
                }
            }
            AggState::Min(cur) => {
                if let Some(x) = v {
                    if *x != Value::Null && cur.as_ref().is_none_or(|c| x < c) {
                        *cur = Some(x.clone());
                    }
                }
            }
            AggState::Max(cur) => {
                if let Some(x) = v {
                    if *x != Value::Null && cur.as_ref().is_none_or(|c| x > c) {
                        *cur = Some(x.clone());
                    }
                }
            }
            AggState::Avg(s, n) => {
                if let Some(x) = v.and_then(Value::as_float) {
                    *s += x;
                    *n += 1;
                }
            }
        }
    }

    fn finish(self) -> Value {
        match self {
            AggState::Count(c) => Value::Int(c),
            AggState::Sum(s, seen) => {
                if seen {
                    Value::Float(s)
                } else {
                    Value::Null
                }
            }
            AggState::Min(v) | AggState::Max(v) => v.unwrap_or(Value::Null),
            AggState::Avg(s, n) => {
                if n > 0 {
                    Value::Float(s / n as f64)
                } else {
                    Value::Null
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::AggExpr;
    use deepsea_relation::Predicate;
    use deepsea_storage::{BlockConfig, CostWeights};

    fn fixture() -> (Catalog, SimFs<Table>) {
        let mut c = Catalog::new();
        let sales = Table::new(
            Schema::new(vec![
                Field::new("s.item", DataType::Int),
                Field::new("s.amount", DataType::Float),
            ]),
            vec![
                vec![Value::Int(1), Value::Float(10.0)],
                vec![Value::Int(1), Value::Float(20.0)],
                vec![Value::Int(2), Value::Float(5.0)],
                vec![Value::Int(3), Value::Float(7.0)],
                vec![Value::Null, Value::Float(99.0)],
            ],
            1000,
        );
        let item = Table::new(
            Schema::new(vec![
                Field::new("i.item", DataType::Int),
                Field::new("i.cat", DataType::Str),
            ]),
            vec![
                vec![Value::Int(1), Value::str("a")],
                vec![Value::Int(2), Value::str("b")],
                vec![Value::Int(4), Value::str("c")],
            ],
            100,
        );
        c.register("sales", sales);
        c.register("item", item);
        let fs = SimFs::new(BlockConfig::new(1024), CostWeights::default());
        (c, fs)
    }

    #[test]
    fn scan_reports_bytes_and_tasks() {
        let (c, fs) = fixture();
        let (t, m) = execute(&LogicalPlan::scan("sales"), &c, &fs).unwrap();
        assert_eq!(t.len(), 5);
        assert_eq!(m.bytes_read, 5000);
        assert_eq!(m.map_tasks, 5); // 5000 / 1024 -> 5 blocks
        assert_eq!(m.stages, 1);
    }

    #[test]
    fn unknown_table_errors() {
        let (c, fs) = fixture();
        let err = execute(&LogicalPlan::scan("zzz"), &c, &fs).unwrap_err();
        assert_eq!(err, ExecError::UnknownTable("zzz".into()));
    }

    #[test]
    fn select_filters_rows() {
        let (c, fs) = fixture();
        let plan = LogicalPlan::scan("sales").select(Predicate::range("s.item", 1, 2));
        let (t, _) = execute(&plan, &c, &fs).unwrap();
        assert_eq!(t.len(), 3, "NULL item excluded");
    }

    #[test]
    fn project_keeps_order_and_scales_width() {
        let (c, fs) = fixture();
        let plan = LogicalPlan::scan("sales").project(vec!["s.amount", "s.item"]);
        let (t, _) = execute(&plan, &c, &fs).unwrap();
        assert_eq!(t.schema.field(0).name, "s.amount");
        assert_eq!(t.bytes_per_row, 1000, "keeping all columns keeps the width");
        let narrow = LogicalPlan::scan("sales").project(vec!["s.item"]);
        let (t2, _) = execute(&narrow, &c, &fs).unwrap();
        assert!(
            t2.bytes_per_row < 1000,
            "projection shrinks simulated width"
        );
        assert!(t2.bytes_per_row > 0);
    }

    #[test]
    fn project_unknown_column_errors() {
        let (c, fs) = fixture();
        let plan = LogicalPlan::scan("sales").project(vec!["nope"]);
        assert!(matches!(
            execute(&plan, &c, &fs),
            Err(ExecError::UnknownColumn(_))
        ));
    }

    #[test]
    fn hash_join_inner_semantics() {
        let (c, fs) = fixture();
        let plan =
            LogicalPlan::scan("sales").join(LogicalPlan::scan("item"), vec![("s.item", "i.item")]);
        let (t, m) = execute(&plan, &c, &fs).unwrap();
        // items 1 (x2 sales), 2 (x1) match; 3 and NULL don't; item 4 unmatched.
        assert_eq!(t.len(), 3);
        assert_eq!(t.schema.len(), 4);
        assert!(m.shuffle_bytes > 0);
        assert_eq!(t.bytes_per_row, 1100);
        // Columns from the left input come first regardless of build side.
        assert_eq!(t.schema.field(0).name, "s.item");
    }

    #[test]
    fn join_accepts_swapped_on_pairs() {
        let (c, fs) = fixture();
        let plan =
            LogicalPlan::scan("sales").join(LogicalPlan::scan("item"), vec![("i.item", "s.item")]);
        let (t, _) = execute(&plan, &c, &fs).unwrap();
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn aggregate_group_by() {
        let (c, fs) = fixture();
        let plan = LogicalPlan::scan("sales").aggregate(
            vec!["s.item"],
            vec![
                AggExpr::count("cnt"),
                AggExpr::of(AggFunc::Sum, "s.amount", "total"),
                AggExpr::of(AggFunc::Avg, "s.amount", "avg"),
                AggExpr::of(AggFunc::Min, "s.amount", "lo"),
                AggExpr::of(AggFunc::Max, "s.amount", "hi"),
            ],
        );
        let (t, _) = execute(&plan, &c, &fs).unwrap();
        assert_eq!(t.len(), 4); // groups: NULL, 1, 2, 3 (sorted, NULL first)
        let g1 = t
            .rows
            .iter()
            .find(|r| r[0] == Value::Int(1))
            .expect("group 1");
        assert_eq!(g1[1], Value::Int(2));
        assert_eq!(g1[2], Value::Float(30.0));
        assert_eq!(g1[3], Value::Float(15.0));
        assert_eq!(g1[4], Value::Float(10.0));
        assert_eq!(g1[5], Value::Float(20.0));
    }

    #[test]
    fn global_aggregate_on_empty_input_yields_row() {
        let (c, fs) = fixture();
        let plan = LogicalPlan::scan("sales")
            .select(Predicate::range("s.item", 100, 200))
            .aggregate(
                Vec::<String>::new(),
                vec![
                    AggExpr::count("cnt"),
                    AggExpr::of(AggFunc::Sum, "s.amount", "t"),
                ],
            );
        let (t, _) = execute(&plan, &c, &fs).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.rows[0][0], Value::Int(0));
        assert_eq!(t.rows[0][1], Value::Null);
    }

    #[test]
    fn view_scan_reads_fragments_and_charges_fs() {
        let (c, fs) = fixture();
        let frag_schema = Schema::new(vec![Field::new("v.a", DataType::Int)]);
        let f1 = Table::new(frag_schema.clone(), vec![vec![Value::Int(1)]], 500);
        let f2 = Table::new(frag_schema.clone(), vec![vec![Value::Int(2)]], 500);
        let (id1, _) = fs.create("f1", f1.sim_bytes(), f1);
        let (id2, _) = fs.create("f2", f2.sim_bytes(), f2);
        let plan = LogicalPlan::ViewScan(crate::plan::ViewScanInfo {
            view_name: "v".into(),
            files: vec![id1, id2],
            schema: frag_schema,
        });
        let (t, m) = execute(&plan, &c, &fs).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(m.bytes_read, 1000);
        assert_eq!(fs.ledger().files_read, 2);
        // Evict one fragment: execution must now fail permanently.
        fs.delete(id2);
        let err = execute(&plan, &c, &fs).unwrap_err();
        assert_eq!(err, ExecError::PermanentIo(IoError::PermanentLoss(id2)));
        assert!(!err.is_transient());
        assert_eq!(err.file(), Some(id2));
        use std::error::Error;
        assert!(err.source().is_some(), "I/O variants carry a source chain");
    }

    #[test]
    fn view_scan_surfaces_transient_faults() {
        use deepsea_storage::{BlockConfig, CostWeights, FaultConfig, FaultInjector};
        let (c, _) = fixture();
        let fs = SimFs::with_faults(
            BlockConfig::new(1024),
            CostWeights::default(),
            FaultInjector::new(FaultConfig::seeded(5).with_transient_reads(1.0)),
        );
        let frag_schema = Schema::new(vec![Field::new("v.a", DataType::Int)]);
        let f1 = Table::new(frag_schema.clone(), vec![vec![Value::Int(1)]], 500);
        let (id1, _) = fs.create("f1", f1.sim_bytes(), f1);
        let plan = LogicalPlan::ViewScan(crate::plan::ViewScanInfo {
            view_name: "v".into(),
            files: vec![id1],
            schema: frag_schema,
        });
        let err = execute(&plan, &c, &fs).unwrap_err();
        assert_eq!(err, ExecError::TransientIo(IoError::TransientRead(id1)));
        assert!(err.is_transient());
    }

    #[test]
    fn view_scan_surfaces_corruption_without_serving_data() {
        let (c, fs) = fixture();
        let frag_schema = Schema::new(vec![Field::new("v.a", DataType::Int)]);
        let f1 = Table::new(frag_schema.clone(), vec![vec![Value::Int(1)]], 500);
        let (id1, _) = fs.create("f1", f1.sim_bytes(), f1);
        fs.corrupt_file(id1);
        let plan = LogicalPlan::ViewScan(crate::plan::ViewScanInfo {
            view_name: "v".into(),
            files: vec![id1],
            schema: frag_schema,
        });
        let err = execute(&plan, &c, &fs).unwrap_err();
        assert_eq!(err, ExecError::CorruptIo(IoError::Corrupt(id1)));
        assert!(!err.is_transient(), "corruption is never retryable");
        assert_eq!(err.file(), Some(id1));
        assert_eq!(fs.ledger().files_read, 0, "corrupt data is never served");
    }

    #[test]
    fn aggregate_rows_sorted_deterministically() {
        let (c, fs) = fixture();
        let plan =
            LogicalPlan::scan("sales").aggregate(vec!["s.item"], vec![AggExpr::count("cnt")]);
        let (t1, _) = execute(&plan, &c, &fs).unwrap();
        let (t2, _) = execute(&plan, &c, &fs).unwrap();
        assert_eq!(t1.rows, t2.rows);
    }
}
