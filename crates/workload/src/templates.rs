//! The ten BigBench-like query templates (§10.1).
//!
//! The paper picks ten BigBench templates containing joins (Q1, Q5, Q7, Q9,
//! Q12, Q16, Q20, Q26, Q29, Q30) and adds a range selection on `item_sk` to
//! each. Our templates reproduce the operator *shapes* — join(s) feeding an
//! aggregation, with the range selection applied on the join result (DeepSea
//! deliberately does **not** push selections below the materialization
//! point, §10.2).

use deepsea_engine::plan::{AggExpr, AggFunc, LogicalPlan};
use deepsea_relation::Predicate;

/// The template identifiers used throughout the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TemplateId {
    /// store_sales ⋈ item → count per category.
    Q1,
    /// web_clickstreams ⋈ item → clicks per category.
    Q5,
    /// store_sales ⋈ item ⋈ customer → revenue per age group.
    Q7,
    /// store_sales ⋈ item → revenue per item.
    Q9,
    /// web_clickstreams ⋈ item → clicks per day.
    Q12,
    /// web_sales ⋈ item → average order value per category.
    Q16,
    /// store_returns ⋈ item → returns per category.
    Q20,
    /// store_sales ⋈ customer → quantity per age group.
    Q26,
    /// product_reviews ⋈ item → average rating per category.
    Q29,
    /// store_sales ⋈ item → revenue per category (the workhorse of §10.2–10.4).
    Q30,
}

impl TemplateId {
    /// All ten templates.
    pub fn all() -> [TemplateId; 10] {
        use TemplateId::*;
        [Q1, Q5, Q7, Q9, Q12, Q16, Q20, Q26, Q29, Q30]
    }

    /// The qualified `item_sk` column the injected selection ranges over.
    pub fn selection_column(&self) -> &'static str {
        use TemplateId::*;
        match self {
            Q1 | Q7 | Q9 | Q26 | Q30 => "store_sales.ss_item_sk",
            Q5 | Q12 => "web_clickstreams.wcs_item_sk",
            Q16 => "web_sales.ws_item_sk",
            Q20 => "store_returns.sr_item_sk",
            Q29 => "product_reviews.pr_item_sk",
        }
    }

    /// Instantiate the template with a range selection `lo <= item_sk <= hi`.
    pub fn instantiate(&self, lo: i64, hi: i64) -> LogicalPlan {
        let sel = Predicate::range(self.selection_column(), lo, hi);
        use TemplateId::*;
        match self {
            Q1 => ss_join_item()
                .select(sel)
                .aggregate(vec!["item.i_category"], vec![AggExpr::count("cnt")]),
            Q5 => wcs_join_item().select(sel).aggregate(
                vec!["item.i_category"],
                vec![
                    AggExpr::count("clicks"),
                    AggExpr::of(
                        AggFunc::Min,
                        "web_clickstreams.wcs_click_date_sk",
                        "first_day",
                    ),
                ],
            ),
            Q7 => ss_join_item()
                .join(
                    LogicalPlan::scan("customer"),
                    vec![("store_sales.ss_customer_sk", "customer.c_customer_sk")],
                )
                .select(sel)
                .aggregate(
                    vec!["customer.c_age_group"],
                    vec![AggExpr::of(
                        AggFunc::Sum,
                        "store_sales.ss_net_paid",
                        "revenue",
                    )],
                ),
            Q9 => ss_join_item().select(sel).aggregate(
                vec!["store_sales.ss_item_sk"],
                vec![AggExpr::of(
                    AggFunc::Sum,
                    "store_sales.ss_net_paid",
                    "revenue",
                )],
            ),
            Q12 => wcs_join_item().select(sel).aggregate(
                vec!["web_clickstreams.wcs_click_date_sk"],
                vec![AggExpr::count("clicks")],
            ),
            Q16 => LogicalPlan::scan("web_sales")
                .join(
                    LogicalPlan::scan("item"),
                    vec![("web_sales.ws_item_sk", "item.i_item_sk")],
                )
                .select(sel)
                .aggregate(
                    vec!["item.i_category"],
                    vec![AggExpr::of(
                        AggFunc::Avg,
                        "web_sales.ws_net_paid",
                        "avg_order",
                    )],
                ),
            Q20 => LogicalPlan::scan("store_returns")
                .join(
                    LogicalPlan::scan("item"),
                    vec![("store_returns.sr_item_sk", "item.i_item_sk")],
                )
                .select(sel)
                .aggregate(
                    vec!["item.i_category"],
                    vec![
                        AggExpr::count("returns"),
                        AggExpr::of(AggFunc::Sum, "store_returns.sr_return_amt", "amt"),
                    ],
                ),
            Q26 => LogicalPlan::scan("store_sales")
                .join(
                    LogicalPlan::scan("customer"),
                    vec![("store_sales.ss_customer_sk", "customer.c_customer_sk")],
                )
                .select(sel)
                .aggregate(
                    vec!["customer.c_age_group"],
                    vec![AggExpr::of(AggFunc::Sum, "store_sales.ss_quantity", "qty")],
                ),
            Q29 => LogicalPlan::scan("product_reviews")
                .join(
                    LogicalPlan::scan("item"),
                    vec![("product_reviews.pr_item_sk", "item.i_item_sk")],
                )
                .select(sel)
                .aggregate(
                    vec!["item.i_category"],
                    vec![AggExpr::of(
                        AggFunc::Avg,
                        "product_reviews.pr_rating",
                        "rating",
                    )],
                ),
            Q30 => ss_join_item().select(sel).aggregate(
                vec!["item.i_category"],
                vec![AggExpr::of(
                    AggFunc::Sum,
                    "store_sales.ss_net_paid",
                    "revenue",
                )],
            ),
        }
    }
}

impl TemplateId {
    /// The SQL text of the template with the range selection inlined —
    /// usable with [`deepsea_engine::sql::parse`]. Round-trips to the same
    /// signature as [`TemplateId::instantiate`].
    pub fn sql(&self, lo: i64, hi: i64) -> String {
        use TemplateId::*;
        let sel = |col: &str| format!("WHERE {col} BETWEEN {lo} AND {hi}");
        match self {
            Q1 => format!(
                "SELECT item.i_category, COUNT(*) AS cnt \
                 FROM store_sales JOIN item ON store_sales.ss_item_sk = item.i_item_sk \
                 {} GROUP BY item.i_category",
                sel("store_sales.ss_item_sk")
            ),
            Q5 => format!(
                "SELECT item.i_category, COUNT(*) AS clicks, \
                 MIN(web_clickstreams.wcs_click_date_sk) AS first_day \
                 FROM web_clickstreams JOIN item \
                 ON web_clickstreams.wcs_item_sk = item.i_item_sk \
                 {} GROUP BY item.i_category",
                sel("web_clickstreams.wcs_item_sk")
            ),
            Q7 => format!(
                "SELECT customer.c_age_group, SUM(store_sales.ss_net_paid) AS revenue \
                 FROM store_sales JOIN item ON store_sales.ss_item_sk = item.i_item_sk \
                 JOIN customer ON store_sales.ss_customer_sk = customer.c_customer_sk \
                 {} GROUP BY customer.c_age_group",
                sel("store_sales.ss_item_sk")
            ),
            Q9 => format!(
                "SELECT store_sales.ss_item_sk, SUM(store_sales.ss_net_paid) AS revenue \
                 FROM store_sales JOIN item ON store_sales.ss_item_sk = item.i_item_sk \
                 {} GROUP BY store_sales.ss_item_sk",
                sel("store_sales.ss_item_sk")
            ),
            Q12 => format!(
                "SELECT web_clickstreams.wcs_click_date_sk, COUNT(*) AS clicks \
                 FROM web_clickstreams JOIN item \
                 ON web_clickstreams.wcs_item_sk = item.i_item_sk \
                 {} GROUP BY web_clickstreams.wcs_click_date_sk",
                sel("web_clickstreams.wcs_item_sk")
            ),
            Q16 => format!(
                "SELECT item.i_category, AVG(web_sales.ws_net_paid) AS avg_order \
                 FROM web_sales JOIN item ON web_sales.ws_item_sk = item.i_item_sk \
                 {} GROUP BY item.i_category",
                sel("web_sales.ws_item_sk")
            ),
            Q20 => format!(
                "SELECT item.i_category, COUNT(*) AS returns, \
                 SUM(store_returns.sr_return_amt) AS amt \
                 FROM store_returns JOIN item ON store_returns.sr_item_sk = item.i_item_sk \
                 {} GROUP BY item.i_category",
                sel("store_returns.sr_item_sk")
            ),
            Q26 => format!(
                "SELECT customer.c_age_group, SUM(store_sales.ss_quantity) AS qty \
                 FROM store_sales JOIN customer \
                 ON store_sales.ss_customer_sk = customer.c_customer_sk \
                 {} GROUP BY customer.c_age_group",
                sel("store_sales.ss_item_sk")
            ),
            Q29 => format!(
                "SELECT item.i_category, AVG(product_reviews.pr_rating) AS rating \
                 FROM product_reviews JOIN item \
                 ON product_reviews.pr_item_sk = item.i_item_sk \
                 {} GROUP BY item.i_category",
                sel("product_reviews.pr_item_sk")
            ),
            Q30 => format!(
                "SELECT item.i_category, SUM(store_sales.ss_net_paid) AS revenue \
                 FROM store_sales JOIN item ON store_sales.ss_item_sk = item.i_item_sk \
                 {} GROUP BY item.i_category",
                sel("store_sales.ss_item_sk")
            ),
        }
    }
}

fn ss_join_item() -> LogicalPlan {
    LogicalPlan::scan("store_sales").join(
        LogicalPlan::scan("item"),
        vec![("store_sales.ss_item_sk", "item.i_item_sk")],
    )
}

fn wcs_join_item() -> LogicalPlan {
    LogicalPlan::scan("web_clickstreams").join(
        LogicalPlan::scan("item"),
        vec![("web_clickstreams.wcs_item_sk", "item.i_item_sk")],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{BigBenchData, InstanceSize, ItemDistribution};
    use deepsea_engine::exec::execute;
    use deepsea_engine::Signature;
    use deepsea_relation::Table;
    use deepsea_storage::{BlockConfig, CostWeights, SimFs};

    #[test]
    fn every_template_instantiates_and_has_signature() {
        for t in TemplateId::all() {
            let plan = t.instantiate(10, 20);
            let sig = Signature::of(&plan).unwrap_or_else(|| panic!("{t:?} has no signature"));
            assert!(sig.group_by.is_some(), "{t:?} aggregates");
            assert!(
                sig.range_on_attr("item_sk").is_none(),
                "ranges are per-fact-column"
            );
            assert_eq!(
                sig.range_on_attr(t.selection_column()),
                Some((10, 20)),
                "{t:?} carries the injected range"
            );
        }
    }

    #[test]
    fn templates_sharing_a_join_share_the_view_key() {
        // Q1, Q9, Q30 all build on store_sales ⋈ item: their join subqueries
        // are the same view candidate.
        let j1 = ss_join_item();
        let j2 = ss_join_item();
        assert_eq!(
            Signature::of(&j1).unwrap().canonical_key(),
            Signature::of(&j2).unwrap().canonical_key()
        );
    }

    #[test]
    fn all_templates_execute_on_generated_data() {
        let data = BigBenchData::generate(InstanceSize::Gb100, &ItemDistribution::Uniform, 3);
        let fs: SimFs<Table> = SimFs::new(BlockConfig::default(), CostWeights::default());
        for t in TemplateId::all() {
            let plan = t.instantiate(0, 4_000); // 10% of the item domain
            let (out, m) =
                execute(&plan, &data.catalog, &fs).unwrap_or_else(|e| panic!("{t:?} failed: {e}"));
            assert!(!out.is_empty(), "{t:?} returned no rows");
            assert!(m.bytes_read > 0);
        }
    }

    #[test]
    fn sql_round_trips_to_the_same_signature() {
        for t in TemplateId::all() {
            let built = t.instantiate(100, 900);
            let parsed = deepsea_engine::sql::parse(&t.sql(100, 900))
                .unwrap_or_else(|e| panic!("{t:?} SQL fails to parse: {e}"));
            let a = Signature::of(&built).unwrap().canonical_key();
            let b = Signature::of(&parsed).unwrap().canonical_key();
            assert_eq!(a, b, "{t:?} SQL and builder plans must be one view");
        }
    }

    #[test]
    fn sql_and_builder_answers_agree() {
        let data = BigBenchData::generate(InstanceSize::Gb100, &ItemDistribution::Uniform, 3);
        let fs: SimFs<Table> = SimFs::new(BlockConfig::default(), CostWeights::default());
        for t in [TemplateId::Q30, TemplateId::Q7, TemplateId::Q12] {
            let (a, _) = execute(&t.instantiate(0, 5_000), &data.catalog, &fs).unwrap();
            let parsed = deepsea_engine::sql::parse(&t.sql(0, 5_000)).unwrap();
            let (b, _) = execute(&parsed, &data.catalog, &fs).unwrap();
            assert_eq!(a.fingerprint(), b.fingerprint(), "{t:?}");
        }
    }

    #[test]
    fn selection_range_controls_result_size() {
        let data = BigBenchData::generate(InstanceSize::Gb100, &ItemDistribution::Uniform, 3);
        let fs: SimFs<Table> = SimFs::new(BlockConfig::default(), CostWeights::default());
        let narrow = TemplateId::Q9.instantiate(0, 100);
        let wide = TemplateId::Q9.instantiate(0, 20_000);
        let (n, _) = execute(&narrow, &data.catalog, &fs).unwrap();
        let (w, _) = execute(&wide, &data.catalog, &fs).unwrap();
        assert!(w.len() > n.len(), "wider range groups more items");
    }
}
