//! Per-experiment workload sequences (§10.1–10.4).
//!
//! Each builder returns the ordered list of logical plans one experiment
//! executes, parameterized exactly as the corresponding figure describes.

use deepsea_engine::LogicalPlan;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::schema::ITEM_DOMAIN;
use crate::sdss::SdssTrace;
use crate::skew::{RangeSampler, Selectivity, Skew, ZipfRangeSampler};
use crate::templates::TemplateId;

/// The `item_sk` domain bounds queries select over.
pub fn item_domain() -> (i64, i64) {
    (0, ITEM_DOMAIN - 1)
}

/// §10.1 / Figure 5: 1000 queries simulating SDSS access patterns — random
/// BigBench template, selection ranges from the SDSS-like trace in
/// submission order.
pub fn fig5_workload(n: usize, seed: u64) -> Vec<LogicalPlan> {
    let (lo, hi) = item_domain();
    // Range repetition is handled here at whole-query granularity (a real
    // log re-submits the same query, template included), so the trace's own
    // range-level repetition is disabled.
    let mut trace = SdssTrace::new(lo, hi);
    let repeat_prob = trace.repeat_prob;
    trace.repeat_prob = 0.0;
    let ranges = trace.generate(n, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xF165);
    let templates = TemplateId::all();
    let mut out: Vec<LogicalPlan> = Vec::with_capacity(n);
    for (l, h) in ranges {
        if !out.is_empty() && rng.random::<f64>() < repeat_prob {
            let window = out.len().min(50);
            let pick = out.len() - 1 - rng.random_range(0..window);
            out.push(out[pick].clone());
        } else {
            let t = templates[rng.random_range(0..templates.len())];
            out.push(t.instantiate(l, h));
        }
    }
    out
}

/// §10.2 / Figure 6: 10 instances of Q30, small selectivity, heavy skew.
pub fn fig6_workload(seed: u64) -> Vec<LogicalPlan> {
    fixed_template_workload(TemplateId::Q30, 10, Selectivity::Small, Skew::Heavy, seed)
}

/// §10.2 / Figure 7: instances of Q30 at the given selectivity and skew.
/// The paper measures 10 and projects to 100; we measure 30 so the
/// projection's steady-state rate is taken after progressive refinement has
/// settled (our skew sampler keeps jittering range endpoints, which delays
/// convergence past query 10).
pub fn fig7_workload(sel: Selectivity, skew: Skew, seed: u64) -> Vec<LogicalPlan> {
    fixed_template_workload(TemplateId::Q30, 30, sel, skew, seed)
}

/// §10.3 / Figure 8a: ten Q30 queries with big selectivity + heavy skew
/// followed by ten with small selectivity + heavy skew.
pub fn fig8a_workload(seed: u64) -> Vec<LogicalPlan> {
    let mut w = fixed_template_workload(TemplateId::Q30, 10, Selectivity::Big, Skew::Heavy, seed);
    w.extend(fixed_template_workload(
        TemplateId::Q30,
        10,
        Selectivity::Small,
        Skew::Heavy,
        seed ^ 1,
    ));
    w
}

/// §10.3 / Figure 8b: Q30 with Zipf-distributed selection midpoints.
pub fn fig8b_workload(n: usize, seed: u64) -> Vec<LogicalPlan> {
    let (lo, hi) = item_domain();
    let sampler = ZipfRangeSampler::new(lo, hi, Selectivity::Small, 1.1);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let (l, h) = sampler.sample(&mut rng);
            TemplateId::Q30.instantiate(l, h)
        })
        .collect()
}

/// §10.4 / Figure 9: 30 Q30 queries, small selectivity; the midpoint jumps
/// every ten queries (paper: "the selections of Q30_1 to Q30_10 have a
/// midpoint of 20 000, … Q30_11 to Q30_20 … 40 000, … Q30_21 to Q30_30 …
/// 60 000" over the domain [0, 400 000] — *fixed* midpoints, i.e. each phase
/// repeats one range; we use the same 5% / 10% / 15% positions of our scaled
/// domain).
pub fn fig9_workload(_seed: u64) -> Vec<LogicalPlan> {
    let (lo, hi) = item_domain();
    let w = hi - lo;
    let centers = [lo + w / 20, lo + w / 10, lo + (3 * w) / 20];
    let width = ((w + 1) as f64 * Selectivity::Small.fraction()).round() as i64;
    let mut out = Vec::with_capacity(30);
    for &c in &centers {
        let l = (c - width / 2).clamp(lo, hi);
        let h = (l + width - 1).min(hi);
        for _ in 0..10 {
            out.push(TemplateId::Q30.instantiate(l, h));
        }
    }
    out
}

/// §10.4 / Figure 10: 200 Q5 queries, big selectivity, heavy skew; the first
/// 100 sample from one distribution, the next 100 from a shifted one.
pub fn fig10_workload(seed: u64) -> Vec<LogicalPlan> {
    let (lo, hi) = item_domain();
    let w = hi - lo;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(200);
    for (center, n) in [(lo + w / 4, 100usize), (lo + (3 * w) / 4, 100)] {
        let sampler = RangeSampler::new(lo, hi, Selectivity::Big, Skew::Heavy).with_center(center);
        for _ in 0..n {
            let (l, h) = sampler.sample(&mut rng);
            out.push(TemplateId::Q5.instantiate(l, h));
        }
    }
    out
}

/// A fixed-template workload at a given selectivity/skew.
pub fn fixed_template_workload(
    template: TemplateId,
    n: usize,
    sel: Selectivity,
    skew: Skew,
    seed: u64,
) -> Vec<LogicalPlan> {
    let (lo, hi) = item_domain();
    let sampler = RangeSampler::new(lo, hi, sel, skew);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let (l, h) = sampler.sample(&mut rng);
            template.instantiate(l, h)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepsea_engine::Signature;

    #[test]
    fn fig5_mixes_templates() {
        let w = fig5_workload(200, 1);
        assert_eq!(w.len(), 200);
        let mut shapes: Vec<String> = w
            .iter()
            .map(|p| {
                let mut t = p.base_tables().join(",");
                t.push(';');
                t
            })
            .collect();
        shapes.sort_unstable();
        shapes.dedup();
        assert!(shapes.len() >= 4, "several distinct shapes: {shapes:?}");
    }

    #[test]
    fn fig6_all_q30_small_heavy() {
        let w = fig6_workload(1);
        assert_eq!(w.len(), 10);
        for p in &w {
            let sig = Signature::of(p).unwrap();
            let (l, h) = sig
                .range_on_attr("store_sales.ss_item_sk")
                .expect("range on item_sk");
            let width = h - l + 1;
            assert!((width - ITEM_DOMAIN / 100).abs() <= 1, "1% width: {width}");
        }
    }

    #[test]
    fn fig9_midpoints_shift_in_three_phases() {
        let w = fig9_workload(1);
        assert_eq!(w.len(), 30);
        let mid = |p: &LogicalPlan| {
            let (l, h) = Signature::of(p)
                .unwrap()
                .range_on_attr("store_sales.ss_item_sk")
                .unwrap();
            (l + h) / 2
        };
        let m1: i64 = w[..10].iter().map(mid).sum::<i64>() / 10;
        let m2: i64 = w[10..20].iter().map(mid).sum::<i64>() / 10;
        let m3: i64 = w[20..].iter().map(mid).sum::<i64>() / 10;
        assert!(m1 < m2 && m2 < m3, "monotone phase shift: {m1} {m2} {m3}");
    }

    #[test]
    fn fig10_shifts_distribution_at_halfway() {
        let w = fig10_workload(1);
        assert_eq!(w.len(), 200);
        let mid = |p: &LogicalPlan| {
            let (l, h) = Signature::of(p)
                .unwrap()
                .range_on_attr("web_clickstreams.wcs_item_sk")
                .unwrap();
            (l + h) / 2
        };
        let first: i64 = w[..100].iter().map(mid).sum::<i64>() / 100;
        let second: i64 = w[100..].iter().map(mid).sum::<i64>() / 100;
        assert!(
            second > first + ITEM_DOMAIN / 4,
            "shift: {first} → {second}"
        );
    }

    #[test]
    fn fig8_workloads_wellformed() {
        assert_eq!(fig8a_workload(1).len(), 20);
        let z = fig8b_workload(50, 1);
        assert_eq!(z.len(), 50);
        for p in &z {
            assert!(Signature::of(p).is_some());
        }
    }

    #[test]
    fn workloads_deterministic() {
        assert_eq!(fig9_workload(5), fig9_workload(5));
        assert_eq!(fig5_workload(50, 5), fig5_workload(50, 5));
    }
}
