//! The BigBench-like retail star schema and its data generator.
//!
//! The paper generates BigBench instances of 100 GB and 500 GB and, for the
//! real-workload experiment, re-samples every `item_sk` column from the SDSS
//! `PhotoPrimary.ra` histogram. We reproduce that: every fact table has an
//! `item_sk` foreign key whose distribution is pluggable.
//!
//! Instances are scaled down in *row count* but keep cluster-scale *simulated
//! bytes* (each table knows its simulated bytes-per-row), so the cost model
//! sees 100 GB while memory holds tens of thousands of rows.

use deepsea_engine::Catalog;
use deepsea_relation::distr::WeightedBuckets;
use deepsea_relation::generate::{ColumnGen, TableGen};
use deepsea_relation::{DataType, Field, Schema};

/// Domain of `item_sk`: `[0, ITEM_DOMAIN - 1]`. The paper's Figure 9 quotes a
/// selection-attribute domain of `[0, 400 000]`; we keep 40 000 distinct items
/// (1:10 scale) so dimension tables stay memory-friendly.
pub const ITEM_DOMAIN: i64 = 40_000;

/// Instance sizes used in the evaluation (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstanceSize {
    /// "100 GB" instance.
    Gb100,
    /// "500 GB" instance.
    Gb500,
}

impl InstanceSize {
    /// Total simulated bytes of the instance.
    pub fn total_bytes(&self) -> u64 {
        match self {
            InstanceSize::Gb100 => 100 * 1_000_000_000,
            InstanceSize::Gb500 => 500 * 1_000_000_000,
        }
    }

    /// In-memory rows of the biggest fact table.
    pub fn fact_rows(&self) -> usize {
        match self {
            InstanceSize::Gb100 => 40_000,
            InstanceSize::Gb500 => 80_000,
        }
    }
}

/// How `item_sk` values are distributed in the fact tables.
#[derive(Debug, Clone)]
pub enum ItemDistribution {
    /// Uniform over the item domain (the synthetic-workload instances).
    Uniform,
    /// Histogram-driven (the SDSS-shaped instances of §10.1).
    Histogram(WeightedBuckets),
}

impl ItemDistribution {
    fn item_gen(&self) -> ColumnGen {
        match self {
            ItemDistribution::Uniform => ColumnGen::UniformInt {
                low: 0,
                high: ITEM_DOMAIN - 1,
            },
            ItemDistribution::Histogram(wb) => ColumnGen::Histogram(wb.clone()),
        }
    }
}

/// A generated BigBench-like instance.
pub struct BigBenchData {
    /// The catalog holding every table.
    pub catalog: Catalog,
    /// The instance size it was generated at.
    pub size: InstanceSize,
}

impl BigBenchData {
    /// Generate an instance. Deterministic per seed.
    pub fn generate(size: InstanceSize, dist: &ItemDistribution, seed: u64) -> Self {
        let total = size.total_bytes() as f64;
        let fact_rows = size.fact_rows();
        let mut catalog = Catalog::new();

        // Byte budget per table (fractions sum to 1.0):
        //   store_sales 45%, web_clickstreams 25%, web_sales 15%,
        //   store_returns 5%, product_reviews 4%, item 3%, customer 3%.
        let bpr = |fraction: f64, rows: usize| -> u64 {
            ((total * fraction) / rows as f64).max(1.0) as u64
        };

        let store_sales = TableGen::new(
            Schema::new(vec![
                Field::new("store_sales.ss_item_sk", DataType::Int),
                Field::new("store_sales.ss_customer_sk", DataType::Int),
                Field::new("store_sales.ss_quantity", DataType::Int),
                Field::new("store_sales.ss_net_paid", DataType::Float),
            ]),
            vec![
                dist.item_gen(),
                ColumnGen::UniformInt {
                    low: 0,
                    high: 9_999,
                },
                ColumnGen::UniformInt { low: 1, high: 100 },
                ColumnGen::UniformFloat {
                    low: 0.5,
                    high: 500.0,
                },
            ],
            bpr(0.45, fact_rows),
            seed ^ 0x5355,
        )
        .generate(fact_rows);
        catalog.register("store_sales", store_sales);

        let wcs_rows = fact_rows * 3 / 4;
        let web_clickstreams = TableGen::new(
            Schema::new(vec![
                Field::new("web_clickstreams.wcs_item_sk", DataType::Int),
                Field::new("web_clickstreams.wcs_user_sk", DataType::Int),
                Field::new("web_clickstreams.wcs_click_date_sk", DataType::Int),
            ]),
            vec![
                dist.item_gen(),
                ColumnGen::UniformInt {
                    low: 0,
                    high: 9_999,
                },
                ColumnGen::UniformInt { low: 0, high: 364 },
            ],
            bpr(0.25, wcs_rows),
            seed ^ 0x5743,
        )
        .generate(wcs_rows);
        catalog.register("web_clickstreams", web_clickstreams);

        let ws_rows = fact_rows / 2;
        let web_sales = TableGen::new(
            Schema::new(vec![
                Field::new("web_sales.ws_item_sk", DataType::Int),
                Field::new("web_sales.ws_customer_sk", DataType::Int),
                Field::new("web_sales.ws_net_paid", DataType::Float),
            ]),
            vec![
                dist.item_gen(),
                ColumnGen::UniformInt {
                    low: 0,
                    high: 9_999,
                },
                ColumnGen::UniformFloat {
                    low: 0.5,
                    high: 500.0,
                },
            ],
            bpr(0.15, ws_rows),
            seed ^ 0x5753,
        )
        .generate(ws_rows);
        catalog.register("web_sales", web_sales);

        let sr_rows = fact_rows / 8;
        let store_returns = TableGen::new(
            Schema::new(vec![
                Field::new("store_returns.sr_item_sk", DataType::Int),
                Field::new("store_returns.sr_return_amt", DataType::Float),
            ]),
            vec![
                dist.item_gen(),
                ColumnGen::UniformFloat {
                    low: 0.5,
                    high: 500.0,
                },
            ],
            bpr(0.05, sr_rows),
            seed ^ 0x5352,
        )
        .generate(sr_rows);
        catalog.register("store_returns", store_returns);

        let pr_rows = fact_rows / 10;
        let product_reviews = TableGen::new(
            Schema::new(vec![
                Field::new("product_reviews.pr_item_sk", DataType::Int),
                Field::new("product_reviews.pr_rating", DataType::Int),
            ]),
            vec![dist.item_gen(), ColumnGen::UniformInt { low: 1, high: 5 }],
            bpr(0.04, pr_rows),
            seed ^ 0x5052,
        )
        .generate(pr_rows);
        catalog.register("product_reviews", product_reviews);

        let item_rows = ITEM_DOMAIN as usize;
        let item = TableGen::new(
            Schema::new(vec![
                Field::new("item.i_item_sk", DataType::Int),
                Field::new("item.i_category", DataType::Str),
                Field::new("item.i_price", DataType::Float),
            ]),
            vec![
                ColumnGen::Serial { start: 0 },
                ColumnGen::Label {
                    prefix: "cat",
                    card: 20,
                },
                ColumnGen::UniformFloat {
                    low: 0.5,
                    high: 500.0,
                },
            ],
            bpr(0.03, item_rows),
            seed ^ 0x4954,
        )
        .generate(item_rows);
        catalog.register("item", item);

        let cust_rows = 10_000;
        let customer = TableGen::new(
            Schema::new(vec![
                Field::new("customer.c_customer_sk", DataType::Int),
                Field::new("customer.c_age_group", DataType::Str),
            ]),
            vec![
                ColumnGen::Serial { start: 0 },
                ColumnGen::Label {
                    prefix: "age",
                    card: 7,
                },
            ],
            bpr(0.03, cust_rows),
            seed ^ 0x4355,
        )
        .generate(cust_rows);
        catalog.register("customer", customer);

        Self { catalog, size }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instance_totals_roughly_match_label() {
        let d = BigBenchData::generate(InstanceSize::Gb100, &ItemDistribution::Uniform, 1);
        let total = d.catalog.total_base_bytes();
        let label = InstanceSize::Gb100.total_bytes();
        let ratio = total as f64 / label as f64;
        assert!((0.9..1.1).contains(&ratio), "total={total} ratio={ratio}");
    }

    #[test]
    fn gb500_is_bigger_than_gb100() {
        let a = BigBenchData::generate(InstanceSize::Gb100, &ItemDistribution::Uniform, 1);
        let b = BigBenchData::generate(InstanceSize::Gb500, &ItemDistribution::Uniform, 1);
        assert!(b.catalog.total_base_bytes() > 4 * a.catalog.total_base_bytes());
    }

    #[test]
    fn all_tables_registered() {
        let d = BigBenchData::generate(InstanceSize::Gb100, &ItemDistribution::Uniform, 1);
        for t in [
            "store_sales",
            "web_clickstreams",
            "web_sales",
            "store_returns",
            "product_reviews",
            "item",
            "customer",
        ] {
            assert!(d.catalog.get(t).is_some(), "missing table {t}");
        }
    }

    #[test]
    fn item_sk_domain_stats() {
        let d = BigBenchData::generate(InstanceSize::Gb100, &ItemDistribution::Uniform, 1);
        let s = d
            .catalog
            .column_stats("item", "item.i_item_sk")
            .expect("item stats");
        assert_eq!(s.min, 0);
        assert_eq!(s.max, ITEM_DOMAIN - 1);
        let f = d
            .catalog
            .column_stats("store_sales", "ss_item_sk")
            .expect("fact stats by bare name");
        assert!(f.min >= 0 && f.max < ITEM_DOMAIN);
    }

    #[test]
    fn histogram_distribution_skews_items() {
        let wb = WeightedBuckets::new(&[(0, 999, 9.0), (1_000, ITEM_DOMAIN - 1, 1.0)]);
        let d = BigBenchData::generate(InstanceSize::Gb100, &ItemDistribution::Histogram(wb), 1);
        let t = d.catalog.get("store_sales").unwrap();
        let idx = t.schema.index_of("ss_item_sk").unwrap();
        let hot = t
            .rows
            .iter()
            .filter(|r| r[idx].as_int().unwrap() < 1_000)
            .count();
        let frac = hot as f64 / t.len() as f64;
        assert!(frac > 0.8, "hot fraction {frac}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = BigBenchData::generate(InstanceSize::Gb100, &ItemDistribution::Uniform, 7);
        let b = BigBenchData::generate(InstanceSize::Gb100, &ItemDistribution::Uniform, 7);
        assert_eq!(
            a.catalog.get("store_sales").unwrap().rows,
            b.catalog.get("store_sales").unwrap().rows
        );
    }
}
