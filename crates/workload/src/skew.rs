//! Selectivity × skew range samplers (Table 1) and the Zipf sampler of §10.3.

use deepsea_relation::distr::{normal, Zipf};
use rand::{Rng, RngExt};

/// Query selectivity settings (fraction of the data returned).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Selectivity {
    /// `S`: 1% of the data.
    Small,
    /// `M`: 5%.
    Medium,
    /// `B`: 25%.
    Big,
}

impl Selectivity {
    /// The selected fraction of the domain.
    pub fn fraction(&self) -> f64 {
        match self {
            Selectivity::Small => 0.01,
            Selectivity::Medium => 0.05,
            Selectivity::Big => 0.25,
        }
    }

    /// Paper abbreviation.
    pub fn abbrev(&self) -> &'static str {
        match self {
            Selectivity::Small => "S",
            Selectivity::Medium => "M",
            Selectivity::Big => "B",
        }
    }
}

/// Skew of the selection-range midpoints (Table 1): uniform, or normal with a
/// *variance* of 7.5% (light) / 0.25% (heavy) of the domain — i.e. heavy skew
/// concentrates midpoints so tightly that consecutive ranges nearly repeat
/// (the regime where progressive partitioning shines).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Skew {
    /// `U`: midpoints uniform over the domain.
    Uniform,
    /// `L`: midpoints ~ N(center, 7.5% of domain).
    Light,
    /// `H`: midpoints ~ N(center, 0.25% of domain).
    Heavy,
}

impl Skew {
    /// Midpoint standard deviation as a fraction of the domain width
    /// (variance fractions 7.5% / 0.25% of the domain ⇒ std ≈ 5% / 0.1%
    /// of the width at our scale).
    pub fn std_fraction(&self) -> Option<f64> {
        match self {
            Skew::Uniform => None,
            Skew::Light => Some(0.05),
            Skew::Heavy => Some(0.001),
        }
    }

    /// Paper abbreviation.
    pub fn abbrev(&self) -> &'static str {
        match self {
            Skew::Uniform => "U",
            Skew::Light => "L",
            Skew::Heavy => "H",
        }
    }
}

/// A selection-range sampler over an integer domain.
#[derive(Debug, Clone)]
pub struct RangeSampler {
    /// Domain lower bound.
    pub domain_lo: i64,
    /// Domain upper bound (inclusive).
    pub domain_hi: i64,
    /// Query selectivity.
    pub selectivity: Selectivity,
    /// Midpoint skew.
    pub skew: Skew,
    /// Center of the skewed midpoint distribution (defaults to mid-domain).
    pub center: i64,
}

impl RangeSampler {
    /// Sampler centered on the middle of the domain.
    pub fn new(domain_lo: i64, domain_hi: i64, selectivity: Selectivity, skew: Skew) -> Self {
        assert!(domain_lo < domain_hi);
        Self {
            domain_lo,
            domain_hi,
            selectivity,
            skew,
            center: domain_lo + (domain_hi - domain_lo) / 2,
        }
    }

    /// Move the hot spot (for the workload-shift experiments of §10.4).
    pub fn with_center(mut self, center: i64) -> Self {
        self.center = center;
        self
    }

    /// Width of every sampled range.
    pub fn width(&self) -> i64 {
        let dom = (self.domain_hi - self.domain_lo + 1) as f64;
        ((dom * self.selectivity.fraction()).round() as i64).max(1)
    }

    /// Draw an inclusive selection range.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> (i64, i64) {
        let dom_w = (self.domain_hi - self.domain_lo) as f64;
        let mid = match self.skew.std_fraction() {
            None => rng.random_range(self.domain_lo..=self.domain_hi),
            Some(frac) => {
                let m = normal(rng, self.center as f64, frac * dom_w);
                (m.round() as i64).clamp(self.domain_lo, self.domain_hi)
            }
        };
        let w = self.width();
        let lo = (mid - w / 2).clamp(self.domain_lo, self.domain_hi);
        let hi = (lo + w - 1).min(self.domain_hi);
        (lo, hi)
    }
}

/// Midpoints drawn from a Zipf distribution over domain positions (Figure 8b:
/// "selection ranges follow a radically different distribution").
#[derive(Debug, Clone)]
pub struct ZipfRangeSampler {
    domain_lo: i64,
    domain_hi: i64,
    width: i64,
    zipf: Zipf,
}

impl ZipfRangeSampler {
    /// A Zipf(n_buckets, s) sampler over the domain with the given
    /// selectivity.
    pub fn new(domain_lo: i64, domain_hi: i64, selectivity: Selectivity, s: f64) -> Self {
        assert!(domain_lo < domain_hi);
        let dom = (domain_hi - domain_lo + 1) as f64;
        let width = ((dom * selectivity.fraction()).round() as i64).max(1);
        // One Zipf rank per possible range position (bucketed to 1000).
        Self {
            domain_lo,
            domain_hi,
            width,
            zipf: Zipf::new(1000, s),
        }
    }

    /// Draw an inclusive selection range.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> (i64, i64) {
        let rank = self.zipf.sample(rng) as i64 - 1; // 0-based bucket
        let dom_w = self.domain_hi - self.domain_lo;
        let mid = self.domain_lo + (rank * dom_w) / 1000;
        let lo = (mid - self.width / 2).clamp(self.domain_lo, self.domain_hi);
        let hi = (lo + self.width - 1).min(self.domain_hi);
        (lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn width_matches_selectivity() {
        let s = RangeSampler::new(0, 9_999, Selectivity::Small, Skew::Uniform);
        assert_eq!(s.width(), 100);
        let b = RangeSampler::new(0, 9_999, Selectivity::Big, Skew::Uniform);
        assert_eq!(b.width(), 2_500);
    }

    #[test]
    fn samples_stay_in_domain() {
        let mut rng = StdRng::seed_from_u64(1);
        for skew in [Skew::Uniform, Skew::Light, Skew::Heavy] {
            let s = RangeSampler::new(0, 9_999, Selectivity::Medium, skew);
            for _ in 0..500 {
                let (lo, hi) = s.sample(&mut rng);
                assert!(lo <= hi);
                assert!((0..=9_999).contains(&lo));
                assert!((0..=9_999).contains(&hi));
            }
        }
    }

    #[test]
    fn heavy_skew_concentrates_midpoints() {
        let mut rng = StdRng::seed_from_u64(2);
        let heavy = RangeSampler::new(0, 9_999, Selectivity::Small, Skew::Heavy);
        let light = RangeSampler::new(0, 9_999, Selectivity::Small, Skew::Light);
        let spread = |s: &RangeSampler, rng: &mut StdRng| {
            let mids: Vec<f64> = (0..500)
                .map(|_| {
                    let (lo, hi) = s.sample(rng);
                    (lo + hi) as f64 / 2.0
                })
                .collect();
            let mean = mids.iter().sum::<f64>() / mids.len() as f64;
            (mids.iter().map(|m| (m - mean).powi(2)).sum::<f64>() / mids.len() as f64).sqrt()
        };
        let sh = spread(&heavy, &mut rng);
        let sl = spread(&light, &mut rng);
        assert!(sh * 5.0 < sl, "heavy spread {sh} vs light {sl}");
    }

    #[test]
    fn center_moves_hot_spot() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = RangeSampler::new(0, 9_999, Selectivity::Small, Skew::Heavy).with_center(2_000);
        let mean_mid: f64 = (0..200)
            .map(|_| {
                let (lo, hi) = s.sample(&mut rng);
                (lo + hi) as f64 / 2.0
            })
            .sum::<f64>()
            / 200.0;
        assert!((mean_mid - 2_000.0).abs() < 150.0, "mean={mean_mid}");
    }

    #[test]
    fn zipf_sampler_prefers_low_end() {
        let mut rng = StdRng::seed_from_u64(4);
        let z = ZipfRangeSampler::new(0, 9_999, Selectivity::Small, 1.2);
        let low = (0..1000)
            .filter(|_| {
                let (lo, _) = z.sample(&mut rng);
                lo < 1_000
            })
            .count();
        assert!(low > 500, "Zipf mass at low ranks: {low}");
        // And in-domain.
        for _ in 0..200 {
            let (lo, hi) = z.sample(&mut rng);
            assert!(lo <= hi && lo >= 0 && hi <= 9_999);
        }
    }

    #[test]
    fn abbrevs() {
        assert_eq!(Selectivity::Small.abbrev(), "S");
        assert_eq!(Skew::Heavy.abbrev(), "H");
    }
}
