//! # deepsea-workload
//!
//! Workload generation for the DeepSea reproduction:
//!
//! - a **BigBench-like retail star schema** ([`schema`]) whose `item_sk`
//!   distribution can be driven by an SDSS-shaped histogram (the paper
//!   samples BigBench `item_sk` values from the SDSS `PhotoPrimary.ra`
//!   histogram, §10.1),
//! - ten **query templates** ([`templates`]) mirroring the BigBench queries
//!   the paper picks (Q1, Q5, Q7, Q9, Q12, Q16, Q20, Q26, Q29, Q30): joins +
//!   aggregation with an injected range selection on `item_sk`,
//! - an **SDSS-like trace generator** ([`sdss`]) reproducing the
//!   non-uniform, phase-shifting selection ranges of Figures 1–2,
//! - **selectivity × skew samplers** ([`skew`]) for Table 1's parameter grid
//!   (Small/Medium/Big × Uniform/Light/Heavy, plus Zipf),
//! - per-experiment **workload sequences** ([`sequences`]) for every figure
//!   of the evaluation.

pub mod schema;
pub mod sdss;
pub mod sequences;
pub mod skew;
pub mod templates;

pub use schema::{BigBenchData, InstanceSize};
pub use skew::{Selectivity, Skew};
pub use templates::TemplateId;
