//! SDSS-like trace generation (Figures 1–2 of the paper).
//!
//! The paper draws 1000 selection ranges on `PhotoPrimary.ra` from the real
//! SDSS query log (March 2010 – March 2011) and maps them onto BigBench's
//! `item_sk`. The log has two salient properties we reproduce parametrically:
//!
//! 1. **Non-uniform hits** (Fig. 1): the hit histogram over `ra ∈ [-20°,400°]`
//!    has a dominant hot region around 200–300° and a secondary one near
//!    100–180°, with long cold tails.
//! 2. **Evolving phases** (Fig. 2): the first ~30% of queries focus on
//!    200–300°, later queries shift to values around 100°; a few queries
//!    select the whole domain.

use deepsea_relation::distr::{normal, WeightedBuckets};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The `ra` domain of `PhotoPrimary` as plotted in Figure 1.
pub const RA_LO: f64 = -20.0;
/// Upper end of the plotted `ra` domain.
pub const RA_HI: f64 = 400.0;

/// A hit histogram over an integer domain shaped like the paper's Figure 1:
/// a dominant mode, a secondary mode, and cold tails.
pub fn sdss_like_histogram(domain_lo: i64, domain_hi: i64) -> WeightedBuckets {
    let w = (domain_hi - domain_lo) as f64;
    let at = |frac: f64| domain_lo + (w * frac) as i64;
    WeightedBuckets::new(&[
        (domain_lo, at(0.15), 2.0),     // cold leading tail
        (at(0.15) + 1, at(0.35), 18.0), // secondary mode (~100–180°)
        (at(0.35) + 1, at(0.50), 6.0),  // valley
        (at(0.50) + 1, at(0.75), 60.0), // dominant mode (~200–300°)
        (at(0.75) + 1, domain_hi, 4.0), // cold trailing tail
    ])
}

/// One query of the trace: an inclusive selection range.
pub type TraceRange = (i64, i64);

/// Parameters of the synthetic SDSS-like trace.
#[derive(Debug, Clone)]
pub struct SdssTrace {
    /// Domain lower bound the ranges are mapped onto.
    pub domain_lo: i64,
    /// Domain upper bound (inclusive).
    pub domain_hi: i64,
    /// Fraction of queries in the first (200–300°-like) phase.
    pub phase1_fraction: f64,
    /// Probability of a whole-domain query (the vertical lines in Fig. 2).
    pub full_domain_prob: f64,
    /// Probability that a query repeats one of the recent ranges (real query
    /// logs are full of re-submitted queries; reuse feeds on them).
    pub repeat_prob: f64,
}

impl SdssTrace {
    /// A trace over the given domain with the paper's phase structure.
    pub fn new(domain_lo: i64, domain_hi: i64) -> Self {
        assert!(domain_lo < domain_hi);
        Self {
            domain_lo,
            domain_hi,
            phase1_fraction: 0.3,
            full_domain_prob: 0.002,
            repeat_prob: 0.35,
        }
    }

    /// Generate `n` ranges in submission order. Deterministic per seed.
    pub fn generate(&self, n: usize, seed: u64) -> Vec<TraceRange> {
        let mut rng = StdRng::seed_from_u64(seed);
        let w = (self.domain_hi - self.domain_lo) as f64;
        let mut out: Vec<TraceRange> = Vec::with_capacity(n);
        for i in 0..n {
            if rng.random::<f64>() < self.full_domain_prob {
                out.push((self.domain_lo, self.domain_hi));
                continue;
            }
            // Re-submission of a recent query.
            if !out.is_empty() && rng.random::<f64>() < self.repeat_prob {
                let window = out.len().min(50);
                let pick = out.len() - 1 - rng.random_range(0..window);
                out.push(out[pick]);
                continue;
            }
            let phase1 = (i as f64) < self.phase1_fraction * n as f64;
            // Phase 1: hot spot at ~62% of the domain (the 200–300° band);
            // phase 2: hot spot at ~29% (the ~100° band). Width: mostly
            // narrow ranges with occasional wide ones (log-ish mixture).
            let center_frac = if phase1 { 0.62 } else { 0.29 };
            let center = self.domain_lo as f64 + center_frac * w;
            let mid = normal(&mut rng, center, 0.04 * w);
            let width = if rng.random::<f64>() < 0.15 {
                // occasional wide exploratory range
                (0.05 + 0.15 * rng.random::<f64>()) * w
            } else {
                (0.002 + 0.02 * rng.random::<f64>()) * w
            };
            let lo = (mid - width / 2.0).round() as i64;
            let hi = (mid + width / 2.0).round() as i64;
            let lo = lo.clamp(self.domain_lo, self.domain_hi);
            let hi = hi.clamp(lo, self.domain_hi);
            out.push((lo, hi));
        }
        out
    }

    /// Histogram of hits per equal-width bucket, as in Figure 1.
    pub fn hit_histogram(&self, ranges: &[TraceRange], buckets: usize) -> Vec<(i64, u64)> {
        assert!(buckets > 0);
        let w = (self.domain_hi - self.domain_lo + 1) as f64;
        let bw = (w / buckets as f64).max(1.0);
        let mut hist = vec![0u64; buckets];
        for &(lo, hi) in ranges {
            let b0 = (((lo - self.domain_lo) as f64) / bw) as usize;
            let b1 = (((hi - self.domain_lo) as f64) / bw) as usize;
            for h in hist.iter_mut().take(b1.min(buckets - 1) + 1).skip(b0) {
                *h += 1;
            }
        }
        hist.into_iter()
            .enumerate()
            .map(|(i, h)| (self.domain_lo + (i as f64 * bw) as i64, h))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> SdssTrace {
        SdssTrace::new(0, 39_999)
    }

    #[test]
    fn ranges_in_domain_and_ordered() {
        let t = trace();
        for (lo, hi) in t.generate(2_000, 1) {
            assert!(lo <= hi);
            assert!(lo >= 0 && hi <= 39_999);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let t = trace();
        assert_eq!(t.generate(100, 9), t.generate(100, 9));
        assert_ne!(t.generate(100, 9), t.generate(100, 10));
    }

    #[test]
    fn phase_shift_visible() {
        let t = trace();
        let ranges = t.generate(3_000, 2);
        let mid = |r: &TraceRange| (r.0 + r.1) / 2;
        let early: f64 = ranges[..600].iter().map(|r| mid(r) as f64).sum::<f64>() / 600.0;
        let late: f64 = ranges[2_400..].iter().map(|r| mid(r) as f64).sum::<f64>() / 600.0;
        assert!(
            early > late + 5_000.0,
            "phase 1 targets higher values: early={early} late={late}"
        );
    }

    #[test]
    fn histogram_has_dominant_mode_like_fig1() {
        let t = trace();
        let ranges = t.generate(10_000, 3);
        let hist = t.hit_histogram(&ranges, 42);
        let total: u64 = hist.iter().map(|(_, h)| h).sum();
        let max = hist.iter().map(|(_, h)| *h).max().unwrap();
        // Hot buckets dominate: the hottest bucket has far more hits than the
        // average bucket.
        assert!(max as f64 > 4.0 * (total as f64 / hist.len() as f64));
        // Cold tail exists.
        let min = hist.iter().map(|(_, h)| *h).min().unwrap();
        assert!(min * 10 < max);
    }

    #[test]
    fn whole_domain_queries_occur() {
        let t = trace();
        let ranges = t.generate(5_000, 4);
        assert!(
            ranges.iter().any(|&(lo, hi)| lo == 0 && hi == 39_999),
            "occasional whole-domain selections (Fig. 2's vertical lines)"
        );
    }

    #[test]
    fn sdss_like_histogram_shape() {
        let wb = sdss_like_histogram(0, 41_999);
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(5);
        let mut hot = 0;
        let n = 10_000;
        for _ in 0..n {
            let v = wb.sample(&mut rng);
            // dominant band is (50%..75%] of the domain
            if v > 21_000 && v <= 31_500 {
                hot += 1;
            }
        }
        let frac = hot as f64 / n as f64;
        assert!(frac > 0.5, "dominant band holds most mass: {frac}");
    }

    #[test]
    fn hit_histogram_bucket_count() {
        let t = trace();
        let hist = t.hit_histogram(&[(0, 100), (39_000, 39_999)], 10);
        assert_eq!(hist.len(), 10);
        assert!(hist[0].1 >= 1);
        assert!(hist[9].1 >= 1);
        assert_eq!(hist[5].1, 0);
    }
}
