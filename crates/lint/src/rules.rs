//! The invariant rules, evaluated over the token stream of one file.
//!
//! Rule catalog (see DESIGN.md §10 for the rationale tied to each
//! determinism guarantee):
//!
//! - **D1 `hash_iter`** — no `HashMap`/`HashSet` in decision-path crates
//!   (`core`, `engine`, `storage`, `workload`): both binding one and
//!   iterating one (`iter`/`keys`/`values`/`into_iter`/`drain`/for-loops)
//!   are flagged, because iteration order feeds nondeterminism into replay.
//! - **D2 `wall_clock`** — no wall-clock or ambient entropy (`Instant`,
//!   `SystemTime`, `thread_rng`, …) outside the `criterion` shim.
//! - **P1 `panic`** — no `unwrap()` / `panic!` / `unreachable!` / `todo!` /
//!   `unimplemented!` in non-test product code; `expect("invariant: …")` is
//!   the only sanctioned escape.
//! - **E1 `discard`** — no `let _ =` discarding a call matching fallible
//!   name patterns (`try_*`, `*_costed`, `append`, `write!`/`writeln!`),
//!   except `write!`/`writeln!` into a `String` (infallible by contract).
//! - **L1 `layering`** — no `std::fs` / `std::net` / `std::thread` outside
//!   `crates/storage` and the bench harness: core I/O goes through
//!   `ExecutionBackend` / `SimFs` only.
//!
//! Any site may be exempted with a justified marker on the same line or the
//! line directly above:
//!
//! ```text
//! // deepsea-lint: allow(hash_iter) -- drained via sort_unstable, order-free
//! ```
//!
//! A marker without a `-- justification` (or naming an unknown rule) is
//! itself a violation (**M0 `marker`**). Test code — files under `tests/`,
//! `benches/` or `examples/`, and `#[cfg(test)]` / `#[test]` items — is
//! exempt from every rule.

use crate::lexer::{lex, TokKind, Token};

/// Typed rule identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// D1: hash-collection binding/iteration in a decision-path crate.
    HashIter,
    /// D2: wall-clock or ambient entropy outside the criterion shim.
    WallClock,
    /// P1: panic paths in non-test product code.
    Panic,
    /// E1: `let _ =` discarding a fallible call.
    Discard,
    /// L1: direct `std::fs`/`std::net`/`std::thread` outside storage/bench.
    Layering,
    /// M0: malformed or unjustified allow-marker.
    Marker,
}

impl RuleId {
    /// Short code used in reports and the baseline file.
    pub fn code(self) -> &'static str {
        match self {
            RuleId::HashIter => "D1",
            RuleId::WallClock => "D2",
            RuleId::Panic => "P1",
            RuleId::Discard => "E1",
            RuleId::Layering => "L1",
            RuleId::Marker => "M0",
        }
    }

    /// The slug accepted by `allow(...)` markers.
    pub fn slug(self) -> &'static str {
        match self {
            RuleId::HashIter => "hash_iter",
            RuleId::WallClock => "wall_clock",
            RuleId::Panic => "panic",
            RuleId::Discard => "discard",
            RuleId::Layering => "layering",
            RuleId::Marker => "marker",
        }
    }

    /// Parse a marker slug (M0 itself is not allowable).
    pub fn from_slug(s: &str) -> Option<RuleId> {
        match s {
            "hash_iter" => Some(RuleId::HashIter),
            "wall_clock" => Some(RuleId::WallClock),
            "panic" => Some(RuleId::Panic),
            "discard" => Some(RuleId::Discard),
            "layering" => Some(RuleId::Layering),
            _ => None,
        }
    }

    /// Every reportable rule, in code order.
    pub fn all() -> [RuleId; 6] {
        [
            RuleId::HashIter,
            RuleId::WallClock,
            RuleId::Panic,
            RuleId::Discard,
            RuleId::Layering,
            RuleId::Marker,
        ]
    }
}

/// One diagnostic: a rule violated at `file:line`.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The rule violated.
    pub rule: RuleId,
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// Human-readable description of the specific site.
    pub message: String,
}

/// Crates whose control flow decides what gets materialized, evicted,
/// journaled or replayed — any iteration-order dependence here breaks
/// bit-identical replay.
const DECISION_CRATES: [&str; 4] = ["core", "engine", "storage", "workload"];

/// Crates holding product code held to panic-freedom (P1) and discard (E1).
const PRODUCT_CRATES: [&str; 6] = ["core", "engine", "storage", "workload", "obs", "relation"];

/// Vendored stand-ins for registry crates; exempt from product rules.
const SHIM_CRATES: [&str; 4] = ["rand", "proptest", "criterion", "serde"];

/// Identifiers that reach for wall-clock time or ambient entropy.
const WALL_CLOCK_IDENTS: [&str; 5] = [
    "Instant",
    "SystemTime",
    "RandomState",
    "thread_rng",
    "from_entropy",
];

/// Hash-collection iteration methods whose order is nondeterministic.
const HASH_ITER_METHODS: [&str; 8] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "drain",
    "retain",
];

/// `std::` modules that touch the outside world; only `crates/storage` (the
/// simulated filesystem boundary) and the bench harness may name them.
const LAYERING_MODULES: [&str; 3] = ["fs", "net", "thread"];

/// The sanctioned concurrency surface: the one file outside the exempt
/// crates allowed to name `std::thread` — the feature-gated real-thread
/// serving layer, which routes all cross-thread state through
/// `deepsea_storage::sync::EpochCell`. `fs`/`net` stay forbidden there, and
/// `thread` stays forbidden everywhere else; growing this list is a
/// design decision, not a convenience.
const SANCTIONED_CONCURRENCY: [&str; 1] = ["crates/core/src/server/workers.rs"];

/// The crate a workspace-relative path belongs to (`crates/<name>/…`), or a
/// pseudo-crate for top-level dirs (`src/` → `deepsea`, `tests/` → `tests`).
fn crate_of(rel: &str) -> &str {
    if let Some(rest) = rel.strip_prefix("crates/") {
        rest.split('/').next().unwrap_or("")
    } else {
        rel.split('/').next().unwrap_or("")
    }
}

/// Whole-file test/bench/example scope: nothing in these files is linted.
/// Covers `tests/`, `benches/` and `examples/` dirs, plus module files named
/// `tests.rs` / `*_tests.rs` (their `#[cfg(test)]` lives on the `mod`
/// declaration in the parent file, out of this file's token stream).
fn is_test_path(rel: &str) -> bool {
    let parts: Vec<&str> = rel.split('/').collect();
    if parts.contains(&"tests") || parts.contains(&"benches") || parts.contains(&"examples") {
        return true;
    }
    let file = parts.last().copied().unwrap_or("");
    file == "tests.rs" || file.ends_with("_tests.rs")
}

/// Does `rule` apply to the file at `rel` at all?
fn rule_enabled(rule: RuleId, rel: &str) -> bool {
    let c = crate_of(rel);
    let shim = SHIM_CRATES.contains(&c);
    match rule {
        RuleId::HashIter => DECISION_CRATES.contains(&c),
        RuleId::WallClock => c != "criterion",
        RuleId::Panic | RuleId::Discard => PRODUCT_CRATES.contains(&c),
        RuleId::Layering => !matches!(c, "storage" | "bench" | "lint") && !shim,
        RuleId::Marker => true,
    }
}

/// A parsed `// deepsea-lint: allow(slug[, slug]) -- justification` marker.
struct Marker {
    line: u32,
    rules: Vec<RuleId>,
}

/// Lint one file's source. `rel` is the workspace-relative path (used for
/// crate scoping); returns violations sorted by line.
pub fn lint_source(rel: &str, src: &str) -> Vec<Violation> {
    if is_test_path(rel) {
        return Vec::new();
    }
    let all = lex(src);
    let (src_toks, comments): (Vec<Token>, Vec<Token>) = all
        .into_iter()
        .partition(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment));

    let mut out = Vec::new();
    let (markers, marker_violations) = collect_markers(rel, &comments);
    out.extend(marker_violations);

    let test_spans = test_item_spans(&src_toks);
    let in_test = |idx: usize| test_spans.iter().any(|&(a, b)| idx >= a && idx < b);

    let hash_idents = collect_typed_idents(&src_toks, &["HashMap", "HashSet"]);
    let string_idents = collect_typed_idents(&src_toks, &["String"]);

    let t = &src_toks;
    for i in 0..t.len() {
        if in_test(i) {
            continue;
        }
        rule_hash(rel, t, i, &hash_idents, &mut out);
        rule_wall_clock(rel, t, i, &mut out);
        rule_panic(rel, t, i, &mut out);
        rule_discard(rel, t, i, &string_idents, &mut out);
        rule_layering(rel, t, i, &mut out);
    }

    // Apply markers: a marker suppresses matching violations on its own line
    // and on the next line holding a source token.
    let suppressed = |v: &Violation| {
        markers.iter().any(|m| {
            if !m.rules.contains(&v.rule) {
                return false;
            }
            if v.line == m.line {
                return true;
            }
            let next = t.iter().map(|tok| tok.line).find(|&l| l > m.line);
            next == Some(v.line)
        })
    };
    out.retain(|v| v.rule == RuleId::Marker || !suppressed(v));
    out.sort_by_key(|v| (v.line, v.rule));
    out
}

/// Extract allow-markers from line comments; malformed ones are violations.
fn collect_markers(rel: &str, comments: &[Token]) -> (Vec<Marker>, Vec<Violation>) {
    let mut markers = Vec::new();
    let mut violations = Vec::new();
    for c in comments {
        if c.kind != TokKind::LineComment {
            continue;
        }
        let text = c.text.trim();
        let Some(rest) = text.strip_prefix("deepsea-lint:") else {
            continue;
        };
        let mut bad = |why: &str| {
            violations.push(Violation {
                rule: RuleId::Marker,
                file: rel.to_string(),
                line: c.line,
                message: format!("malformed deepsea-lint marker: {why}"),
            });
        };
        let rest = rest.trim();
        let Some(args) = rest.strip_prefix("allow(") else {
            bad("expected `allow(<rule>)`");
            continue;
        };
        let Some(close) = args.find(')') else {
            bad("unterminated `allow(`");
            continue;
        };
        let (slugs, tail) = args.split_at(close);
        let tail = tail[1..].trim();
        let justified = tail
            .strip_prefix("--")
            .is_some_and(|j| !j.trim().is_empty());
        if !justified {
            bad("missing `-- <justification>`");
            continue;
        }
        let mut rules = Vec::new();
        let mut unknown = None;
        for slug in slugs.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            match RuleId::from_slug(slug) {
                Some(r) => rules.push(r),
                None => unknown = Some(slug.to_string()),
            }
        }
        if let Some(u) = unknown {
            bad(&format!("unknown rule `{u}`"));
            continue;
        }
        if rules.is_empty() {
            bad("empty rule list");
            continue;
        }
        markers.push(Marker {
            line: c.line,
            rules,
        });
    }
    (markers, violations)
}

/// Token-index spans of `#[cfg(test)]` / `#[test]` items (the attribute up
/// to the end of the item's brace block or terminating `;`).
fn test_item_spans(t: &[Token]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < t.len() {
        if t[i].is_punct('#') && t.get(i + 1).is_some_and(|n| n.is_punct('[')) {
            let (attr_end, is_test) = scan_attribute(t, i + 1);
            if is_test {
                let mut j = attr_end;
                // Skip any stacked attributes (`#[cfg(test)] #[allow(...)]`).
                while j < t.len()
                    && t[j].is_punct('#')
                    && t.get(j + 1).is_some_and(|n| n.is_punct('['))
                {
                    let (e, _) = scan_attribute(t, j + 1);
                    j = e;
                }
                let end = scan_item_end(t, j);
                spans.push((i, end));
                i = end;
                continue;
            }
            i = attr_end;
            continue;
        }
        i += 1;
    }
    spans
}

/// Scan a `[...]` attribute starting at its `[`; returns (index past `]`,
/// whether it marks test-only code). `#[test]`, `#[cfg(test)]` and any
/// `cfg(...)` whose argument list mentions `test` qualify.
fn scan_attribute(t: &[Token], open: usize) -> (usize, bool) {
    let mut depth = 0usize;
    let mut idents = Vec::new();
    let mut j = open;
    while j < t.len() {
        let tok = &t[j];
        if tok.is_punct('[') {
            depth += 1;
        } else if tok.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                j += 1;
                break;
            }
        } else if tok.kind == TokKind::Ident {
            idents.push(tok.text.as_str().to_string());
        }
        j += 1;
    }
    let first = idents.first().map(String::as_str);
    let is_test =
        first == Some("test") || (first == Some("cfg") && idents.iter().any(|s| s == "test"));
    (j, is_test)
}

/// From the first token of an item, find the index just past its end: the
/// matching `}` of its first depth-0 brace block, or a depth-0 `;`.
fn scan_item_end(t: &[Token], start: usize) -> usize {
    let mut j = start;
    let mut depth = 0i32; // (), [] nesting inside the signature
    while j < t.len() {
        let tok = &t[j];
        if tok.is_punct('(') || tok.is_punct('[') {
            depth += 1;
        } else if tok.is_punct(')') || tok.is_punct(']') {
            depth -= 1;
        } else if tok.is_punct(';') && depth <= 0 {
            return j + 1;
        } else if tok.is_punct('{') && depth <= 0 {
            let mut braces = 1i32;
            j += 1;
            while j < t.len() && braces > 0 {
                if t[j].is_punct('{') {
                    braces += 1;
                } else if t[j].is_punct('}') {
                    braces -= 1;
                }
                j += 1;
            }
            return j;
        }
        j += 1;
    }
    j
}

/// Names of identifiers bound with one of `type_names` in this file:
/// `x: [&][mut] T`, `let [mut] x = T::...`, struct fields, fn params.
fn collect_typed_idents(t: &[Token], type_names: &[&str]) -> Vec<String> {
    let mut found: Vec<String> = Vec::new();
    for i in 0..t.len() {
        if t[i].kind != TokKind::Ident || !type_names.contains(&t[i].text.as_str()) {
            continue;
        }
        // Walk back over `&` and `mut` to the binding shape.
        let mut k = i;
        while k > 0 && (t[k - 1].is_punct('&') || t[k - 1].is_ident("mut")) {
            k -= 1;
        }
        if k >= 2 && t[k - 1].is_punct(':') && t[k - 2].kind == TokKind::Ident {
            push_unique(&mut found, &t[k - 2].text);
            continue;
        }
        // `let [mut] x = T::new()` — walk back from `=` to the binding.
        if k >= 2 && t[k - 1].is_punct('=') {
            let mut m = k - 1;
            while m > 0 {
                let p = &t[m - 1];
                if p.is_punct(';') || p.is_punct('{') || p.is_punct('}') {
                    break;
                }
                if p.is_ident("let") {
                    // Binding ident is the first ident after `let`/`let mut`.
                    let mut b = m;
                    if t.get(b).is_some_and(|x| x.is_ident("mut")) {
                        b += 1;
                    }
                    if let Some(x) = t.get(b) {
                        if x.kind == TokKind::Ident {
                            push_unique(&mut found, &x.text);
                        }
                    }
                    break;
                }
                m -= 1;
            }
        }
    }
    found
}

fn push_unique(v: &mut Vec<String>, s: &str) {
    if !v.iter().any(|x| x == s) {
        v.push(s.to_string());
    }
}

/// Is token `i` inside a `use` declaration? (Statement scan back to the
/// nearest `;`/`{`/`}`, then look for a leading `use`.)
fn in_use_stmt(t: &[Token], i: usize) -> bool {
    let mut k = i;
    while k > 0 {
        let p = &t[k - 1];
        if p.is_punct(';') || p.is_punct('}') {
            break;
        }
        // `{` only ends the scan when it opens a block, not a use-group
        // (`use std::{fs, io}`); a use-group brace is preceded by `::`.
        if p.is_punct('{') && !(k >= 3 && t[k - 2].is_punct(':') && t[k - 3].is_punct(':')) {
            break;
        }
        if p.is_ident("use") {
            return true;
        }
        k -= 1;
    }
    false
}

fn violation(out: &mut Vec<Violation>, rule: RuleId, rel: &str, line: u32, msg: String) {
    out.push(Violation {
        rule,
        file: rel.to_string(),
        line,
        message: msg,
    });
}

/// D1 — hash collections in decision-path crates: flag the binding site of
/// any `HashMap`/`HashSet` (outside `use`), iteration-method calls on a
/// known hash binding, and `for … in` loops over one.
fn rule_hash(rel: &str, t: &[Token], i: usize, hash_idents: &[String], out: &mut Vec<Violation>) {
    if !rule_enabled(RuleId::HashIter, rel) {
        return;
    }
    let tok = &t[i];
    if tok.kind != TokKind::Ident {
        return;
    }
    if (tok.text == "HashMap" || tok.text == "HashSet") && !in_use_stmt(t, i) {
        // Don't double-report the constructor of an annotated binding
        // (`let m: HashMap<..> = HashMap::new()` → one diagnostic).
        let constructor = t.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && t.get(i + 2).is_some_and(|n| n.is_punct(':'));
        let annotated = i >= 1 && {
            let mut k = i;
            while k > 0 && (t[k - 1].is_punct('&') || t[k - 1].is_ident("mut")) {
                k -= 1;
            }
            k >= 1 && t[k - 1].is_punct('=')
        };
        if !(constructor && annotated) {
            violation(
                out,
                RuleId::HashIter,
                rel,
                tok.line,
                format!(
                    "`{}` in a decision-path crate: iteration order is \
                     nondeterministic; use `BTreeMap`/`BTreeSet` or justify with \
                     `// deepsea-lint: allow(hash_iter) -- <why>`",
                    tok.text
                ),
            );
        }
        return;
    }
    if !hash_idents.iter().any(|h| h == &tok.text) {
        return;
    }
    // `name.iter()` and friends.
    if t.get(i + 1).is_some_and(|n| n.is_punct('.')) {
        if let Some(m) = t.get(i + 2) {
            if m.kind == TokKind::Ident
                && HASH_ITER_METHODS.contains(&m.text.as_str())
                && t.get(i + 3).is_some_and(|n| n.is_punct('('))
            {
                violation(
                    out,
                    RuleId::HashIter,
                    rel,
                    tok.line,
                    format!(
                        "iteration `{}.{}()` over a hash collection — order is \
                         nondeterministic",
                        tok.text, m.text
                    ),
                );
            }
        }
    }
    // `for x in [&][mut] name {` — direct loop over the collection.
    if t.get(i + 1).is_some_and(|n| n.is_punct('{')) {
        let mut k = i;
        while k > 0 && (t[k - 1].is_punct('&') || t[k - 1].is_ident("mut")) {
            k -= 1;
        }
        if k >= 1 && t[k - 1].is_ident("in") {
            violation(
                out,
                RuleId::HashIter,
                rel,
                tok.line,
                format!(
                    "`for … in {}` iterates a hash collection — order is \
                     nondeterministic",
                    tok.text
                ),
            );
        }
    }
}

/// D2 — wall-clock / ambient entropy identifiers.
fn rule_wall_clock(rel: &str, t: &[Token], i: usize, out: &mut Vec<Violation>) {
    if !rule_enabled(RuleId::WallClock, rel) {
        return;
    }
    let tok = &t[i];
    if tok.kind == TokKind::Ident && WALL_CLOCK_IDENTS.contains(&tok.text.as_str()) {
        violation(
            out,
            RuleId::WallClock,
            rel,
            tok.line,
            format!(
                "`{}` is wall-clock/ambient entropy — all time and randomness \
                 must flow from the simulated clock or an explicit seed",
                tok.text
            ),
        );
    }
}

/// P1 — panic paths: `.unwrap()`, panic-family macros, and `.expect(msg)`
/// whose message does not start with `invariant: `.
fn rule_panic(rel: &str, t: &[Token], i: usize, out: &mut Vec<Violation>) {
    if !rule_enabled(RuleId::Panic, rel) {
        return;
    }
    let tok = &t[i];
    if tok.kind != TokKind::Ident {
        return;
    }
    let after_dot = i >= 1 && t[i - 1].is_punct('.');
    let called = t.get(i + 1).is_some_and(|n| n.is_punct('('));
    if tok.text == "unwrap" && after_dot && called {
        violation(
            out,
            RuleId::Panic,
            rel,
            tok.line,
            "`.unwrap()` in product code — propagate with `?` or use \
             `.expect(\"invariant: …\")`"
                .to_string(),
        );
        return;
    }
    if tok.text == "expect" && after_dot && called {
        let arg = t.get(i + 2);
        let sanctioned = arg.is_some_and(|a| {
            matches!(a.kind, TokKind::Str | TokKind::RawStr) && a.text.starts_with("invariant: ")
        });
        if !sanctioned {
            violation(
                out,
                RuleId::Panic,
                rel,
                tok.line,
                "`.expect(…)` message must be a literal starting with \
                 `invariant: ` (documenting why the invariant holds)"
                    .to_string(),
            );
        }
        return;
    }
    if matches!(
        tok.text.as_str(),
        "panic" | "unreachable" | "todo" | "unimplemented"
    ) && t.get(i + 1).is_some_and(|n| n.is_punct('!'))
    {
        violation(
            out,
            RuleId::Panic,
            rel,
            tok.line,
            format!("`{}!` in product code — return an error instead", tok.text),
        );
    }
}

/// E1 — `let _ = <expr>;` discarding a fallible call. The `write!`/
/// `writeln!` exemption for `String` receivers is encoded here directly:
/// `fmt::Write` into a `String` cannot fail, so discarding its `Result` is
/// the idiomatic pattern and needs no marker.
fn rule_discard(
    rel: &str,
    t: &[Token],
    i: usize,
    string_idents: &[String],
    out: &mut Vec<Violation>,
) {
    if !rule_enabled(RuleId::Discard, rel) {
        return;
    }
    if !(t[i].is_ident("let")
        && t.get(i + 1).is_some_and(|n| n.is_ident("_"))
        && t.get(i + 2).is_some_and(|n| n.is_punct('=')))
    {
        return;
    }
    // Scan the discarded expression up to the statement's `;`.
    let mut depth = 0i32;
    let mut j = i + 3;
    while let Some(tok) = t.get(j) {
        if tok.is_punct('(') || tok.is_punct('[') || tok.is_punct('{') {
            depth += 1;
        } else if tok.is_punct(')') || tok.is_punct(']') || tok.is_punct('}') {
            depth -= 1;
        } else if tok.is_punct(';') && depth <= 0 {
            break;
        } else if tok.kind == TokKind::Ident {
            let name = tok.text.as_str();
            // `write!(recv, …)` / `writeln!(recv, …)`.
            if (name == "write" || name == "writeln")
                && t.get(j + 1).is_some_and(|n| n.is_punct('!'))
                && t.get(j + 2).is_some_and(|n| n.is_punct('('))
            {
                let mut a = j + 3;
                while t
                    .get(a)
                    .is_some_and(|n| n.is_punct('&') || n.is_ident("mut"))
                {
                    a += 1;
                }
                let recv_is_string = t.get(a).is_some_and(|r| {
                    r.kind == TokKind::Ident && string_idents.iter().any(|s| s == &r.text)
                });
                if !recv_is_string {
                    violation(
                        out,
                        RuleId::Discard,
                        rel,
                        tok.line,
                        format!(
                            "`let _ = {name}!(…)` discards an I/O write result — \
                             only `fmt::Write` into a `String` is infallible"
                        ),
                    );
                }
                return;
            }
            let fallible =
                name.starts_with("try_") || name.ends_with("_costed") || name == "append";
            if fallible && (t.get(j + 1).is_some_and(|n| n.is_punct('('))) {
                violation(
                    out,
                    RuleId::Discard,
                    rel,
                    tok.line,
                    format!(
                        "`let _ =` discards the result of fallible `{name}(…)` — \
                         handle or propagate the error"
                    ),
                );
                return;
            }
        }
        j += 1;
    }
}

/// L1 — `std::fs` / `std::net` / `std::thread` outside the storage crate
/// and bench harness, in both path and `use std::{…}` group form.
fn rule_layering(rel: &str, t: &[Token], i: usize, out: &mut Vec<Violation>) {
    if !rule_enabled(RuleId::Layering, rel) {
        return;
    }
    let tok = &t[i];
    if !(tok.is_ident("std")
        && t.get(i + 1).is_some_and(|n| n.is_punct(':'))
        && t.get(i + 2).is_some_and(|n| n.is_punct(':')))
    {
        return;
    }
    let mut flag = |name: &str, line: u32| {
        // The sanctioned concurrency surface may name `thread` (and only
        // `thread`): the epoch handoff is built on `EpochCell`, and the
        // file is part of the audited serving layer.
        if name == "thread" && SANCTIONED_CONCURRENCY.contains(&rel) {
            return;
        }
        violation(
            out,
            RuleId::Layering,
            rel,
            line,
            format!(
                "`std::{name}` outside `crates/storage`/bench — real I/O and \
                 threads go through `ExecutionBackend`/`SimFs` only"
            ),
        );
    };
    if let Some(m) = t.get(i + 3) {
        if m.kind == TokKind::Ident && LAYERING_MODULES.contains(&m.text.as_str()) {
            flag(&m.text.clone(), m.line);
            return;
        }
        // `use std::{fs, io::Write}` group form.
        if m.is_punct('{') {
            let mut depth = 1i32;
            let mut j = i + 4;
            while let Some(g) = t.get(j) {
                if g.is_punct('{') {
                    depth += 1;
                } else if g.is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if depth == 1
                    && g.kind == TokKind::Ident
                    && LAYERING_MODULES.contains(&g.text.as_str())
                {
                    flag(&g.text.clone(), g.line);
                }
                j += 1;
            }
        }
    }
}
