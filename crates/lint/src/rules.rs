//! The invariant rules, evaluated over the token stream of one file.
//!
//! Rule catalog (see DESIGN.md §10 for the rationale tied to each
//! determinism guarantee):
//!
//! - **D1 `hash_iter`** — no `HashMap`/`HashSet` in decision-path crates
//!   (`core`, `engine`, `storage`, `workload`): both binding one and
//!   iterating one (`iter`/`keys`/`values`/`into_iter`/`drain`/for-loops)
//!   are flagged, because iteration order feeds nondeterminism into replay.
//! - **D2 `wall_clock`** — no wall-clock or ambient entropy (`Instant`,
//!   `SystemTime`, `thread_rng`, …) outside the `criterion` shim.
//! - **P1 `panic`** — no `unwrap()` / `panic!` / `unreachable!` / `todo!` /
//!   `unimplemented!` in non-test product code; `expect("invariant: …")` is
//!   the only sanctioned escape.
//! - **E1 `discard`** — no `let _ =` discarding a call matching fallible
//!   name patterns (`try_*`, `*_costed`, `append`, `write!`/`writeln!`),
//!   except `write!`/`writeln!` into a `String` (infallible by contract).
//! - **L1 `layering`** — no `std::fs` / `std::net` / `std::thread` outside
//!   `crates/storage` and the bench harness: core I/O goes through
//!   `ExecutionBackend` / `SimFs` only.
//! - **R1 `read_path_purity`** — (corpus-level, see [`crate::graph`]) no fn
//!   reachable from a `driver/read_path` entry point or a fn taking
//!   `&ReadSnapshot` may call `&mut self` methods on registry/catalog/pool
//!   types, `Journal::append`, or anything in `driver/write_path`.
//! - **R2 `lock_discipline`** — in the sanctioned concurrency files
//!   (`server/workers.rs`, `storage/sync.rs`): no nested guard acquisition
//!   and no backend/journal call under a held guard; `std::sync` primitives
//!   nowhere else.
//! - **R3 `cost_flow`** — cost components returned by `try_*` / `*_costed`
//!   / `drain_retry_*` calls must not be silently dropped (discarded tuple
//!   components, unconsumed statements, or the cost-dropping
//!   `SimFs::delete` wrapper in core).
//! - **R4 `obs_gated`** — Observer derived computation (`DecisionEvent`
//!   construction, `format!`-built labels feeding sinks) must sit under an
//!   `enabled()` / `events_enabled()` / span-presence guard.
//!
//! Any site may be exempted with a justified marker on the same line or the
//! line directly above:
//!
//! ```text
//! // deepsea-lint: allow(hash_iter) -- drained via sort_unstable, order-free
//! ```
//!
//! A marker without a `-- justification` (or naming an unknown rule) is
//! itself a violation (**M0 `marker`**). Test code — files under `tests/`,
//! `benches/` or `examples/`, and `#[cfg(test)]` / `#[test]` items — is
//! exempt from every rule.

use crate::lexer::{lex, TokKind, Token};

/// Typed rule identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// D1: hash-collection binding/iteration in a decision-path crate.
    HashIter,
    /// D2: wall-clock or ambient entropy outside the criterion shim.
    WallClock,
    /// P1: panic paths in non-test product code.
    Panic,
    /// E1: `let _ =` discarding a fallible call.
    Discard,
    /// L1: direct `std::fs`/`std::net`/`std::thread` outside storage/bench.
    Layering,
    /// M0: malformed or unjustified allow-marker.
    Marker,
    /// R1: read-path reachability into catalog mutation (corpus-level).
    ReadPurity,
    /// R2: lock guard shape in sanctioned files; sync primitives elsewhere.
    LockDiscipline,
    /// R3: silently dropped simulated-cost components.
    CostFlow,
    /// R4: ungated Observer derived computation.
    ObsGated,
}

impl RuleId {
    /// Short code used in reports and the baseline file.
    pub fn code(self) -> &'static str {
        match self {
            RuleId::HashIter => "D1",
            RuleId::WallClock => "D2",
            RuleId::Panic => "P1",
            RuleId::Discard => "E1",
            RuleId::Layering => "L1",
            RuleId::Marker => "M0",
            RuleId::ReadPurity => "R1",
            RuleId::LockDiscipline => "R2",
            RuleId::CostFlow => "R3",
            RuleId::ObsGated => "R4",
        }
    }

    /// The slug accepted by `allow(...)` markers.
    pub fn slug(self) -> &'static str {
        match self {
            RuleId::HashIter => "hash_iter",
            RuleId::WallClock => "wall_clock",
            RuleId::Panic => "panic",
            RuleId::Discard => "discard",
            RuleId::Layering => "layering",
            RuleId::Marker => "marker",
            RuleId::ReadPurity => "read_path_purity",
            RuleId::LockDiscipline => "lock_discipline",
            RuleId::CostFlow => "cost_flow",
            RuleId::ObsGated => "obs_gated",
        }
    }

    /// Parse a marker slug (M0 itself is not allowable).
    pub fn from_slug(s: &str) -> Option<RuleId> {
        match s {
            "hash_iter" => Some(RuleId::HashIter),
            "wall_clock" => Some(RuleId::WallClock),
            "panic" => Some(RuleId::Panic),
            "discard" => Some(RuleId::Discard),
            "layering" => Some(RuleId::Layering),
            "read_path_purity" => Some(RuleId::ReadPurity),
            "lock_discipline" => Some(RuleId::LockDiscipline),
            "cost_flow" => Some(RuleId::CostFlow),
            "obs_gated" => Some(RuleId::ObsGated),
            _ => None,
        }
    }

    /// Every reportable rule, in code order.
    pub fn all() -> [RuleId; 10] {
        [
            RuleId::HashIter,
            RuleId::WallClock,
            RuleId::Panic,
            RuleId::Discard,
            RuleId::Layering,
            RuleId::Marker,
            RuleId::ReadPurity,
            RuleId::LockDiscipline,
            RuleId::CostFlow,
            RuleId::ObsGated,
        ]
    }
}

/// One diagnostic: a rule violated at `file:line`.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The rule violated.
    pub rule: RuleId,
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// Human-readable description of the specific site.
    pub message: String,
}

/// Crates whose control flow decides what gets materialized, evicted,
/// journaled or replayed — any iteration-order dependence here breaks
/// bit-identical replay.
const DECISION_CRATES: [&str; 4] = ["core", "engine", "storage", "workload"];

/// Crates holding product code held to panic-freedom (P1) and discard (E1).
const PRODUCT_CRATES: [&str; 6] = ["core", "engine", "storage", "workload", "obs", "relation"];

/// Vendored stand-ins for registry crates; exempt from product rules.
const SHIM_CRATES: [&str; 4] = ["rand", "proptest", "criterion", "serde"];

/// Identifiers that reach for wall-clock time or ambient entropy.
const WALL_CLOCK_IDENTS: [&str; 5] = [
    "Instant",
    "SystemTime",
    "RandomState",
    "thread_rng",
    "from_entropy",
];

/// Hash-collection iteration methods whose order is nondeterministic.
const HASH_ITER_METHODS: [&str; 8] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "drain",
    "retain",
];

/// `std::` modules that touch the outside world; only `crates/storage` (the
/// simulated filesystem boundary) and the bench harness may name them.
const LAYERING_MODULES: [&str; 3] = ["fs", "net", "thread"];

/// The sanctioned concurrency surface: the one file outside the exempt
/// crates allowed to name `std::thread` — the feature-gated real-thread
/// serving layer, which routes all cross-thread state through
/// `deepsea_storage::sync::EpochCell`. `fs`/`net` stay forbidden there, and
/// `thread` stays forbidden everywhere else; growing this list is a
/// design decision, not a convenience.
const SANCTIONED_CONCURRENCY: [&str; 1] = ["crates/core/src/server/workers.rs"];

/// R2's sanctioned files: the only places allowed to *hold* lock guards,
/// and therefore the only places whose guard shape is checked instead of
/// their imports.
const R2_SANCTIONED: [&str; 2] = [
    "crates/core/src/server/workers.rs",
    "crates/storage/src/sync.rs",
];

/// `std::sync` primitive type/module names R2 bans outside the sanctioned
/// files (`Arc` is shared ownership, not a lock — allowed; `Atomic*` is
/// matched by prefix).
const SYNC_PRIMITIVES: [&str; 9] = [
    "Mutex", "RwLock", "Condvar", "Barrier", "Once", "OnceLock", "LazyLock", "mpsc", "atomic",
];

/// Guard-acquiring method names on `std::sync` lock types.
const LOCK_ACQUIRE_METHODS: [&str; 6] =
    ["lock", "try_lock", "read", "try_read", "write", "try_write"];

/// Observer sink methods; a `format!`-built label flowing into one of
/// these is derived computation R4 requires a guard around.
const OBS_SINKS: [&str; 6] = [
    "event",
    "observe",
    "record_span",
    "counter_inc",
    "counter_add",
    "gauge_set",
];

/// The crate a workspace-relative path belongs to (`crates/<name>/…`), or a
/// pseudo-crate for top-level dirs (`src/` → `deepsea`, `tests/` → `tests`).
fn crate_of(rel: &str) -> &str {
    if let Some(rest) = rel.strip_prefix("crates/") {
        rest.split('/').next().unwrap_or("")
    } else {
        rel.split('/').next().unwrap_or("")
    }
}

/// Whole-file test/bench/example scope: nothing in these files is linted.
/// Covers `tests/`, `benches/` and `examples/` dirs, plus module files named
/// `tests.rs` / `*_tests.rs` (their `#[cfg(test)]` lives on the `mod`
/// declaration in the parent file, out of this file's token stream).
fn is_test_path(rel: &str) -> bool {
    let parts: Vec<&str> = rel.split('/').collect();
    if parts.contains(&"tests") || parts.contains(&"benches") || parts.contains(&"examples") {
        return true;
    }
    let file = parts.last().copied().unwrap_or("");
    file == "tests.rs" || file.ends_with("_tests.rs")
}

/// Should `rel` participate in the cross-crate call-graph corpus (R1)?
/// Test-scoped files and the vendored shim crates are excluded — shims
/// re-use common method names and would only add resolver ambiguity.
pub(crate) fn in_graph_corpus(rel: &str) -> bool {
    !is_test_path(rel) && !SHIM_CRATES.contains(&crate_of(rel))
}

/// Does `rule` apply to the file at `rel` at all?
fn rule_enabled(rule: RuleId, rel: &str) -> bool {
    let c = crate_of(rel);
    let shim = SHIM_CRATES.contains(&c);
    match rule {
        RuleId::HashIter => DECISION_CRATES.contains(&c),
        RuleId::WallClock => c != "criterion",
        RuleId::Panic | RuleId::Discard => PRODUCT_CRATES.contains(&c),
        RuleId::Layering => !matches!(c, "storage" | "bench" | "lint") && !shim,
        RuleId::Marker => true,
        // R1 is evaluated over the whole corpus (graph reachability), not
        // per file; this arm only scopes marker applicability.
        RuleId::ReadPurity => !shim,
        RuleId::LockDiscipline => matches!(
            c,
            "core" | "engine" | "storage" | "workload" | "relation" | "obs"
        ),
        RuleId::CostFlow => DECISION_CRATES.contains(&c),
        RuleId::ObsGated => PRODUCT_CRATES.contains(&c) && c != "obs",
    }
}

/// A parsed `// deepsea-lint: allow(slug[, slug]) -- justification` marker.
struct Marker {
    line: u32,
    rules: Vec<RuleId>,
}

/// Lint one file's source. `rel` is the workspace-relative path (used for
/// crate scoping); returns violations sorted by line.
pub fn lint_source(rel: &str, src: &str) -> Vec<Violation> {
    if is_test_path(rel) {
        return Vec::new();
    }
    let all = lex(src);
    let (src_toks, comments): (Vec<Token>, Vec<Token>) = all
        .into_iter()
        .partition(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment));

    let mut out = Vec::new();
    let (markers, marker_violations) = collect_markers(rel, &comments);
    out.extend(marker_violations);

    let test_spans = test_item_spans(&src_toks);
    let in_test = |idx: usize| test_spans.iter().any(|&(a, b)| idx >= a && idx < b);

    let hash_idents = collect_typed_idents(&src_toks, &["HashMap", "HashSet"]);
    let string_idents = collect_typed_idents(&src_toks, &["String"]);

    let t = &src_toks;
    for i in 0..t.len() {
        if in_test(i) {
            continue;
        }
        rule_hash(rel, t, i, &hash_idents, &mut out);
        rule_wall_clock(rel, t, i, &mut out);
        rule_panic(rel, t, i, &mut out);
        rule_discard(rel, t, i, &string_idents, &mut out);
        rule_layering(rel, t, i, &mut out);
    }
    if rule_enabled(RuleId::LockDiscipline, rel) {
        rule_lock_discipline(rel, t, &in_test, &mut out);
    }
    if rule_enabled(RuleId::CostFlow, rel) {
        rule_cost_flow(rel, t, &in_test, &mut out);
    }
    if rule_enabled(RuleId::ObsGated, rel) {
        rule_obs_gated(rel, t, &in_test, &mut out);
    }

    // Apply markers: a marker suppresses matching violations on its own line
    // and on the next line holding a source token.
    let suppressed = |v: &Violation| {
        markers.iter().any(|m| {
            if !m.rules.contains(&v.rule) {
                return false;
            }
            if v.line == m.line {
                return true;
            }
            let next = t.iter().map(|tok| tok.line).find(|&l| l > m.line);
            next == Some(v.line)
        })
    };
    out.retain(|v| v.rule == RuleId::Marker || !suppressed(v));
    out.sort_by_key(|v| (v.line, v.rule));
    out
}

/// Extract allow-markers from line comments; malformed ones are violations.
fn collect_markers(rel: &str, comments: &[Token]) -> (Vec<Marker>, Vec<Violation>) {
    let mut markers = Vec::new();
    let mut violations = Vec::new();
    for c in comments {
        if c.kind != TokKind::LineComment {
            continue;
        }
        let text = c.text.trim();
        let Some(rest) = text.strip_prefix("deepsea-lint:") else {
            continue;
        };
        let mut bad = |why: &str| {
            violations.push(Violation {
                rule: RuleId::Marker,
                file: rel.to_string(),
                line: c.line,
                message: format!("malformed deepsea-lint marker: {why}"),
            });
        };
        let rest = rest.trim();
        let Some(args) = rest.strip_prefix("allow(") else {
            bad("expected `allow(<rule>)`");
            continue;
        };
        let Some(close) = args.find(')') else {
            bad("unterminated `allow(`");
            continue;
        };
        let (slugs, tail) = args.split_at(close);
        let tail = tail[1..].trim();
        let justified = tail
            .strip_prefix("--")
            .is_some_and(|j| !j.trim().is_empty());
        if !justified {
            bad("missing `-- <justification>`");
            continue;
        }
        let mut rules = Vec::new();
        let mut unknown = None;
        for slug in slugs.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            match RuleId::from_slug(slug) {
                Some(r) => rules.push(r),
                None => unknown = Some(slug.to_string()),
            }
        }
        if let Some(u) = unknown {
            bad(&format!("unknown rule `{u}`"));
            continue;
        }
        if rules.is_empty() {
            bad("empty rule list");
            continue;
        }
        markers.push(Marker {
            line: c.line,
            rules,
        });
    }
    (markers, violations)
}

/// Token-index spans of `#[cfg(test)]` / `#[test]` items (the attribute up
/// to the end of the item's brace block or terminating `;`).
fn test_item_spans(t: &[Token]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < t.len() {
        if t[i].is_punct('#') && t.get(i + 1).is_some_and(|n| n.is_punct('[')) {
            let (attr_end, is_test) = scan_attribute(t, i + 1);
            if is_test {
                let mut j = attr_end;
                // Skip any stacked attributes (`#[cfg(test)] #[allow(...)]`).
                while j < t.len()
                    && t[j].is_punct('#')
                    && t.get(j + 1).is_some_and(|n| n.is_punct('['))
                {
                    let (e, _) = scan_attribute(t, j + 1);
                    j = e;
                }
                let end = scan_item_end(t, j);
                spans.push((i, end));
                i = end;
                continue;
            }
            i = attr_end;
            continue;
        }
        i += 1;
    }
    spans
}

/// Scan a `[...]` attribute starting at its `[`; returns (index past `]`,
/// whether it marks test-only code). `#[test]`, `#[cfg(test)]` and any
/// `cfg(...)` whose argument list mentions `test` qualify.
fn scan_attribute(t: &[Token], open: usize) -> (usize, bool) {
    let mut depth = 0usize;
    let mut idents = Vec::new();
    let mut j = open;
    while j < t.len() {
        let tok = &t[j];
        if tok.is_punct('[') {
            depth += 1;
        } else if tok.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                j += 1;
                break;
            }
        } else if tok.kind == TokKind::Ident {
            idents.push(tok.text.as_str().to_string());
        }
        j += 1;
    }
    let first = idents.first().map(String::as_str);
    let is_test =
        first == Some("test") || (first == Some("cfg") && idents.iter().any(|s| s == "test"));
    (j, is_test)
}

/// From the first token of an item, find the index just past its end: the
/// matching `}` of its first depth-0 brace block, or a depth-0 `;`.
fn scan_item_end(t: &[Token], start: usize) -> usize {
    let mut j = start;
    let mut depth = 0i32; // (), [] nesting inside the signature
    while j < t.len() {
        let tok = &t[j];
        if tok.is_punct('(') || tok.is_punct('[') {
            depth += 1;
        } else if tok.is_punct(')') || tok.is_punct(']') {
            depth -= 1;
        } else if tok.is_punct(';') && depth <= 0 {
            return j + 1;
        } else if tok.is_punct('{') && depth <= 0 {
            let mut braces = 1i32;
            j += 1;
            while j < t.len() && braces > 0 {
                if t[j].is_punct('{') {
                    braces += 1;
                } else if t[j].is_punct('}') {
                    braces -= 1;
                }
                j += 1;
            }
            return j;
        }
        j += 1;
    }
    j
}

/// Names of identifiers bound with one of `type_names` in this file:
/// `x: [&][mut] T`, `let [mut] x = T::...`, struct fields, fn params.
fn collect_typed_idents(t: &[Token], type_names: &[&str]) -> Vec<String> {
    let mut found: Vec<String> = Vec::new();
    for i in 0..t.len() {
        if t[i].kind != TokKind::Ident || !type_names.contains(&t[i].text.as_str()) {
            continue;
        }
        // Walk back over `&` and `mut` to the binding shape.
        let mut k = i;
        while k > 0 && (t[k - 1].is_punct('&') || t[k - 1].is_ident("mut")) {
            k -= 1;
        }
        if k >= 2 && t[k - 1].is_punct(':') && t[k - 2].kind == TokKind::Ident {
            push_unique(&mut found, &t[k - 2].text);
            continue;
        }
        // `let [mut] x = T::new()` — walk back from `=` to the binding.
        if k >= 2 && t[k - 1].is_punct('=') {
            let mut m = k - 1;
            while m > 0 {
                let p = &t[m - 1];
                if p.is_punct(';') || p.is_punct('{') || p.is_punct('}') {
                    break;
                }
                if p.is_ident("let") {
                    // Binding ident is the first ident after `let`/`let mut`.
                    let mut b = m;
                    if t.get(b).is_some_and(|x| x.is_ident("mut")) {
                        b += 1;
                    }
                    if let Some(x) = t.get(b) {
                        if x.kind == TokKind::Ident {
                            push_unique(&mut found, &x.text);
                        }
                    }
                    break;
                }
                m -= 1;
            }
        }
    }
    found
}

fn push_unique(v: &mut Vec<String>, s: &str) {
    if !v.iter().any(|x| x == s) {
        v.push(s.to_string());
    }
}

/// Is token `i` inside a `use` declaration? (Statement scan back to the
/// nearest `;`/`{`/`}`, then look for a leading `use`.)
fn in_use_stmt(t: &[Token], i: usize) -> bool {
    let mut k = i;
    while k > 0 {
        let p = &t[k - 1];
        if p.is_punct(';') || p.is_punct('}') {
            break;
        }
        // `{` only ends the scan when it opens a block, not a use-group
        // (`use std::{fs, io}`); a use-group brace is preceded by `::`.
        if p.is_punct('{') && !(k >= 3 && t[k - 2].is_punct(':') && t[k - 3].is_punct(':')) {
            break;
        }
        if p.is_ident("use") {
            return true;
        }
        k -= 1;
    }
    false
}

fn violation(out: &mut Vec<Violation>, rule: RuleId, rel: &str, line: u32, msg: String) {
    out.push(Violation {
        rule,
        file: rel.to_string(),
        line,
        message: msg,
    });
}

/// D1 — hash collections in decision-path crates: flag the binding site of
/// any `HashMap`/`HashSet` (outside `use`), iteration-method calls on a
/// known hash binding, and `for … in` loops over one.
fn rule_hash(rel: &str, t: &[Token], i: usize, hash_idents: &[String], out: &mut Vec<Violation>) {
    if !rule_enabled(RuleId::HashIter, rel) {
        return;
    }
    let tok = &t[i];
    if tok.kind != TokKind::Ident {
        return;
    }
    if (tok.text == "HashMap" || tok.text == "HashSet") && !in_use_stmt(t, i) {
        // Don't double-report the constructor of an annotated binding
        // (`let m: HashMap<..> = HashMap::new()` → one diagnostic).
        let constructor = t.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && t.get(i + 2).is_some_and(|n| n.is_punct(':'));
        let annotated = i >= 1 && {
            let mut k = i;
            while k > 0 && (t[k - 1].is_punct('&') || t[k - 1].is_ident("mut")) {
                k -= 1;
            }
            k >= 1 && t[k - 1].is_punct('=')
        };
        if !(constructor && annotated) {
            violation(
                out,
                RuleId::HashIter,
                rel,
                tok.line,
                format!(
                    "`{}` in a decision-path crate: iteration order is \
                     nondeterministic; use `BTreeMap`/`BTreeSet` or justify with \
                     `// deepsea-lint: allow(hash_iter) -- <why>`",
                    tok.text
                ),
            );
        }
        return;
    }
    if !hash_idents.iter().any(|h| h == &tok.text) {
        return;
    }
    // `name.iter()` and friends.
    if t.get(i + 1).is_some_and(|n| n.is_punct('.')) {
        if let Some(m) = t.get(i + 2) {
            if m.kind == TokKind::Ident
                && HASH_ITER_METHODS.contains(&m.text.as_str())
                && t.get(i + 3).is_some_and(|n| n.is_punct('('))
            {
                violation(
                    out,
                    RuleId::HashIter,
                    rel,
                    tok.line,
                    format!(
                        "iteration `{}.{}()` over a hash collection — order is \
                         nondeterministic",
                        tok.text, m.text
                    ),
                );
            }
        }
    }
    // `for x in [&][mut] name {` — direct loop over the collection.
    if t.get(i + 1).is_some_and(|n| n.is_punct('{')) {
        let mut k = i;
        while k > 0 && (t[k - 1].is_punct('&') || t[k - 1].is_ident("mut")) {
            k -= 1;
        }
        if k >= 1 && t[k - 1].is_ident("in") {
            violation(
                out,
                RuleId::HashIter,
                rel,
                tok.line,
                format!(
                    "`for … in {}` iterates a hash collection — order is \
                     nondeterministic",
                    tok.text
                ),
            );
        }
    }
}

/// D2 — wall-clock / ambient entropy identifiers.
fn rule_wall_clock(rel: &str, t: &[Token], i: usize, out: &mut Vec<Violation>) {
    if !rule_enabled(RuleId::WallClock, rel) {
        return;
    }
    let tok = &t[i];
    if tok.kind == TokKind::Ident && WALL_CLOCK_IDENTS.contains(&tok.text.as_str()) {
        violation(
            out,
            RuleId::WallClock,
            rel,
            tok.line,
            format!(
                "`{}` is wall-clock/ambient entropy — all time and randomness \
                 must flow from the simulated clock or an explicit seed",
                tok.text
            ),
        );
    }
}

/// P1 — panic paths: `.unwrap()`, panic-family macros, and `.expect(msg)`
/// whose message does not start with `invariant: `.
fn rule_panic(rel: &str, t: &[Token], i: usize, out: &mut Vec<Violation>) {
    if !rule_enabled(RuleId::Panic, rel) {
        return;
    }
    let tok = &t[i];
    if tok.kind != TokKind::Ident {
        return;
    }
    let after_dot = i >= 1 && t[i - 1].is_punct('.');
    let called = t.get(i + 1).is_some_and(|n| n.is_punct('('));
    if tok.text == "unwrap" && after_dot && called {
        violation(
            out,
            RuleId::Panic,
            rel,
            tok.line,
            "`.unwrap()` in product code — propagate with `?` or use \
             `.expect(\"invariant: …\")`"
                .to_string(),
        );
        return;
    }
    if tok.text == "expect" && after_dot && called {
        let arg = t.get(i + 2);
        let sanctioned = arg.is_some_and(|a| {
            matches!(a.kind, TokKind::Str | TokKind::RawStr) && a.text.starts_with("invariant: ")
        });
        if !sanctioned {
            violation(
                out,
                RuleId::Panic,
                rel,
                tok.line,
                "`.expect(…)` message must be a literal starting with \
                 `invariant: ` (documenting why the invariant holds)"
                    .to_string(),
            );
        }
        return;
    }
    if matches!(
        tok.text.as_str(),
        "panic" | "unreachable" | "todo" | "unimplemented"
    ) && t.get(i + 1).is_some_and(|n| n.is_punct('!'))
    {
        violation(
            out,
            RuleId::Panic,
            rel,
            tok.line,
            format!("`{}!` in product code — return an error instead", tok.text),
        );
    }
}

/// E1 — `let _ = <expr>;` discarding a fallible call. The `write!`/
/// `writeln!` exemption for `String` receivers is encoded here directly:
/// `fmt::Write` into a `String` cannot fail, so discarding its `Result` is
/// the idiomatic pattern and needs no marker.
fn rule_discard(
    rel: &str,
    t: &[Token],
    i: usize,
    string_idents: &[String],
    out: &mut Vec<Violation>,
) {
    if !rule_enabled(RuleId::Discard, rel) {
        return;
    }
    if !(t[i].is_ident("let")
        && t.get(i + 1).is_some_and(|n| n.is_ident("_"))
        && t.get(i + 2).is_some_and(|n| n.is_punct('=')))
    {
        return;
    }
    // Scan the discarded expression up to the statement's `;`.
    let mut depth = 0i32;
    let mut j = i + 3;
    while let Some(tok) = t.get(j) {
        if tok.is_punct('(') || tok.is_punct('[') || tok.is_punct('{') {
            depth += 1;
        } else if tok.is_punct(')') || tok.is_punct(']') || tok.is_punct('}') {
            depth -= 1;
        } else if tok.is_punct(';') && depth <= 0 {
            break;
        } else if tok.kind == TokKind::Ident {
            let name = tok.text.as_str();
            // `write!(recv, …)` / `writeln!(recv, …)`.
            if (name == "write" || name == "writeln")
                && t.get(j + 1).is_some_and(|n| n.is_punct('!'))
                && t.get(j + 2).is_some_and(|n| n.is_punct('('))
            {
                let mut a = j + 3;
                while t
                    .get(a)
                    .is_some_and(|n| n.is_punct('&') || n.is_ident("mut"))
                {
                    a += 1;
                }
                let recv_is_string = t.get(a).is_some_and(|r| {
                    r.kind == TokKind::Ident && string_idents.iter().any(|s| s == &r.text)
                });
                if !recv_is_string {
                    violation(
                        out,
                        RuleId::Discard,
                        rel,
                        tok.line,
                        format!(
                            "`let _ = {name}!(…)` discards an I/O write result — \
                             only `fmt::Write` into a `String` is infallible"
                        ),
                    );
                }
                return;
            }
            let fallible =
                name.starts_with("try_") || name.ends_with("_costed") || name == "append";
            if fallible && (t.get(j + 1).is_some_and(|n| n.is_punct('('))) {
                violation(
                    out,
                    RuleId::Discard,
                    rel,
                    tok.line,
                    format!(
                        "`let _ =` discards the result of fallible `{name}(…)` — \
                         handle or propagate the error"
                    ),
                );
                return;
            }
        }
        j += 1;
    }
}

/// L1 — `std::fs` / `std::net` / `std::thread` outside the storage crate
/// and bench harness, in both path and `use std::{…}` group form.
fn rule_layering(rel: &str, t: &[Token], i: usize, out: &mut Vec<Violation>) {
    if !rule_enabled(RuleId::Layering, rel) {
        return;
    }
    let tok = &t[i];
    if !(tok.is_ident("std")
        && t.get(i + 1).is_some_and(|n| n.is_punct(':'))
        && t.get(i + 2).is_some_and(|n| n.is_punct(':')))
    {
        return;
    }
    let mut flag = |name: &str, line: u32| {
        // The sanctioned concurrency surface may name `thread` (and only
        // `thread`): the epoch handoff is built on `EpochCell`, and the
        // file is part of the audited serving layer.
        if name == "thread" && SANCTIONED_CONCURRENCY.contains(&rel) {
            return;
        }
        violation(
            out,
            RuleId::Layering,
            rel,
            line,
            format!(
                "`std::{name}` outside `crates/storage`/bench — real I/O and \
                 threads go through `ExecutionBackend`/`SimFs` only"
            ),
        );
    };
    if let Some(m) = t.get(i + 3) {
        if m.kind == TokKind::Ident && LAYERING_MODULES.contains(&m.text.as_str()) {
            flag(&m.text.clone(), m.line);
            return;
        }
        // `use std::{fs, io::Write}` group form.
        if m.is_punct('{') {
            let mut depth = 1i32;
            let mut j = i + 4;
            while let Some(g) = t.get(j) {
                if g.is_punct('{') {
                    depth += 1;
                } else if g.is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if depth == 1
                    && g.kind == TokKind::Ident
                    && LAYERING_MODULES.contains(&g.text.as_str())
                {
                    flag(&g.text.clone(), g.line);
                }
                j += 1;
            }
        }
    }
}

/// Statement spans `(start, end, terminator)` over the token stream, split
/// at every `;`, `{` and `}` regardless of nesting. Struct literals and
/// match arms over-segment under this definition, which is safe for the
/// pattern checks built on it: adjacency-based matches stay intact, and a
/// split can only *narrow* what a statement is blamed for.
fn statements(t: &[Token]) -> Vec<(usize, usize, Option<char>)> {
    let mut out = Vec::new();
    let mut s = 0usize;
    for i in 0..=t.len() {
        let term = if i == t.len() {
            None
        } else if t[i].is_punct(';') {
            Some(';')
        } else if t[i].is_punct('{') {
            Some('{')
        } else if t[i].is_punct('}') {
            Some('}')
        } else {
            continue;
        };
        if i > s {
            out.push((s, i, term));
        }
        s = i + 1;
    }
    out
}

/// Does the statement window contain a `…enabled(…)` guard call?
fn has_enabled_call(t: &[Token], s: usize, e: usize) -> bool {
    (s..e).any(|k| {
        t[k].kind == TokKind::Ident
            && t[k].text.ends_with("enabled")
            && t.get(k + 1).is_some_and(|n| n.is_punct('('))
    })
}

/// Walk back from `i` to the start of its statement looking for `let`.
fn stmt_has_let(t: &[Token], i: usize) -> bool {
    let mut k = i;
    while k > 0 {
        let p = &t[k - 1];
        if p.is_punct(';') || p.is_punct('{') || p.is_punct('}') {
            return false;
        }
        if p.is_ident("let") {
            return true;
        }
        k -= 1;
    }
    false
}

/// R2 — lock discipline. In the sanctioned concurrency files the *shape*
/// of guard usage is checked: no acquisition while another guard is held,
/// and no `execute`/`append` call under a held guard (a lock held across a
/// backend or journal call serializes the one path that must stay
/// concurrent, and is the classic deadlock feeder). Everywhere else in the
/// product crates, naming a `std::sync` primitive at all is the violation —
/// cross-thread state goes through `deepsea_storage::sync::EpochCell`.
fn rule_lock_discipline(
    rel: &str,
    t: &[Token],
    in_test: &dyn Fn(usize) -> bool,
    out: &mut Vec<Violation>,
) {
    if !R2_SANCTIONED.contains(&rel) {
        for i in 0..t.len() {
            if in_test(i) || t[i].kind != TokKind::Ident {
                continue;
            }
            let name = t[i].text.as_str();
            let is_primitive = SYNC_PRIMITIVES.contains(&name) || name.starts_with("Atomic");
            if !is_primitive {
                continue;
            }
            let qualified = i >= 3
                && t[i - 1].is_punct(':')
                && t[i - 2].is_punct(':')
                && (t[i - 3].is_ident("sync") || t[i - 3].is_ident("atomic"));
            let imported = in_use_stmt(t, i) && {
                let mut k = i;
                let mut saw_sync = false;
                while k > 0 {
                    let p = &t[k - 1];
                    if p.is_punct(';') || p.is_punct('}') {
                        break;
                    }
                    if p.is_ident("sync") {
                        saw_sync = true;
                        break;
                    }
                    k -= 1;
                }
                saw_sync
            };
            if qualified || imported {
                violation(
                    out,
                    RuleId::LockDiscipline,
                    rel,
                    t[i].line,
                    format!(
                        "`{name}` (std::sync primitive) outside the sanctioned \
                         concurrency files — cross-thread state goes through \
                         `EpochCell`, locks live in server/workers.rs and \
                         storage/sync.rs only"
                    ),
                );
            }
        }
        return;
    }
    // Sanctioned file: guard-shape scan. A `let`-bound guard lives until
    // its enclosing brace block closes; a temporary guard dies at the
    // statement's `;`.
    struct Guard {
        depth: i32,
        stmt: bool,
    }
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0i32;
    for i in 0..t.len() {
        let tok = &t[i];
        if tok.is_punct('{') {
            depth += 1;
            continue;
        }
        if tok.is_punct('}') {
            depth -= 1;
            guards.retain(|g| g.depth <= depth);
            continue;
        }
        if tok.is_punct(';') {
            guards.retain(|g| !(g.stmt && g.depth >= depth));
            continue;
        }
        if in_test(i) || tok.kind != TokKind::Ident {
            continue;
        }
        let after_dot = i >= 1 && t[i - 1].is_punct('.');
        let called = t.get(i + 1).is_some_and(|n| n.is_punct('('));
        if !(after_dot && called) {
            continue;
        }
        if LOCK_ACQUIRE_METHODS.contains(&tok.text.as_str()) {
            if !guards.is_empty() {
                violation(
                    out,
                    RuleId::LockDiscipline,
                    rel,
                    tok.line,
                    format!(
                        "`.{}()` acquires a guard while another lock guard is \
                         already held — nested acquisition is a deadlock shape",
                        tok.text
                    ),
                );
            }
            guards.push(Guard {
                depth,
                stmt: !stmt_has_let(t, i),
            });
        } else if !guards.is_empty()
            && matches!(
                tok.text.as_str(),
                "execute" | "append" | "append_infallible"
            )
        {
            violation(
                out,
                RuleId::LockDiscipline,
                rel,
                tok.line,
                format!(
                    "`.{}()` called while a lock guard is held — backend and \
                     journal calls must not run under a guard's brace scope",
                    tok.text
                ),
            );
        }
    }
}

/// R3 — cost flow. The complement of "every charged simulated second lands
/// in a trace field": flag the places a cost component is visibly dropped —
/// a `_` in a tuple `let` binding whose RHS calls a cost source, a bare
/// statement discarding a cost source's whole result, and (in core) the
/// cost-dropping `SimFs::delete` convenience wrapper. Flows the scan cannot
/// follow (closures, re-bindings) are left to the dynamic suites —
/// conservatism here means no false alarms, not perfect coverage.
fn rule_cost_flow(
    rel: &str,
    t: &[Token],
    in_test: &dyn Fn(usize) -> bool,
    out: &mut Vec<Violation>,
) {
    let is_source =
        |s: &str| s.starts_with("try_") || s.ends_with("_costed") || s.starts_with("drain_retry_");
    // `self.fs.delete(…)` / `.fs().delete(…)` — the wrapper that maps the
    // cost away. Core-path callers must use `delete_costed` and account
    // the seconds.
    for i in 0..t.len() {
        if in_test(i) || !t[i].is_ident("delete") {
            continue;
        }
        if !t.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            continue;
        }
        let via_field = i >= 2 && t[i - 1].is_punct('.') && t[i - 2].is_ident("fs");
        let via_method = i >= 4
            && t[i - 1].is_punct('.')
            && t[i - 2].is_punct(')')
            && t[i - 3].is_punct('(')
            && t[i - 4].is_ident("fs");
        if via_field || via_method {
            violation(
                out,
                RuleId::CostFlow,
                rel,
                t[i].line,
                "`SimFs::delete` drops the delete's simulated cost — call \
                 `delete_costed` and account the seconds in a trace field"
                    .to_string(),
            );
        }
    }
    for (s, e, term) in statements(t) {
        if in_test(s) {
            continue;
        }
        let stmt = &t[s..e];
        let source_at = |from: usize| {
            let mut depth = 0i32;
            for k in from..stmt.len() {
                let tok = &stmt[k];
                if tok.is_punct('(') || tok.is_punct('[') {
                    depth += 1;
                } else if tok.is_punct(')') || tok.is_punct(']') {
                    depth -= 1;
                } else if depth == 0
                    && tok.kind == TokKind::Ident
                    && is_source(&tok.text)
                    && stmt.get(k + 1).is_some_and(|n| n.is_punct('('))
                {
                    return Some(k);
                }
            }
            None
        };
        if stmt.first().is_some_and(|f| f.is_ident("let")) {
            // Tuple pattern with a discarded component.
            let Some(eq) = stmt.iter().position(|x| x.is_punct('=')) else {
                continue;
            };
            let pat = &stmt[1..eq];
            let has_tuple = pat.iter().any(|x| x.is_punct('('));
            let dropped: Vec<&str> = pat
                .iter()
                .filter(|x| x.kind == TokKind::Ident && x.text.starts_with('_'))
                .map(|x| x.text.as_str())
                .collect();
            // Bare `let _ =` is E1's; R3 owns partial tuple discards.
            if !has_tuple || dropped.is_empty() {
                continue;
            }
            let rhs_off = eq + 1;
            if let Some(k) = source_at(rhs_off) {
                let src_name = stmt[k].text.clone();
                violation(
                    out,
                    RuleId::CostFlow,
                    rel,
                    stmt[k].line,
                    format!(
                        "cost component `{}` from `{src_name}(…)` is discarded — \
                         flow it into a trace/accountant sink or return it",
                        dropped.join("`, `"),
                    ),
                );
            }
        } else {
            // Bare statement discarding the whole result.
            if term != Some(';') {
                continue;
            }
            let first = stmt.first().map(|x| x.text.as_str()).unwrap_or("");
            if matches!(
                first,
                "if" | "else" | "match" | "while" | "for" | "return" | "break" | "continue"
            ) {
                continue;
            }
            // Assignments and `?`-propagation consume the value.
            let mut depth = 0i32;
            let mut consumed = false;
            for x in stmt.iter() {
                if x.is_punct('(') || x.is_punct('[') {
                    depth += 1;
                } else if x.is_punct(')') || x.is_punct(']') {
                    depth -= 1;
                } else if depth == 0 && (x.is_punct('=') || x.is_punct('?')) {
                    consumed = true;
                }
            }
            if consumed {
                continue;
            }
            if let Some(k) = source_at(0) {
                violation(
                    out,
                    RuleId::CostFlow,
                    rel,
                    stmt[k].line,
                    format!(
                        "result of `{}(…)` carries simulated cost but this \
                         statement discards it",
                        stmt[k].text
                    ),
                );
            }
        }
    }
}

/// R4 — obs gating. Flags derived observability computation that runs even
/// when observability is off: `DecisionEvent` construction and
/// `format!`-built labels feeding Observer sinks, unless dominated by an
/// `enabled()`-family guard. Guard recognition covers the codebase's
/// idioms: early-return blocks (`if !obs.enabled() { return; }`),
/// guard-positive blocks (`if obs.events_enabled() { … }`), span-presence
/// checks (`.is_none()` / `.is_some()`), guard-local booleans
/// (`let spans_on = obs.spans_enabled();`), and statements that contain
/// the guard call themselves (`events_enabled().then(|| …)`).
fn rule_obs_gated(
    rel: &str,
    t: &[Token],
    in_test: &dyn Fn(usize) -> bool,
    out: &mut Vec<Violation>,
) {
    // Pass 1: guard-local idents, to a fixpoint (a binding whose statement
    // contains a guard call — or another guard-local — is itself a guard).
    let stmts = statements(t);
    let mut guard_locals: Vec<String> = Vec::new();
    loop {
        let mut changed = false;
        for &(s, e, _) in &stmts {
            if !t[s].is_ident("let") {
                continue;
            }
            let guardish = has_enabled_call(t, s, e)
                || (s..e).any(|k| {
                    t[k].kind == TokKind::Ident && guard_locals.iter().any(|g| g == &t[k].text)
                });
            if !guardish {
                continue;
            }
            let Some(eq) = (s..e).position(|k| t[k].is_punct('=')) else {
                continue;
            };
            for tok in &t[s + 1..s + eq] {
                if tok.kind == TokKind::Ident
                    && !matches!(tok.text.as_str(), "mut" | "Some" | "Ok" | "None" | "ref")
                    && !guard_locals.contains(&tok.text)
                {
                    guard_locals.push(tok.text.clone());
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    let stmt_guard = |s: usize, e: usize| {
        has_enabled_call(t, s, e)
            || (s..e).any(|k| {
                let tok = &t[k];
                (tok.kind == TokKind::Ident && guard_locals.iter().any(|g| g == &tok.text))
                    || ((tok.is_ident("is_none") || tok.is_ident("is_some"))
                        && k >= 1
                        && t[k - 1].is_punct('.')
                        && t.get(k + 1).is_some_and(|n| n.is_punct('(')))
            })
    };
    let stmt_negated_guard = |s: usize, e: usize| {
        ((s..e).any(|k| t[k].is_punct('!')) && has_enabled_call(t, s, e))
            || (s..e)
                .any(|k| t[k].is_ident("is_none") && t.get(k + 1).is_some_and(|n| n.is_punct('(')))
    };

    // Pass 2: frame-tracked scan.
    struct Frame {
        guarded: bool,
        own_guard: bool,
        negated_guard: bool,
        saw_return: bool,
    }
    let mut frames = vec![Frame {
        guarded: false,
        own_guard: false,
        negated_guard: false,
        saw_return: false,
    }];
    // `format!`-built labels bound without a guard: (name, frame depth).
    let mut fmt_bound: Vec<(String, usize)> = Vec::new();
    let mut stmt_start = 0usize;
    let mut pending_else_guard = false;

    let mut eval_stmt =
        |s: usize, e: usize, frames: &Vec<Frame>, fmt_bound: &mut Vec<(String, usize)>| {
            if s >= e || in_test(s) {
                return;
            }
            let guarded = frames.last().is_some_and(|f| f.guarded) || stmt_guard(s, e);
            if guarded {
                return;
            }
            for k in s..e {
                if t[k].is_ident("DecisionEvent")
                    && t.get(k + 1).is_some_and(|n| n.is_punct(':'))
                    && t.get(k + 2).is_some_and(|n| n.is_punct(':'))
                {
                    violation(
                        out,
                        RuleId::ObsGated,
                        rel,
                        t[k].line,
                        "`DecisionEvent` constructed without an `enabled()`/\
                     `events_enabled()` guard — event assembly must be free \
                     when observability is off"
                            .to_string(),
                    );
                }
            }
            let fmt_at = (s..e).find(|&k| {
                t[k].is_ident("format") && t.get(k + 1).is_some_and(|n| n.is_punct('!'))
            });
            let sink_at = (s..e).find(|&k| {
                t[k].kind == TokKind::Ident
                    && OBS_SINKS.contains(&t[k].text.as_str())
                    && k >= 1
                    && t[k - 1].is_punct('.')
                    && t.get(k + 1).is_some_and(|n| n.is_punct('('))
            });
            match (fmt_at, sink_at) {
                (Some(f), Some(_)) => violation(
                    out,
                    RuleId::ObsGated,
                    rel,
                    t[f].line,
                    "`format!` builds an Observer label without an `enabled()` \
                 guard — label formatting must be free when observability \
                 is off"
                        .to_string(),
                ),
                (Some(_), None) if t[s].is_ident("let") => {
                    // Remember the unguarded binding; flag it if it later
                    // reaches a sink.
                    let mut k = s + 1;
                    if t.get(k).is_some_and(|x| x.is_ident("mut")) {
                        k += 1;
                    }
                    if let Some(n) = t.get(k).filter(|x| x.kind == TokKind::Ident) {
                        fmt_bound.push((n.text.clone(), frames.len()));
                    }
                }
                (None, Some(sk)) => {
                    if let Some((name, _)) = fmt_bound
                        .iter()
                        .find(|(n, _)| (s..e).any(|k| t[k].is_ident(n)))
                    {
                        violation(
                            out,
                            RuleId::ObsGated,
                            rel,
                            t[sk].line,
                            format!(
                                "Observer sink consumes label `{name}` built by an \
                             unguarded `format!` — gate the label computation \
                             with `enabled()`"
                            ),
                        );
                    }
                }
                _ => {}
            }
        };

    for i in 0..t.len() {
        let tok = &t[i];
        if tok.is_punct('{') {
            let sg = stmt_guard(stmt_start, i) || pending_else_guard;
            let neg = {
                let first = t.get(stmt_start).map(|x| x.text.as_str()).unwrap_or("");
                matches!(first, "if" | "else" | "while") && stmt_negated_guard(stmt_start, i)
            };
            eval_stmt(stmt_start, i, &frames, &mut fmt_bound);
            let parent = frames.last().is_some_and(|f| f.guarded);
            frames.push(Frame {
                guarded: parent || sg,
                own_guard: sg,
                negated_guard: neg,
                saw_return: false,
            });
            pending_else_guard = false;
            stmt_start = i + 1;
            continue;
        }
        if tok.is_punct('}') {
            eval_stmt(stmt_start, i, &frames, &mut fmt_bound);
            if frames.len() > 1 {
                let f = frames.pop().expect("invariant: len checked above");
                if f.negated_guard && f.saw_return {
                    if let Some(top) = frames.last_mut() {
                        top.guarded = true;
                    }
                }
                let d = frames.len();
                fmt_bound.retain(|&(_, fd)| fd <= d);
                if t.get(i + 1).is_some_and(|n| n.is_ident("else")) {
                    pending_else_guard = f.own_guard;
                }
            }
            stmt_start = i + 1;
            continue;
        }
        if tok.is_punct(';') {
            eval_stmt(stmt_start, i, &frames, &mut fmt_bound);
            stmt_start = i + 1;
            continue;
        }
        if tok.is_ident("return") {
            if let Some(top) = frames.last_mut() {
                top.saw_return = true;
            }
        }
    }
    eval_stmt(stmt_start, t.len(), &frames, &mut fmt_bound);
}

/// Apply a file's allow-markers to corpus-level violations (R1 runs outside
/// [`lint_source`], so its results pass through here before reporting).
/// Marker-rule (M0) diagnostics are `lint_source`'s job and are not
/// re-evaluated.
pub(crate) fn apply_markers(rel: &str, src: &str, v: &mut Vec<Violation>) {
    let all = lex(src);
    let (src_toks, comments): (Vec<Token>, Vec<Token>) = all
        .into_iter()
        .partition(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment));
    let (markers, _) = collect_markers(rel, &comments);
    let suppressed = |vi: &Violation| {
        markers.iter().any(|m| {
            if !m.rules.contains(&vi.rule) {
                return false;
            }
            if vi.line == m.line {
                return true;
            }
            let next = src_toks.iter().map(|tok| tok.line).find(|&l| l > m.line);
            next == Some(vi.line)
        })
    };
    v.retain(|vi| vi.rule == RuleId::Marker || !suppressed(vi));
}
