//! The ratcheted baseline: pre-existing violations are grandfathered
//! per-(rule, file) with counts that may only decrease.
//!
//! `lint-baseline.json` format (rendered through the vendored serde shim,
//! parsed by the small reader below — the shim is serialize-only):
//!
//! ```json
//! {
//!   "version": 1,
//!   "rules": {
//!     "P1": { "crates/engine/src/sql.rs": 4, "crates/core/src/driver/evict.rs": 0 }
//!   }
//! }
//! ```
//!
//! Ratchet semantics per (rule, file):
//! - current > baselined count (or no entry) → **hard failure**, every
//!   violation at that key is reported with file:line diagnostics;
//! - current < baselined count → **improvement**: the run stays green but
//!   suggests ratcheting the baseline down (`--write-baseline`);
//! - an explicit `0` entry pins a file clean — any new violation there fails.

use std::collections::BTreeMap;

use serde::{ObjectBuilder, Serialize, Value};

use crate::rules::Violation;

/// Grandfathered violation counts, keyed rule code → file → count.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Baseline {
    /// rule code (e.g. `"P1"`) → workspace-relative file → allowed count.
    pub counts: BTreeMap<String, BTreeMap<String, u64>>,
}

impl Serialize for Baseline {
    fn to_value(&self) -> Value {
        let mut rules = ObjectBuilder::new();
        for (rule, files) in &self.counts {
            let mut obj = ObjectBuilder::new();
            for (file, n) in files {
                obj = obj.field(file, *n);
            }
            rules = rules.field(rule, obj.build());
        }
        ObjectBuilder::new()
            .field("version", 1u64)
            .field("rules", rules.build())
            .build()
    }
}

impl Baseline {
    /// Aggregate current violations into baseline counts (zero-count entries
    /// from `pin_zero` — files that must *stay* clean — are preserved).
    pub fn from_violations(violations: &[Violation], pin_zero: &Baseline) -> Baseline {
        let mut counts: BTreeMap<String, BTreeMap<String, u64>> = BTreeMap::new();
        for (rule, files) in &pin_zero.counts {
            for (file, n) in files {
                if *n == 0 {
                    counts
                        .entry(rule.clone())
                        .or_default()
                        .insert(file.clone(), 0);
                }
            }
        }
        for v in violations {
            *counts
                .entry(v.rule.code().to_string())
                .or_default()
                .entry(v.file.clone())
                .or_insert(0) += 1;
        }
        Baseline { counts }
    }

    /// Allowed count for a (rule code, file) pair; absent keys allow zero.
    pub fn allowed(&self, rule: &str, file: &str) -> u64 {
        self.counts
            .get(rule)
            .and_then(|f| f.get(file))
            .copied()
            .unwrap_or(0)
    }

    /// Render as pretty, stable JSON (rule codes and files sorted).
    pub fn render(&self) -> String {
        // The serde shim renders compactly; re-indent for a reviewable diff.
        let mut out = String::from("{\n  \"version\": 1,\n  \"rules\": {\n");
        let mut first_rule = true;
        for (rule, files) in &self.counts {
            if !first_rule {
                out.push_str(",\n");
            }
            first_rule = false;
            out.push_str(&format!("    {}: {{\n", Value::Str(rule.clone()).to_json()));
            let mut first_file = true;
            for (file, n) in files {
                if !first_file {
                    out.push_str(",\n");
                }
                first_file = false;
                out.push_str(&format!(
                    "      {}: {n}",
                    Value::Str(file.clone()).to_json()
                ));
            }
            out.push_str("\n    }");
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Parse the baseline JSON written by [`Baseline::render`].
    pub fn parse(json: &str) -> Result<Baseline, String> {
        let value = parse_json(json)?;
        let rules = value
            .get("rules")
            .ok_or_else(|| "baseline: missing `rules` object".to_string())?;
        let Value::Object(rule_fields) = rules else {
            return Err("baseline: `rules` is not an object".to_string());
        };
        let mut counts: BTreeMap<String, BTreeMap<String, u64>> = BTreeMap::new();
        for (rule, files) in rule_fields {
            let Value::Object(file_fields) = files else {
                return Err(format!("baseline: rule `{rule}` is not an object"));
            };
            let mut m = BTreeMap::new();
            for (file, n) in file_fields {
                let n = match n {
                    Value::U64(n) => *n,
                    other => {
                        return Err(format!(
                            "baseline: count for `{file}` is not a non-negative \
                             integer (got {})",
                            other.to_json()
                        ));
                    }
                };
                m.insert(file.clone(), n);
            }
            counts.insert(rule.clone(), m);
        }
        Ok(Baseline { counts })
    }
}

/// One (rule, file) key whose count moved against or under the baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CountDelta {
    /// Rule code.
    pub rule: String,
    /// Workspace-relative file.
    pub file: String,
    /// Count recorded in the baseline.
    pub baselined: u64,
    /// Count observed in this run.
    pub current: u64,
}

/// Outcome of comparing a lint run against the baseline.
#[derive(Debug, Default)]
pub struct Ratchet {
    /// Violations at keys over their allowance — each is a hard failure.
    pub new_violations: Vec<Violation>,
    /// Keys whose count exceeds the baseline (summarized).
    pub regressions: Vec<CountDelta>,
    /// Keys whose count dropped below the baseline — ratchet candidates.
    pub improvements: Vec<CountDelta>,
}

impl Ratchet {
    /// Does this run fail the ratchet?
    pub fn failed(&self) -> bool {
        !self.regressions.is_empty()
    }
}

/// Compare a run's violations against the baseline.
pub fn compare(baseline: &Baseline, violations: &[Violation]) -> Ratchet {
    let mut current: BTreeMap<(String, String), Vec<&Violation>> = BTreeMap::new();
    for v in violations {
        current
            .entry((v.rule.code().to_string(), v.file.clone()))
            .or_default()
            .push(v);
    }
    let mut out = Ratchet::default();
    for ((rule, file), vs) in &current {
        let allowed = baseline.allowed(rule, file);
        let n = vs.len() as u64;
        if n > allowed {
            out.regressions.push(CountDelta {
                rule: rule.clone(),
                file: file.clone(),
                baselined: allowed,
                current: n,
            });
            out.new_violations.extend(vs.iter().map(|v| (*v).clone()));
        } else if n < allowed {
            out.improvements.push(CountDelta {
                rule: rule.clone(),
                file: file.clone(),
                baselined: allowed,
                current: n,
            });
        }
    }
    // Baseline keys with no current violations at all are improvements too.
    for (rule, files) in &baseline.counts {
        for (file, &allowed) in files {
            if allowed > 0 && !current.contains_key(&(rule.clone(), file.clone())) {
                out.improvements.push(CountDelta {
                    rule: rule.clone(),
                    file: file.clone(),
                    baselined: allowed,
                    current: 0,
                });
            }
        }
    }
    out.improvements
        .sort_by(|a, b| (&a.rule, &a.file).cmp(&(&b.rule, &b.file)));
    out
}

/// A minimal JSON reader for the baseline file: objects, strings, and
/// non-negative integers (exactly what [`Baseline::render`] emits). The
/// vendored serde shim is serialize-only by design; this stays private to
/// the linter.
fn parse_json(src: &str) -> Result<Value, String> {
    let chars: Vec<char> = src.chars().collect();
    let mut pos = 0usize;
    let v = parse_value(&chars, &mut pos)?;
    skip_ws(&chars, &mut pos);
    if pos != chars.len() {
        return Err(format!("trailing input at offset {pos}"));
    }
    Ok(v)
}

fn skip_ws(c: &[char], pos: &mut usize) {
    while *pos < c.len() && c[*pos].is_whitespace() {
        *pos += 1;
    }
}

fn parse_value(c: &[char], pos: &mut usize) -> Result<Value, String> {
    skip_ws(c, pos);
    match c.get(*pos) {
        Some('{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(c, pos);
            if c.get(*pos) == Some(&'}') {
                *pos += 1;
                return Ok(Value::Object(fields));
            }
            loop {
                skip_ws(c, pos);
                let key = parse_string(c, pos)?;
                skip_ws(c, pos);
                if c.get(*pos) != Some(&':') {
                    return Err(format!("expected `:` at offset {pos}"));
                }
                *pos += 1;
                let value = parse_value(c, pos)?;
                fields.push((key, value));
                skip_ws(c, pos);
                match c.get(*pos) {
                    Some(',') => *pos += 1,
                    Some('}') => {
                        *pos += 1;
                        return Ok(Value::Object(fields));
                    }
                    _ => return Err(format!("expected `,` or `}}` at offset {pos}")),
                }
            }
        }
        Some('"') => Ok(Value::Str(parse_string(c, pos)?)),
        Some(d) if d.is_ascii_digit() => {
            let mut n: u64 = 0;
            while let Some(d) = c.get(*pos).and_then(|ch| ch.to_digit(10)) {
                n = n
                    .checked_mul(10)
                    .and_then(|n| n.checked_add(u64::from(d)))
                    .ok_or_else(|| format!("integer overflow at offset {pos}"))?;
                *pos += 1;
            }
            Ok(Value::U64(n))
        }
        other => Err(format!("unexpected {other:?} at offset {pos}")),
    }
}

fn parse_string(c: &[char], pos: &mut usize) -> Result<String, String> {
    if c.get(*pos) != Some(&'"') {
        return Err(format!("expected string at offset {pos}"));
    }
    *pos += 1;
    let mut s = String::new();
    while let Some(&ch) = c.get(*pos) {
        *pos += 1;
        match ch {
            '"' => return Ok(s),
            '\\' => {
                let esc = c.get(*pos).copied().ok_or("dangling escape")?;
                *pos += 1;
                match esc {
                    '"' => s.push('"'),
                    '\\' => s.push('\\'),
                    '/' => s.push('/'),
                    'n' => s.push('\n'),
                    'r' => s.push('\r'),
                    't' => s.push('\t'),
                    'u' => {
                        let hex: String = c.get(*pos..*pos + 4).unwrap_or(&[]).iter().collect();
                        *pos += 4;
                        let n = u32::from_str_radix(&hex, 16)
                            .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                        s.push(char::from_u32(n).unwrap_or('\u{FFFD}'));
                    }
                    other => return Err(format!("unknown escape `\\{other}`")),
                }
            }
            ch => s.push(ch),
        }
    }
    Err("unterminated string".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_parse_roundtrip() {
        let mut b = Baseline::default();
        b.counts
            .entry("P1".into())
            .or_default()
            .insert("crates/core/src/a.rs".into(), 3);
        b.counts
            .entry("P1".into())
            .or_default()
            .insert("crates/core/src/b.rs".into(), 0);
        b.counts
            .entry("D1".into())
            .or_default()
            .insert("crates/engine/src/exec.rs".into(), 2);
        let text = b.render();
        let parsed = Baseline::parse(&text).expect("roundtrip parse");
        assert_eq!(parsed, b);
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(Baseline::parse("{").is_err());
        assert!(Baseline::parse("{\"rules\": 3}").is_err());
        assert!(Baseline::parse("{\"rules\": {\"P1\": {\"f\": \"x\"}}}").is_err());
        assert!(Baseline::parse("{\"version\": 1}").is_err());
        assert!(Baseline::parse("{\"version\": 1, \"rules\": {}} junk").is_err());
    }

    #[test]
    fn escaped_keys_roundtrip() {
        let mut b = Baseline::default();
        b.counts
            .entry("P1".into())
            .or_default()
            .insert("odd\"name\\file.rs".into(), 1);
        let parsed = Baseline::parse(&b.render()).expect("parse escaped");
        assert_eq!(parsed, b);
    }
}
