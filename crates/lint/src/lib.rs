//! # deepsea-lint
//!
//! A project-invariant linter for the DeepSea workspace. The repo's core
//! guarantees — bit-identical golden replay, observability transparency,
//! crash-recovery idempotency — are determinism properties: one stray
//! `HashMap` iteration in an eviction tie-break or one `Instant::now()` in
//! a costed path silently breaks replay in ways that are miserable to
//! bisect. This crate enforces those invariants statically, over a
//! hand-rolled token stream (no rustc plumbing, std-only), with a
//! checked-in, *ratcheted* baseline so pre-existing violations are burned
//! down over time instead of blocking the build.
//!
//! See [`rules`] for the rule catalog, [`baseline`] for ratchet semantics,
//! and DESIGN.md §10 for the rationale tied to each guarantee.

pub mod baseline;
pub mod graph;
pub mod items;
pub mod lexer;
pub mod report;
pub mod rules;

pub use baseline::{compare, Baseline, Ratchet};
pub use graph::CallGraph;
pub use rules::{lint_source, RuleId, Violation};

use std::io;
use std::path::{Path, PathBuf};

/// Result of linting a file set.
#[derive(Debug, Default)]
pub struct LintRun {
    /// All unsuppressed violations, sorted by (file, line, rule).
    pub violations: Vec<Violation>,
    /// Workspace-relative paths scanned, sorted.
    pub files: Vec<String>,
    /// `(rel, source)` pairs for the scanned files, in scan order. Kept so
    /// callers can rebuild the call graph (`--graph-out`) without re-reading
    /// the tree.
    pub sources: Vec<(String, String)>,
}

/// Directories scanned by `--workspace`, relative to the workspace root.
const WORKSPACE_DIRS: [&str; 4] = ["crates", "src", "tests", "examples"];

/// Walk the workspace rooted at `root` and lint every `.rs` file under the
/// standard source dirs (`target/` is never entered). File order — and so
/// report order — is sorted and fully deterministic.
pub fn lint_workspace(root: &Path) -> io::Result<LintRun> {
    let mut files = Vec::new();
    for dir in WORKSPACE_DIRS {
        let d = root.join(dir);
        if d.is_dir() {
            collect_rs_files(&d, &mut files)?;
        }
    }
    files.sort();
    lint_files(root, &files)
}

/// Lint an explicit list of absolute file paths, relativizing against
/// `root` for scoping and reporting.
pub fn lint_files(root: &Path, files: &[PathBuf]) -> io::Result<LintRun> {
    let mut run = LintRun::default();
    for path in files {
        let rel = relative_to(root, path);
        let src = std::fs::read_to_string(path)?;
        run.violations.extend(lint_source(&rel, &src));
        run.files.push(rel.clone());
        run.sources.push((rel, src));
    }
    // Corpus pass: R1 read-path purity is a reachability property of the
    // whole call graph, so it runs over the file set, not per file. Allow
    // markers still apply at the flagged call site.
    let g = build_graph(&run.sources);
    let r1 = g.read_path_purity_violations();
    for (rel, src) in &run.sources {
        let mut mine: Vec<Violation> = r1.iter().filter(|v| &v.file == rel).cloned().collect();
        if mine.is_empty() {
            continue;
        }
        rules::apply_markers(rel, src, &mut mine);
        run.violations.extend(mine);
    }
    run.violations
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(run)
}

/// Build the cross-crate call graph over `(rel, source)` pairs. Test-scoped
/// files and vendored shim crates are excluded from the corpus.
pub fn build_graph(sources: &[(String, String)]) -> CallGraph {
    let parsed: Vec<items::FileItems> = sources
        .iter()
        .filter(|(rel, _)| rules::in_graph_corpus(rel))
        .map(|(rel, src)| items::parse_file(rel, src))
        .collect();
    CallGraph::build(&parsed)
}

/// Workspace-relative path with `/` separators (falls back to the full
/// path when `path` is outside `root`).
fn relative_to(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Find the workspace root by walking up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(d);
                }
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
