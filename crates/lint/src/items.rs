//! Item-level parse of one source file, built on the token stream: fn items
//! with module path, owner type, receiver kind, test scope and the call
//! expressions inside each body, plus struct field types and impl headers —
//! exactly the inputs the cross-crate call-graph resolver ([`crate::graph`])
//! needs.
//!
//! This is a *brace-matched scan*, not a grammar: it recognizes the shapes
//! the graph rules consume (`mod`/`impl`/`trait`/`struct`/`fn` headers,
//! method and path calls, `let`/param type hints) and skips everything else
//! by matching delimiters. Unknown constructs degrade to "no information",
//! never to a parse failure — a linter must not give up on a file it only
//! half-understands.

use crate::lexer::{lex, TokKind, Token};

/// How a fn takes its receiver — the signal R1 uses to classify a method as
/// state-mutating (`&mut self`) versus read-only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Receiver {
    /// Free function or associated fn without `self`.
    Free,
    /// `&self` (including `&'a self`).
    Ref,
    /// `&mut self`.
    RefMut,
    /// `self` / `mut self` by value.
    Owned,
}

/// Best-effort receiver-type information attached to a method call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Hint {
    /// No usable type information; resolve by name only (conservatively).
    None,
    /// The receiver is known (param/`let` annotation, `self`) to be this type.
    Type(String),
    /// The receiver is `self.<field>`; resolve through the owner's fields.
    SelfField(String),
}

/// What a call expression names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Callee {
    /// `a::b::f(…)` or bare `f(…)` — path segments as written (leading
    /// `crate`/`super`/`self` dropped).
    Path(Vec<String>),
    /// `recv.name(…)` — method syntax, with whatever receiver hint the
    /// scan could recover.
    Method {
        /// The method name.
        name: String,
        /// Receiver-type hint, if any.
        hint: Hint,
    },
}

/// One call expression inside a fn body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// What is being called.
    pub callee: Callee,
    /// 1-based source line of the call.
    pub line: u32,
}

/// One `fn` item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The fn's name.
    pub name: String,
    /// Impl/trait owner type, if the fn lives in an `impl`/`trait` block.
    pub owner: Option<String>,
    /// In-file module path (names of enclosing `mod` blocks).
    pub module: Vec<String>,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line of the fn name.
    pub line: u32,
    /// Receiver kind.
    pub receiver: Receiver,
    /// Inside `#[cfg(test)]` scope or marked `#[test]`.
    pub is_test: bool,
    /// Declared `pub` (any visibility restriction counts).
    pub is_pub: bool,
    /// `(name, stripped type)` for each simple `name: Type` parameter.
    pub params: Vec<(String, String)>,
    /// Every call expression found in the body.
    pub calls: Vec<CallSite>,
}

/// A struct definition's field types, for `self.field.method()` resolution.
#[derive(Debug, Clone)]
pub struct StructDef {
    /// The struct's name.
    pub name: String,
    /// `(field, stripped type)` pairs for named fields.
    pub fields: Vec<(String, String)>,
}

/// An `impl` block header.
#[derive(Debug, Clone)]
pub struct ImplDef {
    /// The implementing type.
    pub owner: String,
    /// The trait being implemented, for `impl Trait for Type`.
    pub trait_name: Option<String>,
}

/// Everything extracted from one file.
#[derive(Debug, Clone, Default)]
pub struct FileItems {
    /// Workspace-relative path.
    pub file: String,
    /// All fn items (including trait default methods and test fns).
    pub fns: Vec<FnItem>,
    /// All struct definitions with named fields.
    pub structs: Vec<StructDef>,
    /// All impl headers.
    pub impls: Vec<ImplDef>,
}

/// Wrapper types that are resolution-transparent: a method call through
/// `Arc<T>` etc. usually lands on `T`. `Option` is included heuristically —
/// it trades a little hint precision for resolving the common
/// `if let Some(x) = self.field` access pattern's origin type.
const TYPE_WRAPPERS: [&str; 6] = ["Arc", "Rc", "Box", "RefCell", "Cell", "Option"];

/// Idents that can never be a call name.
const KEYWORDS: [&str; 31] = [
    "if", "else", "match", "while", "for", "loop", "return", "let", "fn", "in", "as", "move",
    "mut", "ref", "use", "where", "impl", "pub", "unsafe", "async", "await", "dyn", "break",
    "continue", "struct", "enum", "trait", "type", "const", "static", "crate",
];

/// Parse one file into its items. Never fails; whatever the scan cannot
/// classify is skipped.
pub fn parse_file(rel: &str, src: &str) -> FileItems {
    let toks: Vec<Token> = lex(src)
        .into_iter()
        .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
        .collect();
    let mut p = Parser {
        t: toks,
        i: 0,
        out: FileItems {
            file: rel.to_string(),
            ..FileItems::default()
        },
        module: Vec::new(),
    };
    p.parse_items(None, false);
    p.out
}

struct Parser {
    t: Vec<Token>,
    i: usize,
    out: FileItems,
    module: Vec<String>,
}

impl Parser {
    fn peek(&self, ahead: usize) -> Option<&Token> {
        self.t.get(self.i + ahead)
    }

    fn ident_text(&self, ahead: usize) -> Option<&str> {
        self.peek(ahead)
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
    }

    /// Skip a balanced `open … close` group starting at the current token
    /// (which must be `open`); positions after the matching close.
    fn skip_balanced(&mut self, open: char, close: char) {
        let mut depth = 0i32;
        while let Some(tok) = self.peek(0) {
            if tok.is_punct(open) {
                depth += 1;
            } else if tok.is_punct(close) {
                depth -= 1;
                if depth <= 0 {
                    self.i += 1;
                    return;
                }
            }
            self.i += 1;
        }
    }

    /// Skip generic arguments `<…>` starting at the current `<`. Angle
    /// brackets only need to balance against themselves here: this is only
    /// called in type/generic position, where `<`/`>` cannot be comparisons.
    fn skip_angles(&mut self) {
        let mut depth = 0i32;
        while let Some(tok) = self.peek(0) {
            if tok.is_punct('<') {
                depth += 1;
            } else if tok.is_punct('>') {
                depth -= 1;
                if depth <= 0 {
                    self.i += 1;
                    return;
                }
            } else if tok.is_punct('(') {
                self.skip_balanced('(', ')');
                continue;
            } else if tok.is_punct(';') || tok.is_punct('{') {
                return; // malformed; bail without consuming
            }
            self.i += 1;
        }
    }

    /// Skip to just past the next `;` at delimiter depth 0 (brace blocks in
    /// initializers are matched through).
    fn skip_to_semi(&mut self) {
        let mut depth = 0i32;
        while let Some(tok) = self.peek(0) {
            if tok.is_punct('(') || tok.is_punct('[') || tok.is_punct('{') {
                depth += 1;
            } else if tok.is_punct(')') || tok.is_punct(']') || tok.is_punct('}') {
                if depth == 0 {
                    return; // ran past the item level; let the caller see `}`
                }
                depth -= 1;
            } else if tok.is_punct(';') && depth == 0 {
                self.i += 1;
                return;
            }
            self.i += 1;
        }
    }

    /// Scan an attribute `#[…]` / `#![…]` whose `#` is current; returns
    /// whether it marks test scope (`#[test]`, `#[cfg(test)]`, any
    /// `cfg(…)` mentioning `test`).
    fn scan_attr(&mut self) -> bool {
        self.i += 1; // '#'
        if self.peek(0).is_some_and(|t| t.is_punct('!')) {
            self.i += 1;
        }
        if !self.peek(0).is_some_and(|t| t.is_punct('[')) {
            return false;
        }
        let start = self.i;
        self.skip_balanced('[', ']');
        let idents: Vec<&str> = self.t[start..self.i]
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        let first = idents.first().copied();
        first == Some("test") || (first == Some("cfg") && idents.contains(&"test"))
    }

    /// Parse items until EOF or until the `}` closing this level is consumed.
    fn parse_items(&mut self, owner: Option<&str>, in_test: bool) {
        let mut pending_test = false;
        let mut pending_pub = false;
        while let Some(tok) = self.peek(0) {
            if tok.is_punct('}') {
                self.i += 1;
                return;
            }
            if tok.is_punct('#') {
                pending_test |= self.scan_attr();
                continue;
            }
            if tok.is_punct(';') {
                self.i += 1;
                continue;
            }
            if tok.kind != TokKind::Ident {
                if tok.is_punct('{') {
                    self.skip_balanced('{', '}');
                } else {
                    self.i += 1;
                }
                continue;
            }
            match tok.text.as_str() {
                "pub" => {
                    pending_pub = true;
                    self.i += 1;
                    if self.peek(0).is_some_and(|t| t.is_punct('(')) {
                        self.skip_balanced('(', ')');
                    }
                }
                "unsafe" | "async" | "default" => self.i += 1,
                "const" | "static" => {
                    // `const fn` is a modifier; `const NAME: …;` is an item.
                    if self.ident_text(1) == Some("fn") {
                        self.i += 1;
                    } else {
                        self.skip_to_semi();
                        pending_test = false;
                        pending_pub = false;
                    }
                }
                "extern" => {
                    self.i += 1;
                    if self.peek(0).is_some_and(|t| t.kind == TokKind::Str) {
                        self.i += 1;
                    }
                    if self.ident_text(0) != Some("fn") {
                        self.skip_to_semi();
                        pending_test = false;
                        pending_pub = false;
                    }
                }
                "use" | "type" => {
                    self.skip_to_semi();
                    pending_test = false;
                    pending_pub = false;
                }
                "mod" => {
                    let name = self.ident_text(1).unwrap_or("").to_string();
                    self.i += 2;
                    if self.peek(0).is_some_and(|t| t.is_punct('{')) {
                        self.i += 1;
                        self.module.push(name);
                        self.parse_items(None, in_test || pending_test);
                        self.module.pop();
                    } else {
                        self.skip_to_semi();
                    }
                    pending_test = false;
                    pending_pub = false;
                }
                "impl" => {
                    self.parse_impl(in_test || pending_test);
                    pending_test = false;
                    pending_pub = false;
                }
                "trait" => {
                    self.i += 1;
                    let name = self.ident_text(0).unwrap_or("").to_string();
                    self.i += 1;
                    self.scan_to_body_or_semi();
                    if self.peek(0).is_some_and(|t| t.is_punct('{')) {
                        self.i += 1;
                        self.parse_items(Some(&name), in_test || pending_test);
                    }
                    pending_test = false;
                    pending_pub = false;
                }
                "struct" => {
                    self.parse_struct();
                    pending_test = false;
                    pending_pub = false;
                }
                "enum" | "union" => {
                    self.i += 1;
                    self.scan_to_body_or_semi();
                    if self.peek(0).is_some_and(|t| t.is_punct('{')) {
                        self.skip_balanced('{', '}');
                    }
                    pending_test = false;
                    pending_pub = false;
                }
                "fn" => {
                    self.parse_fn(owner, in_test || pending_test, pending_pub);
                    pending_test = false;
                    pending_pub = false;
                }
                "macro_rules" => {
                    self.i += 1; // name follows `!`
                    while let Some(t) = self.peek(0) {
                        if t.is_punct('{') {
                            self.skip_balanced('{', '}');
                            break;
                        }
                        if t.is_punct('(') {
                            self.skip_balanced('(', ')');
                            break;
                        }
                        self.i += 1;
                    }
                    pending_test = false;
                    pending_pub = false;
                }
                _ => self.i += 1,
            }
        }
    }

    /// Advance to the next `{` (body) or `;` at delimiter depth 0, without
    /// consuming it. Parens/brackets in bounds and where-clauses are
    /// matched through; `<…>` generics are angle-balanced.
    fn scan_to_body_or_semi(&mut self) {
        while let Some(tok) = self.peek(0) {
            if tok.is_punct('{') || tok.is_punct(';') || tok.is_punct('}') {
                return;
            }
            if tok.is_punct('(') {
                self.skip_balanced('(', ')');
                continue;
            }
            if tok.is_punct('[') {
                self.skip_balanced('[', ']');
                continue;
            }
            if tok.is_punct('<') {
                self.skip_angles();
                continue;
            }
            self.i += 1;
        }
    }

    /// `impl[<…>] Type {` / `impl[<…>] Trait for Type {`.
    fn parse_impl(&mut self, in_test: bool) {
        self.i += 1; // 'impl'
        if self.peek(0).is_some_and(|t| t.is_punct('<')) {
            self.skip_angles();
        }
        let first = self.scan_type_path();
        let (owner, trait_name) = if self.ident_text(0) == Some("for") {
            self.i += 1;
            (self.scan_type_path(), first)
        } else {
            (first, None)
        };
        self.scan_to_body_or_semi();
        let owner = owner.unwrap_or_default();
        if !self.peek(0).is_some_and(|t| t.is_punct('{')) {
            return;
        }
        self.i += 1;
        if !owner.is_empty() {
            self.out.impls.push(ImplDef {
                owner: owner.clone(),
                trait_name,
            });
        }
        let owner_ref = if owner.is_empty() {
            None
        } else {
            Some(owner.as_str())
        };
        self.parse_items(owner_ref, in_test);
    }

    /// Read one type path in impl-header position (`fmt::Display`,
    /// `SimFs<T>`, `&'a ViewRegistry`), returning its last path ident.
    /// Stops before `for`/`where`/`{`/`;`.
    fn scan_type_path(&mut self) -> Option<String> {
        let mut last = None;
        while let Some(tok) = self.peek(0) {
            if tok.is_punct('{') || tok.is_punct(';') || tok.is_punct('}') {
                break;
            }
            if tok.kind == TokKind::Ident {
                match tok.text.as_str() {
                    "for" | "where" => break,
                    "dyn" | "mut" => {
                        self.i += 1;
                        continue;
                    }
                    _ => {
                        last = Some(tok.text.clone());
                        self.i += 1;
                        continue;
                    }
                }
            }
            if tok.is_punct('<') {
                self.skip_angles();
                continue;
            }
            if tok.is_punct('&') || tok.kind == TokKind::Lifetime || tok.is_punct(':') {
                self.i += 1;
                continue;
            }
            if tok.is_punct('(') {
                self.skip_balanced('(', ')');
                continue;
            }
            break;
        }
        last
    }

    /// `struct Name { fields }` / `struct Name(…);` / `struct Name;`.
    fn parse_struct(&mut self) {
        self.i += 1; // 'struct'
        let Some(name) = self.ident_text(0).map(str::to_string) else {
            return;
        };
        self.i += 1;
        self.scan_to_body_or_semi();
        let mut def = StructDef {
            name,
            fields: Vec::new(),
        };
        if self.peek(0).is_some_and(|t| t.is_punct('{')) {
            self.i += 1;
            loop {
                // One field: [#[…]] [pub[(…)]] name : Type ,
                while self.peek(0).is_some_and(|t| t.is_punct('#')) {
                    self.scan_attr();
                }
                if self.ident_text(0) == Some("pub") {
                    self.i += 1;
                    if self.peek(0).is_some_and(|t| t.is_punct('(')) {
                        self.skip_balanced('(', ')');
                    }
                }
                let Some(tok) = self.peek(0) else { break };
                if tok.is_punct('}') {
                    self.i += 1;
                    break;
                }
                if tok.kind == TokKind::Ident && self.peek(1).is_some_and(|t| t.is_punct(':')) {
                    let fname = tok.text.clone();
                    self.i += 2;
                    let ty_start = self.i;
                    // Type runs to the `,` or `}` at depth 0.
                    let mut depth = 0i32;
                    while let Some(t) = self.peek(0) {
                        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                            depth += 1;
                        } else if t.is_punct(')') || t.is_punct(']') {
                            depth -= 1;
                        } else if t.is_punct('<') {
                            self.skip_angles();
                            continue;
                        } else if t.is_punct('}') {
                            if depth == 0 {
                                break;
                            }
                            depth -= 1;
                        } else if t.is_punct(',') && depth == 0 {
                            break;
                        }
                        self.i += 1;
                    }
                    if let Some(ty) = strip_type(&self.t[ty_start..self.i]) {
                        def.fields.push((fname, ty));
                    }
                    if self.peek(0).is_some_and(|t| t.is_punct(',')) {
                        self.i += 1;
                    }
                } else {
                    self.i += 1;
                }
            }
        }
        self.out.structs.push(def);
    }

    /// `fn name[<…>](params) [-> …] [where …] { body }`.
    fn parse_fn(&mut self, owner: Option<&str>, in_test: bool, is_pub: bool) {
        self.i += 1; // 'fn'
        let Some(name_tok) = self.peek(0).filter(|t| t.kind == TokKind::Ident) else {
            return;
        };
        let name = name_tok.text.clone();
        let line = name_tok.line;
        self.i += 1;
        if self.peek(0).is_some_and(|t| t.is_punct('<')) {
            self.skip_angles();
        }
        if !self.peek(0).is_some_and(|t| t.is_punct('(')) {
            return;
        }
        // Parameter list: split on `,` at depth 0 inside the parens.
        let params_start = self.i + 1;
        self.skip_balanced('(', ')');
        let params_end = self.i - 1;
        let mut runs: Vec<&[Token]> = Vec::new();
        {
            let toks = &self.t[params_start..params_end];
            let mut depth = 0i32;
            let mut start = 0usize;
            let mut k = 0usize;
            while k < toks.len() {
                let t = &toks[k];
                if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                    depth -= 1;
                } else if t.is_punct('<') {
                    // Angle-skip inline: advance past the balanced group.
                    let mut a = 0i32;
                    while k < toks.len() {
                        if toks[k].is_punct('<') {
                            a += 1;
                        } else if toks[k].is_punct('>') {
                            a -= 1;
                            if a <= 0 {
                                break;
                            }
                        }
                        k += 1;
                    }
                } else if t.is_punct(',') && depth == 0 {
                    runs.push(&toks[start..k]);
                    start = k + 1;
                }
                k += 1;
            }
            if start < toks.len() {
                runs.push(&toks[start..]);
            }
        }
        let mut receiver = Receiver::Free;
        let mut params: Vec<(String, String)> = Vec::new();
        for (ri, run) in runs.iter().enumerate() {
            if ri == 0 && run.iter().any(|t| t.is_ident("self")) {
                let has_amp = run.iter().any(|t| t.is_punct('&'));
                let has_mut = run
                    .iter()
                    .take_while(|t| !t.is_ident("self"))
                    .any(|t| t.is_ident("mut"));
                receiver = match (has_amp, has_mut) {
                    (true, true) => Receiver::RefMut,
                    (true, false) => Receiver::Ref,
                    (false, _) => Receiver::Owned,
                };
                continue;
            }
            // `[mut] name : Type` — anything fancier is skipped.
            let mut k = 0usize;
            if run.get(k).is_some_and(|t| t.is_ident("mut")) {
                k += 1;
            }
            let (Some(n), Some(c)) = (run.get(k), run.get(k + 1)) else {
                continue;
            };
            if n.kind == TokKind::Ident
                && c.is_punct(':')
                && !run.get(k + 2).is_some_and(|t| t.is_punct(':'))
            {
                if let Some(ty) = strip_type(&run[k + 2..]) {
                    params.push((n.text.clone(), ty));
                }
            }
        }
        // Find the body `{` (or a `;` for a bodyless signature). The return
        // type passes through at paren/bracket depth 0; `{` in const-generic
        // positions sits inside brackets, so depth keeps this honest.
        let mut depth = 0i32;
        let mut has_body = false;
        while let Some(tok) = self.peek(0) {
            if tok.is_punct('(') || tok.is_punct('[') {
                depth += 1;
            } else if tok.is_punct(')') || tok.is_punct(']') {
                depth -= 1;
            } else if tok.is_punct(';') && depth <= 0 {
                self.i += 1;
                break;
            } else if tok.is_punct('{') && depth <= 0 {
                has_body = true;
                break;
            }
            self.i += 1;
        }
        let mut item = FnItem {
            name,
            owner: owner.map(str::to_string),
            module: self.module.clone(),
            file: self.out.file.clone(),
            line,
            receiver,
            is_test: in_test,
            is_pub,
            params,
            calls: Vec::new(),
        };
        if has_body {
            self.i += 1; // body '{'
            self.scan_body(&mut item);
        }
        self.out.fns.push(item);
    }

    /// Walk a fn body collecting call sites and `let` type hints; consumes
    /// up to and including the matching `}`.
    fn scan_body(&mut self, item: &mut FnItem) {
        let mut hints: Vec<(String, String)> = item.params.clone();
        let mut depth = 1i32;
        while let Some(tok) = self.peek(0) {
            if tok.is_punct('{') {
                depth += 1;
                self.i += 1;
                continue;
            }
            if tok.is_punct('}') {
                depth -= 1;
                self.i += 1;
                if depth == 0 {
                    return;
                }
                continue;
            }
            if tok.kind != TokKind::Ident {
                self.i += 1;
                continue;
            }
            // `let [mut] x : Type` / `let [mut] x = Type::…` hints.
            if tok.is_ident("let") {
                let mut k = self.i + 1;
                if self.t.get(k).is_some_and(|t| t.is_ident("mut")) {
                    k += 1;
                }
                if let Some(n) = self.t.get(k).filter(|t| t.kind == TokKind::Ident) {
                    let n = n.text.clone();
                    if self.t.get(k + 1).is_some_and(|t| t.is_punct(':'))
                        && !self.t.get(k + 2).is_some_and(|t| t.is_punct(':'))
                    {
                        // Type tokens to `=` or `;` at depth 0.
                        let ty_start = k + 2;
                        let mut e = ty_start;
                        let mut d = 0i32;
                        while let Some(t) = self.t.get(e) {
                            if t.is_punct('<') {
                                d += 1;
                            } else if t.is_punct('>') {
                                d -= 1;
                            } else if (t.is_punct('=') || t.is_punct(';')) && d <= 0 {
                                break;
                            }
                            e += 1;
                        }
                        if let Some(ty) = strip_type(&self.t[ty_start..e]) {
                            upsert(&mut hints, n, ty);
                        }
                    } else if self.t.get(k + 1).is_some_and(|t| t.is_punct('='))
                        && self.t.get(k + 3).is_some_and(|t| t.is_punct(':'))
                        && self.t.get(k + 4).is_some_and(|t| t.is_punct(':'))
                    {
                        if let Some(ty) = self.t.get(k + 2).filter(|t| {
                            t.kind == TokKind::Ident
                                && t.text.chars().next().is_some_and(char::is_uppercase)
                        }) {
                            upsert(&mut hints, n, ty.text.clone());
                        }
                    }
                }
                self.i += 1;
                continue;
            }
            if KEYWORDS.contains(&tok.text.as_str()) || tok.is_ident("self") {
                self.i += 1;
                continue;
            }
            // Call detection: `name(` possibly with a `::<…>` turbofish.
            let mut j = self.i + 1;
            if self.t.get(j).is_some_and(|t| t.is_punct('!')) {
                self.i += 1; // macro, not a call
                continue;
            }
            if self.t.get(j).is_some_and(|t| t.is_punct(':'))
                && self.t.get(j + 1).is_some_and(|t| t.is_punct(':'))
                && self.t.get(j + 2).is_some_and(|t| t.is_punct('<'))
            {
                let mut d = 0i32;
                let mut k = j + 2;
                while let Some(t) = self.t.get(k) {
                    if t.is_punct('<') {
                        d += 1;
                    } else if t.is_punct('>') {
                        d -= 1;
                        if d == 0 {
                            k += 1;
                            break;
                        }
                    }
                    k += 1;
                }
                j = k;
            }
            if !self.t.get(j).is_some_and(|t| t.is_punct('(')) {
                self.i += 1;
                continue;
            }
            if self.i >= 1 && self.t[self.i - 1].is_ident("fn") {
                self.i += 1; // nested fn definition header
                continue;
            }
            let call = self.classify_call(item, &hints);
            if let Some(c) = call {
                item.calls.push(c);
            }
            self.i += 1;
        }
    }

    /// Classify the call whose name ident is at `self.i`.
    fn classify_call(&self, item: &FnItem, hints: &[(String, String)]) -> Option<CallSite> {
        let name_tok = &self.t[self.i];
        let name = name_tok.text.clone();
        let line = name_tok.line;
        let i = self.i;
        let prev = i.checked_sub(1).map(|k| &self.t[k]);
        if prev.is_some_and(|p| p.is_punct('.')) {
            // Method call: recover a receiver hint from the token before `.`.
            let hint = match i.checked_sub(2).map(|k| &self.t[k]) {
                Some(r) if r.is_ident("self") => match &item.owner {
                    Some(o) => Hint::Type(o.clone()),
                    None => Hint::None,
                },
                Some(r) if r.kind == TokKind::Ident => {
                    let is_self_field =
                        i >= 4 && self.t[i - 3].is_punct('.') && self.t[i - 4].is_ident("self");
                    if is_self_field {
                        Hint::SelfField(r.text.clone())
                    } else if let Some((_, ty)) = hints.iter().find(|(n, _)| n == &r.text) {
                        Hint::Type(ty.clone())
                    } else {
                        Hint::None
                    }
                }
                _ => Hint::None,
            };
            return Some(CallSite {
                callee: Callee::Method { name, hint },
                line,
            });
        }
        // Path call: walk back over `seg::seg::` prefixes.
        let mut segs = vec![name];
        let mut k = i;
        while k >= 3
            && self.t[k - 1].is_punct(':')
            && self.t[k - 2].is_punct(':')
            && self.t[k - 3].kind == TokKind::Ident
        {
            segs.insert(0, self.t[k - 3].text.clone());
            k -= 3;
        }
        while matches!(
            segs.first().map(String::as_str),
            Some("crate" | "super" | "self")
        ) {
            segs.remove(0);
        }
        if segs.is_empty() {
            return None;
        }
        // `Self::assoc(…)` resolves through the impl owner.
        if segs.len() == 2 && segs[0] == "Self" {
            if let Some(o) = &item.owner {
                return Some(CallSite {
                    callee: Callee::Method {
                        name: segs[1].clone(),
                        hint: Hint::Type(o.clone()),
                    },
                    line,
                });
            }
        }
        Some(CallSite {
            callee: Callee::Path(segs),
            line,
        })
    }
}

fn upsert(hints: &mut Vec<(String, String)>, name: String, ty: String) {
    if let Some(h) = hints.iter_mut().find(|(n, _)| n == &name) {
        h.1 = ty;
    } else {
        hints.push((name, ty));
    }
}

/// Reduce a type token run to its load-bearing ident: strip references,
/// lifetimes, `mut`/`dyn`/`impl`, unwrap transparent wrappers
/// ([`TYPE_WRAPPERS`]), and take the last segment of a path. `Arc<SimFs<T>>`
/// → `SimFs`, `&'a dyn ExecutionBackend` → `ExecutionBackend`.
pub fn strip_type(toks: &[Token]) -> Option<String> {
    let mut i = 0usize;
    loop {
        let tok = toks.get(i)?;
        if tok.is_punct('&') || tok.is_punct('*') || tok.is_punct('(') {
            i += 1;
            continue;
        }
        if tok.kind == TokKind::Lifetime {
            i += 1;
            continue;
        }
        if tok.kind != TokKind::Ident {
            return None;
        }
        match tok.text.as_str() {
            "mut" | "dyn" | "impl" | "const" => {
                i += 1;
                continue;
            }
            name => {
                if TYPE_WRAPPERS.contains(&name) && toks.get(i + 1).is_some_and(|t| t.is_punct('<'))
                {
                    i += 2; // descend into the wrapper's argument
                    continue;
                }
                // Path: follow `::` to the last segment.
                let mut out = name;
                let mut j = i + 1;
                while toks.get(j).is_some_and(|t| t.is_punct(':'))
                    && toks.get(j + 1).is_some_and(|t| t.is_punct(':'))
                    && toks.get(j + 2).is_some_and(|t| t.kind == TokKind::Ident)
                {
                    out = &toks[j + 2].text;
                    j += 3;
                }
                // A wrapper at the end of a path (`std::sync::Arc<T>`).
                if TYPE_WRAPPERS.contains(&out) && toks.get(j).is_some_and(|t| t.is_punct('<')) {
                    i = j + 1;
                    continue;
                }
                return Some(out.to_string());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> FileItems {
        parse_file("crates/core/src/x.rs", src)
    }

    #[test]
    fn fn_receivers_and_visibility() {
        let f = parse(
            "impl Foo {\n\
             pub fn a(&self) {}\n\
             fn b(&mut self, n: u32) {}\n\
             pub(crate) fn c(self) {}\n\
             fn d(x: &Bar) {}\n\
             }",
        );
        let by = |n: &str| f.fns.iter().find(|f| f.name == n).expect("fn present");
        assert_eq!(by("a").receiver, Receiver::Ref);
        assert!(by("a").is_pub);
        assert_eq!(by("b").receiver, Receiver::RefMut);
        assert_eq!(by("c").receiver, Receiver::Owned);
        assert!(by("c").is_pub);
        assert_eq!(by("d").receiver, Receiver::Free);
        assert_eq!(by("d").params, vec![("x".to_string(), "Bar".to_string())]);
        assert_eq!(by("a").owner.as_deref(), Some("Foo"));
    }

    #[test]
    fn impl_trait_for_type_and_modules() {
        let f = parse(
            "mod inner {\n\
             impl<'a> Iterator for FragIter<'a> { fn next(&mut self) {} }\n\
             }",
        );
        assert_eq!(f.impls[0].owner, "FragIter");
        assert_eq!(f.impls[0].trait_name.as_deref(), Some("Iterator"));
        assert_eq!(f.fns[0].module, vec!["inner".to_string()]);
        assert_eq!(f.fns[0].owner.as_deref(), Some("FragIter"));
    }

    #[test]
    fn struct_fields_strip_wrappers() {
        let f = parse(
            "struct S {\n\
             pub a: Arc<SimFs<Table>>,\n\
             b: &'a dyn ExecutionBackend,\n\
             c: Option<Box<Cluster>>,\n\
             d: std::sync::Arc<Journal<R, S>>,\n\
             }",
        );
        let s = &f.structs[0];
        let get = |n: &str| {
            s.fields
                .iter()
                .find(|(f, _)| f == n)
                .map(|(_, t)| t.as_str())
        };
        assert_eq!(get("a"), Some("SimFs"));
        assert_eq!(get("b"), Some("ExecutionBackend"));
        assert_eq!(get("c"), Some("Cluster"));
        assert_eq!(get("d"), Some("Journal"));
    }

    #[test]
    fn call_sites_classify_methods_and_paths() {
        let f = parse(
            "impl Foo {\n\
             fn go(&self, reg: &ViewRegistry) {\n\
             self.step();\n\
             self.registry.track(1);\n\
             reg.view_mut(0);\n\
             helper(2);\n\
             crate::util::helper2();\n\
             let c: Catalog = make();\n\
             c.stats();\n\
             items.len();\n\
             }\n\
             }",
        );
        let calls = &f.fns[0].calls;
        let find = |n: &str| {
            calls
                .iter()
                .find(|c| match &c.callee {
                    Callee::Method { name, .. } => name == n,
                    Callee::Path(p) => p.last().map(String::as_str) == Some(n),
                })
                .expect("call present")
        };
        assert_eq!(
            find("step").callee,
            Callee::Method {
                name: "step".into(),
                hint: Hint::Type("Foo".into())
            }
        );
        assert_eq!(
            find("track").callee,
            Callee::Method {
                name: "track".into(),
                hint: Hint::SelfField("registry".into())
            }
        );
        assert_eq!(
            find("view_mut").callee,
            Callee::Method {
                name: "view_mut".into(),
                hint: Hint::Type("ViewRegistry".into())
            }
        );
        assert_eq!(find("helper").callee, Callee::Path(vec!["helper".into()]));
        assert_eq!(
            find("helper2").callee,
            Callee::Path(vec!["util".into(), "helper2".into()])
        );
        assert_eq!(
            find("stats").callee,
            Callee::Method {
                name: "stats".into(),
                hint: Hint::Type("Catalog".into())
            }
        );
        assert_eq!(
            find("len").callee,
            Callee::Method {
                name: "len".into(),
                hint: Hint::None
            }
        );
    }

    #[test]
    fn cfg_test_scope_marks_fns() {
        let f = parse(
            "fn prod() {}\n\
             #[cfg(test)]\n\
             mod tests {\n\
             #[test]\n\
             fn t() { prod(); }\n\
             }",
        );
        assert!(
            !f.fns
                .iter()
                .find(|f| f.name == "prod")
                .expect("prod")
                .is_test
        );
        assert!(f.fns.iter().find(|f| f.name == "t").expect("t").is_test);
    }

    #[test]
    fn turbofish_call_and_macros_are_handled() {
        let f = parse(
            "fn go() {\n\
             parse::<u32>(s);\n\
             format!(\"{}\", x);\n\
             }",
        );
        let calls = &f.fns[0].calls;
        assert_eq!(calls.len(), 1, "macro is not a call: {calls:?}");
        assert_eq!(calls[0].callee, Callee::Path(vec!["parse".into()]));
    }
}
