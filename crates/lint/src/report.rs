//! Diagnostic rendering: human-readable text for terminals and CI logs,
//! plus a machine-readable JSON report through the vendored serde shim.

use serde::{ObjectBuilder, Value};

use crate::baseline::Ratchet;
use crate::rules::{RuleId, Violation};

/// One `path:line: [CODE slug] message` diagnostic line.
pub fn render_violation(v: &Violation) -> String {
    format!(
        "{}:{}: [{} {}] {}",
        v.file,
        v.line,
        v.rule.code(),
        v.rule.slug(),
        v.message
    )
}

/// Human-readable report for a run without a baseline: every violation,
/// then a per-rule summary.
pub fn render_plain(violations: &[Violation], files_scanned: usize) -> String {
    let mut out = String::new();
    for v in violations {
        out.push_str(&render_violation(v));
        out.push('\n');
    }
    out.push_str(&summary_line(violations, files_scanned));
    out
}

/// Human-readable report for a ratcheted run: new violations and count
/// regressions (hard failures), then improvement suggestions.
pub fn render_ratcheted(
    violations: &[Violation],
    ratchet: &Ratchet,
    files_scanned: usize,
) -> String {
    let mut out = String::new();
    if ratchet.failed() {
        out.push_str("FAIL: new violations or baseline count regressions\n\n");
        for v in &ratchet.new_violations {
            out.push_str(&render_violation(v));
            out.push('\n');
        }
        out.push('\n');
        for d in &ratchet.regressions {
            out.push_str(&format!(
                "  {} {}: baseline allows {}, found {}\n",
                d.rule, d.file, d.baselined, d.current
            ));
        }
        out.push('\n');
    }
    if !ratchet.improvements.is_empty() {
        out.push_str(&format!(
            "{} baseline entr{} can be ratcheted down (run with --write-baseline):\n",
            ratchet.improvements.len(),
            if ratchet.improvements.len() == 1 {
                "y"
            } else {
                "ies"
            }
        ));
        for d in &ratchet.improvements {
            out.push_str(&format!(
                "  {} {}: {} -> {}\n",
                d.rule, d.file, d.baselined, d.current
            ));
        }
    }
    out.push_str(&summary_line(violations, files_scanned));
    if !ratchet.failed() {
        out.push_str("baseline ratchet: OK\n");
    }
    out
}

fn summary_line(violations: &[Violation], files_scanned: usize) -> String {
    let mut per_rule = String::new();
    for rule in RuleId::all() {
        let n = violations.iter().filter(|v| v.rule == rule).count();
        if n > 0 {
            if !per_rule.is_empty() {
                per_rule.push_str(", ");
            }
            per_rule.push_str(&format!("{} {}", rule.code(), n));
        }
    }
    if per_rule.is_empty() {
        per_rule.push_str("none");
    }
    format!(
        "deepsea-lint: {files_scanned} files scanned, {} violation{} ({per_rule})\n",
        violations.len(),
        if violations.len() == 1 { "" } else { "s" },
    )
}

/// Machine-readable JSON report: all violations, per-rule totals, and (when
/// a baseline was used) the ratchet outcome.
pub fn render_json(
    violations: &[Violation],
    ratchet: Option<&Ratchet>,
    files_scanned: usize,
) -> String {
    let vio_values: Vec<Value> = violations
        .iter()
        .map(|v| {
            ObjectBuilder::new()
                .field("rule", v.rule.code())
                .field("slug", v.rule.slug())
                .field("file", v.file.as_str())
                .field("line", u64::from(v.line))
                .field("message", v.message.as_str())
                .build()
        })
        .collect();
    let mut totals = ObjectBuilder::new();
    for rule in RuleId::all() {
        let n = violations.iter().filter(|v| v.rule == rule).count();
        if n > 0 {
            totals = totals.field(rule.code(), n as u64);
        }
    }
    let mut root = ObjectBuilder::new()
        .field("files_scanned", files_scanned as u64)
        .field("violations", Value::Array(vio_values))
        .field("totals", totals.build());
    if let Some(r) = ratchet {
        let delta = |d: &crate::baseline::CountDelta| {
            ObjectBuilder::new()
                .field("rule", d.rule.as_str())
                .field("file", d.file.as_str())
                .field("baselined", d.baselined)
                .field("current", d.current)
                .build()
        };
        root = root.field(
            "ratchet",
            ObjectBuilder::new()
                .field("failed", r.failed())
                .field(
                    "regressions",
                    Value::Array(r.regressions.iter().map(delta).collect()),
                )
                .field(
                    "improvements",
                    Value::Array(r.improvements.iter().map(delta).collect()),
                )
                .build(),
        );
    }
    let mut s = serde::to_string(&root.build());
    s.push('\n');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(rule: RuleId, file: &str, line: u32) -> Violation {
        Violation {
            rule,
            file: file.to_string(),
            line,
            message: "msg".to_string(),
        }
    }

    #[test]
    fn diagnostic_names_rule_file_and_line() {
        let d = render_violation(&v(RuleId::Panic, "crates/core/src/x.rs", 7));
        assert_eq!(d, "crates/core/src/x.rs:7: [P1 panic] msg");
    }

    #[test]
    fn json_report_is_valid_and_complete() {
        let vs = vec![v(RuleId::Panic, "a.rs", 1), v(RuleId::HashIter, "b.rs", 2)];
        let json = render_json(&vs, None, 10);
        assert!(json.contains("\"files_scanned\":10"));
        assert!(json.contains("\"rule\":\"P1\""));
        assert!(json.contains("\"rule\":\"D1\""));
        assert!(json.contains("\"totals\":{\"D1\":1,\"P1\":1}"));
    }

    #[test]
    fn summary_counts_per_rule() {
        let vs = vec![v(RuleId::Panic, "a.rs", 1), v(RuleId::Panic, "a.rs", 2)];
        let text = render_plain(&vs, 3);
        assert!(
            text.contains("3 files scanned, 2 violations (P1 2)"),
            "{text}"
        );
    }
}
