//! Best-effort cross-crate call-graph over the item parse ([`crate::items`]),
//! plus the one rule that needs whole-corpus reachability: **R1
//! `read_path_purity`**.
//!
//! Resolution strategy (documented in DESIGN.md §10):
//!
//! - **Free/path calls** resolve by path suffix: the last segment must match
//!   the fn name; a penultimate segment, when present, must match the
//!   candidate's owner type, enclosing module, file stem or crate.
//! - **Method calls** resolve by name plus a receiver-type hint recovered
//!   from `self`, `self.field` (through struct field types), params, or
//!   `let` annotations. A hint that names a trait expands to every impl of
//!   that trait.
//! - **Ambiguity is resolved conservatively for the corpus rules**: an
//!   unhinted method name resolves only when the corpus has exactly one
//!   candidate and the name is not a ubiquitous std method; everything else
//!   is recorded as unresolved rather than guessed. The `--graph-out`
//!   export carries the unresolved count so the blind spot is measurable.

use std::collections::{BTreeMap, BTreeSet};

use crate::items::{Callee, FileItems, FnItem, Hint, Receiver};
use crate::rules::{RuleId, Violation};

/// Method names so ubiquitous on std types that an unhinted unique-name
/// match would be noise, not signal.
const COMMON_METHODS: [&str; 96] = [
    "len",
    "is_empty",
    "push",
    "pop",
    "insert",
    "remove",
    "get",
    "get_mut",
    "contains",
    "contains_key",
    "clone",
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "drain",
    "retain",
    "entry",
    "clear",
    "extend",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "dedup",
    "first",
    "last",
    "next",
    "peek",
    "map",
    "and_then",
    "filter",
    "find",
    "position",
    "any",
    "all",
    "fold",
    "sum",
    "count",
    "collect",
    "chain",
    "zip",
    "rev",
    "take",
    "skip",
    "flat_map",
    "flatten",
    "unwrap",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "expect",
    "ok",
    "err",
    "is_some",
    "is_none",
    "is_ok",
    "is_err",
    "as_ref",
    "as_mut",
    "as_str",
    "as_slice",
    "as_deref",
    "to_string",
    "to_owned",
    "to_vec",
    "into",
    "from",
    "parse",
    "split",
    "join",
    "trim",
    "starts_with",
    "ends_with",
    "replace",
    "chars",
    "fmt",
    "eq",
    "cmp",
    "hash",
    "min",
    "max",
    "abs",
    "floor",
    "round",
    "clamp",
    "copied",
    "cloned",
    "then",
    "swap",
    "truncate",
    "windows",
    "max_by_key",
    "min_by_key",
];

/// Types holding shared catalog/registry/pool state: a `&mut self` method
/// on one of these is a mutation the read path must never reach.
const MUT_STATE_TYPES: [&str; 8] = [
    "ViewRegistry",
    "ViewMeta",
    "PartitionState",
    "Catalog",
    "PoolAccountant",
    "SimFs",
    "DeepSea",
    "Journal",
];

/// Journal methods that commit durable state even through `&self`.
const JOURNAL_APPENDS: [&str; 3] = ["append", "append_infallible", "install_snapshot"];

/// The resolved call graph.
pub struct CallGraph {
    /// Every fn item, flattened across files; indices are node ids.
    pub fns: Vec<FnItem>,
    /// Resolved edges per fn: `(callee index, call line)`.
    pub adj: Vec<Vec<(usize, u32)>>,
    /// Method calls the resolver declined to guess (no/ambiguous hint).
    pub unresolved_methods: usize,
    fields: BTreeMap<String, BTreeMap<String, String>>,
    trait_impls: BTreeMap<String, Vec<String>>,
    by_name: BTreeMap<String, Vec<usize>>,
    by_owner_name: BTreeMap<(String, String), Vec<usize>>,
}

impl CallGraph {
    /// Build the graph over a parsed corpus.
    pub fn build(files: &[FileItems]) -> CallGraph {
        let mut fns: Vec<FnItem> = Vec::new();
        let mut fields: BTreeMap<String, BTreeMap<String, String>> = BTreeMap::new();
        let mut trait_impls: BTreeMap<String, Vec<String>> = BTreeMap::new();
        for f in files {
            fns.extend(f.fns.iter().cloned());
            for s in &f.structs {
                let e = fields.entry(s.name.clone()).or_default();
                for (n, t) in &s.fields {
                    e.insert(n.clone(), t.clone());
                }
            }
            for im in &f.impls {
                if let Some(tr) = &im.trait_name {
                    let owners = trait_impls.entry(tr.clone()).or_default();
                    if !owners.contains(&im.owner) {
                        owners.push(im.owner.clone());
                    }
                }
            }
        }
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut by_owner_name: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            by_name.entry(f.name.clone()).or_default().push(i);
            if let Some(o) = &f.owner {
                by_owner_name
                    .entry((o.clone(), f.name.clone()))
                    .or_default()
                    .push(i);
            }
        }
        let mut g = CallGraph {
            adj: vec![Vec::new(); fns.len()],
            fns,
            unresolved_methods: 0,
            fields,
            trait_impls,
            by_name,
            by_owner_name,
        };
        for i in 0..g.fns.len() {
            let mut edges: Vec<(usize, u32)> = Vec::new();
            let calls = g.fns[i].calls.clone();
            for c in &calls {
                for to in g.resolve(i, &c.callee) {
                    if !edges.contains(&(to, c.line)) {
                        edges.push((to, c.line));
                    }
                }
            }
            g.adj[i] = edges;
        }
        g
    }

    /// Resolve one call from `caller` to candidate node indices.
    fn resolve(&mut self, caller: usize, callee: &Callee) -> Vec<usize> {
        match callee {
            Callee::Method { name, hint } => {
                let ty = match hint {
                    Hint::Type(t) => Some(t.clone()),
                    Hint::SelfField(f) => self.fns[caller]
                        .owner
                        .as_ref()
                        .and_then(|o| self.fields.get(o))
                        .and_then(|fs| fs.get(f))
                        .cloned(),
                    Hint::None => None,
                };
                match ty {
                    Some(t) => {
                        let direct = self
                            .by_owner_name
                            .get(&(t.clone(), name.clone()))
                            .cloned()
                            .unwrap_or_default();
                        if !direct.is_empty() {
                            return direct;
                        }
                        // A trait hint expands to every implementing type.
                        if let Some(owners) = self.trait_impls.get(&t).cloned() {
                            let mut out = Vec::new();
                            for o in owners {
                                if let Some(c) = self.by_owner_name.get(&(o, name.clone())) {
                                    out.extend(c.iter().copied());
                                }
                            }
                            if !out.is_empty() {
                                return out;
                            }
                        }
                        // Hinted but unknown: a std/external type, not a guess.
                        Vec::new()
                    }
                    None => {
                        if COMMON_METHODS.contains(&name.as_str()) {
                            return Vec::new();
                        }
                        let cands: Vec<usize> = self
                            .by_name
                            .get(name)
                            .map(|v| {
                                v.iter()
                                    .copied()
                                    .filter(|&i| self.fns[i].owner.is_some())
                                    .collect()
                            })
                            .unwrap_or_default();
                        match cands.len() {
                            0 => Vec::new(),
                            1 => cands,
                            _ => {
                                self.unresolved_methods += 1;
                                Vec::new()
                            }
                        }
                    }
                }
            }
            Callee::Path(segs) => {
                let name = segs.last().cloned().unwrap_or_default();
                let cands: Vec<usize> = self.by_name.get(&name).cloned().unwrap_or_default();
                if cands.is_empty() {
                    return Vec::new();
                }
                if segs.len() >= 2 {
                    let qual = &segs[segs.len() - 2];
                    // `Type::assoc` / `module::f` — the qualifier must match
                    // the candidate's owner, module, file stem, or crate.
                    return cands
                        .into_iter()
                        .filter(|&i| {
                            let f = &self.fns[i];
                            f.owner.as_deref() == Some(qual.as_str())
                                || f.module.iter().any(|m| m == qual)
                                || file_stem(&f.file) == qual.as_str()
                                || crate_name(&f.file) == qual.as_str()
                                || f.file.contains(&format!("/{qual}/"))
                                || f.file.ends_with(&format!("/{qual}.rs"))
                        })
                        .collect();
                }
                // Bare `f(…)`: free fns only; prefer same file, then same
                // crate, before accepting cross-crate candidates.
                let free: Vec<usize> = cands
                    .into_iter()
                    .filter(|&i| self.fns[i].owner.is_none())
                    .collect();
                let caller_file = self.fns[caller].file.clone();
                let same_file: Vec<usize> = free
                    .iter()
                    .copied()
                    .filter(|&i| self.fns[i].file == caller_file)
                    .collect();
                if !same_file.is_empty() {
                    return same_file;
                }
                let caller_crate = crate_name(&caller_file).to_string();
                let same_crate: Vec<usize> = free
                    .iter()
                    .copied()
                    .filter(|&i| crate_name(&self.fns[i].file) == caller_crate)
                    .collect();
                if !same_crate.is_empty() {
                    return same_crate;
                }
                free
            }
        }
    }

    /// Is this fn an R1 root — an entry into the snapshot read path?
    fn is_read_root(&self, i: usize) -> bool {
        let f = &self.fns[i];
        if f.is_test {
            return false;
        }
        f.file.contains("driver/read_path")
            || f.owner.as_deref() == Some("ReadSnapshot")
            || f.params.iter().any(|(_, t)| t == "ReadSnapshot")
    }

    /// If calling into this fn from the read path is forbidden, say why.
    fn forbidden_reason(&self, i: usize) -> Option<String> {
        let f = &self.fns[i];
        if f.is_test {
            return None;
        }
        if f.file.contains("driver/write_path") {
            return Some(format!(
                "`{}` is a write-path function ({})",
                qualified(f),
                f.file
            ));
        }
        if let Some(o) = f.owner.as_deref() {
            if f.receiver == Receiver::RefMut && MUT_STATE_TYPES.contains(&o) {
                return Some(format!(
                    "`{}` takes `&mut self` on shared catalog state",
                    qualified(f)
                ));
            }
            if o == "Journal" && JOURNAL_APPENDS.contains(&f.name.as_str()) {
                return Some(format!("`{}` commits durable journal state", qualified(f)));
            }
        }
        None
    }

    /// **R1 `read_path_purity`** — BFS from every read-path root; any edge
    /// into a forbidden fn is a violation at the call site.
    pub fn read_path_purity_violations(&self) -> Vec<Violation> {
        let mut out: Vec<Violation> = Vec::new();
        let mut seen_site: BTreeSet<(String, u32, String)> = BTreeSet::new();
        let mut visited = vec![false; self.fns.len()];
        let mut queue: Vec<(usize, usize)> = Vec::new(); // (node, root)
        for (i, seen) in visited.iter_mut().enumerate() {
            if self.is_read_root(i) && self.forbidden_reason(i).is_none() {
                *seen = true;
                queue.push((i, i));
            }
        }
        let mut qi = 0usize;
        while qi < queue.len() {
            let (node, root) = queue[qi];
            qi += 1;
            for &(to, line) in &self.adj[node] {
                if self.fns[to].is_test {
                    continue;
                }
                if let Some(reason) = self.forbidden_reason(to) {
                    let caller = &self.fns[node];
                    let key = (caller.file.clone(), line, qualified(&self.fns[to]));
                    if seen_site.insert(key) {
                        out.push(Violation {
                            rule: RuleId::ReadPurity,
                            file: caller.file.clone(),
                            line,
                            message: format!(
                                "read path is impure: `{}` (reachable from read-path \
                                 entry `{}`) calls {reason}",
                                qualified(caller),
                                qualified(&self.fns[root]),
                            ),
                        });
                    }
                    continue;
                }
                if !visited[to] {
                    visited[to] = true;
                    queue.push((to, root));
                }
            }
        }
        out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
        out
    }

    /// Serialize the graph as JSON for `--graph-out`: node table with
    /// resolved edges, plus the unresolved-call count. Hand-rolled through
    /// a `String` so the export needs no serializer support.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"fns\": [\n");
        for (i, f) in self.fns.iter().enumerate() {
            let recv = match f.receiver {
                Receiver::Free => "free",
                Receiver::Ref => "ref",
                Receiver::RefMut => "ref_mut",
                Receiver::Owned => "owned",
            };
            s.push_str(&format!(
                "    {{\"id\": {i}, \"name\": {}, \"owner\": {}, \"file\": {}, \
                 \"line\": {}, \"receiver\": \"{recv}\", \"is_test\": {}, \
                 \"read_root\": {}, \"forbidden\": {}, \"calls\": [",
                json_str(&f.name),
                f.owner.as_deref().map_or("null".to_string(), json_str),
                json_str(&f.file),
                f.line,
                f.is_test,
                self.is_read_root(i),
                self.forbidden_reason(i).is_some(),
            ));
            for (k, &(to, line)) in self.adj[i].iter().enumerate() {
                if k > 0 {
                    s.push_str(", ");
                }
                s.push_str(&format!("{{\"to\": {to}, \"line\": {line}}}"));
            }
            s.push_str("]}");
            s.push_str(if i + 1 < self.fns.len() { ",\n" } else { "\n" });
        }
        s.push_str(&format!(
            "  ],\n  \"unresolved_method_calls\": {}\n}}\n",
            self.unresolved_methods
        ));
        s
    }
}

/// `Owner::name` or bare `name`.
fn qualified(f: &FnItem) -> String {
    match &f.owner {
        Some(o) => format!("{o}::{}", f.name),
        None => f.name.clone(),
    }
}

fn file_stem(rel: &str) -> &str {
    rel.rsplit('/')
        .next()
        .and_then(|f| f.strip_suffix(".rs"))
        .unwrap_or("")
}

fn crate_name(rel: &str) -> &str {
    rel.strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("")
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::parse_file;

    fn corpus(files: &[(&str, &str)]) -> CallGraph {
        let parsed: Vec<FileItems> = files
            .iter()
            .map(|(rel, src)| parse_file(rel, src))
            .collect();
        CallGraph::build(&parsed)
    }

    const READ: &str = "crates/core/src/driver/read_path/mod.rs";
    const WRITE: &str = "crates/core/src/driver/write_path/mod.rs";

    #[test]
    fn read_path_calling_mut_registry_is_flagged() {
        let g = corpus(&[
            (
                READ,
                "impl ReadView { fn answer(&self, registry: &ViewRegistry) {\n\
                 registry.quarantine(1);\n} }",
            ),
            (
                "crates/core/src/registry.rs",
                "impl ViewRegistry { pub fn quarantine(&mut self, v: u64) {} }",
            ),
        ]);
        let v = g.read_path_purity_violations();
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].file, READ);
        assert_eq!(v[0].line, 2);
        assert!(v[0].message.contains("quarantine"), "{}", v[0].message);
    }

    #[test]
    fn transitive_reach_into_write_path_is_flagged() {
        let g = corpus(&[
            (
                READ,
                "impl ReadView { fn answer(&self) { helper_step(); } }",
            ),
            (
                "crates/core/src/driver/mod.rs",
                "pub fn helper_step() { crate::write_path::commit_now(); }",
            ),
            (WRITE, "pub fn commit_now() {}"),
        ]);
        let v = g.read_path_purity_violations();
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].file, "crates/core/src/driver/mod.rs");
        assert!(v[0].message.contains("write-path"), "{}", v[0].message);
    }

    #[test]
    fn read_path_calling_shared_ref_methods_is_clean() {
        let g = corpus(&[
            (
                READ,
                "impl ReadView { fn answer(&self, registry: &ViewRegistry) {\n\
                 registry.view(1); self.trace();\n} fn trace(&self) {} }",
            ),
            (
                "crates/core/src/registry.rs",
                "impl ViewRegistry { pub fn view(&self, v: u64) {} \
                 pub fn quarantine(&mut self, v: u64) {} }",
            ),
        ]);
        assert!(g.read_path_purity_violations().is_empty());
    }

    #[test]
    fn ambiguous_unhinted_method_does_not_edge() {
        // Two `refresh` methods exist; an unhinted receiver must not guess
        // either (and must count as unresolved).
        let g = corpus(&[
            (
                READ,
                "impl ReadView { fn answer(&self, x: &UnknownExternal) { x.refresh(); } }",
            ),
            (
                "crates/core/src/registry.rs",
                "impl ViewRegistry { pub fn refresh(&mut self) {} }\n\
                 impl Catalog { pub fn refresh(&mut self) {} }",
            ),
        ]);
        // `x` is hinted to UnknownExternal (not in corpus) — no edge, and no
        // false violation.
        assert!(g.read_path_purity_violations().is_empty());

        let g2 = corpus(&[
            (
                READ,
                "impl ReadView { fn answer(&self) { let x = make(); x.refresh(); } }",
            ),
            (
                "crates/core/src/registry.rs",
                "impl ViewRegistry { pub fn refresh(&mut self) {} }\n\
                 impl Catalog { pub fn refresh(&mut self) {} }",
            ),
        ]);
        assert!(g2.read_path_purity_violations().is_empty());
        assert_eq!(g2.unresolved_methods, 1);
    }

    #[test]
    fn unique_unhinted_method_resolves() {
        // Exactly one candidate and an uncommon name: the conservative
        // resolver still takes the only possible target (no false negative).
        let g = corpus(&[
            (
                READ,
                "impl ReadView { fn answer(&self) { let x = make(); x.quarantine_view(); } }",
            ),
            (
                "crates/core/src/registry.rs",
                "impl ViewRegistry { pub fn quarantine_view(&mut self) {} }",
            ),
        ]);
        assert_eq!(g.read_path_purity_violations().len(), 1);
    }

    #[test]
    fn self_field_hint_resolves_through_struct_fields() {
        let g = corpus(&[
            (
                READ,
                "struct ReadView { journal: Arc<Journal<R, S>> }\n\
                 impl ReadView { fn answer(&self) { self.journal.append(1); } }",
            ),
            (
                "crates/storage/src/journal.rs",
                "impl Journal { pub fn append(&self, r: u64) {} }",
            ),
        ]);
        let v = g.read_path_purity_violations();
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("journal"), "{}", v[0].message);
    }

    #[test]
    fn snapshot_param_fns_are_roots() {
        let g = corpus(&[
            (
                "crates/core/src/server/mod.rs",
                "pub fn serve(snap: &ReadSnapshot) { snap.mutate_all(); }\n\
                 impl ReadSnapshot { pub fn mutate_all(&self) { crate::write_path::commit(); } }",
            ),
            ("crates/core/src/snapshot.rs", "pub struct ReadSnapshot {}"),
            (WRITE, "pub fn commit() {}"),
        ]);
        let v = g.read_path_purity_violations();
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn test_fns_are_neither_roots_nor_targets() {
        let g = corpus(&[
            (
                READ,
                "#[cfg(test)]\nmod tests {\n fn t(r: &mut ViewRegistry) { r.track(1); } }\n\
             impl ReadView { fn answer(&self) {} }",
            ),
            (
                "crates/core/src/registry.rs",
                "impl ViewRegistry { pub fn track(&mut self, v: u64) {} }",
            ),
        ]);
        assert!(g.read_path_purity_violations().is_empty());
    }

    #[test]
    fn graph_json_exports_nodes_and_edges() {
        let g = corpus(&[(
            READ,
            "impl ReadView { fn a(&self) { self.b(); } fn b(&self) {} }",
        )]);
        let j = g.to_json();
        assert!(j.contains("\"name\": \"a\""));
        assert!(j.contains("\"read_root\": true"));
        assert!(j.contains("\"to\": 1"));
        assert!(j.contains("unresolved_method_calls"));
    }
}
