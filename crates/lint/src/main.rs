//! CLI entry point.
//!
//! ```text
//! deepsea-lint --workspace [--root DIR] [--baseline FILE] [--json FILE]
//!              [--graph-out FILE] [--write-baseline] [paths…]
//! ```
//!
//! Exit codes: `0` clean (or all violations grandfathered), `1` new
//! violations / baseline count regressions, `2` usage or I/O errors.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use deepsea_lint::{baseline::Baseline, report, LintRun};

struct Args {
    workspace: bool,
    root: Option<PathBuf>,
    baseline: Option<PathBuf>,
    json: Option<PathBuf>,
    graph_out: Option<PathBuf>,
    write_baseline: bool,
    paths: Vec<PathBuf>,
}

const USAGE: &str = "usage: deepsea-lint [--workspace] [--root DIR] \
                     [--baseline FILE] [--json FILE] [--graph-out FILE] \
                     [--write-baseline] [paths...]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workspace: false,
        root: None,
        baseline: None,
        json: None,
        graph_out: None,
        write_baseline: false,
        paths: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let path_arg = |it: &mut dyn Iterator<Item = String>| {
            it.next()
                .map(PathBuf::from)
                .ok_or_else(|| format!("{a} requires a value"))
        };
        match a.as_str() {
            "--workspace" => args.workspace = true,
            "--write-baseline" => args.write_baseline = true,
            "--root" => args.root = Some(path_arg(&mut it)?),
            "--baseline" => args.baseline = Some(path_arg(&mut it)?),
            "--json" => args.json = Some(path_arg(&mut it)?),
            "--graph-out" => args.graph_out = Some(path_arg(&mut it)?),
            "--help" | "-h" => return Err(USAGE.to_string()),
            p if !p.starts_with('-') => args.paths.push(PathBuf::from(p)),
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
    }
    if !args.workspace && args.paths.is_empty() {
        return Err(format!("nothing to lint\n{USAGE}"));
    }
    Ok(args)
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
    let root = match &args.root {
        Some(r) => r.clone(),
        None => deepsea_lint::find_workspace_root(&cwd)
            .ok_or("no workspace root found (no Cargo.toml with [workspace] above cwd)")?,
    };

    let run: LintRun = if args.workspace {
        deepsea_lint::lint_workspace(&root).map_err(|e| format!("scan failed: {e}"))?
    } else {
        let mut files = Vec::new();
        for p in &args.paths {
            let abs = if p.is_absolute() {
                p.clone()
            } else {
                cwd.join(p)
            };
            if abs.is_dir() {
                let mut sub = Vec::new();
                collect(&abs, &mut sub)?;
                files.extend(sub);
            } else {
                files.push(abs);
            }
        }
        files.sort();
        deepsea_lint::lint_files(&root, &files).map_err(|e| format!("lint failed: {e}"))?
    };

    // Resolve the baseline path relative to the workspace root, so the tool
    // behaves the same from any working directory.
    let baseline_path = args.baseline.as_ref().map(|p| {
        if p.is_absolute() {
            p.clone()
        } else if cwd.join(p).is_file() {
            cwd.join(p)
        } else {
            root.join(p)
        }
    });

    if args.write_baseline {
        let pinned = match &baseline_path {
            Some(p) if p.is_file() => {
                let text = std::fs::read_to_string(p).map_err(|e| e.to_string())?;
                Baseline::parse(&text)?
            }
            _ => Baseline::default(),
        };
        let b = Baseline::from_violations(&run.violations, &pinned);
        let out_path = baseline_path
            .clone()
            .unwrap_or_else(|| root.join("lint-baseline.json"));
        std::fs::write(&out_path, b.render()).map_err(|e| e.to_string())?;
        eprintln!("wrote baseline to {}", out_path.display());
        return Ok(true);
    }

    let (text, ratchet) = match &baseline_path {
        Some(p) => {
            let text = std::fs::read_to_string(p)
                .map_err(|e| format!("cannot read baseline {}: {e}", p.display()))?;
            let b = Baseline::parse(&text)?;
            let ratchet = deepsea_lint::compare(&b, &run.violations);
            (
                report::render_ratcheted(&run.violations, &ratchet, run.files.len()),
                Some(ratchet),
            )
        }
        None => (report::render_plain(&run.violations, run.files.len()), None),
    };
    print!("{text}");

    if let Some(json_path) = &args.json {
        let json = report::render_json(&run.violations, ratchet.as_ref(), run.files.len());
        std::fs::write(json_path, json).map_err(|e| e.to_string())?;
    }

    if let Some(graph_path) = &args.graph_out {
        let g = deepsea_lint::build_graph(&run.sources);
        std::fs::write(graph_path, g.to_json()).map_err(|e| e.to_string())?;
        eprintln!("wrote call graph to {}", graph_path.display());
    }

    let ok = match &ratchet {
        Some(r) => !r.failed(),
        None => run.violations.is_empty(),
    };
    Ok(ok)
}

fn collect(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("{}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for p in entries {
        let name = p
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if p.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect(&p, out)?;
        } else if name.ends_with(".rs") {
            out.push(p);
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(msg) => {
            eprintln!("deepsea-lint: {msg}");
            ExitCode::from(2)
        }
    }
}
