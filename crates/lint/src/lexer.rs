//! A hand-rolled Rust lexer, sufficient for token-stream lint analysis.
//!
//! The goal is *sound tokenization*, not parsing: every construct that could
//! make a naive scanner misread source as code (or code as text) is handled —
//! raw strings with arbitrary `#` fences, nested block comments, char
//! literals vs. lifetimes, byte strings, multi-line strings with escapes.
//! Everything else is emitted as single-character punctuation tokens; the
//! rule layer matches token sequences, so multi-character operators never
//! need to be recognized here.

/// Token classification. Comments are real tokens (the allow-marker grammar
/// lives in line comments); whitespace is discarded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including `_`).
    Ident,
    /// Lifetime such as `'a` or `'static` (no trailing quote).
    Lifetime,
    /// String literal (`"..."`, `b"..."`), text is the unescaped-as-written
    /// body (escape sequences are preserved verbatim minus the delimiters).
    Str,
    /// Raw string literal (`r"..."`, `br#"..."#`, any fence depth).
    RawStr,
    /// Char or byte-char literal (`'x'`, `b'\n'`).
    Char,
    /// Numeric literal (integers, floats, all radixes, with suffixes).
    Num,
    /// A single punctuation character.
    Punct,
    /// `// ...` comment; text is everything after the `//`.
    LineComment,
    /// `/* ... */` comment (nesting handled); text is the body.
    BlockComment,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokKind,
    /// Token text: identifier name, literal body, comment body, or the
    /// punctuation character.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
}

impl Token {
    /// Is this a punctuation token for exactly `c`?
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }

    /// Is this an identifier token with exactly this text?
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }
}

/// Lex `src` into tokens. Never fails: malformed trailing input degrades to
/// punctuation/ident tokens rather than aborting the scan (a linter must not
/// give up on a file because of an unterminated literal at EOF).
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        chars: src.chars().collect(),
        i: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    i: usize,
    line: u32,
    out: Vec<Token>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    /// Consume one char, tracking newlines.
    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        if c == '\n' {
            self.line += 1;
        }
        self.i += 1;
        Some(c)
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.out.push(Token { kind, text, line });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string(),
                '\'' => self.char_or_lifetime(),
                c if c.is_ascii_digit() => self.number(),
                c if c.is_alphabetic() || c == '_' => self.ident_or_prefixed_literal(),
                _ => {
                    let line = self.line;
                    let c = self.bump().unwrap_or(' ');
                    self.push(TokKind::Punct, c.to_string(), line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let line = self.line;
        self.bump();
        self.bump(); // consume `//`
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(TokKind::LineComment, text, line);
    }

    fn block_comment(&mut self) {
        let line = self.line;
        self.bump();
        self.bump(); // consume `/*`
        let mut depth = 1u32;
        let mut text = String::new();
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    text.push_str("/*");
                    self.bump();
                    self.bump();
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                    if depth > 0 {
                        text.push_str("*/");
                    }
                }
                (Some(c), _) => {
                    text.push(c);
                    self.bump();
                }
                (None, _) => break, // unterminated at EOF
            }
        }
        self.push(TokKind::BlockComment, text, line);
    }

    /// A `"..."` string starting at the current `"`. Escapes are skipped as
    /// two-char units so an escaped quote never terminates the literal.
    fn string(&mut self) {
        let line = self.line;
        self.bump(); // opening quote
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            match c {
                '"' => {
                    self.bump();
                    break;
                }
                '\\' => {
                    text.push(c);
                    self.bump();
                    if let Some(e) = self.bump() {
                        text.push(e);
                    }
                }
                _ => {
                    text.push(c);
                    self.bump();
                }
            }
        }
        self.push(TokKind::Str, text, line);
    }

    /// Raw string body after the `r`/`br` prefix has been consumed: count
    /// the `#` fence, then scan for `"` followed by the same fence.
    fn raw_string(&mut self, line: u32) {
        let mut fence = 0usize;
        while self.peek(0) == Some('#') {
            fence += 1;
            self.bump();
        }
        if self.peek(0) != Some('"') {
            // `r#foo` raw identifier, not a string: emit the ident.
            let mut name = String::new();
            while let Some(c) = self.peek(0) {
                if c.is_alphanumeric() || c == '_' {
                    name.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(TokKind::Ident, name, line);
            return;
        }
        self.bump(); // opening quote
        let mut text = String::new();
        'scan: while let Some(c) = self.peek(0) {
            if c == '"' {
                // Candidate close: check the fence.
                let mut ok = true;
                for k in 0..fence {
                    if self.peek(1 + k) != Some('#') {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    self.bump();
                    for _ in 0..fence {
                        self.bump();
                    }
                    break 'scan;
                }
            }
            text.push(c);
            self.bump();
        }
        self.push(TokKind::RawStr, text, line);
    }

    /// `'a` (lifetime) vs `'x'` / `'\n'` (char literal). A lifetime is a
    /// quote followed by an ident char that is *not* closed by another quote.
    fn char_or_lifetime(&mut self) {
        let line = self.line;
        let one = self.peek(1);
        let two = self.peek(2);
        // `'r#async` — raw lifetime. Consume the `r#` prefix so the name
        // collects as one Lifetime token instead of desyncing into
        // `'r` `#` `async`.
        if one == Some('r')
            && two == Some('#')
            && matches!(self.peek(3), Some(c) if c.is_alphabetic() || c == '_')
        {
            self.bump(); // quote
            self.bump(); // r
            self.bump(); // #
            let mut name = String::new();
            while let Some(c) = self.peek(0) {
                if c.is_alphanumeric() || c == '_' {
                    name.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(TokKind::Lifetime, name, line);
            return;
        }
        let is_lifetime =
            matches!(one, Some(c) if c.is_alphabetic() || c == '_') && two != Some('\'');
        self.bump(); // the quote
        if is_lifetime {
            let mut name = String::new();
            while let Some(c) = self.peek(0) {
                if c.is_alphanumeric() || c == '_' {
                    name.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(TokKind::Lifetime, name, line);
            return;
        }
        // Char literal: either an escape or a single char, then `'`.
        let mut text = String::new();
        match self.peek(0) {
            Some('\\') => {
                text.push('\\');
                self.bump();
                match self.bump() {
                    Some('u') => {
                        text.push('u');
                        // `\u{...}`
                        while let Some(c) = self.peek(0) {
                            let done = c == '}';
                            text.push(c);
                            self.bump();
                            if done {
                                break;
                            }
                        }
                    }
                    Some(e) => text.push(e),
                    None => {}
                }
            }
            Some(c) => {
                text.push(c);
                self.bump();
            }
            None => {}
        }
        if self.peek(0) == Some('\'') {
            self.bump(); // closing quote
        }
        self.push(TokKind::Char, text, line);
    }

    /// Numeric literal. Approximate but safe: consumes digits, radix bodies
    /// and suffixes; a `.` is only part of the number when followed by a
    /// digit, so `0..10` lexes as `0` `.` `.` `10`.
    fn number(&mut self) {
        let line = self.line;
        let mut text = String::new();
        let radix_body = |c: char| c.is_ascii_alphanumeric() || c == '_';
        while let Some(c) = self.peek(0) {
            let continues = radix_body(c)
                || (c == '.' && matches!(self.peek(1), Some(d) if d.is_ascii_digit()))
                || ((c == '+' || c == '-')
                    && matches!(text.chars().last(), Some('e') | Some('E'))
                    && matches!(self.peek(1), Some(d) if d.is_ascii_digit()));
            if !continues {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(TokKind::Num, text, line);
    }

    /// Identifier — or, when the ident is a literal prefix (`r`, `b`, `br`)
    /// directly followed by a literal start, the prefixed literal itself.
    fn ident_or_prefixed_literal(&mut self) {
        let line = self.line;
        let mut name = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                name.push(c);
                self.bump();
            } else {
                break;
            }
        }
        match (name.as_str(), self.peek(0)) {
            ("r" | "br" | "cr", Some('"' | '#')) => self.raw_string(line),
            ("b" | "c", Some('"')) => self.string_as(line),
            ("b", Some('\'')) => {
                self.char_or_lifetime();
                // Re-stamp the line of the emitted char token to the prefix.
                if let Some(t) = self.out.last_mut() {
                    t.line = line;
                }
            }
            _ => self.push(TokKind::Ident, name, line),
        }
    }

    /// `b"..."` — same body rules as a plain string.
    fn string_as(&mut self, line: u32) {
        self.string();
        if let Some(t) = self.out.last_mut() {
            t.line = line;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_puncts_numbers() {
        let toks = kinds("let x = 42;");
        assert_eq!(
            toks,
            vec![
                (TokKind::Ident, "let".into()),
                (TokKind::Ident, "x".into()),
                (TokKind::Punct, "=".into()),
                (TokKind::Num, "42".into()),
                (TokKind::Punct, ";".into()),
            ]
        );
    }

    #[test]
    fn range_does_not_eat_dots() {
        let toks = kinds("0..10");
        assert_eq!(toks[0], (TokKind::Num, "0".into()));
        assert_eq!(toks[1], (TokKind::Punct, ".".into()));
        assert_eq!(toks[2], (TokKind::Punct, ".".into()));
        assert_eq!(toks[3], (TokKind::Num, "10".into()));
    }

    #[test]
    fn floats_hex_and_suffixes() {
        assert_eq!(kinds("1.5e-3")[0], (TokKind::Num, "1.5e-3".into()));
        assert_eq!(kinds("0xFF_u64")[0], (TokKind::Num, "0xFF_u64".into()));
        assert_eq!(kinds("12f64")[0], (TokKind::Num, "12f64".into()));
    }

    #[test]
    fn strings_with_escaped_quotes() {
        let toks = kinds(r#"let s = "a \" b"; x"#);
        assert_eq!(toks[3], (TokKind::Str, r#"a \" b"#.into()));
        assert_eq!(toks[5], (TokKind::Ident, "x".into()));
    }

    #[test]
    fn raw_strings_with_fences() {
        // A raw string containing a quote and even a `"#` that is not the
        // real fence must not terminate early.
        let toks = kinds(r###"r##"has " and "# inside"## after"###);
        assert_eq!(
            toks[0],
            (TokKind::RawStr, r##"has " and "# inside"##.into())
        );
        assert_eq!(toks[1], (TokKind::Ident, "after".into()));
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        assert_eq!(kinds(r#"b"xy""#)[0], (TokKind::Str, "xy".into()));
        assert_eq!(kinds(r##"br#"x"#"##)[0], (TokKind::RawStr, "x".into()));
    }

    #[test]
    fn raw_identifier_is_an_ident() {
        let toks = kinds("r#type");
        assert_eq!(toks[0], (TokKind::Ident, "type".into()));
    }

    #[test]
    fn c_strings_and_raw_c_strings() {
        assert_eq!(kinds(r#"c"xy" z"#)[0], (TokKind::Str, "xy".into()));
        // The `cr` prefix with a fence: a `"` inside must not desync the
        // scan into phantom idents.
        let toks = kinds(r##"cr#"has " quote"# after"##);
        assert_eq!(toks[0], (TokKind::RawStr, r#"has " quote"#.into()));
        assert_eq!(toks[1], (TokKind::Ident, "after".into()));
    }

    #[test]
    fn raw_lifetimes() {
        let toks = kinds("&'r#async T");
        assert_eq!(toks[1], (TokKind::Lifetime, "async".into()));
        assert_eq!(toks[2], (TokKind::Ident, "T".into()));
    }

    #[test]
    fn lifetime_after_turbofish_then_char() {
        // `g::<'a>('b')` — the lifetime inside the turbofish must not
        // swallow the following char literal (or vice versa).
        let toks = kinds("g::<'a>('b')");
        assert_eq!(toks[0], (TokKind::Ident, "g".into()));
        assert_eq!(toks[4], (TokKind::Lifetime, "a".into()));
        assert_eq!(toks[7], (TokKind::Char, "b".into()));
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("a /* outer /* inner */ still outer */ b");
        assert_eq!(toks[0], (TokKind::Ident, "a".into()));
        assert_eq!(
            toks[1],
            (
                TokKind::BlockComment,
                " outer /* inner */ still outer ".into()
            )
        );
        assert_eq!(toks[2], (TokKind::Ident, "b".into()));
    }

    #[test]
    fn line_comment_text_and_lines() {
        let toks = lex("x\n// deepsea-lint: allow(panic) -- why\ny");
        assert_eq!(toks[1].kind, TokKind::LineComment);
        assert_eq!(toks[1].text, " deepsea-lint: allow(panic) -- why");
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 3);
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let toks = kinds("'a' 'x &'b T 'static '\\'' '\\u{1F}'");
        assert_eq!(toks[0], (TokKind::Char, "a".into()));
        // `'x` with no closing quote is a lifetime.
        assert_eq!(toks[1], (TokKind::Lifetime, "x".into()));
        assert_eq!(toks[3], (TokKind::Lifetime, "b".into()));
        assert_eq!(toks[5], (TokKind::Lifetime, "static".into()));
        assert_eq!(toks[6], (TokKind::Char, "\\'".into()));
        assert_eq!(toks[7], (TokKind::Char, "\\u{1F}".into()));
    }

    #[test]
    fn byte_char() {
        let toks = kinds("b'\\n' z");
        assert_eq!(toks[0], (TokKind::Char, "\\n".into()));
        assert_eq!(toks[1], (TokKind::Ident, "z".into()));
    }

    #[test]
    fn multiline_string_advances_lines() {
        let toks = lex("\"a\nb\"\nx");
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 3);
    }

    #[test]
    fn code_inside_strings_is_not_tokens() {
        // The classic trap: source text inside a string must not produce
        // ident tokens the rules could match.
        let toks = kinds(r#"let s = "HashMap::new().iter()";"#);
        assert!(toks
            .iter()
            .all(|(k, t)| *k != TokKind::Ident || t != "HashMap"));
    }

    #[test]
    fn unterminated_literals_do_not_panic() {
        let _ = lex("\"abc");
        let _ = lex("r#\"abc");
        let _ = lex("/* abc");
        let _ = lex("'");
        let _ = lex("b'");
    }
}
