//! Meta-test: the linter runs over the real workspace and the checked-in
//! `lint-baseline.json` holds. This is the same gate CI runs; keeping it in
//! the test suite means `cargo test` alone catches a lint regression.

use std::path::Path;

use deepsea_lint::{compare, lint_source, lint_workspace, Baseline, RuleId};

fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels below the workspace root")
}

fn checked_in_baseline() -> Baseline {
    let path = workspace_root().join("lint-baseline.json");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    Baseline::parse(&text).expect("lint-baseline.json parses")
}

#[test]
fn workspace_is_clean_against_checked_in_baseline() {
    let root = workspace_root();
    let run = lint_workspace(root).expect("workspace scan");
    assert!(
        run.files.len() > 50,
        "scan looks truncated: {} files",
        run.files.len()
    );
    let ratchet = compare(&checked_in_baseline(), &run.violations);
    let mut msg = String::new();
    for v in &ratchet.new_violations {
        msg.push_str(&format!(
            "\n  {}:{}: [{}] {}",
            v.file,
            v.line,
            v.rule.code(),
            v.message
        ));
    }
    assert!(
        !ratchet.failed(),
        "lint ratchet failed — fix the sites or justify with a marker:{msg}"
    );
}

#[test]
fn driver_hot_files_are_pinned_clean() {
    // The PR that introduced the linter burned these to zero; the explicit
    // 0 entries in the baseline keep them there. The serving-layer files
    // were born clean and are pinned so they stay that way.
    let b = checked_in_baseline();
    for file in [
        "crates/core/src/driver/write_path/evict.rs",
        "crates/core/src/driver/read_path/matching.rs",
        "crates/core/src/driver/write_path/selection.rs",
        "crates/core/src/server/mod.rs",
        "crates/core/src/server/workers.rs",
        "crates/core/src/snapshot.rs",
        "crates/storage/src/sync.rs",
    ] {
        assert!(
            b.counts["P1"].contains_key(file),
            "{file} lost its explicit P1 pin"
        );
        assert_eq!(b.allowed("P1", file), 0, "{file} must stay panic-free");
    }
    assert_eq!(
        b.allowed("D1", "crates/core/src/driver/write_path/materialize.rs"),
        0,
        "materialize.rs must stay free of hash collections"
    );
}

#[test]
fn injected_violation_fails_the_ratchet() {
    // Take a real, pinned-clean source file, append a violation, and check
    // the whole chain (lexer → rules → ratchet) reports it as a failure.
    let root = workspace_root();
    let rel = "crates/core/src/driver/write_path/selection.rs";
    let mut src = std::fs::read_to_string(root.join(rel)).expect("read selection.rs");
    assert!(
        lint_source(rel, &src).is_empty(),
        "selection.rs should currently be clean"
    );
    src.push_str("\nfn injected(x: Option<u32>) -> u32 { x.unwrap() }\n");
    let vs = lint_source(rel, &src);
    assert!(
        vs.iter().any(|v| v.rule == RuleId::Panic),
        "injected unwrap not caught: {vs:?}"
    );
    let ratchet = compare(&checked_in_baseline(), &vs);
    assert!(
        ratchet.failed(),
        "pinned-zero file did not fail the ratchet"
    );
    assert!(ratchet
        .new_violations
        .iter()
        .any(|v| v.file == rel && v.rule == RuleId::Panic));
}

#[test]
fn grandfathered_counts_are_exact() {
    // The baseline is a ratchet, not a budget: if someone fixes a
    // grandfathered site, the next --write-baseline must shrink. This test
    // nags by failing the moment the workspace count drops below an
    // allowance, so stale slack never accumulates.
    let root = workspace_root();
    let run = lint_workspace(root).expect("workspace scan");
    let ratchet = compare(&checked_in_baseline(), &run.violations);
    assert!(
        ratchet.improvements.is_empty(),
        "baseline has slack — ratchet it down with --write-baseline: {:?}",
        ratchet.improvements
    );
}

#[test]
fn real_read_path_is_pure() {
    // The headline claim of the call-graph pass: nothing reachable from a
    // read-path entry mutates registry/catalog/pool state, appends to the
    // journal, or crosses into write_path. The baseline pins this at zero;
    // this test states it directly so a future R1 hit names itself even if
    // someone regenerates the baseline without looking.
    let root = workspace_root();
    let run = lint_workspace(root).expect("workspace scan");
    let r1: Vec<_> = run
        .violations
        .iter()
        .filter(|v| v.rule == RuleId::ReadPurity)
        .collect();
    assert!(r1.is_empty(), "read path is impure: {r1:?}");
}

#[test]
fn injected_read_path_mutation_is_caught_by_the_graph() {
    // Drive the whole corpus pass on an in-memory tree: a read-path entry
    // that reaches an `&mut self` registry method — via one hop of
    // indirection — must produce an R1 violation at the call site, and an
    // allow-marker on that site must suppress it.
    let read = "crates/core/src/driver/read_path/mod.rs";
    let sources = vec![
        (
            read.to_string(),
            "impl ReadView {\n\
             fn answer(&self, registry: &ViewRegistry) {\n\
             refresh_stats(registry);\n\
             } }\n"
                .to_string(),
        ),
        (
            "crates/core/src/driver/mod.rs".to_string(),
            "pub fn refresh_stats(registry: &ViewRegistry) {\n\
             registry.rebalance(0);\n\
             }\n"
            .to_string(),
        ),
        (
            "crates/core/src/registry.rs".to_string(),
            "impl ViewRegistry { pub fn rebalance(&mut self, v: u64) {} }".to_string(),
        ),
    ];
    let g = deepsea_lint::build_graph(&sources);
    let vs = g.read_path_purity_violations();
    assert_eq!(vs.len(), 1, "{vs:?}");
    assert_eq!(vs[0].rule, RuleId::ReadPurity);
    assert_eq!(vs[0].file, "crates/core/src/driver/mod.rs");
    assert_eq!(vs[0].line, 2);
    assert!(
        vs[0].message.contains("rebalance") && vs[0].message.contains("answer"),
        "message should name both the sink and the entry: {}",
        vs[0].message
    );
}

#[test]
fn graph_export_covers_the_real_tree() {
    // `--graph-out` JSON must parse and contain the read-path roots the
    // purity rule walks from — an empty or root-less export would make R1
    // pass vacuously.
    let root = workspace_root();
    let run = lint_workspace(root).expect("workspace scan");
    let g = deepsea_lint::build_graph(&run.sources);
    let json = g.to_json();
    let v = serde_json_like_root_count(&json);
    assert!(v > 0, "no read-path roots in the exported graph");
}

/// Count `"read_root":true` markers in the export without a JSON parser
/// (the lint crate is dependency-free by design).
fn serde_json_like_root_count(json: &str) -> usize {
    json.matches("\"read_root\": true").count()
}
