//! Baseline ratchet semantics: counts may only decrease. A regression (or a
//! violation in an unlisted or pinned-clean file) is a hard failure; a drop
//! below the grandfathered count is reported as a ratchet opportunity.

use deepsea_lint::{compare, Baseline, RuleId, Violation};

fn v(rule: RuleId, file: &str, line: u32) -> Violation {
    Violation {
        rule,
        file: file.to_string(),
        line,
        message: "fixture".to_string(),
    }
}

fn baseline(entries: &[(&str, &str, u64)]) -> Baseline {
    let mut b = Baseline::default();
    for (rule, file, n) in entries {
        b.counts
            .entry((*rule).to_string())
            .or_default()
            .insert((*file).to_string(), *n);
    }
    b
}

#[test]
fn count_regression_fails_and_reports_every_site() {
    let b = baseline(&[("P1", "a.rs", 1)]);
    let vs = vec![v(RuleId::Panic, "a.rs", 3), v(RuleId::Panic, "a.rs", 9)];
    let r = compare(&b, &vs);
    assert!(r.failed());
    // Both violations at the regressed key are reported with their lines, so
    // the offender is findable even though only one of them is "new".
    assert_eq!(r.new_violations.len(), 2);
    assert_eq!(r.regressions.len(), 1);
    assert_eq!(r.regressions[0].baselined, 1);
    assert_eq!(r.regressions[0].current, 2);
}

#[test]
fn violation_in_unlisted_file_fails() {
    let b = baseline(&[("P1", "a.rs", 5)]);
    let r = compare(&b, &[v(RuleId::Panic, "b.rs", 1)]);
    assert!(r.failed());
    assert_eq!(r.new_violations.len(), 1);
}

#[test]
fn same_rule_different_file_keys_are_independent() {
    let b = baseline(&[("P1", "a.rs", 1), ("P1", "b.rs", 1)]);
    // a.rs regresses to 2, b.rs improves to 0: the failure and the
    // improvement are both reported, against their own keys.
    let r = compare(
        &b,
        &[v(RuleId::Panic, "a.rs", 1), v(RuleId::Panic, "a.rs", 2)],
    );
    assert!(r.failed());
    assert_eq!(r.regressions.len(), 1);
    assert_eq!(r.regressions[0].file, "a.rs");
    assert_eq!(r.improvements.len(), 1);
    assert_eq!(r.improvements[0].file, "b.rs");
}

#[test]
fn at_allowance_is_green_below_is_an_improvement() {
    let b = baseline(&[("P1", "a.rs", 2)]);
    let at_allowance = compare(
        &b,
        &[v(RuleId::Panic, "a.rs", 1), v(RuleId::Panic, "a.rs", 2)],
    );
    assert!(!at_allowance.failed());
    assert!(at_allowance.improvements.is_empty());

    let below = compare(&b, &[v(RuleId::Panic, "a.rs", 1)]);
    assert!(!below.failed());
    assert_eq!(below.improvements.len(), 1);
    assert_eq!(below.improvements[0].baselined, 2);
    assert_eq!(below.improvements[0].current, 1);
}

#[test]
fn fully_fixed_file_is_still_suggested_for_ratcheting() {
    let b = baseline(&[("P1", "a.rs", 4)]);
    let r = compare(&b, &[]);
    assert!(!r.failed());
    assert_eq!(r.improvements.len(), 1);
    assert_eq!(r.improvements[0].current, 0);
}

#[test]
fn explicit_zero_pins_a_file_clean() {
    // An explicit 0 entry behaves like "no entry" for the ratchet (any
    // violation fails) but documents intent and survives --write-baseline.
    let b = baseline(&[("P1", "a.rs", 0)]);
    assert!(compare(&b, &[v(RuleId::Panic, "a.rs", 7)]).failed());
    assert!(!compare(&b, &[]).failed());
}

#[test]
fn rules_are_ratcheted_independently() {
    let b = baseline(&[("P1", "a.rs", 1)]);
    // A D1 violation in the same file has no P1 allowance to hide under.
    let r = compare(&b, &[v(RuleId::HashIter, "a.rs", 2)]);
    assert!(r.failed());
    assert_eq!(r.regressions[0].rule, "D1");
}

#[test]
fn write_baseline_preserves_pinned_zeros() {
    let pinned = baseline(&[("P1", "clean.rs", 0), ("P1", "stale.rs", 3)]);
    let b = Baseline::from_violations(&[v(RuleId::Panic, "dirty.rs", 1)], &pinned);
    // The zero pin survives regeneration; the stale non-zero count does not
    // (the ratchet only ever tightens), and the live violation is counted.
    assert_eq!(b.allowed("P1", "clean.rs"), 0);
    assert!(b.counts["P1"].contains_key("clean.rs"));
    assert!(!b.counts["P1"].contains_key("stale.rs"));
    assert_eq!(b.allowed("P1", "dirty.rs"), 1);
}

#[test]
fn render_parse_compare_roundtrip() {
    let pinned = Baseline::default();
    let vs = vec![
        v(RuleId::Panic, "crates/engine/src/sql.rs", 449),
        v(RuleId::HashIter, "crates/engine/src/exec.rs", 10),
        v(RuleId::HashIter, "crates/engine/src/exec.rs", 20),
    ];
    let b = Baseline::from_violations(&vs, &pinned);
    let parsed = Baseline::parse(&b.render()).expect("roundtrip");
    assert_eq!(parsed, b);
    // The exact run that generated a baseline always passes against it.
    assert!(!compare(&parsed, &vs).failed());
}
