//! Fixture self-tests for the rule catalog: every rule gets a positive case
//! (the violation is caught, at the right line), a negative case (idiomatic
//! code passes), and an allow-marker case (a justified marker suppresses
//! exactly the marked site).

use deepsea_lint::{lint_source, RuleId, Violation};

/// Lint `src` as if it lived at `path`, returning `(rule, line)` pairs.
fn at(path: &str, src: &str) -> Vec<(RuleId, u32)> {
    lint_source(path, src)
        .into_iter()
        .map(|v| (v.rule, v.line))
        .collect()
}

fn assert_clean(path: &str, src: &str) {
    let vs: Vec<Violation> = lint_source(path, src);
    assert!(vs.is_empty(), "expected clean, got: {vs:?}");
}

const CORE: &str = "crates/core/src/fixture.rs";

// ---------------------------------------------------------------- D1 hash_iter

#[test]
fn d1_flags_binding_and_iteration() {
    let src = "use std::collections::HashMap;\n\
               fn f(m: &HashMap<u32, u32>) -> usize {\n\
               \x20   m.iter().count()\n\
               }\n";
    let got = at(CORE, src);
    // Line 1 (`use`) is exempt; line 2 flags the binding, line 3 the iteration.
    assert_eq!(got, vec![(RuleId::HashIter, 2), (RuleId::HashIter, 3)]);
}

#[test]
fn d1_flags_for_loop_over_hash_binding() {
    // The ident tracker follows unqualified type annotations (`set: &HashSet`,
    // the idiomatic form after a `use`); fully-qualified paths fall back to
    // being caught at the binding site only.
    let src = "use std::collections::HashSet;\n\
               fn f(set: &HashSet<u32>) {\n\
               \x20   for _x in set {\n\
               \x20   }\n\
               }\n";
    let got = at(CORE, src);
    assert!(
        got.contains(&(RuleId::HashIter, 3)),
        "for-loop over hash binding not flagged: {got:?}"
    );
}

#[test]
fn d1_annotated_constructor_reports_once() {
    let src = "fn f() {\n\
               \x20   let m: std::collections::HashMap<u32, u32> = HashMap::new();\n\
               \x20   m.insert(1, 2);\n\
               }\n";
    let got = at(CORE, src);
    // One diagnostic for the binding, not a second for the constructor;
    // `insert` is a point operation and never flagged.
    assert_eq!(got, vec![(RuleId::HashIter, 2)]);
}

#[test]
fn d1_ignores_btree_and_point_lookups() {
    assert_clean(
        CORE,
        "use std::collections::BTreeMap;\n\
         fn f(m: &BTreeMap<u32, u32>) -> usize {\n\
         \x20   m.iter().count()\n\
         }\n",
    );
}

#[test]
fn d1_scoped_to_decision_crates() {
    let src = "fn f(m: &std::collections::HashMap<u32, u32>) -> usize {\n\
               \x20   m.iter().count()\n\
               }\n";
    assert_clean("crates/obs/src/fixture.rs", src);
    assert_clean("crates/lint/src/fixture.rs", src);
    assert!(!at("crates/workload/src/fixture.rs", src).is_empty());
}

#[test]
fn d1_allow_marker_suppresses_marked_line_only() {
    let src = "fn f(m: &std::collections::HashMap<u32, u32>) -> usize {\n\
               \x20   // deepsea-lint: allow(hash_iter) -- fixture: order-free count\n\
               \x20   m.iter().count()\n\
               }\n";
    let got = at(CORE, src);
    // The binding on line 1 still violates; the iteration on line 3 is allowed.
    assert_eq!(got, vec![(RuleId::HashIter, 1)]);
}

#[test]
fn d1_marker_spanning_comment_lines_still_covers_next_source_line() {
    // A justification wrapped over two comment lines must still cover the
    // first *source* line after the marker (comments are not source tokens).
    let src = "struct S {\n\
               \x20   // deepsea-lint: allow(hash_iter) -- point-lookup index,\n\
               \x20   // never iterated (fixture)\n\
               \x20   by_key: std::collections::HashMap<u32, u32>,\n\
               }\n";
    assert_clean(CORE, src);
}

// --------------------------------------------------------------- D2 wall_clock

#[test]
fn d2_flags_instant_and_system_time() {
    let src = "fn f() {\n\
               \x20   let _t = std::time::Instant::now();\n\
               \x20   let _s = std::time::SystemTime::now();\n\
               }\n";
    let got = at(CORE, src);
    assert_eq!(got, vec![(RuleId::WallClock, 2), (RuleId::WallClock, 3)]);
}

#[test]
fn d2_flags_ambient_entropy() {
    let got = at(CORE, "fn f() { let _r = thread_rng(); }\n");
    assert_eq!(got, vec![(RuleId::WallClock, 1)]);
}

#[test]
fn d2_exempts_criterion_shim_only() {
    let src = "fn f() { let _t = std::time::Instant::now(); }\n";
    assert_clean("crates/criterion/src/lib.rs", src);
    assert!(!at("crates/rand/src/lib.rs", src).is_empty());
}

#[test]
fn d2_allow_marker() {
    assert_clean(
        CORE,
        "// deepsea-lint: allow(wall_clock) -- fixture: display-only timestamp\n\
         fn f() { let _t = std::time::Instant::now(); }\n",
    );
}

// -------------------------------------------------------------------- P1 panic

#[test]
fn p1_flags_unwrap_and_panic_macros() {
    let src = "fn f(x: Option<u32>) -> u32 {\n\
               \x20   if x.is_none() { panic!(\"boom\"); }\n\
               \x20   x.unwrap()\n\
               }\n";
    let got = at(CORE, src);
    assert_eq!(got, vec![(RuleId::Panic, 2), (RuleId::Panic, 3)]);
}

#[test]
fn p1_flags_unreachable_todo_unimplemented() {
    let src = "fn f(k: u32) {\n\
               \x20   match k {\n\
               \x20       0 => todo!(),\n\
               \x20       1 => unimplemented!(),\n\
               \x20       _ => unreachable!(),\n\
               \x20   }\n\
               }\n";
    let got = at(CORE, src);
    assert_eq!(
        got,
        vec![(RuleId::Panic, 3), (RuleId::Panic, 4), (RuleId::Panic, 5)]
    );
}

#[test]
fn p1_expect_requires_invariant_prefix() {
    // A bare reason is not enough…
    let got = at(
        CORE,
        "fn f(x: Option<u32>) -> u32 { x.expect(\"tracked\") }\n",
    );
    assert_eq!(got, vec![(RuleId::Panic, 1)]);
    // …a non-literal message is not enough…
    let got = at(
        CORE,
        "fn f(x: Option<u32>, m: &str) -> u32 { x.expect(m) }\n",
    );
    assert_eq!(got, vec![(RuleId::Panic, 1)]);
    // …the sanctioned escape is a literal documenting the invariant.
    assert_clean(
        CORE,
        "fn f(x: Option<u32>) -> u32 { x.expect(\"invariant: tracked above\") }\n",
    );
}

#[test]
fn p1_exempts_test_code() {
    // `#[test]` item span.
    assert_clean(
        CORE,
        "#[test]\n\
         fn t() { Some(1).unwrap(); }\n",
    );
    // `#[cfg(test)]` module span.
    assert_clean(
        CORE,
        "#[cfg(test)]\n\
         mod tests {\n\
         \x20   fn helper(x: Option<u32>) -> u32 { x.unwrap() }\n\
         }\n",
    );
    // Whole-file scopes: tests/ dirs and `tests.rs` module files (their
    // `#[cfg(test)]` lives on the `mod` declaration in the parent file).
    let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
    assert_clean("crates/core/tests/golden.rs", src);
    assert_clean("crates/core/src/driver/tests.rs", src);
    assert_clean("crates/core/src/driver/evict_tests.rs", src);
    assert_clean("crates/core/benches/bench.rs", src);
}

#[test]
fn p1_allow_marker() {
    assert_clean(
        CORE,
        "// deepsea-lint: allow(panic) -- fixture: documented poison path\n\
         fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
    );
}

// ------------------------------------------------------------------ E1 discard

#[test]
fn e1_flags_discarded_fallible_calls() {
    let src = "fn f(j: &mut Journal) {\n\
               \x20   let _ = j.append(b\"rec\");\n\
               \x20   let _ = try_reserve(16);\n\
               }\n";
    let got = at(CORE, src);
    assert_eq!(got, vec![(RuleId::Discard, 2), (RuleId::Discard, 3)]);
}

#[test]
fn e1_flags_discarded_io_write() {
    let src = "fn f(sink: &mut Sink) {\n\
               \x20   let _ = write!(sink, \"x\");\n\
               }\n";
    let got = at(CORE, src);
    assert_eq!(got, vec![(RuleId::Discard, 2)]);
}

/// Pins the in-rule E1 exemption: `fmt::Write` into a `String` cannot fail,
/// so discarding its `Result` is idiomatic and needs no marker. These two
/// shapes mirror the real call sites in `crates/obs/src/prometheus.rs`
/// (`out: &mut String` parameter) and `crates/engine/src/signature.rs`
/// (`let mut s = String::new()` local).
#[test]
fn e1_string_fmt_write_is_exempt() {
    assert_clean(
        "crates/obs/src/fixture.rs",
        "fn render(out: &mut String) {\n\
         \x20   let _ = write!(out, \"metric {}\", 1);\n\
         \x20   let _ = writeln!(out, \"eol\");\n\
         }\n",
    );
    assert_clean(
        "crates/engine/src/fixture.rs",
        "fn sig() -> String {\n\
         \x20   let mut s = String::new();\n\
         \x20   let _ = write!(&mut s, \"k={}\", 2);\n\
         \x20   s\n\
         }\n",
    );
}

#[test]
fn e1_ignores_infallible_discards() {
    assert_clean(CORE, "fn f(x: u32) { let _ = compute(x); }\n");
}

#[test]
fn e1_allow_marker() {
    assert_clean(
        CORE,
        "fn f(j: &mut Journal) {\n\
         \x20   // deepsea-lint: allow(discard) -- fixture: best-effort append\n\
         \x20   let _ = j.append(b\"rec\");\n\
         }\n",
    );
}

// ----------------------------------------------------------------- L1 layering

#[test]
fn l1_flags_direct_io_modules() {
    let src = "use std::fs;\n\
               fn f() {\n\
               \x20   std::thread::spawn(|| {});\n\
               }\n";
    let got = at(CORE, src);
    assert_eq!(got, vec![(RuleId::Layering, 1), (RuleId::Layering, 3)]);
}

#[test]
fn l1_flags_use_group_form() {
    let got = at(CORE, "use std::{fs, io::Read, net};\n");
    assert_eq!(got, vec![(RuleId::Layering, 1), (RuleId::Layering, 1)]);
}

#[test]
fn l1_exempts_storage_and_harness_crates() {
    let src = "use std::fs;\n";
    assert_clean("crates/storage/src/fs.rs", src);
    assert_clean("crates/lint/src/lib.rs", src);
    assert_clean("crates/criterion/src/lib.rs", src);
    // `std::io` alone is fine anywhere: only fs/net/thread are walled off.
    assert_clean(CORE, "use std::io::Read;\n");
}

#[test]
fn l1_sanctioned_concurrency_allows_thread_only() {
    const WORKERS: &str = "crates/core/src/server/workers.rs";
    // The sanctioned serving-layer file may name std::thread, in both
    // path and use-group form.
    assert_clean(WORKERS, "fn f() { std::thread::scope(|_s| {}); }\n");
    assert_clean(WORKERS, "use std::{thread, sync::mpsc};\n");
    // fs/net stay forbidden even there.
    let got = at(
        WORKERS,
        "use std::fs;\nfn f() { std::thread::yield_now(); }\n",
    );
    assert_eq!(got, vec![(RuleId::Layering, 1)]);
    let got = at(WORKERS, "use std::{thread, net};\n");
    assert_eq!(got, vec![(RuleId::Layering, 1)]);
}

#[test]
fn l1_thread_stays_forbidden_outside_sanctioned_surface() {
    // A neighboring server file does not inherit the allowance…
    let got = at(
        "crates/core/src/server/mod.rs",
        "fn f() { std::thread::spawn(|| {}); }\n",
    );
    assert_eq!(got, vec![(RuleId::Layering, 1)]);
    // …and neither does any other core/engine file.
    let got = at(CORE, "use std::thread;\n");
    assert_eq!(got, vec![(RuleId::Layering, 1)]);
    let got = at("crates/engine/src/backend.rs", "use std::{thread};\n");
    assert_eq!(got, vec![(RuleId::Layering, 1)]);
}

#[test]
fn l1_allow_marker() {
    assert_clean(
        CORE,
        "// deepsea-lint: allow(layering) -- fixture: documented boundary hole\n\
         use std::fs;\n",
    );
}

// ------------------------------------------------------------------- M0 marker

#[test]
fn m0_flags_unjustified_marker() {
    let got = at(CORE, "// deepsea-lint: allow(hash_iter)\nfn f() {}\n");
    assert_eq!(got, vec![(RuleId::Marker, 1)]);
}

#[test]
fn m0_flags_unknown_rule() {
    let got = at(
        CORE,
        "// deepsea-lint: allow(no_such_rule) -- because\nfn f() {}\n",
    );
    assert_eq!(got, vec![(RuleId::Marker, 1)]);
}

#[test]
fn m0_flags_malformed_shapes() {
    for src in [
        "// deepsea-lint: disallow(panic) -- nope\n",
        "// deepsea-lint: allow(panic -- unterminated\n",
        "// deepsea-lint: allow() -- empty\n",
        "// deepsea-lint: allow(panic) --\n",
    ] {
        let got = at(CORE, src);
        assert_eq!(got, vec![(RuleId::Marker, 1)], "not flagged: {src:?}");
    }
}

#[test]
fn m0_cannot_be_self_suppressed() {
    // An unjustified marker stays a violation even when another marker
    // sits above it; `marker` is not an allowable slug.
    let src = "// deepsea-lint: allow(marker) -- nice try\n\
               // deepsea-lint: allow(hash_iter)\n\
               fn f() {}\n";
    let got = at(CORE, src);
    assert_eq!(got, vec![(RuleId::Marker, 1), (RuleId::Marker, 2)]);
}

#[test]
fn m0_multi_rule_marker_suppresses_each_listed_rule() {
    assert_clean(
        CORE,
        "// deepsea-lint: allow(panic, wall_clock) -- fixture: both on one line\n\
         fn f(x: Option<u32>) -> u32 { let _t = Instant::now(); x.unwrap() }\n",
    );
}

#[test]
fn marker_does_not_suppress_other_rules() {
    let src = "// deepsea-lint: allow(wall_clock) -- wrong slug for this site\n\
               fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
    let got = at(CORE, src);
    assert_eq!(got, vec![(RuleId::Panic, 2)]);
}

// ---------------------------------------------------------- R2 lock_discipline

#[test]
fn r2_flags_sync_primitives_outside_sanctioned_files() {
    // Qualified path form and `use`-import form are both caught.
    let got = at(CORE, "fn f() { let m = std::sync::Mutex::new(0u32); }\n");
    assert_eq!(got, vec![(RuleId::LockDiscipline, 1)]);
    let got = at(CORE, "use std::sync::RwLock;\n");
    assert_eq!(got, vec![(RuleId::LockDiscipline, 1)]);
    let got = at(
        "crates/engine/src/fixture.rs",
        "use std::sync::atomic::{AtomicU64, Ordering};\n",
    );
    assert!(
        got.iter().all(|&(r, _)| r == RuleId::LockDiscipline) && !got.is_empty(),
        "atomics are primitives too: {got:?}"
    );
}

#[test]
fn r2_allows_arc_and_nonsync_idents() {
    // `Arc` is shared ownership, not a lock; a local type that happens to
    // be named `Mutex` without a sync qualifier/import is out of scope.
    assert_clean(CORE, "use std::sync::Arc;\n");
    assert_clean(CORE, "fn f(m: &my::Mutex) { m.poke(); }\n");
}

#[test]
fn r2_sanctioned_files_check_guard_shape_not_imports() {
    const WORKERS: &str = "crates/core/src/server/workers.rs";
    // Imports are the sanctioned files' whole point.
    assert_clean(WORKERS, "use std::sync::{Mutex, Condvar};\n");
    // A single guard, used and dropped, is fine.
    assert_clean(
        WORKERS,
        "fn f(q: &std::sync::Mutex<Vec<u32>>) {\n\
         \x20   let mut g = q.lock();\n\
         \x20   g.push(1);\n\
         }\n",
    );
}

#[test]
fn r2_flags_nested_guard_acquisition() {
    const WORKERS: &str = "crates/core/src/server/workers.rs";
    let src = "fn f(a: &std::sync::Mutex<u32>, b: &std::sync::Mutex<u32>) {\n\
               \x20   let g = a.lock();\n\
               \x20   let h = b.lock();\n\
               }\n";
    assert_eq!(at(WORKERS, src), vec![(RuleId::LockDiscipline, 3)]);
    // Scoped drop of the first guard clears the shape.
    let src = "fn f(a: &std::sync::Mutex<u32>, b: &std::sync::Mutex<u32>) {\n\
               \x20   { let g = a.lock(); }\n\
               \x20   let h = b.lock();\n\
               }\n";
    assert_clean(WORKERS, src);
}

#[test]
fn r2_flags_backend_calls_under_guard() {
    const SYNC: &str = "crates/storage/src/sync.rs";
    let src = "fn f(&self) {\n\
               \x20   let g = self.inner.lock();\n\
               \x20   self.backend.execute(&g);\n\
               }\n";
    assert_eq!(at(SYNC, src), vec![(RuleId::LockDiscipline, 3)]);
    // A temporary guard dies at its own `;` — the next statement is free.
    let src = "fn f(&self) {\n\
               \x20   self.inner.lock().poke();\n\
               \x20   self.journal.append(1);\n\
               }\n";
    assert_clean(SYNC, src);
}

#[test]
fn r2_allow_marker() {
    assert_clean(
        CORE,
        "// deepsea-lint: allow(lock_discipline) -- fixture: documented hole\n\
         use std::sync::Mutex;\n",
    );
}

// --------------------------------------------------------------- R3 cost_flow

#[test]
fn r3_flags_tuple_discard_of_cost_component() {
    let src = "fn f(&mut self, id: u64) {\n\
               \x20   let (bytes, _secs) = self.fs.delete_costed(id);\n\
               \x20   self.stats.bytes += bytes;\n\
               }\n";
    let got = at(CORE, src);
    assert_eq!(got, vec![(RuleId::CostFlow, 2)], "{got:?}");
}

#[test]
fn r3_flags_bare_discard_of_cost_source() {
    let src = "fn f(&mut self, n: usize) {\n\
               \x20   self.pool.try_reserve(n);\n\
               }\n";
    let got = at(CORE, src);
    assert!(
        got.contains(&(RuleId::CostFlow, 2)),
        "bare discard not flagged: {got:?}"
    );
}

#[test]
fn r3_flags_simfs_delete_wrapper() {
    let got = at(CORE, "fn f(&mut self, id: u64) { self.fs.delete(id); }\n");
    assert!(
        got.contains(&(RuleId::CostFlow, 1)),
        "fs.delete wrapper not flagged: {got:?}"
    );
    let got = at(
        CORE,
        "fn f(&mut self, id: u64) { self.ds.fs().delete(id); }\n",
    );
    assert!(
        got.contains(&(RuleId::CostFlow, 1)),
        "fs() accessor form not flagged: {got:?}"
    );
}

#[test]
fn r3_consumed_results_are_clean() {
    // Named tuple components, `?`-propagation, and assignment all consume
    // the cost; closure-internal flows are out of scope by design.
    assert_clean(
        CORE,
        "fn f(&mut self, id: u64) -> u64 {\n\
         \x20   let (bytes, secs) = self.fs.delete_costed(id);\n\
         \x20   self.acct.charge(secs);\n\
         \x20   bytes\n\
         }\n",
    );
    assert_clean(
        CORE,
        "fn f(&mut self, n: usize) -> Result<(), Full> {\n\
         \x20   self.pool.try_reserve(n)?;\n\
         \x20   Ok(())\n\
         }\n",
    );
    assert_clean(
        CORE,
        "fn f(&mut self) { self.total += self.drain_retry_budget(3); }\n",
    );
}

#[test]
fn r3_allow_marker() {
    assert_clean(
        CORE,
        "// deepsea-lint: allow(cost_flow) -- fixture: failure path, uncharged by design\n\
         fn f(&mut self, id: u64) { self.fs.delete(id); }\n",
    );
}

// --------------------------------------------------------------- R4 obs_gated

#[test]
fn r4_flags_ungated_decision_event() {
    let src = "fn f(&self, q: u64) {\n\
               \x20   self.obs.event(DecisionEvent::Shed { q });\n\
               }\n";
    let got = at(CORE, src);
    assert_eq!(got, vec![(RuleId::ObsGated, 2)], "{got:?}");
}

#[test]
fn r4_flags_unguarded_format_label_reaching_a_sink() {
    // Same-statement flow…
    let src = "fn f(&self, q: u64) {\n\
               \x20   self.obs.counter_inc(&format!(\"q{q}\"), 1);\n\
               }\n";
    assert_eq!(at(CORE, src), vec![(RuleId::ObsGated, 2)]);
    // …and the bind-then-sink flow, flagged at the sink.
    let src = "fn f(&self, q: u64) {\n\
               \x20   let label = format!(\"q{q}\");\n\
               \x20   self.obs.counter_inc(&label, 1);\n\
               }\n";
    assert_eq!(at(CORE, src), vec![(RuleId::ObsGated, 3)]);
}

#[test]
fn r4_guard_idioms_are_clean() {
    // Guard-positive block.
    assert_clean(
        CORE,
        "fn f(&self, q: u64) {\n\
         \x20   if self.obs.events_enabled() {\n\
         \x20       self.obs.event(DecisionEvent::Shed { q });\n\
         \x20   }\n\
         }\n",
    );
    // Early-return on the negated guard dominates the rest of the fn.
    assert_clean(
        CORE,
        "fn f(&self, q: u64) {\n\
         \x20   if !self.obs.enabled() {\n\
         \x20       return;\n\
         \x20   }\n\
         \x20   self.obs.event(DecisionEvent::Shed { q });\n\
         }\n",
    );
    // Guard-local boolean.
    assert_clean(
        CORE,
        "fn f(&self, q: u64) {\n\
         \x20   let on = self.obs.events_enabled();\n\
         \x20   if on {\n\
         \x20       self.obs.event(DecisionEvent::Shed { q });\n\
         \x20   }\n\
         }\n",
    );
    // The statement carries its own guard call.
    assert_clean(
        CORE,
        "fn f(&self, q: u64) {\n\
         \x20   if self.obs.events_enabled() && q > 0 {\n\
         \x20       self.obs.event(DecisionEvent::Shed { q });\n\
         \x20   }\n\
         }\n",
    );
    // Plain-label sinks need no guard — the Observer gates internally.
    assert_clean(CORE, "fn f(&self) { self.obs.counter_inc(\"shed\", 1); }\n");
}

#[test]
fn r4_allow_marker() {
    assert_clean(
        CORE,
        "fn f(&self, q: u64) {\n\
         \x20   // deepsea-lint: allow(obs_gated) -- fixture: cold error path\n\
         \x20   self.obs.event(DecisionEvent::Shed { q });\n\
         }\n",
    );
}

// ----------------------------------------------- lexer regression pins (v2)

#[test]
fn lexer_byte_and_raw_byte_strings_are_opaque() {
    // Rule-triggering text inside b"…" / br#"…"# literals must not lint:
    // the v1 lexer treated the `b`/`br` prefix as an ident and lexed the
    // quote as a string start one byte late.
    assert_clean(
        CORE,
        "fn f() -> &'static [u8] { b\"format!(unwrap) std::thread\" }\n",
    );
    assert_clean(
        CORE,
        "fn g() -> &'static [u8] { br#\"std::fs::File \"quoted\" panic!\"# }\n",
    );
}

#[test]
fn lexer_lifetimes_and_char_literals_disambiguate() {
    // `'x'` after a comparison is a char literal, not a lifetime; `'a` in a
    // turbofish is a lifetime, not an unterminated char. Either confusion
    // makes the rest of the file lint as string garbage.
    assert_clean(CORE, "fn f(c: char) -> bool { c < 'x' && c != '\\'' }\n");
    assert_clean(
        CORE,
        "fn g<'a>(xs: &'a [u64]) -> std::slice::Iter::<'a, u64> { xs.iter() }\n",
    );
}
