//! Closed integer intervals and the fragmentation algebra of Definitions 1–2.
//!
//! The paper works over ordered attribute domains and mixes open/closed
//! interval endpoints (`[l', l)`, `(u, u']`, …). Every partition attribute in
//! the evaluation is an integer (`item_sk`, quantized `ra`), so we normalize
//! all intervals to **closed integer intervals** — `(a, b]` becomes
//! `[a+1, b]` — which makes disjointness and coverage checks exact.

use std::fmt;

/// A non-empty closed integer interval `[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Interval {
    /// Inclusive lower bound.
    pub lo: i64,
    /// Inclusive upper bound.
    pub hi: i64,
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

impl Interval {
    /// Create `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `lo > hi` (empty intervals are represented by `Option`).
    pub fn new(lo: i64, hi: i64) -> Self {
        assert!(lo <= hi, "empty interval [{lo}, {hi}]");
        Self { lo, hi }
    }

    /// Width (number of integer points).
    pub fn width(&self) -> u64 {
        (self.hi - self.lo) as u64 + 1
    }

    /// Midpoint (rounded down).
    pub fn midpoint(&self) -> i64 {
        self.lo + (self.hi - self.lo) / 2
    }

    /// Does the interval contain point `p`?
    pub fn contains_point(&self, p: i64) -> bool {
        self.lo <= p && p <= self.hi
    }

    /// Does the interval fully contain `other`?
    pub fn contains(&self, other: &Interval) -> bool {
        self.lo <= other.lo && other.hi <= self.hi
    }

    /// Do the intervals share at least one point?
    pub fn overlaps(&self, other: &Interval) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }

    /// Intersection, if non-empty.
    pub fn intersect(&self, other: &Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        (lo <= hi).then(|| Interval::new(lo, hi))
    }

    /// Fraction of this interval covered by `other` (for size estimation,
    /// §7.2: `‖Icand ∩ I‖ / ‖I‖`).
    pub fn overlap_fraction(&self, other: &Interval) -> f64 {
        match self.intersect(other) {
            Some(iv) => iv.width() as f64 / self.width() as f64,
            None => 0.0,
        }
    }

    /// Split at an interior point: `[lo, p-1]` and `[p, hi]`.
    /// Returns `None` when `p` is not an interior split point (`p <= lo` or
    /// `p > hi`), in which case no split is possible.
    pub fn split_at(&self, p: i64) -> Option<(Interval, Interval)> {
        if p <= self.lo || p > self.hi {
            return None;
        }
        Some((Interval::new(self.lo, p - 1), Interval::new(p, self.hi)))
    }

    /// Chop into `k` near-equal-width pieces (used by the φ fragment-size
    /// bound, §9 "Bounding Fragment Size").
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn chop(&self, k: usize) -> Vec<Interval> {
        assert!(k > 0);
        let k = (k as u64).min(self.width()) as i64;
        let width = self.width() as i64;
        let base = width / k;
        let rem = width % k;
        let mut out = Vec::with_capacity(k as usize);
        let mut lo = self.lo;
        for i in 0..k {
            let w = base + i64::from(i < rem);
            out.push(Interval::new(lo, lo + w - 1));
            lo += w;
        }
        out
    }
}

/// Is the fragmentation a **horizontal partition** of `domain`
/// (Definition 1): intervals pairwise disjoint and covering the domain?
pub fn is_horizontal_partition(intervals: &[Interval], domain: &Interval) -> bool {
    covers(intervals, domain) && pairwise_disjoint(intervals)
}

/// Is the fragmentation an **overlapping partitioning** of `domain`
/// (Definition 2): union of intervals equals the domain (overlap allowed)?
pub fn is_overlapping_partitioning(intervals: &[Interval], domain: &Interval) -> bool {
    covers(intervals, domain)
}

/// Do the intervals jointly cover every point of `domain`?
pub fn covers(intervals: &[Interval], domain: &Interval) -> bool {
    let mut ivs: Vec<&Interval> = intervals.iter().filter(|iv| iv.overlaps(domain)).collect();
    ivs.sort_by_key(|iv| (iv.lo, iv.hi));
    let mut covered_to = domain.lo - 1;
    for iv in ivs {
        if iv.lo > covered_to + 1 {
            return false; // gap
        }
        covered_to = covered_to.max(iv.hi);
        if covered_to >= domain.hi {
            return true;
        }
    }
    covered_to >= domain.hi
}

/// Are the intervals pairwise disjoint?
pub fn pairwise_disjoint(intervals: &[Interval]) -> bool {
    let mut sorted: Vec<&Interval> = intervals.iter().collect();
    sorted.sort_by_key(|iv| (iv.lo, iv.hi));
    sorted.windows(2).all(|w| w[0].hi < w[1].lo)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_and_midpoint() {
        assert_eq!(Interval::new(0, 0).width(), 1);
        assert_eq!(Interval::new(-5, 4).width(), 10);
        assert_eq!(Interval::new(0, 10).midpoint(), 5);
        assert_eq!(Interval::new(0, 11).midpoint(), 5);
    }

    #[test]
    #[should_panic(expected = "empty interval")]
    fn empty_rejected() {
        Interval::new(3, 2);
    }

    #[test]
    fn containment_and_overlap() {
        let a = Interval::new(0, 10);
        let b = Interval::new(3, 7);
        assert!(a.contains(&b));
        assert!(!b.contains(&a));
        assert!(a.overlaps(&b));
        assert!(a.overlaps(&Interval::new(10, 20)), "shared endpoint");
        assert!(!a.overlaps(&Interval::new(11, 20)));
        assert!(a.contains_point(0) && a.contains_point(10) && !a.contains_point(11));
    }

    #[test]
    fn intersect_cases() {
        let a = Interval::new(0, 10);
        assert_eq!(
            a.intersect(&Interval::new(5, 15)),
            Some(Interval::new(5, 10))
        );
        assert_eq!(a.intersect(&Interval::new(20, 30)), None);
        assert_eq!(a.intersect(&a), Some(a));
    }

    #[test]
    fn overlap_fraction() {
        let a = Interval::new(0, 9); // width 10
        assert!((a.overlap_fraction(&Interval::new(5, 100)) - 0.5).abs() < 1e-12);
        assert_eq!(a.overlap_fraction(&Interval::new(50, 60)), 0.0);
        assert_eq!(a.overlap_fraction(&a), 1.0);
    }

    #[test]
    fn split_at_interior() {
        let a = Interval::new(0, 10);
        let (l, r) = a.split_at(4).unwrap();
        assert_eq!(l, Interval::new(0, 3));
        assert_eq!(r, Interval::new(4, 10));
        assert_eq!(l.width() + r.width(), a.width());
        assert!(a.split_at(0).is_none(), "split at lo is a no-op");
        assert!(a.split_at(11).is_none());
        assert!(a.split_at(10).is_some(), "last point splits off [10,10]");
    }

    #[test]
    fn chop_covers_exactly() {
        let a = Interval::new(0, 10); // width 11
        let parts = a.chop(4);
        assert_eq!(parts.len(), 4);
        assert!(is_horizontal_partition(&parts, &a));
        assert_eq!(parts.iter().map(Interval::width).sum::<u64>(), 11);
        // chop into more pieces than points clamps
        let tiny = Interval::new(0, 1).chop(10);
        assert_eq!(tiny.len(), 2);
    }

    #[test]
    fn horizontal_partition_detection() {
        let d = Interval::new(1, 6);
        // Example 1 of the paper.
        let part = vec![
            Interval::new(1, 2),
            Interval::new(3, 4),
            Interval::new(5, 6),
        ];
        assert!(is_horizontal_partition(&part, &d));
        let overlapping = vec![
            Interval::new(1, 4),
            Interval::new(3, 4),
            Interval::new(5, 6),
        ];
        assert!(!is_horizontal_partition(&overlapping, &d));
        assert!(is_overlapping_partitioning(&overlapping, &d));
        let gap = vec![Interval::new(1, 2), Interval::new(5, 6)];
        assert!(!is_overlapping_partitioning(&gap, &d));
        let again = vec![Interval::new(1, 4), Interval::new(5, 6)];
        assert!(is_horizontal_partition(&again, &d));
    }

    #[test]
    fn covers_handles_containment_chains() {
        let d = Interval::new(0, 100);
        // A big interval containing later small ones; sorted-by-lo scan must
        // keep the running max.
        let ivs = vec![
            Interval::new(0, 100),
            Interval::new(10, 20),
            Interval::new(30, 40),
        ];
        assert!(covers(&ivs, &d));
        assert!(!covers(&[Interval::new(1, 100)], &d), "misses point 0");
    }

    #[test]
    fn disjointness() {
        assert!(pairwise_disjoint(&[
            Interval::new(0, 1),
            Interval::new(2, 3)
        ]));
        assert!(!pairwise_disjoint(&[
            Interval::new(0, 2),
            Interval::new(2, 3)
        ]));
        assert!(pairwise_disjoint(&[]));
    }
}
