//! Fragment merging — the first short-term extension §11 proposes:
//! "considering how to merge consecutive fragments that are mostly accessed
//! together".
//!
//! Progressive splitting leaves partitions littered with small adjacent
//! fragments that queries almost always read as a unit (their hit sets
//! coincide). Each extra file costs a map task and a commit; merging them
//! back recovers the overhead without losing selectivity the workload ever
//! exploits.
//!
//! A pair of **adjacent, materialized, non-overlapping** fragments is merged
//! when their (decayed) hit counts agree within `cohit_tolerance` — hits that
//! always arrive together produce equal counts — and both have been hit at
//! all. Merging reads both fragments and writes their union, so the driver
//! charges it like any repartitioning job.

use crate::fragment::{FragmentId, FragmentMeta};
use crate::interval::Interval;
use crate::registry::PartitionState;
use crate::stats::LogicalTime;

/// A proposed merge of two adjacent fragments.
#[derive(Debug, Clone, PartialEq)]
pub struct MergeCandidate {
    /// Left fragment.
    pub left: FragmentId,
    /// Right fragment (immediately adjacent).
    pub right: FragmentId,
    /// The merged interval.
    pub merged: Interval,
    /// Combined size in simulated bytes.
    pub bytes: u64,
}

/// Find mergeable pairs in one partition.
///
/// `cohit_tolerance` is the maximum allowed relative difference between the
/// two fragments' decayed hit counts (0.0 = identical, 0.2 = within 20%).
/// `max_merged_bytes` bounds the result size so merging never rebuilds the
/// monolith progressive partitioning just split.
pub fn merge_candidates(
    partition: &PartitionState,
    tnow: LogicalTime,
    tmax: LogicalTime,
    cohit_tolerance: f64,
    max_merged_bytes: u64,
) -> Vec<MergeCandidate> {
    let mut mats: Vec<&FragmentMeta> = partition
        .fragments
        .iter()
        .filter(|f| f.is_materialized())
        .collect();
    mats.sort_by_key(|f| (f.interval.lo, f.interval.hi));
    let mut out = Vec::new();
    let mut i = 0;
    while i + 1 < mats.len() {
        let a = mats[i];
        let b = mats[i + 1];
        let adjacent = a.interval.hi + 1 == b.interval.lo;
        if adjacent && is_cohit(a, b, tnow, tmax, cohit_tolerance) {
            let bytes = a.size + b.size;
            if bytes <= max_merged_bytes {
                out.push(MergeCandidate {
                    left: a.id,
                    right: b.id,
                    merged: Interval::new(a.interval.lo, b.interval.hi),
                    bytes,
                });
                i += 2; // don't chain a fragment into two merges at once
                continue;
            }
        }
        i += 1;
    }
    out
}

fn is_cohit(
    a: &FragmentMeta,
    b: &FragmentMeta,
    tnow: LogicalTime,
    tmax: LogicalTime,
    tolerance: f64,
) -> bool {
    let ha = a.stats.decayed_hits(tnow, tmax);
    let hb = b.stats.decayed_hits(tnow, tmax);
    if ha <= 0.0 || hb <= 0.0 {
        return false; // merging cold fragments has no evidence behind it
    }
    let rel = (ha - hb).abs() / ha.max(hb);
    rel <= tolerance
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepsea_storage::FileId;

    /// Partition with materialized fragments [0,9][10,19][20,29][40,49]
    /// (note the gap before the last one).
    fn partition(hits: &[&[LogicalTime]]) -> PartitionState {
        let mut p = PartitionState::new("a.k", Interval::new(0, 49));
        for (i, (lo, hi)) in [(0, 9), (10, 19), (20, 29), (40, 49)].iter().enumerate() {
            let id = p.track(Interval::new(*lo, *hi), 100);
            let f = p.frag_mut(id).unwrap();
            f.file = Some(FileId(i as u64));
            for &t in hits[i] {
                f.stats.record_hit(t);
            }
        }
        p
    }

    #[test]
    fn cohit_adjacent_fragments_merge() {
        // First two fragments always hit together; third rarely; fourth never.
        let p = partition(&[&[1, 2, 3], &[1, 2, 3], &[2], &[]]);
        let c = merge_candidates(&p, 3, 100, 0.1, 1_000);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].merged, Interval::new(0, 19));
        assert_eq!(c[0].bytes, 200);
    }

    #[test]
    fn differing_hit_counts_do_not_merge() {
        let p = partition(&[&[1, 2, 3], &[3], &[], &[]]);
        assert!(merge_candidates(&p, 3, 100, 0.1, 1_000).is_empty());
        // …unless the tolerance allows it.
        let loose = merge_candidates(&p, 3, 100, 0.9, 1_000);
        assert_eq!(loose.len(), 1);
    }

    #[test]
    fn cold_fragments_never_merge() {
        let p = partition(&[&[], &[], &[], &[]]);
        assert!(merge_candidates(&p, 3, 100, 1.0, 1_000).is_empty());
    }

    #[test]
    fn gap_blocks_merge() {
        // [20,29] and [40,49] co-hit but are not adjacent.
        let p = partition(&[&[], &[], &[1, 2], &[1, 2]]);
        assert!(merge_candidates(&p, 2, 100, 0.1, 1_000).is_empty());
    }

    #[test]
    fn size_cap_blocks_merge() {
        let p = partition(&[&[1], &[1], &[], &[]]);
        assert!(merge_candidates(&p, 1, 100, 0.1, 150).is_empty());
        assert_eq!(merge_candidates(&p, 1, 100, 0.1, 200).len(), 1);
    }

    #[test]
    fn no_fragment_participates_twice() {
        // Three consecutive co-hit fragments: only one pair merges per pass.
        let p = partition(&[&[1], &[1], &[1], &[]]);
        let c = merge_candidates(&p, 1, 100, 0.1, 1_000);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].merged, Interval::new(0, 19));
    }
}
