//! Immutable catalog snapshots for concurrent readers.
//!
//! A [`ReadSnapshot`] is what the single writer *publishes* after each
//! committed query: a frozen copy of the view registry (and, transitively,
//! its filter tree and statistics) plus `Arc` handles on the shared
//! substrates, stamped with the epoch it was taken at. Readers answer
//! queries against a snapshot through the same read-path code the serial
//! driver uses ([`crate::driver`]'s `ReadView`), so a query answered from a
//! snapshot is bit-identical to the same query answered by the writer at
//! that epoch.
//!
//! The registry is the only deep copy; everything else is a reference-count
//! bump. Copy-on-write at publication granularity: each epoch's registry is
//! immutable once published, so any number of readers share one copy and
//! the writer never waits for them.

use std::sync::Arc;

use deepsea_engine::catalog::Catalog;
use deepsea_engine::exec::{ExecError, ExecMetrics};
use deepsea_engine::plan::LogicalPlan;
use deepsea_engine::ExecutionBackend;
use deepsea_obs::{Observer, SpanCtx};
use deepsea_relation::Table;
use deepsea_storage::SimFs;

use crate::breaker::BreakerSet;
use crate::config::DeepSeaConfig;
use crate::driver::read_path::ReadView;
use crate::driver::{DeepSea, QueryTrace};
use crate::registry::ViewRegistry;
use crate::stats::LogicalTime;

/// A frozen, shareable view of everything the read path consults, stamped
/// with the epoch (committed-query count) it was published at.
pub struct ReadSnapshot {
    /// The epoch this snapshot captures — equal to the writer's logical
    /// clock (number of committed queries) at publication time.
    epoch: u64,
    clock: LogicalTime,
    registry: Arc<ViewRegistry>,
    catalog: Arc<Catalog>,
    fs: Arc<SimFs<Table>>,
    backend: Box<dyn ExecutionBackend>,
    config: DeepSeaConfig,
    obs: Observer,
    /// Shared with the writer (`Arc`), not frozen: breaker state is a live
    /// health cache, so a failure observed through any snapshot immediately
    /// protects every other reader and the writer itself.
    breakers: Arc<BreakerSet>,
}

/// The result of answering one query from a snapshot: no catalog mutation,
/// so there is nothing to report but the answer and its read-path trace.
#[derive(Debug, Clone)]
pub struct SnapshotAnswer {
    /// The query's result table.
    pub result: Table,
    /// Execution time of the (possibly rewritten) query, simulated seconds.
    pub query_secs: f64,
    /// Name of the view used to answer the query, if any.
    pub used_view: Option<String>,
    /// Execution metrics of the chosen plan.
    pub metrics: ExecMetrics,
    /// Read-path slices of the per-query trace (matching, rewriting,
    /// execution, recovery); the write-path slices stay zero.
    pub trace: QueryTrace,
    /// The epoch the answer was computed against.
    pub epoch: u64,
}

impl DeepSea {
    /// Publish a snapshot of the current catalog state for concurrent
    /// readers. Fails (returns `None`) only if the execution backend cannot
    /// be forked for read-only use (see
    /// [`ExecutionBackend::fork_reader`]).
    pub fn publish_snapshot(&self) -> Option<ReadSnapshot> {
        Some(ReadSnapshot {
            epoch: self.clock(),
            clock: self.clock(),
            registry: Arc::new(self.registry().clone()),
            catalog: Arc::clone(&self.catalog),
            fs: Arc::clone(&self.fs),
            backend: self.backend.fork_reader()?,
            config: self.config,
            obs: self.obs.clone(),
            breakers: Arc::clone(&self.breakers),
        })
    }
}

impl ReadSnapshot {
    /// The epoch (committed-query count) this snapshot captures.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The writer's logical clock at publication.
    pub fn clock(&self) -> LogicalTime {
        self.clock
    }

    /// The frozen registry (views, partitions, fragments, statistics).
    pub fn registry(&self) -> &ViewRegistry {
        &self.registry
    }

    /// The configuration the snapshot was published under.
    pub fn config(&self) -> &DeepSeaConfig {
        &self.config
    }

    /// Borrow the frozen state as a read view — the concurrent path.
    pub(crate) fn read_view(&self) -> ReadView<'_> {
        ReadView {
            registry: &self.registry,
            catalog: &self.catalog,
            fs: &self.fs,
            backend: self.backend.as_ref(),
            obs: &self.obs,
            breakers: &self.breakers,
        }
    }

    /// Answer one query against this frozen epoch: matching, rewriting
    /// selection, execution — the full read path, with zero catalog
    /// mutation. Many readers may call this concurrently on clones of the
    /// same snapshot.
    pub fn answer(&self, plan: &LogicalPlan) -> Result<SnapshotAnswer, ExecError> {
        self.answer_in_span(plan, SpanCtx::NONE, 0.0)
    }

    /// [`ReadSnapshot::answer`] with the read attached to a causal trace:
    /// every read-path span — matching, rewriting, breaker verdict,
    /// execution, retry waits, hedge arms — is recorded as a child of
    /// `parent`, anchored at `anchor_secs` on the caller's simulated
    /// timeline. A [`SpanCtx::NONE`] parent records nothing; reader-side
    /// spans are never orphaned because the forked backend and the shared
    /// file system carry their detail-trace gates across
    /// [`ExecutionBackend::fork_reader`].
    pub fn answer_in_span(
        &self,
        plan: &LogicalPlan,
        parent: SpanCtx,
        anchor_secs: f64,
    ) -> Result<SnapshotAnswer, ExecError> {
        self.backend
            .reset_retry_budget(self.config.retry_budget_secs);
        let mut ctx = crate::driver::context::QueryContext::new(plan, self.clock)
            .in_span(parent, anchor_secs);
        let (result, metrics) = self.read_view().answer(plan, &mut ctx)?;
        Ok(SnapshotAnswer {
            result,
            query_secs: ctx.query_secs,
            used_view: ctx.used_view,
            metrics,
            trace: ctx.trace,
            epoch: self.epoch,
        })
    }

    /// Answer one query straight from durable base tables, skipping view
    /// matching and rewriting entirely — the degraded serving mode the load
    /// shedder falls back to. Exact answer (the base plan *defines* the
    /// answer), typically at a higher execution cost, never touching a
    /// materialized view a sick node could be gating.
    pub fn answer_base(&self, plan: &LogicalPlan) -> Result<SnapshotAnswer, ExecError> {
        self.answer_base_in_span(plan, SpanCtx::NONE, 0.0)
    }

    /// [`ReadSnapshot::answer_base`] attached to a causal trace, like
    /// [`ReadSnapshot::answer_in_span`].
    pub fn answer_base_in_span(
        &self,
        plan: &LogicalPlan,
        parent: SpanCtx,
        anchor_secs: f64,
    ) -> Result<SnapshotAnswer, ExecError> {
        self.backend
            .reset_retry_budget(self.config.retry_budget_secs);
        let mut ctx = crate::driver::context::QueryContext::new(plan, self.clock)
            .in_span(parent, anchor_secs);
        let (result, metrics) = self.backend.execute(plan, &self.catalog, &self.fs)?;
        ctx.query_secs = self.backend.elapsed_secs(&metrics);
        ctx.trace.execution.query_secs = ctx.query_secs;
        self.read_view().trace_execute_span(&ctx, None);
        Ok(SnapshotAnswer {
            result,
            query_secs: ctx.query_secs,
            used_view: None,
            metrics,
            trace: ctx.trace,
            epoch: self.epoch,
        })
    }
}

impl Clone for ReadSnapshot {
    fn clone(&self) -> Self {
        Self {
            epoch: self.epoch,
            clock: self.clock,
            registry: Arc::clone(&self.registry),
            catalog: Arc::clone(&self.catalog),
            fs: Arc::clone(&self.fs),
            backend: self
                .backend
                .fork_reader()
                .expect("invariant: a backend that forked once forks again"),
            config: self.config,
            obs: self.obs.clone(),
            breakers: Arc::clone(&self.breakers),
        }
    }
}

impl std::fmt::Debug for ReadSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReadSnapshot")
            .field("epoch", &self.epoch)
            .field("clock", &self.clock)
            .field("views", &self.registry.len())
            .finish()
    }
}
