//! Partition matching — Algorithm 2 of the paper.
//!
//! Given the selection range `θ` a query places on the partition attribute
//! and the set of *materialized* fragments (which may overlap), find a subset
//! of fragments whose union covers `θ`. Exact minimum set cover is
//! intractable; the paper's greedy heuristic walks left to right, always
//! picking the fragment that covers the current frontier and reaches
//! furthest... (the paper picks the candidate with the largest *lower* bound
//! among those covering the frontier; we additionally break ties by furthest
//! upper bound, which never covers less).

use crate::fragment::FragmentId;
use crate::interval::Interval;

/// Greedily select fragments covering `theta`.
///
/// Returns fragment ids in left-to-right order, or `None` when the
/// materialized fragments cannot cover the range (a gap — the view partition
/// cannot answer this query and the base plan must be used).
pub fn partition_matching(
    theta: &Interval,
    fragments: &[(FragmentId, Interval)],
) -> Option<Vec<FragmentId>> {
    let mut chosen = Vec::new();
    // `ucovered` is the first *uncovered* point.
    let mut ucovered = theta.lo;
    loop {
        // Candidates: fragments covering the frontier point. Rank by largest
        // lower bound (Algorithm 2's argmax over I̲ — the tightest start);
        // among ties, a fragment that already reaches the end of `theta` with
        // the least width wins (cheapest completion), otherwise the furthest
        // reach wins (fewest fragments).
        let rank = |iv: &Interval| -> (i64, bool, i64) {
            let completes = iv.hi >= theta.hi;
            let tail_rank = if completes {
                -(iv.width() as i64)
            } else {
                iv.hi
            };
            (iv.lo, completes, tail_rank)
        };
        let mut best: Option<(FragmentId, Interval)> = None;
        for &(id, iv) in fragments {
            if iv.lo <= ucovered && iv.hi >= ucovered {
                let better = match &best {
                    None => true,
                    Some((_, b)) => rank(&iv) > rank(b),
                };
                if better {
                    best = Some((id, iv));
                }
            }
        }
        let (id, iv) = best?;
        chosen.push(id);
        if iv.hi >= theta.hi {
            return Some(chosen);
        }
        ucovered = iv.hi + 1;
    }
}

/// Total simulated bytes read when scanning the given fragments.
pub fn cover_read_bytes(cover: &[FragmentId], fragments: &[(FragmentId, Interval, u64)]) -> u64 {
    cover
        .iter()
        .filter_map(|id| {
            fragments
                .iter()
                .find(|(f, _, _)| f == id)
                .map(|(_, _, s)| s)
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(id: u64, lo: i64, hi: i64) -> (FragmentId, Interval) {
        (FragmentId(id), Interval::new(lo, hi))
    }

    #[test]
    fn exact_cover_with_disjoint_fragments() {
        let frags = vec![f(1, 0, 9), f(2, 10, 19), f(3, 20, 29)];
        let cover = partition_matching(&Interval::new(5, 25), &frags).unwrap();
        assert_eq!(cover, vec![FragmentId(1), FragmentId(2), FragmentId(3)]);
        let cover2 = partition_matching(&Interval::new(10, 19), &frags).unwrap();
        assert_eq!(cover2, vec![FragmentId(2)]);
    }

    #[test]
    fn gap_returns_none() {
        let frags = vec![f(1, 0, 9), f(3, 20, 29)];
        assert!(partition_matching(&Interval::new(5, 25), &frags).is_none());
        assert!(partition_matching(&Interval::new(30, 40), &frags).is_none());
    }

    #[test]
    fn overlapping_prefers_tightest_start() {
        // A big fragment [0,100] and a small hot fragment [40,60]:
        // a query inside the small one should use it alone.
        let frags = vec![f(1, 0, 100), f(2, 40, 60)];
        let cover = partition_matching(&Interval::new(45, 55), &frags).unwrap();
        assert_eq!(cover, vec![FragmentId(2)]);
        // A query exceeding the small fragment still needs the big one.
        let wide = partition_matching(&Interval::new(45, 80), &frags).unwrap();
        assert!(wide.contains(&FragmentId(1)));
    }

    #[test]
    fn frontier_advances_past_each_pick() {
        // Overlapping chain: [0,50], [40,80], [70,100].
        let frags = vec![f(1, 0, 50), f(2, 40, 80), f(3, 70, 100)];
        let cover = partition_matching(&Interval::new(0, 100), &frags).unwrap();
        assert_eq!(cover, vec![FragmentId(1), FragmentId(2), FragmentId(3)]);
    }

    #[test]
    fn tie_on_lower_bound_takes_furthest_reach() {
        let frags = vec![f(1, 0, 10), f(2, 0, 50)];
        let cover = partition_matching(&Interval::new(0, 40), &frags).unwrap();
        assert_eq!(cover, vec![FragmentId(2)]);
    }

    #[test]
    fn completion_prefers_small_fragment_over_huge_tail() {
        // A sliver [11,20] and a huge tail [11,1000] both cover the frontier
        // after [0,10]; for a query ending at 18 the sliver completes the
        // range and must win (reading the tail would be needlessly costly).
        let frags = vec![f(1, 0, 10), f(2, 11, 20), f(3, 11, 1000)];
        let cover = partition_matching(&Interval::new(5, 18), &frags).unwrap();
        assert_eq!(cover, vec![FragmentId(1), FragmentId(2)]);
        // But a query ending past the sliver needs the tail.
        let cover2 = partition_matching(&Interval::new(5, 500), &frags).unwrap();
        assert_eq!(cover2, vec![FragmentId(1), FragmentId(3)]);
    }

    #[test]
    fn single_point_range() {
        let frags = vec![f(1, 0, 9)];
        let cover = partition_matching(&Interval::new(9, 9), &frags).unwrap();
        assert_eq!(cover, vec![FragmentId(1)]);
    }

    #[test]
    fn empty_fragment_set_cannot_cover() {
        assert!(partition_matching(&Interval::new(0, 1), &[]).is_none());
    }

    #[test]
    fn cover_read_bytes_sums_sizes() {
        let frags = vec![
            (FragmentId(1), Interval::new(0, 9), 100),
            (FragmentId(2), Interval::new(10, 19), 250),
        ];
        assert_eq!(
            cover_read_bytes(&[FragmentId(1), FragmentId(2)], &frags),
            350
        );
        assert_eq!(cover_read_bytes(&[FragmentId(9)], &frags), 0);
    }
}
