//! Partition-candidate generation — the five cases of Definition 7.
//!
//! Given the intervals of an existing (or statistics-only) partitioning and
//! the interval `[l, u]` of an incoming query's range selection, each
//! existing interval `I' = [l', u']` contributes candidates:
//!
//! 1. `I' ∩ I = ∅` — nothing;
//! 2. `I' ⊆ I` — nothing (the query wants the whole fragment);
//! 3. query overlaps from the left (`l < l' ≤ u < u'`) — `[l', u]`, `(u, u']`;
//! 4. query overlaps from the right (`l' < l ≤ u' < u`) — `[l', l)`, `[l, u']`;
//! 5. `I ⊂ I'` — `[l', l)`, `[l, u]`, `(u, u']`.
//!
//! Open endpoints are normalized to closed integer intervals (see
//! [`crate::interval`]). Candidates produced for a query are exactly the
//! pieces obtained by splitting each overlapped interval at the query's
//! endpoints.

use crate::interval::Interval;

/// Candidates contributed by one existing interval for a query range.
/// Implements the five cases of Definition 7; returns pieces in domain order.
pub fn candidates_for_interval(existing: &Interval, query: &Interval) -> Vec<Interval> {
    // Case 1: no overlap.
    if !existing.overlaps(query) {
        return Vec::new();
    }
    // Case 2: the query covers the whole interval.
    if query.contains(existing) {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(3);
    let l = query.lo;
    let u = query.hi;
    // A left part exists when the query starts strictly inside: [l', l-1].
    if existing.lo < l {
        out.push(Interval::new(existing.lo, l - 1));
    }
    // The middle part is the intersection.
    if let Some(mid) = existing.intersect(query) {
        out.push(mid);
    }
    // A right part exists when the query ends strictly inside: [u+1, u'].
    if u < existing.hi {
        out.push(Interval::new(u + 1, existing.hi));
    }
    out
}

/// Candidates for a whole fragmentation (union over its intervals,
/// Definition 7). `existing` may be empty, in which case the partition is
/// initialized with the single fragment covering `domain` first (§6.2 case 1:
/// "we initialize the partition with a single fragment {D(V,A)}").
pub fn partition_candidates(
    existing: &[Interval],
    domain: &Interval,
    query: &Interval,
) -> Vec<Interval> {
    let init = [*domain];
    let base: &[Interval] = if existing.is_empty() { &init } else { existing };
    let mut out = Vec::new();
    for iv in base {
        for c in candidates_for_interval(iv, query) {
            if !out.contains(&c) {
                out.push(c);
            }
        }
    }
    out
}

/// Clamp a raw query range to the attribute domain (the paper's "replace `l`
/// with `A̲` and similarly for `u`"). Returns `None` when the range misses
/// the domain entirely.
pub fn clamp_to_domain(range: (i64, i64), domain: &Interval) -> Option<Interval> {
    let lo = range.0.max(domain.lo);
    let hi = range.1.min(domain.hi);
    (lo <= hi).then(|| Interval::new(lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(lo: i64, hi: i64) -> Interval {
        Interval::new(lo, hi)
    }

    #[test]
    fn case1_disjoint_produces_nothing() {
        assert!(candidates_for_interval(&iv(0, 10), &iv(20, 30)).is_empty());
    }

    #[test]
    fn case2_contained_interval_produces_nothing() {
        assert!(candidates_for_interval(&iv(11, 20), &iv(5, 25)).is_empty());
        // Equal intervals are also case 2.
        assert!(candidates_for_interval(&iv(5, 25), &iv(5, 25)).is_empty());
    }

    #[test]
    fn case3_left_overlap() {
        // I' = (20,30] → [21,30] here; I = [5,25]: candidates (20,25] and (25,30].
        let cands = candidates_for_interval(&iv(21, 30), &iv(5, 25));
        assert_eq!(cands, vec![iv(21, 25), iv(26, 30)]);
    }

    #[test]
    fn case4_right_overlap() {
        // I' = [0,10]; I = [5,25]: candidates [0,5) and [5,10].
        let cands = candidates_for_interval(&iv(0, 10), &iv(5, 25));
        assert_eq!(cands, vec![iv(0, 4), iv(5, 10)]);
    }

    #[test]
    fn case5_query_inside_interval() {
        let cands = candidates_for_interval(&iv(0, 100), &iv(40, 60));
        assert_eq!(cands, vec![iv(0, 39), iv(40, 60), iv(61, 100)]);
    }

    #[test]
    fn paper_example_3() {
        // V partitioned with I1=[0,10], I2=(10,20]→[11,20], I3=(20,30]→[21,30];
        // Q = σ_{5≤A≤25}: expect [0,5)→[0,4], [5,10], nothing for I2,
        // (20,25]→[21,25], (25,30]→[26,30].
        let existing = vec![iv(0, 10), iv(11, 20), iv(21, 30)];
        let cands = partition_candidates(&existing, &iv(0, 30), &iv(5, 25));
        assert_eq!(cands, vec![iv(0, 4), iv(5, 10), iv(21, 25), iv(26, 30)]);
    }

    #[test]
    fn empty_partition_initialized_with_domain() {
        // §6.2 case 1: PSTAT empty → initialize {D(A)} then split at l and u.
        let cands = partition_candidates(&[], &iv(0, 100), &iv(40, 60));
        assert_eq!(cands, vec![iv(0, 39), iv(40, 60), iv(61, 100)]);
    }

    #[test]
    fn query_touching_domain_edge() {
        let cands = partition_candidates(&[], &iv(0, 100), &iv(0, 60));
        assert_eq!(cands, vec![iv(0, 60), iv(61, 100)]);
        let cands2 = partition_candidates(&[], &iv(0, 100), &iv(40, 100));
        assert_eq!(cands2, vec![iv(0, 39), iv(40, 100)]);
        let whole = partition_candidates(&[], &iv(0, 100), &iv(0, 100));
        assert!(whole.is_empty(), "whole-domain query is case 2");
    }

    #[test]
    fn candidates_partition_their_source_interval() {
        // Split pieces of each overlapped interval reunite to that interval.
        let existing = iv(0, 100);
        let cands = candidates_for_interval(&existing, &iv(40, 60));
        let total: u64 = cands.iter().map(Interval::width).sum();
        assert_eq!(total, existing.width());
        assert!(crate::interval::is_horizontal_partition(&cands, &existing));
    }

    #[test]
    fn duplicate_candidates_deduped() {
        // Two overlapping existing intervals can yield identical pieces.
        let existing = vec![iv(0, 100), iv(0, 100)];
        let cands = partition_candidates(&existing, &iv(0, 100), &iv(40, 60));
        assert_eq!(cands.len(), 3);
    }

    #[test]
    fn clamp_to_domain_behaviour() {
        let d = iv(0, 100);
        assert_eq!(clamp_to_domain((-50, 30), &d), Some(iv(0, 30)));
        assert_eq!(clamp_to_domain((90, 500), &d), Some(iv(90, 100)));
        assert_eq!(clamp_to_domain((200, 300), &d), None);
        assert_eq!(clamp_to_domain((30, 20), &d), None);
    }
}
